#pragma once

#include <optional>
#include <string>
#include <vector>

#include "artemis/driver/driver.hpp"

namespace artemis::baselines {

/// One generator's result on one program (a cell of Fig. 5).
struct GeneratorResult {
  std::string generator;
  std::optional<driver::ProgramResult> result;  ///< nullopt = cannot generate
  std::string failure;                          ///< reason when nullopt

  double tflops() const { return result ? result->tflops : 0.0; }
};

/// Results of all five generators on one program, in Fig. 5 column order:
/// PPCG, global-stream, global, STENCILGEN, ARTEMIS.
struct ComparisonRow {
  std::string benchmark;
  std::vector<GeneratorResult> generators;

  const GeneratorResult& by_name(const std::string& name) const;
  /// True when ARTEMIS is best or within `tolerance` of the best.
  bool artemis_wins(double tolerance = 0.03) const;
};

/// The five generator strategies in Fig. 5 column order.
std::vector<driver::Strategy> figure5_strategies();

/// Run every generator over a program. Generators that cannot handle the
/// program (STENCILGEN on mixed-dimensionality domains) yield a failure
/// entry instead of throwing.
ComparisonRow compare_generators(
    const std::string& benchmark_name, const ir::Program& prog,
    const gpumodel::DeviceSpec& dev,
    const gpumodel::ModelParams& params = {});

}  // namespace artemis::baselines
