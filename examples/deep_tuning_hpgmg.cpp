// Deep tuning for arbitrary time iterations (Section VI-A), on the HPGMG
// 7-point smoother.
//
// A multigrid solver invokes its smoother with a *variable* number of
// iterations per level and V-cycle. ARTEMIS deep-tunes a handful of time-
// tiled versions once, then answers "how should T iterations be scheduled"
// with the opt(T) dynamic program -- at zero additional tuning cost.

#include <cstdio>

#include "artemis/driver/driver.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("7pt-smoother");

  std::printf("Deep-tuning the HPGMG 7pt smoother (one-time cost)...\n");
  const auto r = driver::optimize_program(prog, dev);
  const auto& deep = *r.deep_tuning;

  std::printf("tuned fusion candidates:\n");
  for (const auto& e : deep.entries) {
    std::printf("  (%dx1): %7.3f ms per invocation   %.3f TFLOPS   %s\n",
                e.time_tile, e.time_s * 1e3, e.tflops,
                e.report.bandwidth_bound_anywhere()
                    ? "bandwidth-bound -> keep fusing"
                    : "no longer bandwidth-bound");
  }
  std::printf("tipping point: %d (fusing deeper than this loses)\n\n",
              deep.tipping_point);

  // A V-cycle style sequence of smoothing degrees.
  std::printf("fusion schedules for a multigrid V-cycle's smoothing "
              "sweeps:\n");
  for (const int T : {2, 4, 6, 12, 13, 24, 50}) {
    const auto sched = autotune::fusion_schedule(deep, T);
    const double t = autotune::schedule_time(deep, sched);
    // Naive schedule: T unfused sweeps.
    const double naive =
        autotune::schedule_time(deep, std::vector<int>(T, 1));
    std::string text;
    for (const int x : sched) text += " " + std::to_string(x);
    std::printf("  T=%2d:%-18s  %7.3f ms  (%.2fx faster than unfused)\n", T,
                text.c_str(), t * 1e3, naive / t);
  }
  std::printf(
      "\nThe deep tuning ran once; every schedule above was derived from\n"
      "the same %zu tuned versions (Section VI-A: 'the deep tuning is done\n"
      "only once ... its cost will be amortized over the stencil "
      "invocations').\n",
      deep.entries.size());
  return 0;
}
