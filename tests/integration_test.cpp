// End-to-end integration properties across the whole stack.

#include <gtest/gtest.h>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "artemis/transform/fusion.hpp"

namespace artemis {
namespace {

using codegen::KernelConfig;
using codegen::TilingScheme;

class Integration : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;
};

TEST_F(Integration, OccupancyPragmaFlowsThroughPlanning) {
  const auto prog = dsl::parse(R"(
    parameter L=128, M=128, N=128;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    copyin a, b;
    #pragma block (16,8,4) occupancy 1.0
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i+2] + A[k][j][i-2] + A[k][j+2][i] + A[k][j-2][i]
                 + A[k+2][j][i] + A[k-2][j][i] + B[k][j][i];
    }
    s (o, a, b);
    copyout o;
  )");
  const KernelConfig cfg =
      codegen::config_from_pragma(prog, prog.stencils[0].pragma, 3);
  ASSERT_TRUE(cfg.target_occupancy.has_value());
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  // Rationing demoted the least-accessed input so that full occupancy is
  // achievable under the shared-memory budget.
  EXPECT_EQ(plan.placement.at("b").space, ir::MemSpace::Global);
  const auto ev = gpumodel::evaluate(plan, dev_);
  EXPECT_GE(ev.occupancy.fraction, 0.5);
}

/// Time-tiled execution must equal the reference for every tile size,
/// over zero-boundary inputs (the documented equivalence contract).
class TimeTileSweep : public Integration,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TimeTileSweep, FusedExecutionMatchesReference) {
  const int x = GetParam();
  const auto prog =
      stencils::benchmark_program("7pt-smoother", 14, /*t=*/x);
  sim::GridSet ref = sim::GridSet::from_program(prog, 5);
  sim::zero_boundary(ref.grid("u"), 1);
  sim::GridSet pre = ref.clone();
  sim::run_program_reference(prog, ref);

  const auto tt = transform::time_tile_iterate(prog, prog.steps[0], x);
  sim::GridSet fused = sim::GridSet::from_program(tt.augmented, 5);
  fused.grid("u") = pre.grid("u");
  KernelConfig cfg;
  cfg.block = {4, 4, 1};
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  const auto plan = codegen::build_plan(tt.augmented, tt.stages, cfg, dev_);
  sim::execute_plan(plan, fused);
  fused.swap("un", "u");
  EXPECT_LT(Grid3D::max_abs_diff(ref.grid("u"), fused.grid("u")), 1e-12)
      << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Tiles, TimeTileSweep, ::testing::Values(1, 2, 3, 4));

TEST_F(Integration, DenoiseMultiCallTimeTilingMatchesReference) {
  // The iterate body has two calls (diffus + update): the generalized
  // time-tiler must rename the per-step temporary g per fused step.
  const auto prog = stencils::benchmark_program("denoise", 12, 4);
  sim::GridSet ref = sim::GridSet::from_program(prog, 9);
  sim::zero_boundary(ref.grid("u"), 1);
  sim::GridSet pre = ref.clone();
  sim::run_program_reference(prog, ref);

  const auto tt = transform::time_tile_iterate(prog, prog.steps[0], 2);
  ASSERT_EQ(tt.stages.size(), 4u);  // 2 steps x 2 calls
  sim::GridSet fused = sim::GridSet::from_program(tt.augmented, 9);
  fused.grid("u") = pre.grid("u");
  fused.grid("f") = pre.grid("f");
  fused.set_scalar("eps", pre.scalar("eps"));
  fused.set_scalar("dt", pre.scalar("dt"));
  fused.set_scalar("gamma", pre.scalar("gamma"));
  KernelConfig cfg;
  cfg.block = {4, 4, 4};
  const auto plan = codegen::build_plan(tt.augmented, tt.stages, cfg, dev_);
  for (int inv = 0; inv < 2; ++inv) {
    sim::execute_plan(plan, fused);
    fused.swap("un", "u");
  }
  EXPECT_LT(Grid3D::max_abs_diff(ref.grid("u"), fused.grid("u")), 1e-12);
}

TEST_F(Integration, RandomDagsSurviveFullPipeline) {
  Rng rng(0xD09);
  for (int trial = 0; trial < 4; ++trial) {
    stencils::RandomStencilOptions opts;
    opts.dims = 3;
    opts.max_order = 2;
    opts.max_stages = 2;
    opts.extent = 48;
    const auto prog = stencils::random_program(rng, opts);
    const auto r = driver::optimize_program(prog, dev_, params_);
    EXPECT_GT(r.tflops, 0.0) << "trial " << trial;
    EXPECT_GE(r.kernel_launches, 1) << "trial " << trial;
  }
}

TEST_F(Integration, TunedConfigsSerializeRoundTrip) {
  const auto prog = stencils::benchmark_program("miniflux", 96);
  const autotune::PlanFactory factory =
      [&](const KernelConfig& cfg) {
        return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg,
                                            dev_);
      };
  const auto tuned =
      autotune::hierarchical_tune(factory, KernelConfig{}, dev_, params_);
  for (const auto& cand : tuned.leaderboard) {
    const auto back =
        autotune::parse_config(autotune::serialize_config(cand.config));
    // Re-planning the parsed config must reproduce the identical
    // evaluation (the config is the complete tuning record).
    const auto ev1 = gpumodel::evaluate(factory(cand.config), dev_, params_);
    const auto ev2 = gpumodel::evaluate(factory(back), dev_, params_);
    EXPECT_EQ(ev1.time_s, ev2.time_s);
  }
}

TEST_F(Integration, FusionPartitionNeverLosesToEndpoints) {
  // The Section VI-B partition DP must be at least as good as both
  // extreme forests: maximal fusion and one-kernel-per-call.
  const char* src = R"(
    parameter L=192, M=192, N=192;
    iterator k, j, i;
    double a[L,M,N], t1[L,M,N], t2[L,M,N], o[L,M,N];
    copyin a;
    stencil cheap (T, A) {
      T[k][j][i] = 0.5*(A[k][j][i-1] + A[k][j][i+1]);
    }
    stencil wide (T, A) {
      T[k][j][i] = A[k][j][i-4] + A[k][j][i+4] + A[k][j-4][i]
                 + A[k][j+4][i] + A[k-4][j][i] + A[k+4][j][i];
    }
    stencil point (O, A) { O[k][j][i] = A[k][j][i] * 2.0; }
    cheap (t1, a);
    wide (t2, t1);
    point (o, t2);
    copyout o;
  )";
  const auto prog = dsl::parse(src);

  driver::Strategy partition = driver::artemis_strategy();
  driver::Strategy maxfuse = driver::artemis_strategy();
  maxfuse.partition_dag = false;
  driver::Strategy percall = driver::artemis_strategy();
  percall.allow_dag_fusion = false;

  const auto rp = driver::optimize_program(prog, dev_, params_, partition);
  const auto rm = driver::optimize_program(prog, dev_, params_, maxfuse);
  const auto rc = driver::optimize_program(prog, dev_, params_, percall);
  EXPECT_LE(rp.time_s, rm.time_s * 1.001);
  EXPECT_LE(rp.time_s, rc.time_s * 1.001);
  EXPECT_GE(rp.kernels.size(), 1u);
  EXPECT_LE(rp.kernels.size(), 3u);
}

TEST_F(Integration, AllStrategiesDeterministic) {
  const auto prog = stencils::benchmark_program("helmholtz", 128, 4);
  for (const auto& strat : {driver::artemis_strategy(),
                            driver::ppcg_strategy()}) {
    const auto a = driver::optimize_program(prog, dev_, params_, strat);
    const auto b = driver::optimize_program(prog, dev_, params_, strat);
    EXPECT_EQ(a.time_s, b.time_s) << strat.name;
    EXPECT_EQ(a.fusion_schedule, b.fusion_schedule) << strat.name;
  }
}

}  // namespace
}  // namespace artemis
