// Behavioral properties of the analytic performance model: each of the
// paper's optimizations must move the modelled counters/time in the
// physically right direction on a kernel where it applies.

#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/common/str.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "test_programs.hpp"

namespace artemis::gpumodel {
namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::Perspective;
using codegen::TilingScheme;
using codegen::UnrollStrategy;

class PerfBehavior : public ::testing::Test {
 protected:
  DeviceSpec dev_ = p100();
  ModelParams params_;

  KernelEval eval_smoother(const KernelConfig& cfg, BuildOptions opts = {},
                           std::int64_t extent = 256) {
    const auto prog = stencils::benchmark_program("7pt-smoother", extent);
    const auto plan = codegen::build_plan_for_call(
        prog, prog.steps[0].body[0].call, cfg, dev_, opts);
    return evaluate(plan, dev_, params_);
  }
};

TEST_F(PerfBehavior, PrefetchSpeedsUpStreaming) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {32, 16, 1};
  const auto base = eval_smoother(cfg);
  cfg.prefetch = true;
  const auto pf = eval_smoother(cfg);
  EXPECT_LT(pf.time_s, base.time_s);
  // Prefetch costs registers.
  EXPECT_GT(pf.regs.prefetch, 0);
}

TEST_F(PerfBehavior, PrefetchIrrelevantForSpatial) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {16, 4, 4};
  const auto base = eval_smoother(cfg);
  cfg.prefetch = true;
  const auto pf = eval_smoother(cfg);
  EXPECT_DOUBLE_EQ(pf.time_s, base.time_s);
}

TEST_F(PerfBehavior, RetimingShrinksSharedAndSwapsRegisters) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 256);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {32, 16, 1};
  const auto plain = codegen::build_plan_for_call(
      prog, prog.steps[0].body[0].call, cfg, dev_);
  cfg.retime = true;
  const auto retimed = codegen::build_plan_for_call(
      prog, prog.steps[0].body[0].call, cfg, dev_);
  ASSERT_TRUE(retimed.retimed);
  const auto er = estimate_registers(retimed);
  const auto ep = estimate_registers(plain);
  EXPECT_EQ(er.stream_planes, 0);
  EXPECT_GT(er.accumulators, 0);
  EXPECT_GT(ep.stream_planes, 0);
  EXPECT_EQ(ep.accumulators, 0);
}

TEST_F(PerfBehavior, FoldingReducesSharedMemoryAndFlops) {
  const char* src = R"(
    parameter L=64, M=64, N=64;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    copyin a, b;
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i]*B[k][j][i] + A[k][j][i+1]*B[k][j][i+1]
                 + A[k][j-1][i]*B[k][j-1][i] + A[k+1][j][i]*B[k+1][j][i];
    }
    s (o, a, b);
    copyout o;
  )";
  const auto prog = dsl::parse(src);
  KernelConfig cfg;
  cfg.block = {8, 8, 4};
  const auto plain =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  cfg.fold = true;
  const auto folded =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  ASSERT_EQ(folded.fold_groups.size(), 1u);
  EXPECT_LT(folded.shmem_bytes_per_block, plain.shmem_bytes_per_block);
  const auto ev_plain = evaluate(plain, dev_, params_);
  const auto ev_folded = evaluate(folded, dev_, params_);
  EXPECT_LT(ev_folded.counters.flops, ev_plain.counters.flops);
  EXPECT_LT(ev_folded.counters.shm_bytes, ev_plain.counters.shm_bytes);
}

TEST_F(PerfBehavior, InputPerspectiveCostsOccupancyNotWaste) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {32, 16, 1};
  const auto out = eval_smoother(cfg);
  cfg.perspective = Perspective::Input;
  const auto in = eval_smoother(cfg);
  // Input perspective launches halo threads: fewer blocks per SM...
  EXPECT_LE(in.occupancy.active_blocks_per_sm,
            out.occupancy.active_blocks_per_sm);
  // ...but removes the non-coalesced halo tex waste.
  EXPECT_LT(in.counters.tex_bytes, out.counters.tex_bytes);
}

TEST_F(PerfBehavior, MixedPerspectiveWithinThreadLimit) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {256, 4, 1};
  cfg.perspective = Perspective::Input;
  // (256+2)x(4+2) = 1548 threads: over the limit -> invalid.
  const auto in = eval_smoother(cfg);
  EXPECT_FALSE(in.valid);
  cfg.perspective = Perspective::Mixed;
  const auto mixed = eval_smoother(cfg);  // (256+2)x4 = 1032 > 1024: invalid
  EXPECT_FALSE(mixed.valid);
  cfg.block = {128, 4, 1};
  const auto ok = eval_smoother(cfg);
  EXPECT_TRUE(ok.valid);
}

TEST_F(PerfBehavior, BlockedUnrollBeatsCyclicOnMemory) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {16, 4, 4};
  cfg.unroll = {4, 1, 1};
  BuildOptions opts;
  opts.use_shared_memory = false;
  cfg.unroll_strategy = UnrollStrategy::Blocked;
  const auto blocked = eval_smoother(cfg, opts);
  cfg.unroll_strategy = UnrollStrategy::Cyclic;
  const auto cyclic = eval_smoother(cfg, opts);
  // Blocked distribution reuses overlapping x-window loads.
  EXPECT_LT(blocked.counters.tex_bytes, cyclic.counters.tex_bytes);
  EXPECT_LT(blocked.regs.total, cyclic.regs.total);
}

TEST_F(PerfBehavior, HigherOrderMeansMoreHaloTraffic) {
  // Same structure, growing radius: redundant loads must grow.
  std::int64_t prev = 0;
  for (int r = 1; r <= 3; ++r) {
    std::string src = str_cat(
        "parameter L=128, M=128, N=128;\niterator k, j, i;\n",
        "double a[L,M,N], o[L,M,N];\ncopyin a;\n",
        "stencil s (O, A) { O[k][j][i] = A[k][j][i+", r, "] + A[k][j][i-",
        r, "] + A[k][j+", r, "][i] + A[k][j-", r, "][i] + A[k+", r,
        "][j][i] + A[k-", r, "][j][i]; }\ns (o, a);\ncopyout o;\n");
    const auto prog = dsl::parse(src);
    KernelConfig cfg;
    cfg.block = {8, 8, 4};
    const auto plan =
        codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
    const auto ev = evaluate(plan, dev_, params_);
    EXPECT_GT(ev.counters.dram_read_bytes, prev) << "r=" << r;
    prev = ev.counters.dram_read_bytes;
  }
}

TEST_F(PerfBehavior, ConcurrentStreamingRaisesBlockCount) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {32, 16, 1};
  const auto serial = eval_smoother(cfg);
  cfg.tiling = TilingScheme::StreamConcurrent;
  cfg.stream_chunk = 32;
  const auto conc = eval_smoother(cfg);
  EXPECT_GT(conc.counters.num_blocks, serial.counters.num_blocks);
}

TEST_F(PerfBehavior, SpillsAddTrafficAndTime) {
  const auto prog = stencils::benchmark_program("rhs4sgcurv", 320);
  KernelConfig cfg;
  cfg.block = {16, 16, 1};
  BuildOptions opts;
  opts.use_shared_memory = false;
  cfg.max_registers = 255;
  const auto plan255 =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_, opts);
  cfg.max_registers = 64;
  const auto plan64 =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_, opts);
  const auto ev255 = evaluate(plan255, dev_, params_);
  const auto ev64 = evaluate(plan64, dev_, params_);
  EXPECT_GT(ev64.counters.spill_bytes, ev255.counters.spill_bytes);
  // Lower budget raises occupancy but the spill penalty must dominate for
  // this kernel.
  EXPECT_GT(ev64.time_s, ev255.time_s);
}

TEST_F(PerfBehavior, TailEffectOnTinyGrids) {
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {16, 4, 4};
  // 32^3 grid: 8x8x8 = 512 blocks... use a very coarse block so only a
  // handful of blocks exist.
  cfg.block = {32, 8, 4};
  const auto small = eval_smoother(cfg, {}, 32);
  const auto big = eval_smoother(cfg, {}, 256);
  // Useful-FLOPS rate must be worse on the tiny grid (tail underutilizes).
  EXPECT_LT(small.tflops(), big.tflops());
}

class UnrollSweep : public PerfBehavior,
                    public ::testing::WithParamInterface<int> {};

TEST_P(UnrollSweep, RegistersMonotoneInUnroll) {
  const int u = GetParam();
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {16, 4, 4};
  cfg.unroll = {u, 1, 1};
  BuildOptions opts;
  opts.use_shared_memory = false;
  const auto ev = eval_smoother(cfg, opts);
  cfg.unroll = {u * 2, 1, 1};
  const auto ev2 = eval_smoother(cfg, opts);
  EXPECT_GT(ev2.regs.total, ev.regs.total) << "u=" << u;
  // And traffic per useful flop never increases with blocked unrolling.
  EXPECT_LE(static_cast<double>(ev2.counters.tex_bytes),
            static_cast<double>(ev.counters.tex_bytes) * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Pow2, UnrollSweep, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace artemis::gpumodel
