#pragma once

#include <string>

#include "artemis/common/hash.hpp"
#include "artemis/ir/program.hpp"

namespace artemis::ir {

/// Feed the canonical structural serialization of a program into `h`.
/// The serialization walks the IR directly — declarations, stencil bodies
/// (statements rendered through the expression printer), pragmas, resource
/// assignments, and the step tree — in declaration order with typed field
/// tags, so two sources that parse to the same IR hash identically no
/// matter how they were formatted, while any semantic difference (an
/// offset, a coefficient, a pragma, an iteration count) changes the digest.
void hash_program(const Program& prog, ContentHasher& h);

/// 32-hex-digit canonical content hash of a program. This is the
/// program-identity half of a plan-store key; storage::plan_store_key
/// combines it with the device spec and tuner version.
std::string content_hash(const Program& prog);

}  // namespace artemis::ir
