#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "test_programs.hpp"

namespace artemis::codegen {
namespace {

using artemis::testing::kDagDsl;
using artemis::testing::kJacobiDsl;

class PlanBuilderTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
};

TEST_F(PlanBuilderTest, JacobiDefaults) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  EXPECT_EQ(plan.name, "jacobi");
  EXPECT_EQ(plan.dims, 3);
  EXPECT_EQ(plan.domain, (Extents{16, 16, 16}));
  EXPECT_EQ(plan.radius, (std::array<int, 3>{1, 1, 1}));
  // Default heuristic: input staged in shared memory, output global.
  EXPECT_EQ(plan.placement.at("in").space, ir::MemSpace::Shared);
  EXPECT_EQ(plan.placement.at("out").space, ir::MemSpace::Global);
  EXPECT_GT(plan.shmem_bytes_per_block, 0);
}

TEST_F(PlanBuilderTest, GlobalOnlyOption) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  BuildOptions opts;
  opts.use_shared_memory = false;
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_, opts);
  EXPECT_EQ(plan.placement.at("in").space, ir::MemSpace::Global);
  EXPECT_EQ(plan.shmem_bytes_per_block, 0);
}

TEST_F(PlanBuilderTest, UserPinsAreHonored) {
  const ir::Program prog = dsl::parse(kDagDsl);
  KernelConfig cfg;
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  EXPECT_EQ(plan.placement.at("u").space, ir::MemSpace::Shared);
  EXPECT_TRUE(plan.placement.at("u").user_pinned);
  EXPECT_EQ(plan.placement.at("w").space, ir::MemSpace::Global);
  EXPECT_TRUE(plan.placement.at("w").user_pinned);
}

TEST_F(PlanBuilderTest, ShmemSizeAccountsHalo) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {8, 8, 4};
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  // in: (8+2)(8+2)(4+2) doubles.
  EXPECT_EQ(plan.shmem_bytes_per_block, 10 * 10 * 6 * 8);
}

TEST_F(PlanBuilderTest, StreamingUsesOnePlane) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {8, 8, 1};
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  EXPECT_EQ(plan.shmem_bytes_per_block, 10 * 10 * 8);
}

TEST_F(PlanBuilderTest, RationingDemotesLeastAccessed) {
  // Two inputs: `a` read at 7 order-2 offsets, `b` read once. With a full
  // occupancy target the shared-memory budget per block is 16KB: both
  // buffers (~15.4KB + 4KB) do not fit, so the least-accessed `b` must be
  // demoted to global memory.
  const char* src = R"(
    parameter L=64, M=64, N=64;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    copyin a, b;
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i] + A[k][j][i+2] + A[k][j][i-2] + A[k][j+2][i]
                 + A[k][j-2][i] + A[k+2][j][i] + A[k-2][j][i] + B[k][j][i];
    }
    s (o, a, b);
    copyout o;
  )";
  const ir::Program prog = dsl::parse(src);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {16, 8, 4};
  cfg.target_occupancy = 1.0;
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  EXPECT_EQ(plan.placement.at("b").space, ir::MemSpace::Global);
  EXPECT_EQ(plan.placement.at("a").space, ir::MemSpace::Shared);
}

TEST_F(PlanBuilderTest, OverCapacityWithoutTargetIsInfeasible) {
  // Without an occupancy target the builder does not silently demote:
  // over-capacity mappings are infeasible (Section II-B1's complaint).
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  cfg.block = {32, 32, 1};
  cfg.unroll = {2, 1, 8};  // 64 x 32 x 8 tile: way over 48KB if staged
  EXPECT_THROW(build_plan_for_call(prog, prog.steps[0].call, cfg, dev_),
               PlanError);
}

TEST_F(PlanBuilderTest, RationingRespectsDeviceCapacity) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  cfg.block = {32, 32, 1};
  cfg.unroll = {2, 1, 8};
  cfg.target_occupancy = 0.1;  // rationing enabled: demote to fit
  const KernelPlan plan =
      build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  EXPECT_LE(plan.shmem_bytes_per_block, dev_.shmem_per_block);
}

TEST_F(PlanBuilderTest, FusedDagInternalArrays) {
  const ir::Program prog = dsl::parse(kDagDsl);
  std::vector<ir::BoundStencil> stages;
  stages.push_back(ir::bind_call(prog, prog.steps[0].call, "s0_"));
  stages.push_back(ir::bind_call(prog, prog.steps[1].call, "s1_"));
  KernelConfig cfg;
  const KernelPlan plan = build_plan(prog, std::move(stages), cfg, dev_);
  ASSERT_EQ(plan.internal_arrays, (std::vector<std::string>{"tmp"}));
  EXPECT_TRUE(plan.materialized_internals.empty());
  // Combined radius: blurx reads x+-1, blury reads y+-1; fused halo 1,1.
  EXPECT_EQ(plan.radius[0], 1);
  EXPECT_EQ(plan.radius[1], 1);
  EXPECT_EQ(plan.radius[2], 0);
  // Stage 0 must expand by stage 1's radius.
  EXPECT_EQ(plan.stage_expand[0], (std::array<int, 3>{0, 1, 0}));
  EXPECT_EQ(plan.stage_expand[1], (std::array<int, 3>{0, 0, 0}));
  // tmp is consumed at y+-1 from an expanded region.
  EXPECT_EQ(plan.eff_halo.at("tmp"), (std::array<int, 3>{0, 1, 0}));
  // u is read by stage 0 (radius x=1) which is expanded by (0,1,0).
  EXPECT_EQ(plan.eff_halo.at("u"), (std::array<int, 3>{1, 1, 0}));
}

TEST_F(PlanBuilderTest, MaterializedInternalWhenCopyout) {
  const char* src = R"(
    parameter N=16;
    iterator i;
    double a[N], t[N], o[N];
    copyin a;
    stencil s1 (T, A) { T[i] = A[i-1] + A[i+1]; }
    stencil s2 (O, T) { O[i] = T[i] * 2.0; }
    s1 (t, a);
    s2 (o, t);
    copyout o, t;
  )";
  const ir::Program prog = dsl::parse(src);
  std::vector<ir::BoundStencil> stages;
  stages.push_back(ir::bind_call(prog, prog.steps[0].call));
  stages.push_back(ir::bind_call(prog, prog.steps[1].call));
  KernelConfig cfg;
  const KernelPlan plan = build_plan(prog, std::move(stages), cfg, dev_);
  EXPECT_EQ(plan.materialized_internals, (std::vector<std::string>{"t"}));
}

TEST_F(PlanBuilderTest, PragmaDerivedConfig) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  const KernelConfig cfg =
      config_from_pragma(prog, prog.stencils[0].pragma, 3);
  EXPECT_EQ(cfg.tiling, TilingScheme::StreamSerial);
  EXPECT_EQ(cfg.stream_axis, 2);  // streams iterator k = axis z
  EXPECT_EQ(cfg.block, (std::array<int, 3>{32, 16, 1}));
  EXPECT_EQ(cfg.unroll, (std::array<int, 3>{1, 2, 1}));  // unroll j=2
}

TEST_F(PlanBuilderTest, RejectsOversizedBlock) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  cfg.block = {64, 64, 1};  // 4096 threads
  EXPECT_THROW(build_plan_for_call(prog, prog.steps[0].call, cfg, dev_),
               PlanError);
}

TEST_F(PlanBuilderTest, RejectsZeroBlock) {
  const ir::Program prog = dsl::parse(kJacobiDsl);
  KernelConfig cfg;
  cfg.block = {0, 1, 1};
  EXPECT_THROW(build_plan_for_call(prog, prog.steps[0].call, cfg, dev_),
               PlanError);
}

TEST_F(PlanBuilderTest, TimeTileTenFusedJacobiStagesShrinkShmem) {
  // Fusing two jacobi applications: the intermediate becomes internal.
  const char* src = R"(
    parameter L=16, M=16, N=16;
    iterator k, j, i;
    double in[L,M,N], mid[L,M,N], out[L,M,N], c;
    copyin in, c;
    stencil j1 (B, A, c) {
      B[k][j][i] = c * (A[k][j][i+1] + A[k][j][i-1] + A[k][j+1][i]
        + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i] + A[k][j][i]);
    }
    j1 (mid, in, c);
    j1 (out, mid, c);
    copyout out;
  )";
  const ir::Program prog = dsl::parse(src);
  std::vector<ir::BoundStencil> stages;
  stages.push_back(ir::bind_call(prog, prog.steps[0].call, "a_"));
  stages.push_back(ir::bind_call(prog, prog.steps[1].call, "b_"));
  KernelConfig cfg;
  const KernelPlan plan = build_plan(prog, std::move(stages), cfg, dev_);
  EXPECT_EQ(plan.internal_arrays, (std::vector<std::string>{"mid"}));
  EXPECT_EQ(plan.radius, (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(plan.eff_halo.at("in"), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(plan.eff_halo.at("mid"), (std::array<int, 3>{1, 1, 1}));
}

}  // namespace
}  // namespace artemis::codegen
