#include "artemis/robust/candidate_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "artemis/common/str.hpp"
#include "artemis/robust/fault_injection.hpp"

namespace artemis::robust {

namespace {

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::Ok: return "ok";
    case RunStatus::Infeasible: return "infeasible";
    case RunStatus::Crash: return "crash";
    case RunStatus::Timeout: return "timeout";
    case RunStatus::Unstable: return "unstable";
    case RunStatus::Quarantined: return "quarantined";
  }
  return "?";
}

CandidateRunner::CandidateRunner(const RunnerOptions& opts) : opts_(opts) {}

bool CandidateRunner::armed() const {
  return fault_injection_enabled() || opts_.trials > 1 ||
         opts_.deadline_ms > 0;
}

double CandidateRunner::effective_deadline_ms() const {
  if (opts_.deadline_ms > 0) return opts_.deadline_ms;
  // Injected stalls must be classifiable even when the caller set no
  // explicit deadline: half the stall time always trips.
  if (fault_injection_enabled()) {
    const FaultPlan* plan = current_fault_plan();
    if (plan != nullptr && plan->spec().timeout_p > 0) {
      return plan->spec().stall_ms * 0.5;
    }
  }
  return 0;
}

RunOutcome CandidateRunner::run(const char* site, const std::string& key,
                                const EvalFn& eval) {
  RunOutcome out;

  if (!armed()) {
    // Fast path: exactly the pre-resilience behavior, one evaluation and
    // one PlanError catch. No clock reads, no map lookups.
    out.attempts = 1;
    try {
      out.eval = eval();
      out.time_s = out.eval.time_s;
    } catch (const PlanError& e) {
      out.status = RunStatus::Infeasible;
      out.reason = e.what();
    }
    return out;
  }

  if (is_quarantined(key)) {
    out.status = RunStatus::Quarantined;
    out.reason = str_cat("quarantined after ", opts_.quarantine_threshold,
                         " consecutive failures");
    return out;
  }

  const double deadline_ms = effective_deadline_ms();
  RunStatus last_failure = RunStatus::Crash;
  const int max_attempts = std::max(1, opts_.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++out.retries;
      if (opts_.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                opts_.backoff_ms * static_cast<double>(1 << (attempt - 1))));
      }
    }
    ++out.attempts;
    try {
      const auto t0 = std::chrono::steady_clock::now();
      fault_point(site, key, attempt);
      // Timing trials: the fault harness may perturb individual trials;
      // the median is robust to a minority of outliers, and the relative
      // MAD decides whether this attempt's measurement is trustworthy.
      gpumodel::KernelEval ev;
      std::vector<double> times;
      const int trials = std::max(1, opts_.trials);
      for (int trial = 0; trial < trials; ++trial) {
        ev = eval();
        times.push_back(
            perturbed_time(site, key, attempt, trial, ev.time_s));
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (deadline_ms > 0 && elapsed_ms > deadline_ms) {
        throw EvalTimeout(str_cat("evaluation exceeded ", deadline_ms,
                                  " ms deadline (took ", elapsed_ms,
                                  " ms)"));
      }
      const double med = median_of(times);
      if (times.size() > 1 && med > 0) {
        std::vector<double> devs;
        for (const double t : times) devs.push_back(std::abs(t - med));
        const double mad = median_of(devs);
        if (mad / med > opts_.mad_tolerance) {
          throw MeasurementUnstable(
              str_cat("trial dispersion MAD/median = ", mad / med,
                      " exceeds tolerance ", opts_.mad_tolerance));
        }
      }
      out.status = RunStatus::Ok;
      out.eval = std::move(ev);
      out.time_s = med;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        consecutive_failures_.erase(key);
      }
      return out;
    } catch (const PlanError& e) {
      // Infeasibility is deterministic: no retry, no quarantine debit.
      out.status = RunStatus::Infeasible;
      out.reason = e.what();
      return out;
    } catch (const EvalTimeout& e) {
      last_failure = RunStatus::Timeout;
      out.reason = e.what();
    } catch (const EvalCrash& e) {
      last_failure = RunStatus::Crash;
      out.reason = e.what();
    } catch (const MeasurementUnstable& e) {
      last_failure = RunStatus::Unstable;
      out.reason = e.what();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (++consecutive_failures_[key] >= opts_.quarantine_threshold) {
        // insert() returns false for a key another shard already
        // quarantined; only the inserting call reports quarantined_now.
        out.quarantined_now = quarantined_.insert(key).second;
        break;
      }
    }
  }
  out.status = last_failure;
  return out;
}

}  // namespace artemis::robust
