// Ablations of the device-model mechanisms DESIGN.md calls out.
//
// Each ModelParams constant encodes one physical mechanism. Turning a
// mechanism off and re-running the relevant experiment shows which paper
// observation that mechanism carries -- i.e., the model is not a black
// box: each qualitative result is attributable.
//
//   A1 stream_halo_l2_hit  -> "global-stream worse than global" (VIII-F)
//   A2 overlap_stream_*    -> the benefit of prefetching (III-A4)
//   A3 spill_*             -> the fission advantage on rhs4sgcurv (VIII-D)
//   A4 *_persp_halo_waste  -> thread-block load/compute adjustment (III-B3)

#include <cstdio>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/transform/fission.hpp"

using namespace artemis;

namespace {

double ratio_stream_vs_global(const gpumodel::ModelParams& params) {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("7pt-smoother");
  const auto g = driver::optimize_program(prog, dev, params,
                                          driver::global_strategy(false));
  const auto s = driver::optimize_program(prog, dev, params,
                                          driver::global_strategy(true));
  return s.tflops / g.tflops;
}

double prefetch_speedup(const gpumodel::ModelParams& params) {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("7pt-smoother");
  codegen::KernelConfig cfg;
  cfg.tiling = codegen::TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {32, 16, 1};
  const auto& call = prog.steps[0].body[0].call;
  const auto base = gpumodel::evaluate(
      codegen::build_plan_for_call(prog, call, cfg, dev), dev, params);
  cfg.prefetch = true;
  const auto pf = gpumodel::evaluate(
      codegen::build_plan_for_call(prog, call, cfg, dev), dev, params);
  return base.time_s / pf.time_s;
}

double fission_speedup(const gpumodel::ModelParams& params) {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("rhs4sgcurv");
  driver::Strategy fused = driver::artemis_strategy();
  fused.allow_fission = false;
  const auto mono = driver::optimize_program(prog, dev, params, fused);
  driver::Strategy sub = driver::artemis_strategy();
  sub.allow_dag_fusion = false;
  sub.allow_fission = false;
  const auto split = driver::optimize_program(
      transform::trivial_fission(prog, "rhs4sgcurv"), dev, params, sub);
  return split.tflops / mono.tflops;
}

/// Extra texture traffic of the Output perspective relative to Mixed
/// (isolates the boundary-coalescing waste from the occupancy effect).
double perspective_tex_ratio(const gpumodel::ModelParams& params) {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("hypterm");
  codegen::KernelConfig cfg;
  cfg.tiling = codegen::TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {16, 8, 1};
  const auto& call = prog.steps[0].call;
  const auto out = gpumodel::evaluate(
      codegen::build_plan_for_call(prog, call, cfg, dev), dev, params);
  cfg.perspective = codegen::Perspective::Mixed;
  const auto mixed = gpumodel::evaluate(
      codegen::build_plan_for_call(prog, call, cfg, dev), dev, params);
  return static_cast<double>(out.counters.tex_bytes) /
         static_cast<double>(mixed.counters.tex_bytes);
}

}  // namespace

int main() {
  const gpumodel::ModelParams def;

  TablePrinter table({"ablation", "metric", "default", "ablated",
                      "mechanism carries the effect?"});

  {
    gpumodel::ModelParams ab = def;
    ab.stream_halo_l2_hit = ab.spatial_halo_l2_hit;  // streaming halos hit
    const double d = ratio_stream_vs_global(def);
    const double a = ratio_stream_vs_global(ab);
    table.add_row({"A1 stream halo misses", "stream/global TFLOPS",
                   format_double(d, 3), format_double(a, 3),
                   d < 1.0 && a > d ? "yes" : "NO"});
  }
  {
    gpumodel::ModelParams ab = def;
    ab.overlap_stream_pf = ab.overlap_stream_nopf;  // prefetch overlaps off
    const double d = prefetch_speedup(def);
    const double a = prefetch_speedup(ab);
    table.add_row({"A2 prefetch overlap", "prefetch speedup",
                   format_double(d, 3), format_double(a, 3),
                   d > 1.02 && a <= 1.001 ? "yes" : "NO"});
  }
  {
    gpumodel::ModelParams ab = def;
    ab.spill_sector_waste = 1.0;
    ab.spill_compute_drag = 0.0;
    ab.spill_dram_fraction = 0.0;
    const double d = fission_speedup(def);
    const double a = fission_speedup(ab);
    table.add_row({"A3 spill penalties", "fission speedup",
                   format_double(d, 3), format_double(a, 3),
                   d > 1.5 && a < d ? "yes" : "NO"});
  }
  {
    gpumodel::ModelParams ab = def;
    ab.output_persp_halo_waste = 1.0;
    ab.mixed_persp_halo_waste = 1.0;
    const double d = perspective_tex_ratio(def);
    const double a = perspective_tex_ratio(ab);
    table.add_row({"A4 boundary coalescing", "output/mixed tex bytes",
                   format_double(d, 3), format_double(a, 3),
                   d > 1.02 && a < d ? "yes" : "NO"});
  }

  std::printf("Model-mechanism ablations\n\n%s\n", table.to_string().c_str());
  std::printf(
      "Each row disables one ModelParams mechanism and re-measures the\n"
      "paper observation it is responsible for: the effect must shrink or\n"
      "vanish under ablation (an attribution check on the device model).\n");
  return 0;
}
