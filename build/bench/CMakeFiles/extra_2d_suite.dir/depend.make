# Empty dependencies file for extra_2d_suite.
# This may be replaced when dependencies are built.
