# Empty compiler generated dependencies file for expert_guidance.
# This may be replaced when dependencies are built.
