#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "artemis/common/grid.hpp"
#include "artemis/ir/analysis.hpp"

namespace artemis::codegen {

/// How the output domain is tiled across thread blocks (Section III).
enum class TilingScheme {
  Spatial3D,         ///< tile every dimension; one thread per output point
  StreamSerial,      ///< tile all-but-one dimension; block sweeps the rest
  StreamConcurrent,  ///< overlap-tile every dimension; block sweeps one tile
};

/// Thread block load/compute adjustment (Section III-B3).
enum class Perspective {
  Output,  ///< block = output tile; boundary threads load extra halo
  Input,   ///< block = input tile (halo included); halo threads idle later
  Mixed,   ///< by x (bx + 2k): full warps in x, no idle rows in y
};

/// Work distribution for unrolled threads (Section III-A3).
enum class UnrollStrategy {
  Cyclic,   ///< lane i computes points m+i, m+32+i, ...
  Blocked,  ///< lane i computes points m+u*i .. m+u*i+u-1 (register reuse)
};

const char* tiling_name(TilingScheme t);
const char* perspective_name(Perspective p);
const char* unroll_strategy_name(UnrollStrategy u);

/// The tunable knobs explored by the autotuner. Axis convention throughout
/// planning: index 0 = x (innermost / fastest-varying iterator),
/// 1 = y, 2 = z (outermost). A 2D program uses axes {0,1}; 1D uses {0}.
struct KernelConfig {
  std::array<int, 3> block = {32, 4, 4};   ///< threads per axis
  std::array<int, 3> unroll = {1, 1, 1};   ///< per-axis unroll factors
  TilingScheme tiling = TilingScheme::Spatial3D;
  int stream_axis = 2;                     ///< swept axis when streaming
  Perspective perspective = Perspective::Output;
  UnrollStrategy unroll_strategy = UnrollStrategy::Blocked;
  /// StreamConcurrent only: length of the swept chunk along the stream
  /// axis owned by one block (the z-tile of concurrent streaming).
  int stream_chunk = 64;
  bool prefetch = false;       ///< streaming prefetch registers (III-A4)
  bool retime = false;         ///< request decomposition + retiming (III-B2)
  bool fold = false;           ///< request storage/computation folding (III-B4)
  int max_registers = 255;     ///< -maxrregcount compiler budget
  int time_tile = 1;           ///< fusion degree for iterative stencils
  std::optional<double> target_occupancy;  ///< resource rationing (II-B2)

  std::int64_t threads_per_block() const {
    return static_cast<std::int64_t>(block[0]) * block[1] * block[2];
  }
  std::int64_t unroll_product() const {
    return static_cast<std::int64_t>(unroll[0]) * unroll[1] * unroll[2];
  }
  std::string to_string() const;
};

/// Residency of one array inside the generated kernel.
struct Placement {
  ir::MemSpace space = ir::MemSpace::Global;
  int fold_group = -1;  ///< >= 0: member of a folded buffer group
  bool user_pinned = false;  ///< came from #assign (resource mapper must obey)
};

/// A fully-resolved GPU kernel: one or more fused stencil stages plus every
/// decision needed to emit CUDA and to evaluate performance. Produced by
/// PlanBuilder, consumed by the CUDA emitter, the performance model, and
/// the functional executor.
struct KernelPlan {
  std::string name;
  std::vector<ir::BoundStencil> stages;  ///< in dependence order
  ir::StencilInfo info;                  ///< merged analysis over stages
  KernelConfig config;

  Extents domain;                  ///< full output domain (z, y, x)
  int dims = 3;                    ///< spatial dimensionality (1..3)
  std::array<int, 3> radius = {0, 0, 0};  ///< halo radius per axis (x,y,z)

  std::map<std::string, Placement> placement;  ///< resolved residency
  std::vector<std::vector<std::string>> fold_groups;

  bool retimed = false;   ///< retiming was legal and applied
  int time_tile = 1;      ///< applied fusion degree (== config.time_tile)

  /// Per-stage FLOPs per computed point.
  std::vector<std::int64_t> stage_flops;
  /// Per-stage read radius, per axis (x,y,z).
  std::vector<std::array<int, 3>> stage_radius;
  /// Per-stage overlapped-tiling expansion, per axis: how far beyond the
  /// output tile this stage must compute so that all later stages can
  /// consume it (sum of downstream radii). Zero for the final stage.
  std::vector<std::array<int, 3>> stage_expand;
  /// Per-array effective halo, per axis: the distance beyond the output
  /// tile from which the array is read, including fused recompute
  /// expansion. Drives buffer sizing and redundant-load counts.
  std::map<std::string, std::array<int, 3>> eff_halo;

  /// Names of arrays that are stage outputs consumed by later stages in
  /// the same plan (kept in shared memory / registers between stages).
  std::vector<std::string> internal_arrays;
  /// Internal arrays that are also program outputs (copyout): their owned
  /// tile must additionally be written back to global memory.
  std::vector<std::string> materialized_internals;

  /// Shared memory consumed per block, derived by the resource mapper.
  std::int64_t shmem_bytes_per_block = 0;

  /// Iterator names of the source program (outermost first), for emission.
  std::vector<std::string> iterators;

  /// Axis (0=x,1=y,2=z) for a program iterator index (0=outermost).
  int axis_of_iter(int iter_index) const { return dims - 1 - iter_index; }

  /// Number of thread blocks launched over the whole domain.
  std::int64_t num_blocks() const;
  /// Output tile extent per block along an axis (block * unroll).
  std::int64_t tile_extent(int axis) const;
  /// Domain extent along an axis.
  std::int64_t domain_extent(int axis) const {
    switch (axis) {
      case 0: return domain.x;
      case 1: return domain.y;
      default: return domain.z;
    }
  }
};

}  // namespace artemis::codegen
