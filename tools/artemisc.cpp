// artemisc — the ARTEMIS command-line driver.
//
// Reads a stencil DSL file and runs the end-to-end pipeline of Section
// VII: baseline from the pragmas, bottleneck profiling, hierarchical
// autotuning, guideline-driven version selection, fusion scheduling for
// iterate blocks, and fission candidates under register pressure.
//
//   artemisc prog.dsl                       optimize and report
//   artemisc prog.dsl --emit-cuda           print generated CUDA
//   artemisc prog.dsl --profile             per-kernel profile reports
//   artemisc prog.dsl --run                 functional run + checksum
//   artemisc prog.dsl --strategy ppcg       use a baseline generator
//   artemisc prog.dsl --device v100         target the V100 model
//   artemisc prog.dsl --emit-candidates     print fission candidate DSL
//   artemisc prog.dsl --tuning-cache f.db   persist/reuse tuned schedules
//   artemisc prog.dsl --compare             all five generators (Fig. 5 row)
//   artemisc prog.dsl --trace t.json        Chrome/Perfetto trace of the run
//   artemisc prog.dsl --report r.json       machine-readable run report
//   artemisc prog.dsl --summary             human-readable telemetry summary
//   artemisc prog.dsl --metrics m.json      measured metrics + model-vs-
//                                           measured divergence
//   artemisc --verify                       property-based differential fuzz
//   artemisc prog.dsl --verify              verify one program only

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/baselines/baselines.hpp"
#include "artemis/codegen/cuda_emitter.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/str.hpp"
#include "artemis/driver/context.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/metrics/compare.hpp"
#include "artemis/metrics/metrics.hpp"
#include "artemis/profile/profiler.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/storage/plan_store.hpp"
#include "artemis/storage/vfs.hpp"
#include "artemis/telemetry/report.hpp"
#include "artemis/telemetry/run_sinks.hpp"
#include "artemis/telemetry/telemetry.hpp"
#include "artemis/telemetry/trace_sink.hpp"
#include "artemis/transform/fusion.hpp"
#include "artemis/verify/verify.hpp"

using namespace artemis;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <file.dsl>\n"
               "       [--strategy artemis|ppcg|stencilgen|global|"
               "global-stream]\n"
               "       [--device k40|p100|v100|a100|h100]\n"
               "       [--model-prune-k N]    analytical pre-filter: "
               "simulate only the\n"
               "                              model's top N candidates per "
               "sweep (0 = off)\n"
               "       [--emit-cuda]          print the generated CUDA\n"
               "       [--profile]            per-kernel OI/roofline report\n"
               "       [--run]                functional run + checksum\n"
               "       [--engine tree|bytecode|native]\n"
               "                              simulator engine for --run "
               "(default:\n"
               "                              bytecode; all bit-identical)\n"
               "       [--emit-candidates]    print fission candidate DSL\n"
               "       [--compare]            all five generators (Fig. 5 "
               "row)\n"
               "       [--tuning-cache file]  persist/reuse tuned schedules\n"
               "       [--store dir]          durable content-addressed plan "
               "store\n"
               "       [--journal file]       crash-safe tuning journal "
               "(WAL)\n"
               "       [--resume]             replay a prior journal before "
               "tuning\n"
               "       [--fault-spec spec]    inject faults, e.g. "
               "crash=0.2,timeout=0.05,seed=42\n"
               "                              (fs.fail/fs.enospc/fs.short/"
               "fs.crash_at hit the store)\n"
               "       [--jobs N]             tuning parallelism (default: "
               "hardware threads;\n"
               "                              same plan as --jobs 1 for "
               "any N)\n"
               "       [--trace out.json]     Chrome/Perfetto trace-event "
               "file\n"
               "       [--report out.json]    machine-readable run report\n"
               "       [--summary]            human-readable telemetry "
               "summary\n"
               "       [--metrics out.json]   measured per-stage metrics + "
               "model-vs-\n"
               "                              measured divergence (clamped "
               "domain)\n"
               "       [--verify]             property-based differential "
               "fuzzing\n"
               "                              (no <file.dsl>: random sweep; "
               "with one:\n"
               "                              verify that program only)\n"
               "       [--seed-count N]       verify: random programs to "
               "draw (50)\n"
               "       [--verify-seed S]      verify: base seed for the "
               "sweep\n"
               "       [--property name]      verify: run one family "
               "(repeatable)\n"
               "       [--corpus dir]         verify: write minimized "
               "reproducers here\n"
               "       [--no-shrink]          verify: keep failures "
               "unminimized\n",
               argv0);
  return 2;
}

/// Rebuild the plan a kernel name + config selects (for --emit-cuda,
/// --profile and --metrics; --metrics also rebuilds leaderboard runner-up
/// configs, so the config is a parameter rather than the KernelChoice).
/// When `plan_prog` is non-null it receives the program the plan's slots
/// bind against — the time-tiled augmented program for iterative
/// schedules (with its synthesized ping-pong arrays), the input program
/// otherwise — which is what grids must be allocated from to execute the
/// plan.
codegen::KernelPlan rebuild(const ir::Program& prog, const std::string& name,
                            const codegen::KernelConfig& config,
                            const gpumodel::DeviceSpec& dev,
                            ir::Program* plan_prog = nullptr) {
  // Iterative schedules synthesize their stage lists through
  // time_tile_iterate; spatial schedules bind the flat call list.
  if (prog.steps.size() == 1 &&
      prog.steps[0].kind == ir::Step::Kind::Iterate) {
    const auto tt = transform::time_tile_iterate(prog, prog.steps[0],
                                                 config.time_tile);
    if (plan_prog != nullptr) *plan_prog = tt.augmented;
    codegen::BuildOptions opts;
    opts.use_shared_memory = true;
    try {
      return codegen::build_plan(tt.augmented, tt.stages, config, dev,
                                 opts);
    } catch (const PlanError&) {
      opts.use_shared_memory = false;
      return codegen::build_plan(tt.augmented, tt.stages, config, dev,
                                 opts);
    }
  }
  if (plan_prog != nullptr) *plan_prog = prog;
  // Spatial schedules: kernels are contiguous groups of the call chain,
  // named by the joined callee names ("blurx+blury"). Find the matching
  // range and rebuild the fused plan.
  std::vector<ir::BoundStencil> bound;
  {
    int idx = 0;
    for (const auto& step : prog.steps) {
      if (step.kind != ir::Step::Kind::Call) continue;
      bound.push_back(
          ir::bind_call(prog, step.call, str_cat("f", idx++, "_")));
    }
  }
  const int n = static_cast<int>(bound.size());
  for (int i = 0; i < n; ++i) {
    std::string joined;
    for (int j = i; j < n; ++j) {
      joined += (j > i ? "+" : "") + bound[static_cast<std::size_t>(j)].name;
      if (joined != name) continue;
      std::vector<ir::BoundStencil> stages(
          bound.begin() + i, bound.begin() + j + 1);
      codegen::BuildOptions opts;
      try {
        return codegen::build_plan(prog, stages, config, dev, opts);
      } catch (const PlanError&) {
        opts.use_shared_memory = false;
        return codegen::build_plan(prog, stages, config, dev, opts);
      }
    }
  }
  throw Error(str_cat("cannot rebuild plan for kernel '", name, "'"));
}

/// The --metrics measurement domain: a copy of the program with every
/// size parameter clamped to [8, 64]. Counting-mode execution sweeps
/// every point of every stage, so paper-size domains (320^3 x 16 steps)
/// are clamped to something a CLI run measures in milliseconds; the
/// model is evaluated on the same clamped plans, so the comparison stays
/// apples-to-apples.
ir::Program clamp_metrics_domain(const ir::Program& prog) {
  ir::Program out = prog;
  for (auto& p : out.params) {
    p.value = std::max<std::int64_t>(8, std::min<std::int64_t>(p.value, 64));
  }
  return out;
}

/// Measure one kernel of the chosen schedule on the clamped domain and
/// confront it with the analytic model's prediction for the same plan.
metrics::KernelMetricsReport measure_kernel(
    const ir::Program& mprog, const driver::KernelChoice& k,
    const gpumodel::DeviceSpec& dev, const gpumodel::ModelParams& params,
    const sim::ExecOptions& base) {
  metrics::KernelMetricsReport rep;
  rep.kernel = k.name;
  rep.invocations = k.invocations;

  ir::Program plan_prog;
  const auto plan = rebuild(mprog, k.name, k.config, dev, &plan_prog);
  sim::GridSet gs = sim::GridSet::from_program(plan_prog, 1);
  rep.measured = metrics::measure_plan(plan, gs, dev, base);
  rep.predicted = gpumodel::evaluate(plan, dev, params).counters;
  rep.delta = metrics::compare_counters(rep.predicted, rep.measured);

  // Rank correlation: rerank the tuning leaderboard by measured traffic.
  // Model times are re-evaluated on the clamped plans so both rankings
  // describe the same domain.
  if (k.leaderboard.size() >= 2) {
    std::vector<double> model_times, measured_times;
    for (const auto& cand : k.leaderboard) {
      codegen::KernelConfig cfg = cand.config;
      cfg.time_tile = k.config.time_tile;
      try {
        ir::Program cprog;
        const auto cplan = rebuild(mprog, k.name, cfg, dev, &cprog);
        const auto ev = gpumodel::evaluate(cplan, dev, params);
        if (!ev.valid) continue;
        sim::GridSet cgs = sim::GridSet::from_program(cprog, 1);
        const auto pm = metrics::measure_plan(cplan, cgs, dev, base);
        metrics::RankEntry e;
        e.config = autotune::serialize_config(cfg);
        e.model_time_s = ev.time_s;
        e.measured_time_s = metrics::measured_roofline_s(pm, dev);
        model_times.push_back(e.model_time_s);
        measured_times.push_back(e.measured_time_s);
        rep.ranking.push_back(std::move(e));
      } catch (const PlanError&) {
        // A runner-up that cannot build on the clamped domain drops out
        // of the ranking (it was feasible on the full domain only).
      }
    }
    if (rep.ranking.size() >= 2) {
      rep.rank_correlation = metrics::spearman(model_times, measured_times);
      rep.has_rank_correlation = true;
    }
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  std::string path;
  std::string strategy_name = "artemis";
  std::string device_name = "p100";
  std::string engine_name = "bytecode";
  std::string cache_path, store_path;
  std::string journal_path, fault_spec;
  std::string trace_path, report_path, metrics_path;
  bool emit_cuda = false, profile = false, run = false, candidates = false;
  bool compare = false, summary = false, resume = false;
  bool verify_mode = false;
  verify::VerifyOptions vopts;
  int jobs = 0;  // 0 = hardware concurrency; the plan is jobs-invariant
  int model_prune_k = -1;  // < 0 = keep the strategy's default

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strategy" && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (arg == "--device" && i + 1 < argc) {
      device_name = argv[++i];
    } else if (arg == "--emit-cuda") {
      emit_cuda = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--run") {
      run = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (arg == "--emit-candidates") {
      candidates = true;
    } else if (arg == "--tuning-cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--journal" && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--fault-spec" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      try {
        jobs = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        jobs = -1;
      }
      if (jobs < 1) {
        std::fprintf(stderr, "artemisc: --jobs expects an integer >= 1\n");
        return 2;
      }
    } else if (arg == "--model-prune-k" && i + 1 < argc) {
      try {
        model_prune_k = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        model_prune_k = -1;
      }
      if (model_prune_k < 0) {
        std::fprintf(stderr,
                     "artemisc: --model-prune-k expects an integer >= 0\n");
        return 2;
      }
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--verify") {
      verify_mode = true;
    } else if (arg == "--seed-count" && i + 1 < argc) {
      try {
        vopts.seed_count = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        vopts.seed_count = -1;
      }
      if (vopts.seed_count < 0) {
        std::fprintf(stderr, "artemisc: --seed-count expects an integer "
                             ">= 0\n");
        return 2;
      }
    } else if (arg == "--verify-seed" && i + 1 < argc) {
      try {
        vopts.base_seed = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "artemisc: --verify-seed expects an integer\n");
        return 2;
      }
    } else if (arg == "--property" && i + 1 < argc) {
      const std::string name = argv[++i];
      const auto p = verify::property_by_name(name);
      if (!p) {
        std::fprintf(stderr, "artemisc: unknown property '%s' (families:",
                     name.c_str());
        for (const auto q : verify::all_properties()) {
          std::fprintf(stderr, " %s", verify::property_name(q));
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
      vopts.properties.push_back(*p);
    } else if (arg == "--corpus" && i + 1 < argc) {
      vopts.corpus_dir = argv[++i];
    } else if (arg == "--no-shrink") {
      vopts.shrink = false;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (verify_mode) {
    try {
      verify::VerifyReport rep;
      if (path.empty()) {
        rep = verify::run_verify(vopts);
      } else {
        std::ifstream in(path);
        if (!in) throw Error(str_cat("cannot open '", path, "'"));
        std::ostringstream buf;
        buf << in.rdbuf();
        rep = verify::verify_program(dsl::parse(buf.str()), vopts);
      }
      std::printf("%s", rep.summary().c_str());
      return rep.ok() ? 0 : 1;
    } catch (const Error& e) {
      std::fprintf(stderr, "artemisc: error: %s\n", e.what());
      return 1;
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "artemisc: --resume requires --journal <file>\n");
    return 2;
  }

  // Sinks with scope-exit flushing: a run that throws below still leaves
  // valid (truncated but parseable) JSON at every requested path, marked
  // "completed": false. Constructing the sinks enables telemetry when
  // any sink asked for it.
  telemetry::RunSinks sinks(
      {trace_path, report_path, metrics_path, summary});

  try {
    std::ifstream in(path);
    if (!in) throw Error(str_cat("cannot open '", path, "'"));
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();

    const auto dev = driver::device_by_name(device_name);
    const gpumodel::ModelParams params;
    auto strat = driver::strategy_by_name(strategy_name);
    if (model_prune_k >= 0) strat.tune.model_prune_k = model_prune_k;

    // Tuning parallelism. 0 resolves to hardware concurrency; the chosen
    // plan is identical for every value (deterministic ordered commit),
    // so --jobs only changes wall-clock time.
    set_default_jobs(jobs);

    // --metrics reranks the tuning leaderboard by measured traffic; keep
    // enough runners-up around for the rank correlation to mean
    // something.
    if (!metrics_path.empty()) {
      strat.tune.top_k = std::max(strat.tune.top_k, 10);
    }

    // Fault injection: the CLI flag overrides any ARTEMIS_FAULT_SPEC the
    // environment installed at process start.
    if (!fault_spec.empty()) {
      robust::install_fault_plan(robust::parse_fault_spec(fault_spec));
      std::printf("fault injection armed: %s\n", fault_spec.c_str());
    }

    // Every durable artifact (plan store, tuning cache, journal) writes
    // through one Vfs. When the installed fault plan carries fs.* keys,
    // that Vfs injects filesystem faults deterministically.
    storage::Vfs* vfs = &storage::real_vfs();
    std::unique_ptr<storage::FaultVfs> fault_vfs;
    if (const robust::FaultPlan* plan = robust::current_fault_plan();
        plan != nullptr && plan->spec().any_fs_faults()) {
      fault_vfs =
          std::make_unique<storage::FaultVfs>(storage::real_vfs(),
                                              plan->spec());
      vfs = fault_vfs.get();
      std::printf("fs fault injection armed\n");
    }

    // The pipeline proper lives in the reentrant ArtemisContext library
    // (docs/SERVICE.md): it owns the tuning cache, the plan store and
    // the Vfs binding, and artemisd drives the very same API — so a
    // daemon-served plan is byte-identical to this one-shot run.
    driver::ContextOptions copts;
    copts.device = dev;
    copts.params = params;
    copts.strategy = strat;
    copts.jobs = jobs;
    copts.vfs = vfs;
    copts.store_root = store_path;
    copts.cache_path = cache_path;
    copts.engine = sim::engine_by_name(engine_name);
    driver::ArtemisContext ctx(copts);
    const int resolved_jobs = ctx.resolved_jobs();
    sinks.set_meta({path, strat.name, dev.name, resolved_jobs,
                    sim::engine_name(copts.engine)});

    if (compare) {
      const ir::Program prog = ctx.compile(source).program;
      const auto row =
          baselines::compare_generators(path, prog, dev, params);
      std::printf("%-16s %10s %10s\n", "generator", "TFLOPS", "time(ms)");
      for (const auto& g : row.generators) {
        if (g.result) {
          std::printf("%-16s %10.4f %10.4f\n", g.generator.c_str(),
                      g.tflops(), g.result->time_s * 1e3);
        } else {
          std::printf("%-16s %10s  (%s)\n", g.generator.c_str(), "n/a",
                      g.failure.c_str());
        }
      }
      return sinks.finalize() ? 0 : 1;
    }

    std::printf("artemisc: %s, strategy=%s, device=%s, jobs=%d\n",
                path.c_str(), strat.name.c_str(), dev.name.c_str(),
                resolved_jobs);

    // Tuning cache: keyed by source hash + strategy + device so a cached
    // schedule is only reused for the exact same input. The context
    // loaded it at construction; report how that went.
    if (!cache_path.empty()) {
      const auto& cl = ctx.cache_load();
      if (cl.status == autotune::CacheLoadReport::Status::IoError) {
        std::fprintf(stderr,
                     "artemisc: warning: tuning cache '%s' is unreadable; "
                     "continuing without cached schedules\n",
                     cache_path.c_str());
      } else if (cl.skipped > 0) {
        std::fprintf(stderr,
                     "artemisc: warning: tuning cache '%s': skipped %d "
                     "corrupt row(s) (%d crc, %d torn, %d version, %d "
                     "malformed), loaded %d\n",
                     cache_path.c_str(), cl.skipped, cl.crc_mismatch,
                     cl.torn_tail, cl.version_skew, cl.malformed,
                     cl.loaded);
      }
    }

    // The full pipeline: parse, key, consult the store, tune (journaled
    // when --journal was given), publish. The one-shot CLI reports store
    // hits but still re-optimizes (reuse_stored_plan stays false).
    driver::TuneRequest treq;
    treq.journal_path = journal_path;
    treq.resume = resume;
    const driver::TuneOutcome outcome = ctx.tune(source, treq);
    const ir::Program& prog = outcome.compile.program;
    const driver::ProgramResult& r = outcome.result;
    sinks.set_result(r);

    if (!journal_path.empty()) {
      const auto& jl = outcome.journal_load;
      using JStatus = robust::JournalLoadResult::Status;
      if (jl.status == JStatus::Replayed) {
        std::printf("journal: replaying %zu record(s) from %s%s%s\n",
                    jl.replayed, journal_path.c_str(),
                    jl.torn_tail ? ", healed a torn final line" : "",
                    jl.skipped > 0 ? ", skipped malformed lines" : "");
      } else if (!jl.message.empty()) {
        std::printf("journal: %s; starting fresh\n", jl.message.c_str());
      }
    }

    if (!cache_path.empty() && outcome.cache_hit.has_value()) {
      std::printf(
          "tuning cache hit (%s): reusing %s\n", cache_path.c_str(),
          autotune::serialize_config(outcome.cache_hit->config).c_str());
    }

    if (!store_path.empty()) {
      if (outcome.stored.has_value()) {
        std::printf("plan store hit (%s): %s @ %.4f TFLOPS\n",
                    store_path.c_str(), outcome.stored->config.c_str(),
                    outcome.stored->tflops);
      } else {
        std::printf("plan store miss (%s): key %s\n", store_path.c_str(),
                    outcome.compile.plan_key.c_str());
      }
    }

    if (outcome.journal_active) {
      std::printf("journal: %zu record(s) appended, %zu replayed\n",
                  outcome.journal_recorded, outcome.journal_replayed);
    }

    if (outcome.cache_saved) {
      std::printf("tuning cache updated: %s (%zu entries)\n",
                  cache_path.c_str(), ctx.cache().size());
    }

    if (outcome.store_put == driver::TuneOutcome::StorePut::Ok) {
      std::printf(
          "plan store updated: %s/objects/%s/%s.plan\n", store_path.c_str(),
          storage::PlanStore::shard_of(outcome.compile.plan_key).c_str(),
          outcome.compile.plan_key.c_str());
    } else if (outcome.store_put == driver::TuneOutcome::StorePut::Failed) {
      std::fprintf(stderr,
                   "artemisc: warning: plan store put failed; the "
                   "previous plan (if any) is intact\n");
    }

    std::printf("\nschedule: %d launch(es), %.4f ms, %.4f TFLOPS\n",
                r.kernel_launches, r.time_s * 1e3, r.tflops);
    for (const auto& k : r.kernels) {
      std::printf("  %-18s x%-3d %9.4f ms  occ %.2f  %s\n", k.name.c_str(),
                  k.invocations, k.eval.time_s * 1e3,
                  k.eval.occupancy.fraction, k.config.to_string().c_str());
    }
    if (!r.fusion_schedule.empty()) {
      std::string sched;
      for (const int x : r.fusion_schedule) sched += str_cat(" ", x);
      std::printf("fusion schedule:%s\n", sched.c_str());
    }
    for (const auto& h : r.hints) std::printf("hint: %s\n", h.c_str());

    if (profile || emit_cuda) {
      for (const auto& k : r.kernels) {
        const auto plan = rebuild(prog, k.name, k.config, dev);
        if (profile) {
          const auto rep = profile::profile_plan(plan, dev, params);
          std::printf("\n[%s] %s\n", k.name.c_str(),
                      rep.summary().c_str());
        }
        if (emit_cuda) {
          std::printf("\n// ==== %s ====\n%s", k.name.c_str(),
                      codegen::emit_cuda(prog, plan).full().c_str());
        }
      }
    }

    if (candidates) {
      if (r.candidate_dsl.empty()) {
        std::printf("\nno fission candidates were generated\n");
      }
      for (std::size_t i = 0; i < r.candidate_dsl.size(); ++i) {
        std::printf("\n// ---- fission candidate %zu ----\n%s", i,
                    r.candidate_dsl[i].c_str());
      }
    }

    if (!metrics_path.empty()) {
      // Execution observatory: run every chosen kernel in counting mode
      // on the clamped domain, replay its line stream through the L2
      // cache simulation, and confront the measurements with the
      // analytic model (docs/OBSERVABILITY.md).
      const ir::Program mprog = clamp_metrics_domain(prog);
      std::vector<metrics::KernelMetricsReport> kernel_reports;
      std::printf("\nmetrics (domain clamped to [8, 64] per axis):\n");
      for (const auto& k : r.kernels) {
        try {
          auto rep = measure_kernel(mprog, k, dev, params, {});
          std::printf("%s", metrics::comparison_table(rep).c_str());
          kernel_reports.push_back(std::move(rep));
        } catch (const Error& e) {
          std::fprintf(stderr,
                       "artemisc: warning: cannot measure kernel '%s' on "
                       "the clamped domain: %s\n",
                       k.name.c_str(), e.what());
        }
      }
      sinks.set_metrics(
          metrics::metrics_json(path, strat.name, dev.name, kernel_reports));
    }

    if (run) {
      // Functional run of per-step plans against the reference
      // interpreter, via the same library call artemisd serves.
      const auto ro = ctx.run(source);
      std::printf("\nfunctional run:\n");
      for (const auto& check : ro.checks) {
        std::printf("  %-10s checksum %.10g  max|diff vs reference| %g\n",
                    check.array.c_str(), check.checksum,
                    check.max_abs_diff);
      }
    }

    if (!sinks.finalize()) return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "artemisc: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
