#include "artemis/telemetry/trace_sink.hpp"

#include <algorithm>
#include <fstream>

#include "artemis/common/str.hpp"

namespace artemis::telemetry {

namespace {

Json args_object(const std::vector<Attr>& attrs) {
  Json obj = Json::object();
  for (const auto& a : attrs) obj.set(a.key, a.value);
  return obj;
}

std::string format_ns(std::int64_t ns) {
  if (ns >= 1'000'000'000) {
    return str_cat(format_double(static_cast<double>(ns) / 1e9, 4), " s");
  }
  if (ns >= 1'000'000) {
    return str_cat(format_double(static_cast<double>(ns) / 1e6, 4), " ms");
  }
  return str_cat(format_double(static_cast<double>(ns) / 1e3, 4), " us");
}

}  // namespace

Json chrome_trace(const std::vector<Event>& events,
                  const std::map<std::string, std::int64_t>& counters) {
  Json arr = Json::array();
  std::int64_t last_ts_ns = 0;
  for (const Event& ev : events) {
    Json rec = Json::object();
    rec.set("name", ev.name);
    rec.set("cat", ev.cat);
    rec.set("ph", ev.phase == Event::Phase::Complete ? "X" : "i");
    rec.set("ts", static_cast<double>(ev.ts_ns) / 1e3);
    if (ev.phase == Event::Phase::Complete) {
      rec.set("dur", static_cast<double>(ev.dur_ns) / 1e3);
    } else {
      rec.set("s", "t");  // instant scope: thread
    }
    rec.set("pid", 1);
    rec.set("tid", ev.tid);
    if (!ev.args.empty()) rec.set("args", args_object(ev.args));
    arr.push_back(std::move(rec));
    last_ts_ns = std::max(last_ts_ns, ev.ts_ns + ev.dur_ns);
  }
  for (const auto& [name, value] : counters) {
    Json rec = Json::object();
    rec.set("name", name);
    rec.set("cat", "counter");
    rec.set("ph", "C");
    rec.set("ts", static_cast<double>(last_ts_ns) / 1e3);
    rec.set("pid", 1);
    rec.set("tid", 0);
    Json args = Json::object();
    args.set("value", value);
    rec.set("args", std::move(args));
    arr.push_back(std::move(rec));
  }
  return arr;
}

std::string summary_text(const std::vector<Event>& events,
                         const std::map<std::string, std::int64_t>& counters) {
  std::string out = "telemetry summary\n";

  // Group by thread, preserving the time-sorted order within each.
  std::vector<int> tids;
  for (const Event& ev : events) {
    if (std::find(tids.begin(), tids.end(), ev.tid) == tids.end()) {
      tids.push_back(ev.tid);
    }
  }
  for (const int tid : tids) {
    out += str_cat("thread ", tid, ":\n");
    // Nesting depth from an explicit stack of span end times.
    std::vector<std::int64_t> ends;
    for (const Event& ev : events) {
      if (ev.tid != tid) continue;
      while (!ends.empty() && ev.ts_ns >= ends.back()) ends.pop_back();
      std::string line(2 * (ends.size() + 1), ' ');
      line += ev.name;
      if (ev.phase == Event::Phase::Complete) {
        line += str_cat("  ", format_ns(ev.dur_ns));
        ends.push_back(ev.ts_ns + ev.dur_ns);
      } else {
        line += "  (instant)";
      }
      for (const auto& a : ev.args) {
        line += str_cat("  ", a.key, "=", a.value.dump());
      }
      out += line + "\n";
    }
  }

  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      out += str_cat("  ", name, " = ", value, "\n");
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace artemis::telemetry
