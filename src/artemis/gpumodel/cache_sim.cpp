#include "artemis/gpumodel/cache_sim.hpp"

#include "artemis/common/check.hpp"

namespace artemis::gpumodel {

CacheSim::CacheSim(std::int64_t capacity_bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  ARTEMIS_CHECK(capacity_bytes > 0 && line_bytes > 0 && ways > 0);
  ARTEMIS_CHECK_MSG((line_bytes & (line_bytes - 1)) == 0,
                    "line size must be a power of two");
  const std::int64_t lines = capacity_bytes / line_bytes;
  num_sets_ = static_cast<std::size_t>(lines / ways);
  if (num_sets_ == 0) num_sets_ = 1;
  ways_storage_.assign(num_sets_ * static_cast<std::size_t>(ways_), Way{});
}

bool CacheSim::access(std::uint64_t addr) {
  ++clock_;
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t set = static_cast<std::size_t>(line) % num_sets_;
  Way* base = &ways_storage_[set * static_cast<std::size_t>(ways_)];

  Way* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.last_use = clock_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = line;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

void CacheSim::reset() {
  for (auto& w : ways_storage_) w = Way{};
  clock_ = 0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace artemis::gpumodel
