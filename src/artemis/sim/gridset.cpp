#include "artemis/sim/gridset.hpp"

#include <algorithm>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::sim {

Extents extents_of(const ir::Program& prog, const ir::ArrayDecl& decl) {
  std::array<std::int64_t, 3> zyx = {1, 1, 1};
  const std::size_t nd = decl.dims.size();
  ARTEMIS_CHECK(nd >= 1 && nd <= 3);
  for (std::size_t d = 0; d < nd; ++d) {
    zyx[3 - nd + d] = prog.param_value(decl.dims[d]);
  }
  return {zyx[0], zyx[1], zyx[2]};
}

GridSet GridSet::from_program(const ir::Program& prog, std::uint64_t seed) {
  GridSet gs;
  Rng rng(seed);
  const auto is_copyin = [&prog](const std::string& name) {
    return std::find(prog.copyin.begin(), prog.copyin.end(), name) !=
           prog.copyin.end();
  };
  for (const auto& decl : prog.arrays) {
    auto grid = std::make_shared<Grid3D>(extents_of(prog, decl), 0.0);
    if (is_copyin(decl.name)) {
      for (auto& v : grid->raw()) v = rng.uniform(-1.0, 1.0);
    }
    gs.grids_[decl.name] = std::move(grid);
  }
  for (const auto& s : prog.scalars) {
    gs.scalars_[s.name] = is_copyin(s.name) ? rng.uniform(0.5, 1.5) : 0.0;
  }
  return gs;
}

Grid3D& GridSet::grid(const std::string& name) {
  const auto it = grids_.find(name);
  ARTEMIS_CHECK_MSG(it != grids_.end(), "no grid named '" << name << "'");
  return *it->second;
}

const Grid3D& GridSet::grid(const std::string& name) const {
  const auto it = grids_.find(name);
  ARTEMIS_CHECK_MSG(it != grids_.end(), "no grid named '" << name << "'");
  return *it->second;
}

double GridSet::scalar(const std::string& name) const {
  const auto it = scalars_.find(name);
  ARTEMIS_CHECK_MSG(it != scalars_.end(), "no scalar named '" << name << "'");
  return it->second;
}

void GridSet::add_grid(const std::string& name, Extents extents,
                       double fill) {
  ARTEMIS_CHECK_MSG(!grids_.count(name),
                    "grid '" << name << "' already exists");
  grids_[name] = std::make_shared<Grid3D>(extents, fill);
}

void GridSet::swap(const std::string& a, const std::string& b) {
  const auto ia = grids_.find(a);
  const auto ib = grids_.find(b);
  ARTEMIS_CHECK_MSG(ia != grids_.end() && ib != grids_.end(),
                    "swap of unknown grids " << a << ", " << b);
  std::swap(ia->second, ib->second);
}

void zero_boundary(Grid3D& g, std::int64_t margin) {
  const auto& e = g.extents();
  // An extent-1 axis is degenerate (the domain is flat along it, there
  // are no faces); every real axis zeroes the full margin even when that
  // covers the whole axis — silently skipping narrow axes would leave
  // callers believing a Dirichlet rim exists when it does not.
  const std::int64_t mz = e.z > 1 ? margin : 0;
  const std::int64_t my = e.y > 1 ? margin : 0;
  const std::int64_t mx = e.x > 1 ? margin : 0;
  for (std::int64_t z = 0; z < e.z; ++z) {
    for (std::int64_t y = 0; y < e.y; ++y) {
      for (std::int64_t x = 0; x < e.x; ++x) {
        const bool interior = z >= mz && z < e.z - mz && y >= my &&
                              y < e.y - my && x >= mx && x < e.x - mx;
        if (!interior) g.at(z, y, x) = 0.0;
      }
    }
  }
}

GridSet GridSet::clone() const {
  GridSet out;
  for (const auto& [name, grid] : grids_) {
    out.grids_[name] = std::make_shared<Grid3D>(*grid);
  }
  out.scalars_ = scalars_;
  return out;
}

}  // namespace artemis::sim
