// The execution observatory: counting-mode measurement, the cache-replay
// mappings, the model-vs-measured comparator, Spearman rank correlation,
// and the deterministic-observability contract (measurement and the
// search-event stream must not perturb results or journals at any jobs
// value).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/metrics/compare.hpp"
#include "artemis/metrics/metrics.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "artemis/telemetry/telemetry.hpp"
#include "test_programs.hpp"

namespace artemis::metrics {
namespace {

using codegen::KernelConfig;

// ---- spearman -------------------------------------------------------------

TEST(Spearman, PerfectAgreement) {
  EXPECT_DOUBLE_EQ(spearman({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
}

TEST(Spearman, PerfectReversal) {
  EXPECT_DOUBLE_EQ(spearman({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
}

TEST(Spearman, MonotoneTransformInvariant) {
  // Rank correlation sees only the ordering, not the scale.
  EXPECT_DOUBLE_EQ(spearman({1, 2, 3, 4}, {1, 8, 27, 64}), 1.0);
}

TEST(Spearman, TiesGetAverageRanks) {
  // {1, 2, 2, 3} vs {1, 2, 2, 3}: ties on both sides, same placement.
  EXPECT_DOUBLE_EQ(spearman({1, 2, 2, 3}, {1, 2, 2, 3}), 1.0);
  // A tie against distinct values: correlation drops below 1 but stays
  // positive for an otherwise-agreeing order.
  const double r = spearman({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(r, 0.8);
  EXPECT_LT(r, 1.0);
}

TEST(Spearman, PermutationInvariant) {
  // rho is a function of the *pairing*, not the presentation order:
  // applying the same permutation to both vectors must not change it.
  Rng rng(0x5EA3);
  std::vector<double> xs(16), ys(16);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(rng.uniform_int(0, 9));  // ties included
    ys[i] = static_cast<double>(rng.uniform_int(0, 99));
  }
  const double base = spearman(xs, ys);
  std::vector<std::size_t> perm(xs.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (int trial = 0; trial < 8; ++trial) {
    // Fisher-Yates with the deterministic rng.
    for (std::size_t i = perm.size() - 1; i > 0; --i) {
      std::swap(perm[i],
                perm[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i)))]);
    }
    std::vector<double> px(xs.size()), py(ys.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      px[i] = xs[perm[i]];
      py[i] = ys[perm[i]];
    }
    EXPECT_NEAR(spearman(px, py), base, 1e-12);
  }
}

TEST(Spearman, NegationFlipsSign) {
  // Negating one side reverses every pairwise order, so rho changes sign
  // exactly; negating both sides restores it.
  Rng rng(0xF11B);
  std::vector<double> xs(12), ys(12);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(rng.uniform_int(0, 1000));
    ys[i] = static_cast<double>(rng.uniform_int(0, 1000));
  }
  const double base = spearman(xs, ys);
  std::vector<double> neg_y(ys);
  for (auto& v : neg_y) v = -v;
  EXPECT_NEAR(spearman(xs, neg_y), -base, 1e-12);
  std::vector<double> neg_x(xs);
  for (auto& v : neg_x) v = -v;
  EXPECT_NEAR(spearman(neg_x, neg_y), base, 1e-12);
}

TEST(Spearman, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(spearman({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(spearman({1}, {2}), 1.0);
  EXPECT_DOUBLE_EQ(spearman({1, 1, 1}, {1, 1, 1}), 1.0);  // both constant
  EXPECT_DOUBLE_EQ(spearman({1, 1, 1}, {1, 2, 3}), 0.0);  // one constant
}

// ---- delta ----------------------------------------------------------------

TEST(Delta, RelErrorConvention) {
  EXPECT_DOUBLE_EQ((Delta{0, 0}.rel_error()), 0.0);
  // Model under-predicts: positive error, bounded by 1.
  EXPECT_DOUBLE_EQ((Delta{50, 100}.rel_error()), 0.5);
  // Model over-predicts: negative.
  EXPECT_DOUBLE_EQ((Delta{100, 50}.rel_error()), -0.5);
  // Predicted 0, measured nonzero: full-scale error, not a division blowup.
  EXPECT_DOUBLE_EQ((Delta{0, 7}.rel_error()), 1.0);
}

TEST(MeasuredRoofline, PicksTheBindingResource) {
  gpumodel::DeviceSpec dev = gpumodel::p100();
  PlanMetrics m;
  m.totals.dram_read_bytes = static_cast<std::int64_t>(dev.dram_bytes_per_s);
  m.totals.flops = 1;  // negligible compute
  // One second of DRAM traffic: the roofline must report ~1s.
  EXPECT_NEAR(measured_roofline_s(m, dev), 1.0, 1e-9);
  m.totals.flops = static_cast<std::int64_t>(dev.peak_dp_flops * 4);
  EXPECT_NEAR(measured_roofline_s(m, dev), 4.0, 1e-9);
}

// ---- measure_plan ---------------------------------------------------------

TEST(MeasurePlan, JacobiStageAccounting) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 4, 2};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  sim::GridSet gs = sim::GridSet::from_program(prog, 1);
  const PlanMetrics m = measure_plan(plan, gs, dev);

  ASSERT_EQ(m.stages.size(), 1u);
  const StageMetrics& s = m.stages[0];
  EXPECT_EQ(s.name, plan.stages[0].name);
  // 16^3 order-1: 14^3 interior applications, the shell guard-skipped.
  EXPECT_EQ(s.computed_points(), 14 * 14 * 14);
  EXPECT_EQ(s.skipped_points, 16 * 16 * 16 - 14 * 14 * 14);
  // 9 arithmetic nodes + the c = b*h2inv prelude per point.
  EXPECT_GT(s.flops, 0);
  EXPECT_EQ(s.flops % s.computed_points(), 0);  // flops_per_point x points

  // Line-level invariants of the replay.
  EXPECT_EQ(s.tex_bytes, s.read_line_requests * m.line_bytes);
  EXPECT_EQ(s.dram_write_bytes, s.unique_write_lines * m.line_bytes);
  EXPECT_EQ(s.working_set_bytes, s.unique_lines * m.line_bytes);
  EXPECT_LE(s.dram_read_bytes, s.tex_bytes);
  EXPECT_GE(s.redundant_load_fraction, 0.0);
  EXPECT_LT(s.redundant_load_fraction, 1.0);
  EXPECT_GE(s.l2_hit_rate, 0.0);
  EXPECT_LE(s.l2_hit_rate, 1.0);

  // The working set cannot exceed the two arrays' line-rounded footprint.
  const std::int64_t array_bytes = 2 * 16 * 16 * 16 * 8;
  EXPECT_GT(s.working_set_bytes, 0);
  EXPECT_LE(s.working_set_bytes, array_bytes + 2 * m.line_bytes);

  // Per-array attribution: every request lands on a named array, and the
  // write traffic goes to the output only.
  ASSERT_EQ(m.arrays.size(), 2u);
  std::int64_t reads = 0, writes = 0;
  for (const auto& a : m.arrays) {
    reads += a.read_line_requests;
    writes += a.write_line_requests;
    if (a.write_line_requests > 0) {
      EXPECT_EQ(a.name, "out");
    }
  }
  EXPECT_EQ(reads, m.totals.read_line_requests);
  EXPECT_EQ(writes, m.totals.write_line_requests);

  // OI is FLOPs over DRAM traffic by definition.
  EXPECT_DOUBLE_EQ(
      s.oi_dram(),
      static_cast<double>(s.flops) / static_cast<double>(s.dram_bytes()));
}

/// Flatten the interesting fields so jobs-invariance failures print the
/// exact divergence.
std::string metrics_snapshot(const PlanMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& s : m.stages) {
    os << s.name << " pts=" << s.computed_points() << " rim=" << s.rim_points
       << " flops=" << s.flops << " reads=" << s.read_line_requests
       << " writes=" << s.write_line_requests << " uniq=" << s.unique_lines
       << " tex=" << s.tex_bytes << " dramr=" << s.dram_read_bytes
       << " dramw=" << s.dram_write_bytes << " shm=" << s.shm_bytes
       << " l2=" << s.l2_hit_rate << " red=" << s.redundant_load_fraction
       << "\n";
  }
  os << "total uniq=" << m.totals.unique_lines
     << " dramr=" << m.totals.dram_read_bytes
     << " l2=" << m.totals.l2_hit_rate << "\n";
  for (const auto& a : m.arrays) {
    os << a.name << " ws=" << a.working_set_bytes
       << " r=" << a.read_line_requests << " w=" << a.write_line_requests
       << "\n";
  }
  return os.str();
}

TEST(MeasurePlan, MeasurementIsJobsInvariant) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 4, 2};
  std::vector<ir::BoundStencil> stages;
  int idx = 0;
  for (const auto& step : prog.steps) {
    stages.push_back(
        ir::bind_call(prog, step.call, str_cat("s", idx++, "_")));
  }
  const auto plan = codegen::build_plan(prog, stages, cfg, dev, {});

  std::string serial;
  for (const int jobs : {1, 4}) {
    sim::GridSet gs = sim::GridSet::from_program(prog, 9);
    sim::ExecOptions opts;
    opts.jobs = jobs;
    const PlanMetrics m = measure_plan(plan, gs, dev, opts);
    EXPECT_EQ(m.stages.size(), plan.stages.size());
    if (jobs == 1) {
      serial = metrics_snapshot(m);
    } else {
      EXPECT_EQ(metrics_snapshot(m), serial) << "jobs=" << jobs;
    }
  }
}

TEST(MeasurePlan, DegenerateAxes1D) {
  // Extent-1 y/z axes: the replay must still balance, with the working
  // set spanning only the 1D footprint.
  Rng rng(0x1DA7E);
  stencils::RandomStencilOptions ropts;
  ropts.dims = 1;
  ropts.max_order = 2;
  ropts.max_stages = 1;
  const ir::Program prog = stencils::random_program(rng, ropts);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 1, 1};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  sim::GridSet gs = sim::GridSet::from_program(prog, 2);
  const PlanMetrics m = measure_plan(plan, gs, dev);
  ASSERT_EQ(m.stages.size(), 1u);
  EXPECT_GT(m.stages[0].computed_points(), 0);
  EXPECT_GT(m.totals.working_set_bytes, 0);
  EXPECT_EQ(m.totals.tex_bytes,
            m.totals.read_line_requests * m.line_bytes);
}

TEST(MeasurePlan, ComparatorBoundsOnRealPlan) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 8, 4};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  sim::GridSet gs = sim::GridSet::from_program(prog, 1);
  const PlanMetrics m = measure_plan(plan, gs, dev);
  const auto predicted = gpumodel::evaluate(plan, dev, {}).counters;
  const ModelVsMeasured d = compare_counters(predicted, m);
  for (const Delta* delta :
       {&d.flops, &d.tex_bytes, &d.dram_read_bytes, &d.dram_write_bytes,
        &d.dram_bytes, &d.shm_bytes, &d.oi_dram, &d.oi_tex}) {
    EXPECT_GE(delta->rel_error(), -1.0);
    EXPECT_LE(delta->rel_error(), 1.0);
    EXPECT_GE(delta->measured, 0.0);
    EXPECT_GE(delta->predicted, 0.0);
  }
  // Both sides agree there is real traffic and real compute.
  EXPECT_GT(d.flops.measured, 0.0);
  EXPECT_GT(d.dram_bytes.measured, 0.0);
  EXPECT_GT(d.tex_bytes.measured, 0.0);
}

// ---- observability must not perturb tuning --------------------------------

class ObservabilityJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = str_cat("/tmp/artemis_metrics_",
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name(),
                    ".wal");
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    telemetry::Collector::global().disable();
    telemetry::Collector::global().clear();
  }

  std::string read_file() const {
    std::ifstream in(path_);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::string path_;
};

TEST_F(ObservabilityJournalTest, JournalBytesIdenticalWithEventsOn) {
  // The leaderboard/space events ride the serial commit path; with
  // telemetry recording them, the tuning journal must still be
  // byte-identical across jobs values (events observe, never reorder).
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  const auto factory = [&](const KernelConfig& cfg) {
    return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  };

  std::string serial_bytes;
  std::int64_t serial_changes = -1;
  for (const int jobs : {1, 4}) {
    std::remove(path_.c_str());
    telemetry::Collector::global().clear();
    telemetry::Collector::global().enable();
    robust::TuningJournal journal;
    ASSERT_EQ(journal.open(path_, "obs-eq", /*resume=*/false).status,
              robust::JournalLoadResult::Status::Fresh);
    autotune::TuneOptions opts;
    opts.max_block = 16;
    opts.max_unroll_bandwidth = 2;
    opts.register_budgets = {64, 128};
    opts.jobs = jobs;
    opts.journal = &journal;
    const auto r =
        autotune::hierarchical_tune(factory, KernelConfig{}, dev, {}, opts);
    EXPECT_GT(journal.recorded(), 0u);
    EXPECT_FALSE(r.leaderboard.empty());

    const auto counters = telemetry::Collector::global().counters();
    const auto counter = [&](const char* name) -> std::int64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    // The new observability counters fired, and coverage never exceeds
    // the unpruned cross product.
    EXPECT_GT(counter("tuner.leaderboard_changes"), 0);
    EXPECT_GT(counter("tuner.space_unpruned"), 0);
    EXPECT_GT(counter("tuner.space_enumerated"), 0);
    EXPECT_LE(counter("tuner.space_enumerated"),
              counter("tuner.space_unpruned"));
    telemetry::Collector::global().disable();

    if (jobs == 1) {
      serial_bytes = read_file();
      serial_changes = counter("tuner.leaderboard_changes");
    } else {
      EXPECT_EQ(read_file(), serial_bytes) << "jobs=" << jobs;
      // The event stream itself is jobs-invariant (serial commit).
      EXPECT_EQ(counter("tuner.leaderboard_changes"), serial_changes);
    }
  }
}

}  // namespace
}  // namespace artemis::metrics
