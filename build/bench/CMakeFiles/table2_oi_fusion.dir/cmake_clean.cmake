file(REMOVE_RECURSE
  "CMakeFiles/table2_oi_fusion.dir/table2_oi_fusion.cpp.o"
  "CMakeFiles/table2_oi_fusion.dir/table2_oi_fusion.cpp.o.d"
  "table2_oi_fusion"
  "table2_oi_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_oi_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
