#include "artemis/sim/reference.hpp"

#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/sim/interp.hpp"

namespace artemis::sim {

namespace {

/// Scalar environment for a bound stencil: program scalars by name.
std::map<std::string, double> scalar_env(const ir::Program& prog,
                                         const ir::BoundStencil& bound,
                                         const GridSet& gs) {
  std::map<std::string, double> env;
  const ir::StencilInfo info = ir::analyze(prog, bound);
  for (const auto& name : info.scalars_read) {
    env[name] = gs.scalar(name);
  }
  return env;
}

}  // namespace

void run_stencil_reference(const ir::Program& prog,
                           const ir::BoundStencil& bound, GridSet& gs) {
  const ir::StencilInfo info = ir::analyze(prog, bound);
  const auto env = scalar_env(prog, bound, gs);

  // Snapshot arrays that are read at non-center offsets and also written.
  std::map<std::string, Grid3D> snapshots;
  for (const auto& [name, ai] : info.arrays) {
    if (!ai.read || !ai.written) continue;
    bool non_center = false;
    for (const auto& off : ai.read_offsets) {
      for (const auto& ix : off) {
        if (ix.is_const() || ix.offset != 0) non_center = true;
      }
    }
    if (non_center) snapshots.emplace(name, gs.grid(name));
  }

  ARTEMIS_CHECK_MSG(!info.outputs.empty(),
                    "stencil '" << bound.name << "' writes nothing");
  const Extents dom = gs.grid(info.outputs.front()).extents();
  for (const auto& out : info.outputs) {
    ARTEMIS_CHECK_MSG(gs.grid(out).extents() == dom,
                      "outputs of '" << bound.name
                                     << "' have mismatched extents");
  }

  const ArrayReader reader = [&](const std::string& name, std::int64_t z,
                                 std::int64_t y,
                                 std::int64_t x) -> std::optional<double> {
    const auto snap = snapshots.find(name);
    const Grid3D& g = snap != snapshots.end() ? snap->second : gs.grid(name);
    if (!g.in_bounds(z, y, x)) return std::nullopt;
    return g.at(z, y, x);
  };
  const ArrayWriter writer = [&](const std::string& name, std::int64_t z,
                                 std::int64_t y, std::int64_t x, double v) {
    gs.grid(name).at(z, y, x) = v;
  };

  const int dims = static_cast<int>(prog.iterators.size());
  std::vector<std::int64_t> itv(static_cast<std::size_t>(dims), 0);
  // Parallelize over the outermost axis: points are independent
  // (snapshotted reads), and each z owns disjoint writes... except that
  // all writes target the same arrays, at distinct coordinates, which is
  // safe.
  parallel_for(dom.z, [&](std::int64_t z) {
    std::vector<std::int64_t> it_local(static_cast<std::size_t>(dims), 0);
    for (std::int64_t y = 0; y < dom.y; ++y) {
      for (std::int64_t x = 0; x < dom.x; ++x) {
        // itv is ordered outermost-first; trailing axes map to x.
        if (dims == 3) {
          it_local = {z, y, x};
        } else if (dims == 2) {
          it_local = {y, x};
        } else {
          it_local = {x};
        }
        apply_stmts_at_point(bound.stmts, env, it_local, reader, writer);
      }
    }
  });
  (void)itv;
}

void run_program_reference(const ir::Program& prog, GridSet& gs) {
  for (const auto& step : ir::flatten_steps(prog)) {
    switch (step.kind) {
      case ir::ExecStep::Kind::Stencil:
        run_stencil_reference(prog, step.stencil, gs);
        break;
      case ir::ExecStep::Kind::Swap:
        gs.swap(step.swap.a, step.swap.b);
        break;
    }
  }
}

}  // namespace artemis::sim
