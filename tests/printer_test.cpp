#include <gtest/gtest.h>

#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "test_programs.hpp"

namespace artemis::dsl {
namespace {

using testing::kDagDsl;
using testing::kJacobiDsl;
using testing::kJacobiIterativeDsl;

/// Round-trip: parse -> print -> parse -> print must be a fixed point.
void expect_round_trip(const std::string& src) {
  const ir::Program p1 = parse(src);
  const std::string printed1 = print_program(p1);
  const ir::Program p2 = parse(printed1);
  const std::string printed2 = print_program(p2);
  EXPECT_EQ(printed1, printed2);
}

TEST(Printer, JacobiRoundTrip) { expect_round_trip(kJacobiDsl); }
TEST(Printer, IterativeRoundTrip) { expect_round_trip(kJacobiIterativeDsl); }
TEST(Printer, DagRoundTrip) { expect_round_trip(kDagDsl); }

TEST(Printer, EmitsPragma) {
  const std::string printed = print_program(parse(kJacobiDsl));
  EXPECT_NE(printed.find("#pragma stream k block (32,16) unroll j=2"),
            std::string::npos);
}

TEST(Printer, EmitsAssign) {
  const std::string printed = print_program(parse(kDagDsl));
  EXPECT_NE(printed.find("#assign"), std::string::npos);
  EXPECT_NE(printed.find("gmem (W)"), std::string::npos);
  EXPECT_NE(printed.find("shmem (U)"), std::string::npos);
}

TEST(Printer, EmitsIterate) {
  const std::string printed = print_program(parse(kJacobiIterativeDsl));
  EXPECT_NE(printed.find("iterate 4 {"), std::string::npos);
  EXPECT_NE(printed.find("swap (out, in);"), std::string::npos);
}

TEST(Printer, StmtRendering) {
  const ir::Program p = parse(kJacobiDsl);
  const std::string s = print_stmt(p.stencils[0].stmts[0], p.iterators);
  EXPECT_EQ(s, "double c = b * h2inv;");
}

TEST(Printer, PreservesIndexOffsets) {
  const std::string printed = print_program(parse(kJacobiDsl));
  EXPECT_NE(printed.find("A[k][j][i+1]"), std::string::npos);
  EXPECT_NE(printed.find("A[k-1][j][i]"), std::string::npos);
}

TEST(Printer, ParenthesizationPreservesStructure) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N], c;
    stencil s (B, A, c) { B[i] = (A[i] + c) * (A[i-1] - 2.0) / c; }
    s (b, a, c);
  )");
  const std::string printed = print_program(p);
  const ir::Program p2 = parse(printed);
  EXPECT_TRUE(ir::equal(*p.stencils[0].stmts[0].rhs,
                        *p2.stencils[0].stmts[0].rhs));
}

}  // namespace
}  // namespace artemis::dsl
