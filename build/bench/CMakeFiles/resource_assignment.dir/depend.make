# Empty dependencies file for resource_assignment.
# This may be replaced when dependencies are built.
