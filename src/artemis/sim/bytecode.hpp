#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "artemis/ir/analysis.hpp"

namespace artemis::sim {

/// --- compiled stencil execution ---------------------------------------------
///
/// The tree-walking interpreter (interp.hpp) re-resolves every name at every
/// grid point: string-keyed maps for scalars and locals, std::function
/// readers for arrays, a fresh write buffer per point. This module compiles
/// a statement list ONCE into a flat postfix bytecode program with every
/// name resolved to an integer slot — arrays to view ids with precomputed
/// strides, scalars and locals to dense slot vectors, iterator offsets
/// folded into per-access coordinate selectors — and then executes it with
/// a tight switch loop. The instruction stream is emitted in the exact
/// post-order the tree walk evaluates, so results, veto behaviour, element
/// counters and global-access hook traces are bit-identical to
/// apply_stmts_at_point, which remains the semantics oracle.

enum class BcOp : std::uint8_t {
  PushConst,   ///< push consts[a]
  PushScalar,  ///< push scalars[a]
  PushLocal,   ///< push locals[a]
  Load,        ///< push array element via accesses[a]; out of bounds vetoes
  Neg,
  Add,
  Sub,
  Mul,
  Div,
  Sqrt,
  Fabs,
  Exp,
  Log,
  Min,
  Max,
  Pow,
  StoreLocal,  ///< pop into locals[a]
  Store,       ///< pop into the pending-write buffer via accesses[a]
  StoreAccum,  ///< like Store, but adds the current value (`+=` read-through)
};

struct BcInstr {
  BcOp op;
  std::int32_t a = 0;  ///< const index / slot / access id
};

/// One resolved array access. Global coordinates at point (z, y, x) are
/// c[d] = {z, y, x, 0}[sel[d]] + off[d]; sel 3 encodes a constant index
/// (lower-dimensional arrays map to trailing axes exactly as
/// access_coords does).
struct BcAccess {
  std::int32_t array = 0;                       ///< ArrayView slot
  std::array<std::uint8_t, 3> sel = {3, 3, 3};  ///< z, y, x selectors
  std::array<std::int64_t, 3> off = {0, 0, 0};
  /// An earlier statement stores to the same array: reads must scan the
  /// pending-write buffer first (same-point read-after-write semantics).
  bool scan_pending = false;
};

/// Dense name -> slot table built once per (plan, run).
class SlotMap {
 public:
  /// Idempotent: returns the existing slot on re-insertion.
  int add(const std::string& name);
  /// -1 when absent.
  int slot(const std::string& name) const;
  int size() const { return static_cast<int>(names_.size()); }
  /// Stable storage: view name pointers stay valid for the SlotMap's life.
  const std::string& name(int slot) const;

 private:
  std::vector<std::string> names_;
  std::map<std::string, int> index_;
};

/// A statement list compiled against slot tables. Immutable after
/// compilation; safe to execute from many threads concurrently.
struct CompiledStencil {
  std::vector<BcInstr> code;
  std::vector<double> consts;
  std::vector<BcAccess> accesses;
  int dims = 3;        ///< program iterator count (1..3)
  int n_locals = 0;    ///< dense local-slot count
  int max_stack = 0;   ///< value-stack high-water mark
  int n_stores = 0;    ///< pending-write buffer capacity per point
  /// FLOPs one computed point executes: arithmetic/intrinsic opcodes plus
  /// one per `+=` read-through, matching ir::flop_count's convention so
  /// measured FLOP totals are directly comparable to the analytic model.
  std::int64_t flops_per_point = 0;
};

/// Compile `stmts` (iterator count `dims`) against the given array and
/// scalar slot tables. Throws artemis::Error on unbound scalars or unknown
/// intrinsics — the same inputs the tree walk rejects at evaluation time.
CompiledStencil compile_stmts(const std::vector<ir::Stmt>& stmts, int dims,
                              const SlotMap& arrays, const SlotMap& scalars);

/// Where one array slot's storage lives during a run (or one block of a
/// run). For globals the window equals the logical grid; for block-local
/// scratch it is the tile expanded by the plan halo, positioned at `lo`.
struct ArrayView {
  const double* read = nullptr;  ///< snapshot, grid, or scratch storage
  double* write = nullptr;       ///< grid or scratch storage
  /// Logical grid extents: reads outside veto the point (the CUDA guard).
  std::int64_t ez = 1, ey = 1, ex = 1;
  /// Storage window: global lo corner and extents (row-major strides).
  std::int64_t lo_z = 0, lo_y = 0, lo_x = 0;
  std::int64_t wz = 1, wy = 1, wx = 1;
  std::uint8_t* written = nullptr;  ///< scratch guard-passed flags, or null
  bool scratch = false;             ///< counts as scratch (not global) traffic
  const std::string* name = nullptr;  ///< for the hook and diagnostics
  /// Byte base of this array in the counting mode's flat global address
  /// space (line-aligned, disjoint per array slot). Element (z,y,x) lives
  /// at elem_base + view_index * sizeof(double); scratch views ignore it.
  std::uint64_t elem_base = 0;
};

/// Half-open zyx box.
struct BcRegion {
  std::array<std::int64_t, 3> lo = {0, 0, 0};
  std::array<std::int64_t, 3> hi = {1, 1, 1};

  bool empty() const {
    return lo[0] >= hi[0] || lo[1] >= hi[1] || lo[2] >= hi[2];
  }
  std::int64_t volume() const {
    return empty() ? 0
                   : (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
  }
};

/// Element counters gathered by the compiled engine (mirrors ExecCounters'
/// element fields; plain integers so per-block totals reduce
/// deterministically in block order, without atomics).
struct BcCounters {
  std::int64_t computed = 0;
  std::int64_t skipped = 0;
  std::int64_t greads = 0;
  std::int64_t gwrites = 0;
  std::int64_t sreads = 0;
  std::int64_t swrites = 0;

  BcCounters& operator+=(const BcCounters& o) {
    computed += o.computed;
    skipped += o.skipped;
    greads += o.greads;
    gwrites += o.gwrites;
    sreads += o.sreads;
    swrites += o.swrites;
    return *this;
  }
};

/// Cache-line size of the counting mode's flat address space. Matches the
/// CacheSim default (the L2 sector granularity the model reasons in).
inline constexpr std::uint64_t kTraceLineBytes = 32;

/// Tag bit marking a write entry in a StageTrace line stream. Entries are
/// 32-bit (line ids fit easily: the flat address space would need to
/// exceed 64 GiB to overflow 31 bits — asserted when the layout is
/// assigned), which halves the counting mode's dominant memory traffic.
inline constexpr std::uint32_t kTraceWriteBit = 1u << 31;

/// What the low-overhead counting mode records for one stage of one run
/// (or one block of a run, before the deterministic block-order merge).
///
/// The line stream is the global memory traffic at cache-line granularity
/// in execution order: each entry is a line id of the flat per-array
/// address space (ArrayView::elem_base), with kTraceWriteBit set on
/// stores. Consecutive accesses to the same line on the same side
/// (read/read or write/write) are merged into one entry — the stand-in
/// for intra-warp coalescing along the unit-stride axis. Merging changes
/// request counts, never the set of lines touched.
struct StageTrace {
  BcCounters interior;  ///< accesses from guard-free interior points
  BcCounters rim;       ///< accesses from boundary-rim points
  std::vector<std::uint32_t> lines;  ///< coalesced line stream, tagged
  std::int64_t flops_per_point = 0;  ///< copied from the compiled stage

  /// Coalescing state; fresh per block so no merge spans a block boundary.
  std::uint32_t last_read = ~0u;
  std::uint32_t last_write = ~0u;

  void record(std::uint64_t byte_addr, bool is_write) {
    const auto line =
        static_cast<std::uint32_t>(byte_addr / kTraceLineBytes);
    if (is_write) {
      if (line == last_write) return;
      last_write = line;
      lines.push_back(line | kTraceWriteBit);
    } else {
      if (line == last_read) return;
      last_read = line;
      lines.push_back(line);
    }
  }

  /// Block-order merge: counters sum; the line stream concatenates with a
  /// coalescing reset at the seam (blocks model distinct thread blocks).
  StageTrace& operator+=(const StageTrace& o) {
    interior += o.interior;
    rim += o.rim;
    lines.insert(lines.end(), o.lines.begin(), o.lines.end());
    flops_per_point = o.flops_per_point;
    last_read = ~0u;
    last_write = ~0u;
    return *this;
  }
};

/// (array, z, y, x, is_write) for each global-space element access.
using GlobalAccessHook = std::function<void(
    const std::string&, std::int64_t, std::int64_t, std::int64_t, bool)>;

/// The sub-box of `region` on which every read (and every scratch write)
/// is provably inside both its logical grid and its storage window — the
/// guard-free fast path. Exposed for tests; run_compiled_region computes
/// it internally.
BcRegion interior_region(const CompiledStencil& cs,
                         const std::vector<ArrayView>& views,
                         const BcRegion& region, bool drop_outside_commit,
                         const BcRegion& commit);

/// Execute the compiled stencil over every point of `region` (row-major
/// z, y, x order — the tree walk's order, so hook traces match).
///
/// `drop_outside_commit` selects the write-commit semantics:
///  - true (the tiled executor): external writes outside the `commit` box
///    are dropped silently (overlapped-tiling recompute regions);
///  - false (the reference interpreter): external writes always commit and
///    must land inside the storage window (checked).
///
/// The domain is split into an interior (bounds checks provably satisfied,
/// no per-element hook test) and a boundary rim with the fully checked
/// semantics; when `hook` is non-null everything runs checked + hooked.
///
/// `trace` enables the low-overhead counting mode: per-class (interior vs
/// rim) counters and the coalesced global line stream accumulate into it
/// while grids, veto behaviour and `counters` stay bit-identical to a
/// plain run. Mutually exclusive with `hook` (the hook forces the serial
/// fully-checked path; counting keeps the interior fast path and works
/// under the parallel block sweep).
void run_compiled_region(const CompiledStencil& cs,
                         const std::vector<ArrayView>& views,
                         const double* scalars, const BcRegion& region,
                         const BcRegion& commit, bool drop_outside_commit,
                         BcCounters& counters,
                         const GlobalAccessHook* hook = nullptr,
                         StageTrace* trace = nullptr);

/// Fully-checked per-point execution of x-spans, exported for the native
/// tier's boundary rim: identical semantics (and, in counting mode,
/// identical record stream) to the rim spans of run_compiled_region's
/// split sweep. Holds the per-sweep scratch so rows don't reallocate;
/// not thread-safe — one RimRunner per worker.
class RimRunner {
 public:
  RimRunner(const CompiledStencil& cs, const std::vector<ArrayView>& views,
            const double* scalars, const BcRegion& commit,
            bool drop_outside_commit);
  ~RimRunner();

  /// Run [x0, x1) of row (z, y) with the checked engine, accumulating
  /// computed/skipped and element counters into `c` (and records into
  /// `trace` when counting).
  void run(std::int64_t z, std::int64_t y, std::int64_t x0, std::int64_t x1,
           BcCounters& c, StageTrace* trace);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shared snapshot policy for kernel-style execution: must `ai` be copied
/// before the sweep so every point observes pre-kernel values? True when
/// the array is both read and written, some read is off-center (or uses a
/// constant index), and a read could observe another point's write. The
/// aliasing-free special case — every read and write resolves to the same
/// canonical per-point coordinate (index d = iterator d, identical
/// offsets) and no overlapped-tiling recompute is in play — skips the
/// copy; results are identical because writes commit only after the
/// owning point's reads completed.
bool needs_snapshot(const ir::ArrayAccessInfo& ai, int dims, bool recompute);

}  // namespace artemis::sim
