#pragma once

#include <vector>

#include "artemis/codegen/plan.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/ir/analysis.hpp"

namespace artemis::codegen {

/// Knobs that select a code *version* rather than tuned parameters; the
/// paper's "global" / "global-stream" / "sh+reg" variants differ here.
struct BuildOptions {
  bool use_shared_memory = true;  ///< stage reusable arrays in shmem
  /// Treat stage outputs consumed by later stages as kernel-internal
  /// buffers (fused execution). Always true for multi-stage plans.
  bool fuse_internal = true;
};

/// Construct a fully-resolved KernelPlan for a (possibly fused) sequence
/// of bound stencils.
///
/// Responsibilities (Sections II-B, III, VI):
///  - merge per-stage analysis into combined info, halo radii, domain;
///  - resolve array residency: user `#assign` pins are honored verbatim,
///    remaining arrays follow the default heuristic (everything reusable
///    into shared memory when enabled — deliberately naive, the profiler
///    and the expert override refine it);
///  - apply storage folding and retiming when requested and legal;
///  - compute shared memory per block and run the resource-rationing loop:
///    while the target occupancy (or device capacity) is not achievable,
///    demote the shared array with the fewest accesses to global memory.
///
/// Throws PlanError for launches the device can never run (block too big,
/// zero-sized tiles).
KernelPlan build_plan(const ir::Program& prog,
                      std::vector<ir::BoundStencil> stages,
                      const KernelConfig& config,
                      const gpumodel::DeviceSpec& dev,
                      const BuildOptions& opts = {});

/// Convenience: plan a single call step of `prog` (no fusion).
KernelPlan build_plan_for_call(const ir::Program& prog,
                               const ir::StencilCall& call,
                               const KernelConfig& config,
                               const gpumodel::DeviceSpec& dev,
                               const BuildOptions& opts = {});

/// Derive an initial KernelConfig from the stencil's `#pragma` guidance
/// (stream dimension, block size, unroll factors, occupancy target),
/// falling back to the paper's baseline defaults.
KernelConfig config_from_pragma(const ir::Program& prog,
                                const ir::PragmaInfo& pragma, int dims);

}  // namespace artemis::codegen
