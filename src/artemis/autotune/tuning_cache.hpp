#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "artemis/codegen/plan.hpp"

namespace artemis::autotune {

/// Serialize a kernel configuration to a single-line, human-readable
/// key=value record, and parse it back. Round-trips exactly.
std::string serialize_config(const codegen::KernelConfig& cfg);
codegen::KernelConfig parse_config(const std::string& line);

/// One cached tuning outcome.
struct CacheEntry {
  codegen::KernelConfig config;
  double time_s = 0;
  double tflops = 0;
};

/// Outcome of loading a cache file or text blob. Distinguishes a missing
/// file (normal on the first run) from an unreadable one (permissions,
/// I/O failure), and counts the records merged vs. the malformed rows
/// skipped so partial corruption is visible instead of silent.
struct CacheLoadReport {
  enum class Status {
    Ok,       ///< read completed (possibly with skipped rows)
    Missing,  ///< file does not exist — expected on a cold start
    IoError,  ///< file exists but could not be opened or read
  };
  Status status = Status::Ok;
  int loaded = 0;   ///< records merged into the cache
  int skipped = 0;  ///< malformed rows ignored (tuning_cache.parse_errors)
  bool ok() const { return status == Status::Ok; }
};

/// A persistent store of tuning results, keyed by a caller-chosen string
/// (e.g. "<benchmark>/<device>/<version>/x<tile>"). Section VI-A: "the
/// deep tuning is done only once. For most applications, its cost will be
/// amortized over the stencil invocations" — this is where the amortized
/// results live between runs.
///
/// File format: one entry per line,
///   <key> \t <time_s> \t <tflops> \t <serialized config>
/// Unknown or malformed lines are skipped on load (forward compatibility).
///
/// All member functions are thread-safe: parallel tuning shards may
/// get()/put() concurrently while another thread saves a snapshot.
class TuningCache {
 public:
  TuningCache() = default;

  void put(const std::string& key, const CacheEntry& entry);
  std::optional<CacheEntry> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Serialize all entries / load entries from text. load_text merges
  /// into the current contents (later keys win) and tolerates partially
  /// corrupt input: malformed rows are counted and skipped, intact rows
  /// around them still load.
  std::string save_text() const;
  CacheLoadReport load_text(const std::string& text);

  /// File convenience wrappers. save_file overwrites; load_file merges
  /// and reports (without throwing) whether the file was missing,
  /// unreadable, or loaded — and how many rows were skipped.
  bool save_file(const std::string& path) const;
  CacheLoadReport load_file(const std::string& path);

 private:
  mutable std::mutex mu_;  ///< guards entries_
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace artemis::autotune
