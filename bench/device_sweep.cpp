// Device-family sweep: validate the parameterized device specs and the
// model-guided search pruning across GPU generations.
//
// For every modeled device (K40, P100, V100, A100, H100) the Fig.-4 deep
// tuning experiment (7pt smoother) runs twice: once with the full tuner
// and once with the analytical pre-filter (--prune-k, default 8). The
// harness asserts the pruned run chooses the byte-identical schedule at
// the same modelled time while evaluating >= --min-reduction (default 5)
// times fewer candidates, and writes the machine-readable results to
// --out (default BENCH_device_sweep.json) for the CI model-pruning job.
//
// Every number is a pure function of the DeviceSpec: absolute TFLOPS
// scale with the device peak while the fusion cusp tracks the machine
// balance (more bandwidth-starved devices reward deeper fusion).

#include <cstdio>
#include <cstring>
#include <fstream>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/common/json.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/telemetry/telemetry.hpp"

using namespace artemis;

namespace {

std::int64_t flag_int(int argc, char** argv, const char* name,
                      std::int64_t dflt) {
  const std::string prefix = str_cat("--", name, "=");
  for (int i = 1; i < argc; ++i) {
    if (starts_with(argv[i], prefix)) {
      return std::stoll(std::string(argv[i]).substr(prefix.size()));
    }
  }
  return dflt;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& dflt) {
  const std::string prefix = str_cat("--", name, "=");
  for (int i = 1; i < argc; ++i) {
    if (starts_with(argv[i], prefix)) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return dflt;
}

/// Everything "equal final plan" means: the chosen per-kernel configs,
/// the fusion schedule, the deep-tuning tipping point, and the modelled
/// end-to-end time.
std::string plan_signature(const driver::ProgramResult& r) {
  std::string sig = str_cat("time_s=", r.time_s);
  for (const auto& k : r.kernels) {
    sig += str_cat("|", k.name, "=", autotune::serialize_config(k.config));
  }
  sig += "|fusion=";
  for (const int x : r.fusion_schedule) sig += str_cat(" ", x);
  if (r.deep_tuning.has_value()) {
    sig += str_cat("|tipping=", r.deep_tuning->tipping_point);
  }
  return sig;
}

struct SweepRun {
  driver::ProgramResult result;
  std::int64_t evaluated = 0;     ///< tuner.evaluated counter delta
  std::int64_t model_pruned = 0;  ///< tuner.model_pruned counter delta
};

SweepRun run_one(const ir::Program& prog, const gpumodel::DeviceSpec& dev,
                 const gpumodel::ModelParams& params, int prune_k) {
  auto strat = driver::artemis_strategy();
  strat.tune.model_prune_k = prune_k;
  auto& collector = telemetry::Collector::global();
  collector.clear();
  collector.enable();
  SweepRun run;
  run.result = driver::optimize_program(prog, dev, params, strat);
  const auto counters = collector.counters();
  collector.disable();
  const auto counter = [&](const char* name) -> std::int64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  run.evaluated = counter("tuner.evaluated");
  run.model_pruned = counter("tuner.model_pruned");
  return run;
}

double best_tflops(const driver::ProgramResult& r) {
  double best = r.tflops;
  if (r.deep_tuning.has_value()) {
    for (const auto& e : r.deep_tuning->entries) {
      best = std::max(best, e.tflops);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int prune_k = static_cast<int>(flag_int(argc, argv, "prune-k", 8));
  const double min_reduction =
      static_cast<double>(flag_int(argc, argv, "min-reduction", 5));
  const std::string out_path =
      flag_str(argc, argv, "out", "BENCH_device_sweep.json");
  const std::string kernel =
      flag_str(argc, argv, "kernel", "7pt-smoother");

  const gpumodel::ModelParams params;
  const auto prog = stencils::benchmark_program(kernel);

  TablePrinter table({"device", "alpha (TFLOPS)", "alpha/beta_dram",
                      "tipping point", "best TFLOPS", "evals full",
                      "evals pruned", "reduction", "plan equal"});
  Json report = Json::object();
  report.set("kernel", Json(kernel));
  report.set("prune_k", Json(prune_k));
  report.set("min_reduction", Json(min_reduction));
  Json rows = Json::array();
  bool ok = true;

  for (const auto& dev : gpumodel::device_family()) {
    const SweepRun full = run_one(prog, dev, params, /*prune_k=*/0);
    const SweepRun pruned = run_one(prog, dev, params, prune_k);
    const bool plans_equal =
        plan_signature(full.result) == plan_signature(pruned.result);
    const double reduction =
        pruned.evaluated > 0 ? static_cast<double>(full.evaluated) /
                                   static_cast<double>(pruned.evaluated)
                             : 0;
    const bool row_ok = plans_equal && reduction >= min_reduction &&
                        full.model_pruned == 0 && pruned.model_pruned > 0;
    ok = ok && row_ok;

    table.add_row({dev.name, format_double(dev.peak_dp_flops / 1e12, 3),
                   format_double(dev.balance_dram(), 3),
                   full.result.deep_tuning.has_value()
                       ? std::to_string(full.result.deep_tuning->tipping_point)
                       : "-",
                   format_double(best_tflops(full.result), 3),
                   std::to_string(full.evaluated),
                   std::to_string(pruned.evaluated),
                   format_double(reduction, 2), plans_equal ? "yes" : "NO"});

    Json row = Json::object();
    row.set("device", Json(dev.name));
    row.set("alpha_tflops", Json(dev.peak_dp_flops / 1e12));
    row.set("balance_dram", Json(dev.balance_dram()));
    row.set("balance_tex", Json(dev.balance_tex()));
    row.set("balance_shm", Json(dev.balance_shm()));
    if (full.result.deep_tuning.has_value()) {
      row.set("tipping_point",
              Json(full.result.deep_tuning->tipping_point));
    }
    row.set("best_tflops", Json(best_tflops(full.result)));
    row.set("time_s_full", Json(full.result.time_s));
    row.set("time_s_pruned", Json(pruned.result.time_s));
    row.set("evaluated_full", Json(full.evaluated));
    row.set("evaluated_pruned", Json(pruned.evaluated));
    row.set("model_pruned", Json(pruned.model_pruned));
    row.set("eval_reduction", Json(reduction));
    row.set("plans_equal", Json(plans_equal));
    rows.push_back(std::move(row));
  }
  report.set("devices", std::move(rows));
  report.set("ok", Json(ok));

  std::ofstream(out_path) << report.dump(2) << "\n";
  std::printf("Device family: deep tuning + model-guided pruning "
              "(prune-k %d)\n\n%s\n",
              prune_k, table.to_string().c_str());
  std::printf("Report written to %s\n", out_path.c_str());
  if (!ok) {
    std::printf("ERROR: a device failed the pruning contract (plan "
                "mismatch or reduction < %.1fx)\n",
                min_reduction);
    return 1;
  }
  return 0;
}
