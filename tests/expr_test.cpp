#include <gtest/gtest.h>

#include "artemis/ir/expr.hpp"

namespace artemis::ir {
namespace {

const std::vector<std::string> kIters = {"k", "j", "i"};

ExprPtr acc(const std::string& a, int dk, int dj, int di) {
  return array_ref(a, {{0, dk}, {1, dj}, {2, di}});
}

TEST(Expr, NumberToString) {
  EXPECT_EQ(to_string(*number(2.0), kIters), "2.0");
  EXPECT_EQ(to_string(*number(0.5), kIters), "0.5");
  EXPECT_EQ(to_string(*number(-3.0), kIters), "-3.0");
}

TEST(Expr, ArrayRefToString) {
  EXPECT_EQ(to_string(*acc("A", 0, 1, -2), kIters), "A[k][j+1][i-2]");
  EXPECT_EQ(to_string(*array_ref("w", {{2, 0}}), kIters), "w[i]");
  EXPECT_EQ(to_string(*array_ref("w", {{-1, 3}}), kIters), "w[3]");
}

TEST(Expr, PrecedenceParens) {
  // (a + b) * c needs parens; a + b * c does not.
  const auto sum = add(scalar_ref("a"), scalar_ref("b"));
  EXPECT_EQ(to_string(*mul(sum, scalar_ref("c")), kIters), "(a + b) * c");
  EXPECT_EQ(to_string(*add(scalar_ref("a"),
                           mul(scalar_ref("b"), scalar_ref("c"))),
                      kIters),
            "a + b * c");
}

TEST(Expr, SubRightAssociationParens) {
  // a - (b + c) must keep parens to preserve meaning.
  const auto e = sub(scalar_ref("a"), add(scalar_ref("b"), scalar_ref("c")));
  EXPECT_EQ(to_string(*e, kIters), "a - (b + c)");
}

TEST(Expr, DivByProductParens) {
  const auto e = div(scalar_ref("a"), mul(scalar_ref("b"), scalar_ref("c")));
  EXPECT_EQ(to_string(*e, kIters), "a / (b * c)");
}

TEST(Expr, CallToString) {
  const auto e = call("min", {scalar_ref("a"), number(1.0)});
  EXPECT_EQ(to_string(*e, kIters), "min(a, 1.0)");
}

TEST(Expr, NegationToString) {
  EXPECT_EQ(to_string(*unary_neg(scalar_ref("a")), kIters), "-a");
  EXPECT_EQ(to_string(*mul(unary_neg(scalar_ref("a")), scalar_ref("b")),
                      kIters),
            "-a * b");
}

TEST(Expr, DeepEquality) {
  const auto a = add(mul(scalar_ref("x"), acc("A", 0, 0, 1)), number(2.0));
  const auto b = add(mul(scalar_ref("x"), acc("A", 0, 0, 1)), number(2.0));
  const auto c = add(mul(scalar_ref("x"), acc("A", 0, 0, -1)), number(2.0));
  EXPECT_TRUE(equal(*a, *b));
  EXPECT_FALSE(equal(*a, *c));
  EXPECT_FALSE(equal(*a, *scalar_ref("x")));
}

TEST(Expr, FlopCountConvention) {
  // Each binary op, unary negation, and call counts 1.
  const auto e = add(mul(scalar_ref("a"), scalar_ref("b")),
                     unary_neg(call("sqrt", {scalar_ref("c")})));
  EXPECT_EQ(flop_count(*e), 4);
  EXPECT_EQ(flop_count(*number(1.0)), 0);
  EXPECT_EQ(flop_count(*acc("A", 0, 0, 0)), 0);
}

TEST(Expr, VisitPreOrderCountsNodes) {
  const auto e = add(mul(scalar_ref("a"), number(2.0)), acc("A", 1, 0, 0));
  int nodes = 0;
  visit(*e, [&](const Expr&) { ++nodes; });
  EXPECT_EQ(nodes, 5);
}

TEST(Expr, RewriteReplacesLeaves) {
  const auto e = add(scalar_ref("a"), mul(scalar_ref("a"), number(3.0)));
  const auto rewritten = rewrite(e, [](const ExprPtr& n) -> ExprPtr {
    if (n->kind == ExprKind::ScalarRef && n->name == "a") {
      return scalar_ref("z");
    }
    return nullptr;
  });
  EXPECT_EQ(to_string(*rewritten, kIters), "z + z * 3.0");
  // Original untouched (persistent tree).
  EXPECT_EQ(to_string(*e, kIters), "a + a * 3.0");
}

TEST(Expr, RewriteSharesUnchangedSubtrees) {
  const auto shared = mul(scalar_ref("b"), number(2.0));
  const auto e = add(scalar_ref("a"), shared);
  const auto rewritten = rewrite(e, [](const ExprPtr& n) -> ExprPtr {
    if (n->kind == ExprKind::ScalarRef && n->name == "a") {
      return number(0.0);
    }
    return nullptr;
  });
  // The untouched right subtree must be the same node (no copy).
  EXPECT_EQ(rewritten->args[1].get(), shared.get());
}

TEST(Expr, IndexExprOrdering) {
  const IndexExpr a{0, -1}, b{0, 1}, c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (IndexExpr{0, -1}));
}

TEST(Expr, BinOpTokens) {
  EXPECT_STREQ(bin_op_token(BinOp::Add), "+");
  EXPECT_STREQ(bin_op_token(BinOp::Sub), "-");
  EXPECT_STREQ(bin_op_token(BinOp::Mul), "*");
  EXPECT_STREQ(bin_op_token(BinOp::Div), "/");
}

}  // namespace
}  // namespace artemis::ir
