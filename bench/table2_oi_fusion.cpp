// Reproduces Table II: operational intensity for different fusion degrees
// of the 7pt-smoother (plus the untuned global-memory version).
//
// Each (x x 1) version is autotuned like Fig. 4's deep tuning; the OI of
// the winning configuration at DRAM, texture cache and shared memory is
// printed. Expected shape (paper): OI_dram and OI_tex grow roughly
// linearly with the fusion degree while OI_shm stays flat around 0.2 --
// fusion shifts the bound from DRAM/tex onto shared memory until the
// kernel stops being bandwidth-bound (the cusp).

#include <cstdio>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/profile/profiler.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/transform/fusion.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;
  const auto prog = stencils::benchmark_program("7pt-smoother");

  TablePrinter table({"M", "global", "1x1", "2x1", "3x1", "4x1", "5x1"});
  std::vector<std::string> row_dram = {"OI_dram"};
  std::vector<std::string> row_tex = {"OI_tex"};
  std::vector<std::string> row_shm = {"OI_shm"};

  // Untuned global version (the paper's "global" column).
  {
    codegen::BuildOptions opts;
    opts.use_shared_memory = false;
    codegen::KernelConfig cfg;
    cfg.block = {16, 4, 4};
    const auto plan = codegen::build_plan_for_call(
        prog, prog.steps[0].body[0].call, cfg, dev, opts);
    const auto rep = profile::profile_plan(plan, dev, params);
    row_dram.push_back(format_double(rep.oi_dram, 3));
    row_tex.push_back(format_double(rep.oi_tex, 3));
    row_shm.push_back("-");
  }

  // Tuned (x x 1) fused versions.
  driver::Strategy strat = driver::artemis_strategy();
  for (int x = 1; x <= 5; ++x) {
    const auto tt = transform::time_tile_iterate(prog, prog.steps[0], x);
    const autotune::PlanFactory factory =
        [&tt, &dev](const codegen::KernelConfig& cfg) {
          return codegen::build_plan(tt.augmented, tt.stages, cfg, dev);
        };
    codegen::KernelConfig seed;
    seed.tiling = codegen::TilingScheme::StreamSerial;
    seed.stream_axis = 2;
    seed.time_tile = x;
    try {
      const auto tuned =
          autotune::hierarchical_tune(factory, seed, dev, params, strat.tune);
      const auto rep =
          profile::profile_plan(factory(tuned.best.config), dev, params);
      row_dram.push_back(format_double(rep.oi_dram, 3));
      row_tex.push_back(format_double(rep.oi_tex, 3));
      row_shm.push_back(format_double(rep.oi_shm, 3));
    } catch (const PlanError&) {
      row_dram.push_back("infeasible");
      row_tex.push_back("infeasible");
      row_shm.push_back("infeasible");
    }
  }

  table.add_row(row_dram);
  table.add_row(row_tex);
  table.add_row(row_shm);

  std::printf(
      "Table II: OI for different fusion degrees of 7pt-smoother\n"
      "(machine balance: alpha/beta dram=6.42 tex=2.35 shm=0.49)\n\n%s\n",
      table.to_string().c_str());
  std::printf(
      "Paper shape: OI_dram 0.97 -> 2.01 -> 2.84 -> 4.26 -> 5.90; OI_tex\n"
      "0.98 -> 3.06 -> 4.51 -> 5.56 -> 6.42; OI_shm flat ~0.2. Fusion makes\n"
      "the kernel less bandwidth-bound at DRAM/tex; the bound shifts onto\n"
      "shared memory.\n");
  return 0;
}
