// Secondary suite: classic 1D/2D stencils under all five generators.
//
// Not a paper table -- the paper evaluates 3D kernels only -- but the
// frameworks ARTEMIS is compared against (Overtile, Forma, PPCG) were
// historically evaluated on exactly these patterns, and the paper claims
// ARTEMIS "can accelerate both time-iterated 2D/3D stencils and complex
// spatial stencils alike" (Section III-B). This harness checks the Fig. 5
// ordering transfers to the lower-dimensional regime.

#include <cstdio>

#include "artemis/baselines/baselines.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/stencils/extra_stencils.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  TablePrinter table({"Stencil", "dims", "PPCG", "global-stream", "global",
                      "STENCILGEN", "ARTEMIS"});
  int artemis_wins = 0;
  int rows = 0;
  for (const auto& spec : stencils::extra_stencils()) {
    const auto prog = stencils::extra_stencil_program(spec.name);
    const auto cmp =
        baselines::compare_generators(spec.name, prog, dev, params);
    std::vector<std::string> row = {spec.name, std::to_string(spec.dims)};
    for (const auto& g : cmp.generators) {
      row.push_back(g.result ? format_double(g.tflops(), 3)
                             : std::string("n/a"));
    }
    table.add_row(row);
    ++rows;
    if (cmp.artemis_wins()) ++artemis_wins;
  }

  std::printf("Secondary 1D/2D suite (useful TFLOPS, modelled P100)\n\n%s\n",
              table.to_string().c_str());
  std::printf("ARTEMIS best or within 3%% on %d/%d stencils\n", artemis_wins,
              rows);
  return 0;
}
