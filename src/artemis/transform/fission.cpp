#include "artemis/transform/fission.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/gpumodel/registers.hpp"
#include "artemis/ir/analysis.hpp"

namespace artemis::transform {

namespace {

/// Locate the (unique) top-level call to `stencil_name`.
std::size_t find_call_step(const ir::Program& prog,
                           const std::string& stencil_name) {
  for (std::size_t i = 0; i < prog.steps.size(); ++i) {
    if (prog.steps[i].kind == ir::Step::Kind::Call &&
        prog.steps[i].call.callee == stencil_name) {
      return i;
    }
  }
  throw SemanticError(
      str_cat("no top-level call to stencil '", stencil_name, "'"));
}

/// Names of local temporaries read (transitively) by `stmts` that are
/// defined in `def` but not in `stmts`.
std::vector<ir::Stmt> with_replicated_temps(
    const ir::StencilDef& def, const std::vector<std::size_t>& group) {
  // Map each local temp to its defining statement index.
  std::map<std::string, std::size_t> local_def;
  for (std::size_t i = 0; i < def.stmts.size(); ++i) {
    if (def.stmts[i].declares_local) local_def[def.stmts[i].lhs_name] = i;
  }

  std::set<std::size_t> needed(group.begin(), group.end());
  // Transitive closure over local-temp reads.
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::size_t> to_add;
    for (const auto idx : needed) {
      ir::visit(*def.stmts[idx].rhs, [&](const ir::Expr& e) {
        if (e.kind != ir::ExprKind::ScalarRef) return;
        const auto it = local_def.find(e.name);
        if (it != local_def.end() && !needed.count(it->second)) {
          to_add.insert(it->second);
        }
      });
    }
    for (const auto idx : to_add) {
      needed.insert(idx);
      changed = true;
    }
  }

  std::vector<ir::Stmt> out;
  for (std::size_t i = 0; i < def.stmts.size(); ++i) {
    if (needed.count(i)) out.push_back(def.stmts[i]);
  }
  return out;
}

/// Output arrays of a def, in first-write order.
std::vector<std::string> outputs_of(const ir::StencilDef& def) {
  std::vector<std::string> outs;
  for (const auto& st : def.stmts) {
    if (st.declares_local) continue;
    if (std::find(outs.begin(), outs.end(), st.lhs_name) == outs.end()) {
      outs.push_back(st.lhs_name);
    }
  }
  return outs;
}

/// Statement indices writing any output in `group_outputs`.
std::vector<std::size_t> stmts_writing(
    const ir::StencilDef& def, const std::set<std::string>& group_outputs) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < def.stmts.size(); ++i) {
    if (!def.stmts[i].declares_local &&
        group_outputs.count(def.stmts[i].lhs_name)) {
      idx.push_back(i);
    }
  }
  return idx;
}

/// Assemble the fissioned program from output groups.
ir::Program assemble(const ir::Program& prog, const std::string& stencil_name,
                     const std::vector<std::vector<std::string>>& groups) {
  const ir::StencilDef* def = prog.find_stencil(stencil_name);
  ARTEMIS_CHECK(def != nullptr);
  const std::size_t call_idx = find_call_step(prog, stencil_name);
  const ir::StencilCall& call = prog.steps[call_idx].call;

  std::map<std::string, std::string> formal_to_actual;
  for (std::size_t i = 0; i < def->params.size(); ++i) {
    formal_to_actual[def->params[i]] = call.args[i];
  }

  ir::Program out = prog;
  // Drop the original definition and call.
  out.stencils.erase(
      std::remove_if(out.stencils.begin(), out.stencils.end(),
                     [&](const ir::StencilDef& d) {
                       return d.name == stencil_name;
                     }),
      out.stencils.end());
  out.steps.erase(out.steps.begin() +
                  static_cast<std::ptrdiff_t>(call_idx));

  std::vector<ir::Step> new_calls;
  for (std::size_t gidx = 0; gidx < groups.size(); ++gidx) {
    const std::set<std::string> group_outputs(groups[gidx].begin(),
                                              groups[gidx].end());
    ir::StencilDef sub;
    sub.name = str_cat(stencil_name, "_", gidx);
    sub.pragma = def->pragma;
    sub.stmts =
        with_replicated_temps(*def, stmts_writing(*def, group_outputs));

    // Parameters: original formals referenced by the sub-kernel, original
    // order preserved.
    std::set<std::string> used;
    for (const auto& st : sub.stmts) {
      if (!st.declares_local) used.insert(st.lhs_name);
      ir::visit(*st.rhs, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::ArrayRef ||
            e.kind == ir::ExprKind::ScalarRef) {
          used.insert(e.name);
        }
      });
    }
    ir::StencilCall sub_call;
    sub_call.callee = sub.name;
    for (std::size_t i = 0; i < def->params.size(); ++i) {
      if (used.count(def->params[i])) {
        sub.params.push_back(def->params[i]);
        sub_call.args.push_back(call.args[i]);
      }
    }
    for (const auto& [formal, space] : def->resources.spaces) {
      if (used.count(formal)) sub.resources.spaces[formal] = space;
    }

    out.stencils.push_back(std::move(sub));
    ir::Step step;
    step.kind = ir::Step::Kind::Call;
    step.call = std::move(sub_call);
    new_calls.push_back(std::move(step));
  }

  out.steps.insert(out.steps.begin() + static_cast<std::ptrdiff_t>(call_idx),
                   new_calls.begin(), new_calls.end());
  ir::validate(out);
  return out;
}

}  // namespace

ir::Program trivial_fission(const ir::Program& prog,
                            const std::string& stencil_name) {
  const ir::StencilDef* def = prog.find_stencil(stencil_name);
  if (!def) throw SemanticError(str_cat("unknown stencil '", stencil_name,
                                        "'"));
  std::vector<std::vector<std::string>> groups;
  for (const auto& out : outputs_of(*def)) groups.push_back({out});
  return assemble(prog, stencil_name, groups);
}

ir::Program recompute_fission(const ir::Program& prog,
                              const std::string& stencil_name,
                              const gpumodel::DeviceSpec& dev,
                              int reg_budget) {
  const ir::StencilDef* def = prog.find_stencil(stencil_name);
  if (!def) throw SemanticError(str_cat("unknown stencil '", stencil_name,
                                        "'"));
  reg_budget = std::min(reg_budget, dev.max_regs_per_thread);

  // Max statement order r (the paper's halo budget is max(4, r); with flat
  // stencil bodies the packing constraint that bites is register demand).
  const auto outs = outputs_of(*def);
  std::vector<std::vector<std::string>> groups;
  std::vector<std::string> current;
  for (const auto& out : outs) {
    std::vector<std::string> candidate = current;
    candidate.push_back(out);
    const std::set<std::string> cand_set(candidate.begin(), candidate.end());
    const auto stmts =
        with_replicated_temps(*def, stmts_writing(*def, cand_set));
    const int regs = gpumodel::estimate_registers_for_stmts(stmts);
    if (!current.empty() && regs > reg_budget) {
      groups.push_back(current);
      current = {out};
    } else {
      current = std::move(candidate);
    }
  }
  if (!current.empty()) groups.push_back(current);
  return assemble(prog, stencil_name, groups);
}

}  // namespace artemis::transform
