# Empty compiler generated dependencies file for tuning_cost.
# This may be replaced when dependencies are built.
