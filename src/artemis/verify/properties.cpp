// Implementations of the five property families (see verify.hpp). Each
// checker is exception-safe at the check_property boundary: anything a
// transform/engine throws on a valid program is itself a finding.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/profile/profiler.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/transform/fission.hpp"
#include "artemis/transform/fold.hpp"
#include "artemis/transform/fusion.hpp"
#include "artemis/transform/retime.hpp"
#include "artemis/verify/oracle.hpp"
#include "artemis/verify/verify.hpp"

namespace artemis::verify {

namespace fs = std::filesystem;

const char* property_name(Property p) {
  switch (p) {
    case Property::RoundTrip: return "roundtrip";
    case Property::TransformEquivalence: return "transform-equivalence";
    case Property::EngineEquivalence: return "engine-equivalence";
    case Property::TunerDeterminism: return "tuner-determinism";
    case Property::VariantEquivalence: return "variant-equivalence";
  }
  return "unknown";
}

std::optional<Property> property_by_name(const std::string& name) {
  for (const Property p : all_properties()) {
    if (name == property_name(p)) return p;
  }
  return std::nullopt;
}

std::vector<Property> all_properties() {
  return {Property::RoundTrip, Property::TransformEquivalence,
          Property::EngineEquivalence, Property::TunerDeterminism,
          Property::VariantEquivalence};
}

namespace {

constexpr double kTol = 1e-12;

using Margins = std::array<std::int64_t, 3>;

/// Map per-iterator halo radii to (z,y,x) grid margins: iterator d of a
/// dims-dimensional program addresses grid axis 3-dims+d (arrays pack
/// their axes to the right, gridset.cpp extents_of).
Margins zyx_margins(const ir::Program& prog,
                    const std::array<int, 3>& radius) {
  const int dims = static_cast<int>(prog.iterators.size());
  Margins m = {0, 0, 0};
  for (int d = 0; d < dims; ++d) {
    m[static_cast<std::size_t>(3 - dims + d)] = radius[static_cast<
        std::size_t>(d)];
  }
  return m;
}

bool all_top_level_calls(const ir::Program& prog) {
  return !prog.steps.empty() &&
         std::all_of(prog.steps.begin(), prog.steps.end(),
                     [](const ir::Step& s) {
                       return s.kind == ir::Step::Kind::Call;
                     });
}

/// Accumulated per-axis halo over the top-level call chain: the rim a
/// fully fused version vetoes, hence the safe comparison margins.
Margins chain_margins(const ir::Program& prog) {
  std::array<int, 3> r = {0, 0, 0};
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind != ir::ExecStep::Kind::Stencil) continue;
    const auto radius = ir::analyze(prog, step.stencil).radius;
    for (std::size_t d = 0; d < 3; ++d) r[d] += radius[d];
  }
  return zyx_margins(prog, r);
}

std::string first_line_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  int line = 1;
  for (;; ++line) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "texts differ in trailing whitespace";
    if (!ga || !gb || la != lb) {
      return str_cat("line ", line, ": '", ga ? la : std::string("<eof>"),
                     "' vs '", gb ? lb : std::string("<eof>"), "'");
    }
  }
}

/// Compare the named grids of two grid sets away from the halo rim.
/// Boundary guards merge or split under the transforms, so only points
/// at least `margins` from every face are trusted; when the halo covers
/// an entire axis there are no trusted points and the comparison is
/// vacuous (a smaller margin would compare exactly the rim the
/// transform is allowed to change).
std::string diff_interior(const sim::GridSet& want, const sim::GridSet& got,
                          const std::vector<std::string>& names,
                          const Margins& margins, const std::string& label) {
  for (const auto& name : names) {
    const Grid3D& a = want.grid(name);
    const Grid3D& b = got.grid(name);
    const auto& e = a.extents();
    const std::int64_t lo[3] = {margins[0], margins[1], margins[2]};
    const std::int64_t hi[3] = {e.z - margins[0], e.y - margins[1],
                                e.x - margins[2]};
    if (lo[0] >= hi[0] || lo[1] >= hi[1] || lo[2] >= hi[2]) continue;
    double worst = 0;
    std::int64_t wz = 0, wy = 0, wx = 0;
    for (std::int64_t z = lo[0]; z < hi[0]; ++z) {
      for (std::int64_t y = lo[1]; y < hi[1]; ++y) {
        for (std::int64_t x = lo[2]; x < hi[2]; ++x) {
          const double d = std::abs(a.at(z, y, x) - b.at(z, y, x));
          if (!(d <= worst)) {  // catches NaN too
            worst = d;
            wz = z, wy = y, wx = x;
          }
        }
      }
    }
    if (!(worst < kTol)) {
      return str_cat(label, ": grid '", name, "' interior max|diff| = ",
                     format_double(worst, 17), " at (", wz, ",", wy, ",", wx,
                     ") (margins ", margins[0], ",", margins[1], ",",
                     margins[2], ")");
    }
  }
  return {};
}

}  // namespace

namespace {

/// Structural comparison of the pieces the fixpoint test alone cannot
/// protect: a printer that silently *drops* a clause still reaches a
/// fixpoint, so decoration and shape are compared against the original
/// in-memory program as well.
std::string structural_diff(const ir::Program& a, const ir::Program& b) {
  if (a.stencils.size() != b.stencils.size()) return "stencil count differs";
  if (a.steps.size() != b.steps.size()) return "step count differs";
  if (a.arrays.size() != b.arrays.size()) return "array count differs";
  if (a.scalars.size() != b.scalars.size()) return "scalar count differs";
  if (a.copyin != b.copyin) return "copyin list differs";
  if (a.copyout != b.copyout) return "copyout list differs";
  for (std::size_t i = 0; i < a.stencils.size(); ++i) {
    const auto& sa = a.stencils[i];
    const auto& sb = b.stencils[i];
    if (sa.name != sb.name || sa.params != sb.params) {
      return str_cat("stencil ", i, ": signature differs");
    }
    if (sa.stmts.size() != sb.stmts.size()) {
      return str_cat("stencil '", sa.name, "': statement count differs");
    }
    if (sa.pragma.stream_iter != sb.pragma.stream_iter ||
        sa.pragma.block != sb.pragma.block ||
        sa.pragma.unroll != sb.pragma.unroll ||
        sa.pragma.occupancy != sb.pragma.occupancy) {
      return str_cat("stencil '", sa.name, "': #pragma lost or changed");
    }
    if (sa.resources.spaces != sb.resources.spaces) {
      return str_cat("stencil '", sa.name, "': #assign lost or changed");
    }
  }
  return {};
}

}  // namespace

CheckResult check_roundtrip(const ir::Program& prog) {
  const std::string s0 = dsl::print_program(prog);
  ir::Program p1;
  try {
    p1 = dsl::parse(s0);
  } catch (const Error& e) {
    return {false, str_cat("printed program fails to parse: ", e.what())};
  }
  const std::string s1 = dsl::print_program(p1);
  if (s1 != s0) {
    return {false, str_cat("print->parse->print is not a fixpoint: ",
                           first_line_diff(s0, s1))};
  }
  if (std::string d = structural_diff(prog, p1); !d.empty()) {
    return {false, str_cat("parse(print(p)) lost structure: ", d)};
  }
  return {};
}

CheckResult check_transforms(const ir::Program& prog, std::uint64_t seed) {
  const auto dev = gpumodel::p100();
  const sim::GridSet base = sim::GridSet::from_program(prog, seed);

  // Per-stencil statement-level transforms: decomposition and retiming
  // both preserve per-kernel semantics (retimed statements keep their
  // original offsets; the shift is realized in codegen).
  const int dims = static_cast<int>(prog.iterators.size());
  for (const auto& step : prog.steps) {
    if (step.kind != ir::Step::Kind::Call) continue;
    const ir::BoundStencil bound = ir::bind_call(prog, step.call);
    const ir::StencilInfo info = ir::analyze(prog, bound);
    const Margins margin = zyx_margins(prog, info.radius);

    sim::GridSet want = base.clone();
    sim::run_stencil_reference(prog, bound, want);

    ir::BoundStencil decomposed = bound;
    decomposed.stmts.clear();
    for (const auto& st : bound.stmts) {
      for (auto& d : transform::decompose_statement(st)) {
        decomposed.stmts.push_back(std::move(d));
      }
    }
    sim::GridSet got = base.clone();
    sim::run_stencil_reference(prog, decomposed, got);
    if (std::string d = diff_interior(want, got, info.outputs, margin,
                                      str_cat("decompose '", bound.name, "'"));
        !d.empty()) {
      return {false, d};
    }

    const transform::RetimeResult rt = transform::try_retime(bound.stmts,
                                                             dims - 1);
    ir::BoundStencil retimed = bound;
    retimed.stmts = rt.stmts;
    got = base.clone();
    sim::run_stencil_reference(prog, retimed, got);
    if (std::string d = diff_interior(want, got, info.outputs, margin,
                                      str_cat("retime '", bound.name, "'"));
        !d.empty()) {
      return {false, d};
    }

    // Folding is analysis-only: it must not crash and must report
    // non-negative savings on every valid statement list.
    const auto groups = transform::find_fold_groups(bound.stmts);
    if (transform::folding_flop_savings(bound.stmts, groups) < 0) {
      return {false, str_cat("fold '", bound.name,
                             "': negative flop savings")};
    }
  }

  // Whole-program transforms against the reference oracle.
  sim::GridSet ref = base.clone();
  sim::run_program_reference(prog, ref);
  const Margins margin = chain_margins(prog);

  if (all_top_level_calls(prog) && prog.steps.size() >= 2) {
    std::optional<ir::Program> fused;
    try {
      fused = transform::maxfuse_program(prog);
    } catch (const SemanticError&) {
      // Cross-point DAG: fusion is correctly refused; nothing to compare.
    }
    if (fused) {
      sim::GridSet got = base.clone();
      sim::run_program_reference(*fused, got);
      if (std::string d = diff_interior(ref, got, prog.copyout, margin,
                                        "maxfuse");
          !d.empty()) {
        return {false, d};
      }

      // Fission re-splits the fused monolith; both flavors must agree
      // with the original chain.
      const std::string mono = fused->stencils.front().name;
      const ir::Program triv = transform::trivial_fission(*fused, mono);
      got = base.clone();
      sim::run_program_reference(triv, got);
      if (std::string d = diff_interior(ref, got, prog.copyout, margin,
                                        "trivial-fission");
          !d.empty()) {
        return {false, d};
      }
      const ir::Program rec = transform::recompute_fission(*fused, mono, dev);
      got = base.clone();
      sim::run_program_reference(rec, got);
      if (std::string d = diff_interior(ref, got, prog.copyout, margin,
                                        "recompute-fission");
          !d.empty()) {
        return {false, d};
      }
    }
  }

  // Overlapped time tiling of iterate blocks (homogeneous Dirichlet
  // boundaries required — see zero_boundary).
  for (const auto& step : prog.steps) {
    if (step.kind != ir::Step::Kind::Iterate) continue;
    if (step.body.size() != 2 ||
        step.body[0].kind != ir::Step::Kind::Call ||
        step.body[1].kind != ir::Step::Kind::Swap) {
      continue;  // time_tile_iterate only handles call+swap bodies
    }
    const int x = step.iterations % 2 == 0 ? 2 : 1;
    sim::GridSet pre = base.clone();
    const std::int64_t bmargin =
        std::max(1, ir::analyze(prog, ir::bind_call(prog, step.body[0].call))
                        .order);
    for (const auto& [name, g] : pre.grids()) {
      (void)name;
      sim::zero_boundary(*g, bmargin);
    }
    sim::GridSet want = pre.clone();
    sim::run_program_reference(prog, want);

    try {
      const transform::TimeTiledKernel tt =
          transform::time_tile_iterate(prog, step, x);
      sim::GridSet fused = sim::GridSet::from_program(tt.augmented, seed);
      for (const auto& [name, g] : pre.grids()) fused.grid(name) = *g;
      codegen::KernelConfig cfg;
      cfg.block = {4, prog.iterators.size() >= 2 ? 4 : 1,
                   prog.iterators.size() >= 3 ? 2 : 1};
      cfg.time_tile = x;
      const auto plan = codegen::build_plan(tt.augmented, tt.stages, cfg,
                                            dev);
      for (std::int64_t inv = 0; inv < step.iterations / x; ++inv) {
        sim::execute_plan(plan, fused);
        fused.swap(step.body[1].swap.a, step.body[1].swap.b);
      }
      for (const auto& out : prog.copyout) {
        const double d = Grid3D::max_abs_diff(want.grid(out),
                                              fused.grid(out));
        if (!(d < kTol)) {
          return {false, str_cat("time-tile x=", x, ": grid '", out,
                                 "' max|diff| = ", format_double(d, 17))};
        }
      }
    } catch (const SemanticError&) {
      // The tiler refused this body shape: a designed refusal.
    } catch (const PlanError&) {
      // No feasible plan for the tiled kernel at this block size.
    }
  }

  return {};
}

CheckResult check_engines(const ir::Program& prog, std::uint64_t seed) {
  Rng rng(seed ^ 0x517AC0DEULL);
  const int dims = static_cast<int>(prog.iterators.size());
  const codegen::KernelConfig cfg = random_config(rng, dims);
  try {
    if (std::string d = engines_diff(prog, cfg, false, seed); !d.empty()) {
      return {false, str_cat("unfused cfg ", cfg.to_string(), ": ", d)};
    }
    if (all_top_level_calls(prog) && prog.steps.size() >= 2) {
      if (std::string d = engines_diff(prog, cfg, true, seed); !d.empty()) {
        return {false, str_cat("fused cfg ", cfg.to_string(), ": ", d)};
      }
    }
  } catch (const PlanError&) {
    // Infeasible config/pin combination: the planner's refusal is the
    // designed outcome, not an equivalence failure.
  }
  return {};
}

CheckResult check_tuner_determinism(const ir::Program& prog,
                                    std::uint64_t seed) {
  if (!all_top_level_calls(prog) || prog.stencils.empty()) {
    return {};  // tuning needs a plain call chain
  }
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;
  const int dims = static_cast<int>(prog.iterators.size());
  const autotune::PlanFactory factory =
      [&](const codegen::KernelConfig& cfg) {
        return codegen::build_plan(prog, transform::bind_all_calls(prog),
                                   cfg, dev, {});
      };
  const codegen::KernelConfig seed_cfg =
      codegen::config_from_pragma(prog, prog.stencils.front().pragma, dims);

  struct Run {
    autotune::TuneResult result;
    std::string journal_bytes;
  };
  const auto run_once = [&](int jobs) {
    const fs::path jpath =
        fs::temp_directory_path() /
        str_cat("artemis-verify-", seed, "-j", jobs, "-",
                static_cast<unsigned>(::getpid()), ".wal");
    std::error_code ec;
    fs::remove(jpath, ec);
    robust::TuningJournal journal;
    const auto load = journal.open(jpath.string(), "verify", false);
    ARTEMIS_CHECK_MSG(load.status != robust::JournalLoadResult::Status::IoError,
                      "cannot open temp journal " << jpath.string());
    autotune::TuneOptions to;
    to.jobs = jobs;
    to.journal = &journal;
    to.journal_scope = "verify";
    Run r;
    r.result = autotune::hierarchical_tune(factory, seed_cfg, dev, params,
                                           to);
    std::ifstream in(jpath);
    std::ostringstream buf;
    buf << in.rdbuf();
    r.journal_bytes = buf.str();
    fs::remove(jpath, ec);
    return r;
  };

  Run a, b, c;
  try {
    a = run_once(1);
    b = run_once(1);
    c = run_once(4);
  } catch (const PlanError&) {
    // No feasible configuration for this program: a refusal, not a
    // determinism failure.
    return {};
  }
  const auto cfg_str = [](const autotune::TuneResult& r) {
    return autotune::serialize_config(r.best.config);
  };
  const auto board_str = [&](const autotune::TuneResult& r) {
    std::string s;
    for (const auto& cand : r.leaderboard) {
      s += autotune::serialize_config(cand.config) + ";";
    }
    return s;
  };
  if (cfg_str(a.result) != cfg_str(b.result)) {
    return {false, str_cat("repeated jobs=1 runs tuned different plans: ",
                           cfg_str(a.result), " vs ", cfg_str(b.result))};
  }
  if (cfg_str(a.result) != cfg_str(c.result)) {
    return {false, str_cat("jobs=4 tuned a different plan: ",
                           cfg_str(a.result), " vs ", cfg_str(c.result))};
  }
  if (board_str(a.result) != board_str(c.result)) {
    return {false, "jobs=4 produced a different leaderboard"};
  }
  if (a.journal_bytes != b.journal_bytes) {
    return {false, "repeated jobs=1 runs wrote different journals"};
  }
  if (a.journal_bytes != c.journal_bytes) {
    return {false, "jobs=4 wrote a different journal than jobs=1"};
  }

  // The random-sampling tuner must also be jobs-invariant for a fixed
  // draw seed.
  autotune::TuneOptions to1, to4;
  to1.jobs = 1;
  to4.jobs = 4;
  try {
    const auto r1 = autotune::random_tune(factory, seed_cfg, dev, params, to1,
                                          24, seed);
    const auto r4 = autotune::random_tune(factory, seed_cfg, dev, params, to4,
                                          24, seed);
    if (cfg_str(r1) != cfg_str(r4)) {
      return {false, str_cat("random_tune jobs=4 picked a different plan: ",
                             cfg_str(r1), " vs ", cfg_str(r4))};
    }
  } catch (const PlanError&) {
    return {};
  }
  return {};
}

CheckResult check_variants(const ir::Program& prog, std::uint64_t seed) {
  const auto dev = gpumodel::p100();
  const int dims = static_cast<int>(prog.iterators.size());

  sim::GridSet ref = sim::GridSet::from_program(prog, seed);
  sim::run_program_reference(prog, ref);

  std::vector<std::pair<std::string, codegen::KernelConfig>> cfgs;
  {
    codegen::KernelConfig spatial;
    spatial.block = {4, dims >= 2 ? 4 : 1, dims >= 3 ? 2 : 1};
    cfgs.emplace_back("spatial", spatial);
    codegen::KernelConfig unrolled = spatial;
    unrolled.unroll[0] = 2;
    cfgs.emplace_back("spatial+unroll", unrolled);
    if (dims >= 2) {
      codegen::KernelConfig stream = spatial;
      stream.tiling = codegen::TilingScheme::StreamSerial;
      stream.stream_axis = dims - 1;
      stream.block[static_cast<std::size_t>(dims - 1)] = 1;
      cfgs.emplace_back("stream-serial", stream);
    }
  }

  codegen::KernelPlan last_plan;
  bool have_plan = false;
  for (const bool shmem : {true, false}) {
    for (const auto& [label, cfg] : cfgs) {
      codegen::BuildOptions bo;
      bo.use_shared_memory = shmem;
      sim::GridSet got = sim::GridSet::from_program(prog, seed);
      bool infeasible = false;
      for (const auto& step : ir::flatten_steps(prog)) {
        if (step.kind == ir::ExecStep::Kind::Swap) {
          got.swap(step.swap.a, step.swap.b);
          continue;
        }
        try {
          auto plan = codegen::build_plan(prog, {step.stencil}, cfg, dev, bo);
          sim::execute_plan(plan, got);
          last_plan = std::move(plan);
          have_plan = true;
        } catch (const PlanError&) {
          // A decorated pin this variant cannot honor; skip the variant.
          infeasible = true;
          break;
        }
      }
      if (infeasible) continue;
      // Every code version computes the same statement lists per call, so
      // all variants must agree with the reference bit-for-bit.
      if (std::string d = grids_diff(ref, got); !d.empty()) {
        return {false, str_cat("variant ", label, shmem ? "+shmem" : "+gmem",
                               ": ", d)};
      }
    }
  }

  // Profiler code-differencing smoke: the report on a real plan must be
  // finite and self-consistent (the differencing variant is analytic —
  // the grids above are the semantic half of the property).
  if (have_plan) {
    const auto rep = profile::profile_plan(last_plan, dev, {});
    if (!(rep.eval.time_s > 0) || !std::isfinite(rep.eval.time_s)) {
      return {false, str_cat("profiler reported non-finite time ",
                             format_double(rep.eval.time_s, 6))};
    }
    for (const double oi : {rep.oi_dram, rep.oi_tex, rep.oi_shm}) {
      if (!(oi >= 0) || !std::isfinite(oi)) {
        return {false, "profiler reported negative or non-finite OI"};
      }
    }
    if (rep.summary().empty()) {
      return {false, "profiler produced an empty summary"};
    }
  }
  return {};
}

CheckResult check_property(Property p, const ir::Program& prog,
                           std::uint64_t seed) {
  try {
    switch (p) {
      case Property::RoundTrip: return check_roundtrip(prog);
      case Property::TransformEquivalence:
        return check_transforms(prog, seed);
      case Property::EngineEquivalence: return check_engines(prog, seed);
      case Property::TunerDeterminism:
        return check_tuner_determinism(prog, seed);
      case Property::VariantEquivalence: return check_variants(prog, seed);
    }
    return {false, "unknown property"};
  } catch (const Error& e) {
    return {false, str_cat("exception: ", e.what())};
  } catch (const std::exception& e) {
    return {false, str_cat("exception: ", e.what())};
  }
}

}  // namespace artemis::verify
