#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "artemis/common/json.hpp"
#include "artemis/service/protocol.hpp"
#include "artemis/service/service.hpp"
#include "artemis/service/socket_server.hpp"
#include "artemis/storage/vfs.hpp"
#include "test_programs.hpp"

// Adversarial-input tests for the daemon protocol: truncated frames,
// oversized length prefixes, garbage bytes, malformed JSON and unknown
// methods must all produce structured errors (or a clean connection
// close) — never a crash, a hang, or a counter that stops adding up.

namespace artemis::service {
namespace {

using storage::MemVfs;

ServiceOptions service_options(storage::Vfs& vfs) {
  ServiceOptions opts;
  opts.context.vfs = &vfs;
  opts.context.store_root = "store";
  opts.journal_dir = "wal";
  return opts;
}

std::string frame_with_declared_length(std::uint32_t declared,
                                       const std::string& payload) {
  std::string out;
  out.push_back(static_cast<char>((declared >> 24) & 0xff));
  out.push_back(static_cast<char>((declared >> 16) & 0xff));
  out.push_back(static_cast<char>((declared >> 8) & 0xff));
  out.push_back(static_cast<char>(declared & 0xff));
  out += payload;
  return out;
}

TEST(ServiceFuzzTest, FrameRoundTripsAtAwkwardSizes) {
  std::mt19937 rng(20260808);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{4095}, std::size_t{4096}, std::size_t{70000}}) {
    std::string payload(n, '\0');
    for (auto& c : payload) c = static_cast<char>(rng() & 0xff);
    FrameDecoder dec;
    // Feed byte-by-byte for small frames to exercise every resume point.
    const std::string wire = encode_frame(payload);
    if (n < 8) {
      for (const char c : wire) {
        dec.feed(&c, 1);
      }
    } else {
      dec.feed(wire);
    }
    const auto out = dec.next();
    ASSERT_TRUE(out.has_value()) << "size " << n;
    EXPECT_EQ(*out, payload);
    EXPECT_EQ(dec.buffered(), 0u);
    EXPECT_FALSE(dec.failed());
  }
}

TEST(ServiceFuzzTest, TruncatedFrameIsPendingNotFailed) {
  FrameDecoder dec;
  const std::string wire = encode_frame("{\"method\":\"stats\"}");
  dec.feed(wire.substr(0, wire.size() - 5));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.failed());
  EXPECT_GT(dec.buffered(), 0u);
  // The remaining bytes complete the frame.
  dec.feed(wire.substr(wire.size() - 5));
  EXPECT_TRUE(dec.next().has_value());
}

TEST(ServiceFuzzTest, OversizedLengthPrefixPoisonsTheDecoder) {
  FrameDecoder dec;
  dec.feed(frame_with_declared_length(kMaxFrameBytes + 1, "xxxx"));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
  EXPECT_FALSE(dec.error().empty());
  // Poisoned for good: further bytes are ignored.
  dec.feed(encode_frame("{}"));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
}

TEST(ServiceFuzzTest, RandomBytesNeverCrashTheDecoder) {
  std::mt19937 rng(0xa27e315u);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    const int chunks = 1 + static_cast<int>(rng() % 8);
    for (int c = 0; c < chunks; ++c) {
      std::string junk(rng() % 300, '\0');
      for (auto& ch : junk) ch = static_cast<char>(rng() & 0xff);
      dec.feed(junk);
      // Drain whatever the decoder believes are frames; payloads are
      // attacker-controlled garbage and must simply come back as bytes.
      while (dec.next().has_value()) {
      }
    }
  }
}

TEST(ServiceFuzzTest, MalformedPayloadsGetStructuredErrors) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));
  const struct {
    const char* payload;
    const char* code;
  } cases[] = {
      {"", "bad_json"},
      {"{", "bad_json"},
      {"not json at all", "bad_json"},
      {"\xff\xfe\x00garbage", "bad_json"},
      {"[1,2,3]", "bad_request"},
      {"42", "bad_request"},
      {"\"a string\"", "bad_request"},
      {"{}", "bad_request"},
      {"{\"method\": 7}", "bad_request"},
      {"{\"method\": \"tune\", \"params\": []}", "bad_request"},
      {"{\"method\": \"tune\", \"params\": {}}", "bad_request"},
      {"{\"method\": \"tune\", \"params\": {\"source\": 3}}", "bad_request"},
      {"{\"method\": \"levitate\", \"params\": {}}", "unknown_method"},
      {"{\"method\": \"tune\", \"params\": {\"source\": \"slartibartfast\"}}",
       "compile_error"},
  };
  std::uint64_t handled = 0;
  for (const auto& c : cases) {
    const Json resp = Json::parse(svc.handle(c.payload));
    ++handled;
    ASSERT_FALSE(resp["ok"].as_bool()) << c.payload;
    EXPECT_EQ(resp["error"]["code"].as_string(), c.code) << c.payload;
    EXPECT_FALSE(resp["error"]["message"].as_string().empty());
  }
  const auto s = svc.stats_snapshot();
  EXPECT_EQ(s.requests, handled);
  EXPECT_EQ(s.errors, handled);
  EXPECT_EQ(s.tuner_runs, 0u);
}

TEST(ServiceFuzzTest, RequestIdIsEchoedVerbatimIncludingWeirdShapes) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));
  for (const char* id :
       {"17", "\"abc\"", "null", "[1,2]", "{\"nested\": true}"}) {
    const std::string payload =
        std::string("{\"id\": ") + id + ", \"method\": \"stats\"}";
    const Json resp = Json::parse(svc.handle(payload));
    EXPECT_EQ(resp["id"].dump(), Json::parse(id).dump()) << payload;
    EXPECT_TRUE(resp["ok"].as_bool());
  }
}

TEST(ServiceFuzzTest, RandomRequestsAlwaysAnswerAndCountersAddUp) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));
  std::mt19937 rng(0x5eed);
  const char* methods[] = {"compile", "tune",  "run",   "stats",
                           "",        "TUNE",  "tune ", "x"};
  std::uint64_t sent = 0, failures = 0;
  for (int i = 0; i < 120; ++i) {
    Json req = Json::object();
    if (rng() % 4 != 0) req.set("id", Json(static_cast<int>(rng() % 100)));
    req.set("method", Json(methods[rng() % 8]));
    Json params = Json::object();
    switch (rng() % 4) {
      case 0:
        break;  // no source
      case 1:
        params.set("source", Json(artemis::testing::kJacobiDsl));
        break;
      case 2:
        params.set("source", Json("parameter L=;"));
        break;
      default:
        params.set("source", Json(static_cast<int>(rng() % 7)));
        break;
    }
    req.set("params", std::move(params));
    const Json resp = Json::parse(svc.handle(req.dump()));
    ++sent;
    ASSERT_TRUE(resp.contains("ok"));
    if (!resp["ok"].as_bool()) {
      ++failures;
      EXPECT_FALSE(resp["error"]["code"].as_string().empty());
    } else {
      EXPECT_TRUE(resp.contains("result"));
    }
  }
  const auto s = svc.stats_snapshot();
  EXPECT_EQ(s.requests, sent);
  EXPECT_EQ(s.errors, failures);
}

// Wire-level adversaries against a live daemon.
class ServiceWireFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "artemis_fuzz_" +
            std::to_string(::getpid()) + ".sock";
    svc_ = std::make_unique<ArtemisService>(service_options(vfs_));
    server_ = std::make_unique<SocketServer>(*svc_, path_);
    thread_ = std::thread([this] { server_->serve(); });
  }

  void TearDown() override {
    server_->stop();
    thread_.join();
    server_.reset();
    svc_.reset();
  }

  MemVfs vfs_;
  std::string path_;
  std::unique_ptr<ArtemisService> svc_;
  std::unique_ptr<SocketServer> server_;
  std::thread thread_;
};

TEST_F(ServiceWireFuzzTest, OversizedPrefixGetsOneErrorThenHangup) {
  UnixClient client(path_);
  client.send_raw(frame_with_declared_length(0xffffffffu, ""));
  std::string payload;
  ASSERT_TRUE(client.read_response(&payload));
  const Json resp = Json::parse(payload);
  EXPECT_FALSE(resp["ok"].as_bool());
  EXPECT_EQ(resp["error"]["code"].as_string(), "bad_frame");
  // The server hangs up: the next read is EOF, not a hang.
  EXPECT_FALSE(client.read_response(&payload));
}

TEST_F(ServiceWireFuzzTest, TruncatedFrameThenHangupIsHarmless) {
  {
    UnixClient client(path_);
    client.send_raw(frame_with_declared_length(600, "only these bytes"));
    // Close with the frame forever incomplete.
  }
  // The daemon is still healthy for the next client.
  UnixClient client(path_);
  const Json resp =
      client.call(Json::parse("{\"id\": 1, \"method\": \"stats\"}"));
  ASSERT_TRUE(resp["ok"].as_bool());
}

TEST_F(ServiceWireFuzzTest, GarbagePayloadKeepsTheConnectionUsable) {
  UnixClient client(path_);
  // A well-framed frame full of junk: framing stays in sync, so the
  // structured bad_json error arrives and the SAME connection then
  // serves a valid request.
  const std::string junk("\x00\x01garbage\xff\x7f{]", 13);
  EXPECT_EQ(Json::parse(client.round_trip(junk))["error"]["code"].as_string(),
            "bad_json");
  const Json resp =
      client.call(Json::parse("{\"id\": 2, \"method\": \"stats\"}"));
  EXPECT_TRUE(resp["ok"].as_bool());
}

TEST_F(ServiceWireFuzzTest, RandomFramedGarbageNeverKillsTheDaemon) {
  std::mt19937 rng(0xfa22);
  for (int round = 0; round < 25; ++round) {
    UnixClient client(path_);
    const int frames = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < frames; ++f) {
      std::string junk(rng() % 200, '\0');
      for (auto& c : junk) c = static_cast<char>(rng() & 0xff);
      std::string payload;
      try {
        payload = client.round_trip(junk);
      } catch (const Error&) {
        break;  // connection torn down mid-conversation: acceptable
      }
      const Json resp = Json::parse(payload);
      ASSERT_TRUE(resp.contains("ok"));
      EXPECT_FALSE(resp["ok"].as_bool());
    }
  }
  // After all the abuse the daemon still answers arithmetic.
  UnixClient client(path_);
  const Json resp =
      client.call(Json::parse("{\"id\": 9, \"method\": \"stats\"}"));
  ASSERT_TRUE(resp["ok"].as_bool());
  EXPECT_EQ(resp["result"]["service"]["tuner_runs"].as_int(), 0);
}

}  // namespace
}  // namespace artemis::service
