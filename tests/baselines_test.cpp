#include <gtest/gtest.h>

#include "artemis/baselines/baselines.hpp"
#include "artemis/stencils/benchmarks.hpp"

namespace artemis::baselines {
namespace {

TEST(Baselines, FiveStrategiesInFigure5Order) {
  const auto strategies = figure5_strategies();
  ASSERT_EQ(strategies.size(), 5u);
  EXPECT_EQ(strategies[0].name, "ppcg");
  EXPECT_EQ(strategies[1].name, "global-stream");
  EXPECT_EQ(strategies[2].name, "global");
  EXPECT_EQ(strategies[3].name, "stencilgen");
  EXPECT_EQ(strategies[4].name, "artemis");
}

TEST(Baselines, StrategyRestrictionsEncodePaper) {
  const auto ppcg = driver::ppcg_strategy();
  EXPECT_FALSE(ppcg.allow_streaming);
  EXPECT_FALSE(ppcg.allow_fission);
  EXPECT_GT(ppcg.time_multiplier, 1.0);  // complex conditionals

  const auto sg = driver::stencilgen_strategy();
  EXPECT_TRUE(sg.reject_mixed_dims);
  EXPECT_TRUE(sg.tune.disable_unroll);
  EXPECT_FALSE(sg.tune.tune_prefetch);
  EXPECT_FALSE(sg.tune.tune_perspective);

  const auto gs = driver::global_strategy(true);
  EXPECT_FALSE(gs.use_shared_memory);
  EXPECT_TRUE(gs.allow_streaming);
  EXPECT_FALSE(driver::global_strategy(false).allow_streaming);
}

TEST(Baselines, CompareGeneratorsOnSmallSmoother) {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("7pt-smoother", 128, 4);
  const auto row = compare_generators("7pt-smoother", prog, dev);
  ASSERT_EQ(row.generators.size(), 5u);
  for (const auto& g : row.generators) {
    ASSERT_TRUE(g.result.has_value()) << g.generator;
    EXPECT_GT(g.tflops(), 0.0) << g.generator;
  }
  EXPECT_TRUE(row.artemis_wins());
  EXPECT_LE(row.by_name("global-stream").tflops(),
            row.by_name("global").tflops());
}

TEST(Baselines, StencilgenFailureIsRecordedNotThrown) {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("addsgd4", 96);
  const auto row = compare_generators("addsgd4", prog, dev);
  const auto& sg = row.by_name("stencilgen");
  EXPECT_FALSE(sg.result.has_value());
  EXPECT_NE(sg.failure.find("different dimensions"), std::string::npos);
  EXPECT_EQ(sg.tflops(), 0.0);
  // The failing generator must not poison the win computation.
  EXPECT_TRUE(row.artemis_wins(0.05));
}

TEST(Baselines, UnknownGeneratorNameThrows) {
  ComparisonRow row;
  EXPECT_THROW(row.by_name("nope"), Error);
}

}  // namespace
}  // namespace artemis::baselines
