#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "artemis/codegen/plan.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::autotune {

/// Serialize a kernel configuration to a single-line, human-readable
/// key=value record, and parse it back. Round-trips exactly.
std::string serialize_config(const codegen::KernelConfig& cfg);
codegen::KernelConfig parse_config(const std::string& line);

/// One cached tuning outcome.
struct CacheEntry {
  codegen::KernelConfig config;
  double time_s = 0;
  double tflops = 0;
};

/// Outcome of loading a cache file or text blob. Distinguishes a missing
/// file (normal on the first run) from an unreadable one (permissions,
/// I/O failure), and counts the records merged vs. the rows dropped —
/// broken down by *why* each row was dropped, because the reasons demand
/// different reactions: crc_mismatch means the medium corrupts data,
/// torn_tail means a crash interrupted a save, version_skew means another
/// binary generation owns the file, malformed means someone hand-edited
/// it. `skipped` stays the total across all four.
struct CacheLoadReport {
  enum class Status {
    Ok,       ///< read completed (possibly with skipped rows)
    Missing,  ///< file does not exist — expected on a cold start
    IoError,  ///< file exists but could not be opened or read
  };
  Status status = Status::Ok;
  int loaded = 0;        ///< records merged into the cache
  int skipped = 0;       ///< total rows dropped (= sum of the below)
  int crc_mismatch = 0;  ///< v2 rows whose checksum failed
  int torn_tail = 0;     ///< unterminated final fragment (crash mid-save)
  int version_skew = 0;  ///< header from an unsupported format version
  int malformed = 0;     ///< rows that did not parse
  bool ok() const { return status == Status::Ok; }
};

/// A persistent store of tuning results, keyed by a caller-chosen string
/// (e.g. "<benchmark>/<device>/<version>/x<tile>"). Section VI-A: "the
/// deep tuning is done only once. For most applications, its cost will be
/// amortized over the stencil invocations" — this is where the amortized
/// results live between runs.
///
/// File format (v2): a version header, then one checksummed entry per
/// line,
///   #artemis-tuning-cache v2
///   <crc32 hex> \t <key> \t <time_s> \t <tflops> \t <serialized config>
/// where the checksum covers everything after the first tab. Loading
/// also accepts the legacy headerless v1 shape (no checksum column).
/// Malformed, checksum-failed, or torn rows are dropped and counted by
/// class (forward compatibility and crash tolerance); an unsupported
/// version header stops the load and reports version skew instead of
/// misparsing a future format.
///
/// All member functions are thread-safe: parallel tuning shards may
/// get()/put() concurrently while another thread saves a snapshot.
class TuningCache {
 public:
  TuningCache() = default;

  void put(const std::string& key, const CacheEntry& entry);
  std::optional<CacheEntry> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Serialize all entries / load entries from text. load_text merges
  /// into the current contents (later keys win) and tolerates partially
  /// corrupt input: malformed rows are counted and skipped, intact rows
  /// around them still load.
  std::string save_text() const;
  CacheLoadReport load_text(const std::string& text);

  /// File convenience wrappers over a Vfs (nullptr = the real
  /// filesystem). save_file publishes atomically — write to a sibling
  /// temp, fsync, rename over `path` — so a crash mid-save leaves the
  /// previous cache intact, never a half-written file. load_file merges
  /// and reports (without throwing) whether the file was missing,
  /// unreadable, or loaded — and how many rows were dropped, by class.
  bool save_file(const std::string& path,
                 storage::Vfs* vfs = nullptr) const;
  CacheLoadReport load_file(const std::string& path,
                            storage::Vfs* vfs = nullptr);

 private:
  mutable std::mutex mu_;  ///< guards entries_
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace artemis::autotune
