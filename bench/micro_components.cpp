// Component microbenchmarks (google-benchmark): throughput of the DSL
// frontend, IR analysis, plan construction, the analytic performance
// model, and the tiled functional executor. These are engineering-health
// numbers for the framework itself (the paper's tables/figures live in
// the sibling harnesses).

#include <benchmark/benchmark.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

namespace {

void BM_ParseJacobi(benchmark::State& state) {
  const std::string src = stencils::benchmark("7pt-smoother").dsl(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::parse(src));
  }
}
BENCHMARK(BM_ParseJacobi);

void BM_ParseRhs4sgcurv(benchmark::State& state) {
  const std::string src = stencils::benchmark("rhs4sgcurv").dsl(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::parse(src));
  }
}
BENCHMARK(BM_ParseRhs4sgcurv);

void BM_AnalyzeRhs4center(benchmark::State& state) {
  const auto prog = stencils::benchmark_program("rhs4center", 64);
  const auto bound = ir::bind_call(prog, prog.steps[0].call);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::analyze(prog, bound));
  }
}
BENCHMARK(BM_AnalyzeRhs4center);

void BM_BuildPlan(benchmark::State& state) {
  const auto prog = stencils::benchmark_program("hypterm", 320);
  const auto dev = gpumodel::p100();
  codegen::KernelConfig cfg;
  cfg.tiling = codegen::TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {16, 8, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev));
  }
}
BENCHMARK(BM_BuildPlan);

void BM_EvaluatePlan(benchmark::State& state) {
  const auto prog = stencils::benchmark_program("hypterm", 320);
  const auto dev = gpumodel::p100();
  codegen::KernelConfig cfg;
  cfg.tiling = codegen::TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {16, 8, 1};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpumodel::evaluate(plan, dev));
  }
}
BENCHMARK(BM_EvaluatePlan);

void BM_ExecutorJacobi(benchmark::State& state) {
  const auto extent = state.range(0);
  const auto prog =
      stencils::benchmark_program("7pt-smoother", extent, 1);
  const auto dev = gpumodel::p100();
  codegen::KernelConfig cfg;
  cfg.block = {8, 8, 4};
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;
  const auto plan = codegen::build_plan_for_call(
      prog, prog.steps[0].body[0].call, cfg, dev, opts);
  sim::GridSet gs = sim::GridSet::from_program(prog, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::execute_plan(plan, gs));
  }
  state.SetItemsProcessed(state.iterations() * extent * extent * extent);
}
BENCHMARK(BM_ExecutorJacobi)->Arg(16)->Arg(32)->Arg(48);

void BM_ReferenceJacobi(benchmark::State& state) {
  const auto extent = state.range(0);
  const auto prog =
      stencils::benchmark_program("7pt-smoother", extent, 1);
  const auto bound = ir::bind_call(prog, prog.steps[0].body[0].call);
  sim::GridSet gs = sim::GridSet::from_program(prog, 1);
  for (auto _ : state) {
    sim::run_stencil_reference(prog, bound, gs);
  }
  state.SetItemsProcessed(state.iterations() * extent * extent * extent);
}
BENCHMARK(BM_ReferenceJacobi)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
