#pragma once

// Shared DSL sources used across the test suite.

namespace artemis::testing {

/// Listing 1 of the paper: 3D 7-point Jacobi from HPGMG, with the iterate
/// extension used for time-iterated execution.
inline const char* kJacobiDsl = R"(
parameter L=16, M=16, N=16;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin out, in, h2inv, a, b;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
)";

/// Iterative variant: 4 ping-pong time steps. Note that `out` is NOT
/// copied in: the scratch buffer starts zeroed, so overlapped time tiling
/// (whose intermediates are zero-initialized) matches the ping-pong
/// reference exactly, boundaries included.
inline const char* kJacobiIterativeDsl = R"(
parameter L=12, M=12, N=12;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
iterate 4 {
  jacobi (out, in, h2inv, a, b);
  swap (out, in);
}
copyout in;
)";

/// A two-stage stencil DAG with a 1D coefficient array and #assign clauses,
/// exercising mixed dimensionality and resource directives.
inline const char* kDagDsl = R"(
parameter L=10, M=10, N=10;
iterator k, j, i;
double u[L,M,N], tmp[L,M,N], out[L,M,N], w[N], alpha;
copyin u, w, alpha;
#pragma block (16,8)
stencil blurx (T, U, W) {
  #assign shmem (U), gmem (W)
  T[k][j][i] = W[i] * (U[k][j][i-1] + U[k][j][i] + U[k][j][i+1]);
}
stencil blury (O, T, alpha) {
  O[k][j][i] = alpha * (T[k][j-1][i] + T[k][j][i] + T[k][j+1][i]);
}
blurx (tmp, u, w);
blury (out, tmp, alpha);
copyout out;
)";

}  // namespace artemis::testing
