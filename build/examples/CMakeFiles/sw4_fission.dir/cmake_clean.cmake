file(REMOVE_RECURSE
  "CMakeFiles/sw4_fission.dir/sw4_fission.cpp.o"
  "CMakeFiles/sw4_fission.dir/sw4_fission.cpp.o.d"
  "sw4_fission"
  "sw4_fission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw4_fission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
