#include <gtest/gtest.h>

#include <algorithm>

#include "artemis/dsl/parser.hpp"
#include "artemis/ir/analysis.hpp"
#include "test_programs.hpp"

namespace artemis::ir {
namespace {

using artemis::testing::kDagDsl;
using artemis::testing::kJacobiDsl;
using artemis::testing::kJacobiIterativeDsl;

TEST(Binding, SubstitutesActualNames) {
  const Program p = dsl::parse(kJacobiDsl);
  const BoundStencil b = bind_call(p, p.steps[0].call);
  EXPECT_EQ(b.name, "jacobi");
  ASSERT_EQ(b.stmts.size(), 2u);
  EXPECT_EQ(b.stmts[1].lhs_name, "out");
  bool saw_in = false;
  visit(*b.stmts[1].rhs, [&](const Expr& e) {
    if (e.kind == ExprKind::ArrayRef) {
      EXPECT_EQ(e.name, "in");
      saw_in = true;
    }
  });
  EXPECT_TRUE(saw_in);
}

TEST(Binding, PrefixesLocals) {
  const Program p = dsl::parse(kJacobiDsl);
  const BoundStencil b = bind_call(p, p.steps[0].call, "s0_");
  EXPECT_EQ(b.stmts[0].lhs_name, "s0_c");
  bool saw_local = false;
  visit(*b.stmts[1].rhs, [&](const Expr& e) {
    if (e.kind == ExprKind::ScalarRef && e.name == "s0_c") saw_local = true;
  });
  EXPECT_TRUE(saw_local);
}

TEST(Binding, MapsResourceAssignments) {
  const Program p = dsl::parse(kDagDsl);
  const BoundStencil b = bind_call(p, p.steps[0].call);
  EXPECT_EQ(b.resources.lookup("u"), MemSpace::Shared);
  EXPECT_EQ(b.resources.lookup("w"), MemSpace::Global);
}

TEST(FlattenSteps, ExpandsIterate) {
  const Program p = dsl::parse(kJacobiIterativeDsl);
  const auto steps = flatten_steps(p);
  ASSERT_EQ(steps.size(), 8u);  // 4 iterations x (call + swap)
  EXPECT_EQ(steps[0].kind, ExecStep::Kind::Stencil);
  EXPECT_EQ(steps[1].kind, ExecStep::Kind::Swap);
  EXPECT_EQ(steps[7].kind, ExecStep::Kind::Swap);
}

TEST(Analyze, JacobiCharacteristics) {
  const Program p = dsl::parse(kJacobiDsl);
  const StencilInfo info = analyze(p, bind_call(p, p.steps[0].call));
  EXPECT_EQ(info.order, 1);
  EXPECT_EQ(info.radius, (std::array<int, 3>{1, 1, 1}));
  // Listing 1 body: 1 (c = b*h2inv) + per-point ops. The paper's Table I
  // counts 10 FLOPs for the 7pt smoother update itself.
  EXPECT_EQ(info.num_io_arrays, 2);
  EXPECT_EQ(info.outputs, (std::vector<std::string>{"out"}));
  ASSERT_EQ(info.inputs.size(), 1u);
  EXPECT_EQ(info.inputs[0], "in");
  EXPECT_GE(info.flops_per_point, 10);
  EXPECT_TRUE(info.scalars_read.count("h2inv"));
  EXPECT_TRUE(info.scalars_read.count("a"));
  // The local temp c is not an external scalar.
  EXPECT_FALSE(info.scalars_read.count("c"));
}

TEST(Analyze, DistinctReadOffsets) {
  const Program p = dsl::parse(kJacobiDsl);
  const StencilInfo info = analyze(p, bind_call(p, p.steps[0].call));
  const auto& in_info = info.arrays.at("in");
  // 7 points, but A[k][j][i] appears twice syntactically -> 7 distinct.
  EXPECT_EQ(in_info.read_offsets.size(), 7u);
  EXPECT_TRUE(in_info.read);
  EXPECT_FALSE(in_info.written);
}

TEST(Analyze, OneDArrayRadius) {
  const Program p = dsl::parse(kDagDsl);
  const StencilInfo info = analyze(p, bind_call(p, p.steps[0].call));
  const auto& w_info = info.arrays.at("w");
  EXPECT_EQ(w_info.dims, 1);
  EXPECT_EQ(w_info.radius, (std::array<int, 3>{0, 0, 0}));
  const auto& u_info = info.arrays.at("u");
  EXPECT_EQ(u_info.radius, (std::array<int, 3>{0, 0, 1}));
}

TEST(Analyze, HighOrderRadius) {
  const Program p = dsl::parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N];
    stencil s (B, A) {
      B[k][j][i] = A[k-2][j][i] + A[k][j+3][i] + A[k][j][i-1];
    }
    s (b, a);
  )");
  const StencilInfo info = analyze(p, bind_call(p, p.steps[0].call));
  EXPECT_EQ(info.radius, (std::array<int, 3>{2, 3, 1}));
  EXPECT_EQ(info.order, 3);
}

TEST(StmtGraph, LocalTempDependence) {
  const Program p = dsl::parse(kJacobiDsl);
  const BoundStencil b = bind_call(p, p.steps[0].call);
  const StmtGraph g = build_stmt_graph(b.stmts);
  ASSERT_EQ(g.num_stmts(), 2);
  // stmt 0 defines c, stmt 1 uses it.
  ASSERT_EQ(g.succs[0].size(), 1u);
  EXPECT_EQ(g.succs[0][0], 1);
  EXPECT_EQ(g.preds[1], (std::vector<int>{0}));
}

TEST(StmtGraph, AccumulateSelfDependence) {
  const Program p = dsl::parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i]; B[i] += A[i-1]; }
    s (b, a);
  )");
  const BoundStencil b = bind_call(p, p.steps[0].call);
  const StmtGraph g = build_stmt_graph(b.stmts);
  ASSERT_EQ(g.succs[0].size(), 1u);
  EXPECT_EQ(g.succs[0][0], 1);
}

TEST(CallGraph, ProducerConsumer) {
  const Program p = dsl::parse(kDagDsl);
  std::vector<BoundStencil> calls;
  for (const auto& step : p.steps) {
    calls.push_back(bind_call(p, step.call));
  }
  const CallGraph g = build_call_graph(calls);
  ASSERT_EQ(g.succs.size(), 2u);
  EXPECT_EQ(g.succs[0], (std::vector<int>{1}));  // blurx -> blury via tmp
  EXPECT_TRUE(g.succs[1].empty());
  EXPECT_EQ(g.preds[1], (std::vector<int>{0}));
}

TEST(CallGraph, WriteAfterWriteIsDependence) {
  const Program p = dsl::parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i]; }
    s (b, a);
    s (b, a);
  )");
  std::vector<BoundStencil> calls;
  for (const auto& step : p.steps) calls.push_back(bind_call(p, step.call));
  const CallGraph g = build_call_graph(calls);
  EXPECT_EQ(g.succs[0], (std::vector<int>{1}));
}

TEST(Analyze, FlopCountMatchesExprCount) {
  const Program p = dsl::parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i] * 2.0 + A[i-1] / 3.0 - 1.0; }
    s (b, a);
  )");
  const StencilInfo info = analyze(p, bind_call(p, p.steps[0].call));
  EXPECT_EQ(info.flops_per_point, 4);  // * + / -
}

}  // namespace
}  // namespace artemis::ir
