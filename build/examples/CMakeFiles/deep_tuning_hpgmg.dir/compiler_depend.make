# Empty compiler generated dependencies file for deep_tuning_hpgmg.
# This may be replaced when dependencies are built.
