#include "artemis/ir/expr.hpp"

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::ir {

ExprPtr number(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Number;
  e->number = v;
  return e;
}

ExprPtr scalar_ref(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::ScalarRef;
  e->name = std::move(name);
  return e;
}

ExprPtr array_ref(std::string array, std::vector<IndexExpr> indices) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::ArrayRef;
  e->name = std::move(array);
  e->indices = std::move(indices);
  return e;
}

ExprPtr unary_neg(ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Unary;
  e->args = {std::move(a)};
  return e;
}

ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Binary;
  e->bop = op;
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::Call;
  e->name = std::move(fn);
  e->args = std::move(args);
  return e;
}

const char* bin_op_token(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
  }
  return "?";
}

namespace {

int precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Binary:
      return (e.bop == BinOp::Add || e.bop == BinOp::Sub) ? 1 : 2;
    case ExprKind::Unary:
      return 3;
    default:
      return 4;
  }
}

std::string index_to_string(const IndexExpr& ix,
                            const std::vector<std::string>& iters) {
  if (ix.is_const()) return std::to_string(ix.offset);
  ARTEMIS_CHECK(ix.iter < static_cast<int>(iters.size()));
  std::string s = iters[static_cast<std::size_t>(ix.iter)];
  if (ix.offset > 0) s += "+" + std::to_string(ix.offset);
  if (ix.offset < 0) s += std::to_string(ix.offset);
  return s;
}

std::string to_string_impl(const Expr& e, const std::vector<std::string>& iters,
                           int parent_prec) {
  std::string out;
  switch (e.kind) {
    case ExprKind::Number:
      out = format_double(e.number, 17);
      if (out.find('.') == std::string::npos &&
          out.find('e') == std::string::npos &&
          out.find("inf") == std::string::npos) {
        out += ".0";
      }
      break;
    case ExprKind::ScalarRef:
      out = e.name;
      break;
    case ExprKind::ArrayRef: {
      out = e.name;
      for (const auto& ix : e.indices) {
        out += "[" + index_to_string(ix, iters) + "]";
      }
      break;
    }
    case ExprKind::Unary:
      out = "-" + to_string_impl(*e.args[0], iters, precedence(e));
      break;
    case ExprKind::Binary: {
      const int prec = precedence(e);
      // Right operand of - and / needs parens at equal precedence.
      out = to_string_impl(*e.args[0], iters, prec) + " " +
            bin_op_token(e.bop) + " " +
            to_string_impl(*e.args[1], iters, prec + 1);
      break;
    }
    case ExprKind::Call: {
      std::vector<std::string> parts;
      parts.reserve(e.args.size());
      for (const auto& a : e.args) parts.push_back(to_string_impl(*a, iters, 0));
      out = e.name + "(" + join(parts, ", ") + ")";
      return out;  // calls never need parens
    }
  }
  if (precedence(e) < parent_prec) out = "(" + out + ")";
  return out;
}

}  // namespace

std::string to_string(const Expr& e, const std::vector<std::string>& iters) {
  return to_string_impl(e, iters, 0);
}

bool equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::Number:
      return a.number == b.number;
    case ExprKind::ScalarRef:
      return a.name == b.name;
    case ExprKind::ArrayRef:
      return a.name == b.name && a.indices == b.indices;
    case ExprKind::Unary:
      return equal(*a.args[0], *b.args[0]);
    case ExprKind::Binary:
      return a.bop == b.bop && equal(*a.args[0], *b.args[0]) &&
             equal(*a.args[1], *b.args[1]);
    case ExprKind::Call: {
      if (a.name != b.name || a.args.size() != b.args.size()) return false;
      for (std::size_t i = 0; i < a.args.size(); ++i) {
        if (!equal(*a.args[i], *b.args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::int64_t flop_count(const Expr& e) {
  std::int64_t flops = 0;
  visit(e, [&flops](const Expr& n) {
    switch (n.kind) {
      case ExprKind::Unary:
      case ExprKind::Binary:
      case ExprKind::Call:
        ++flops;
        break;
      default:
        break;
    }
  });
  return flops;
}

void visit(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& a : e.args) visit(*a, fn);
}

ExprPtr rewrite(const ExprPtr& e,
                const std::function<ExprPtr(const ExprPtr&)>& fn) {
  ExprPtr reconstructed = e;
  if (!e->args.empty()) {
    std::vector<ExprPtr> new_args;
    new_args.reserve(e->args.size());
    bool changed = false;
    for (const auto& a : e->args) {
      ExprPtr na = rewrite(a, fn);
      changed |= (na != a);
      new_args.push_back(std::move(na));
    }
    if (changed) {
      auto copy = std::make_shared<Expr>(*e);
      copy->args = std::move(new_args);
      reconstructed = copy;
    }
  }
  if (ExprPtr replaced = fn(reconstructed)) return replaced;
  return reconstructed;
}

}  // namespace artemis::ir
