#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "artemis/storage/vfs.hpp"

namespace artemis::robust {

/// One journaled evaluation outcome. `status` is a RunStatus name ("ok",
/// "infeasible", "crash", "timeout", "unstable", "quarantined"); timing
/// fields are meaningful for "ok" records only.
struct JournalRecord {
  std::string status;
  double time_s = 0;
  double tflops = 0;
};

/// How loading an existing journal went.
struct JournalLoadResult {
  enum class Status {
    Fresh,            ///< no usable prior journal; starting a new one
    Replayed,         ///< prior records loaded and available for replay
    Missing,          ///< no file at the path (fresh start)
    VersionMismatch,  ///< header from an incompatible journal version
    KeyMismatch,      ///< journal belongs to a different run key
    IoError,          ///< file exists but cannot be read/written
  };
  Status status = Status::Fresh;
  std::size_t replayed = 0;  ///< records available for replay
  std::size_t skipped = 0;   ///< malformed lines dropped (reported)
  bool torn_tail = false;    ///< final line was torn by a crash and dropped
  std::string message;       ///< human-readable detail for non-Ok statuses
};

/// A crash-safe, append-only write-ahead journal of candidate
/// evaluations, layered beside the tuning cache (same tab-separated
/// one-line-per-record shape, see docs/ROBUSTNESS.md):
///
///   #artemis-tuning-journal v1 key=<run key>
///   <status> \t <time_s> \t <tflops> \t <candidate key>
///
/// Durability guarantee: every record is written AND fsynced before
/// record() returns — not merely flushed to the OS — so a machine that
/// loses power at any instant loses at most the one record being
/// written; the loader tolerates that torn final line (and any malformed
/// interior lines) by dropping and reporting them instead of rejecting
/// the file. Torn-tail healing is itself crash-safe: the clean prefix is
/// republished via write-temp + fsync + atomic rename, never by
/// truncating the journal in place. Duplicate candidate keys are legal;
/// the later record wins.
///
/// Concurrency: open() is single-threaded setup; after it, lookup() is
/// lock-free (the replay map is immutable for the life of the run) and
/// record() serializes appends behind a mutex. The parallel tuner keeps
/// the journal's byte layout deterministic on top of that by committing
/// records from its ordered reduction only — one writer, enumeration
/// order — never directly from evaluation shards.
class TuningJournal {
 public:
  static constexpr int kVersion = 1;

  /// Default: the real filesystem. Tests and the crash-consistency
  /// harness inject a MemVfs or FaultVfs instead.
  TuningJournal() = default;
  explicit TuningJournal(storage::Vfs& vfs) : vfs_(&vfs) {}

  /// Open the journal for appending. With `resume` set, records from a
  /// compatible existing journal (same version and run key) are loaded
  /// first and become visible through lookup(); a missing or
  /// incompatible journal is reported and replaced by a fresh one. A
  /// torn tail is healed: the file is truncated back to its last intact
  /// record before appending continues.
  JournalLoadResult open(const std::string& path,
                         const std::string& run_key, bool resume);

  /// True once open() succeeded and records can be appended. A journal
  /// whose filesystem starts failing mid-run deactivates itself (tuning
  /// continues without write-ahead protection) rather than aborting.
  bool active() const {
    const std::lock_guard<std::mutex> lock(write_mu_);
    return out_ != nullptr;
  }

  /// Replayable record for a candidate key, if a prior run evaluated it.
  std::optional<JournalRecord> lookup(const std::string& key) const;

  /// Write-ahead one evaluation outcome: appended and fsynced before
  /// returning. Keys must not contain tabs or newlines. No-op when the
  /// journal is not active; a write failure deactivates the journal
  /// (counted as journal.write_errors). Thread-safe.
  void record(const std::string& key, const std::string& status,
              double time_s, double tflops);

  std::size_t replay_size() const { return entries_.size(); }
  std::size_t recorded() const {
    const std::lock_guard<std::mutex> lock(write_mu_);
    return recorded_;
  }

 private:
  storage::Vfs& vfs() const {
    return vfs_ != nullptr ? *vfs_ : storage::real_vfs();
  }

  std::map<std::string, JournalRecord> entries_;  ///< loaded for replay
  storage::Vfs* vfs_ = nullptr;  ///< nullptr = real_vfs() (non-owning)
  mutable std::mutex write_mu_;  ///< guards out_ and recorded_
  std::unique_ptr<storage::VfsFile> out_;
  std::size_t recorded_ = 0;
};

/// Parse journal text (without touching the filesystem): fills `out` with
/// the replayable records and returns the same diagnostics open() would.
/// Exposed for tests and tooling.
JournalLoadResult parse_journal_text(const std::string& text,
                                     const std::string& run_key,
                                     std::map<std::string, JournalRecord>* out);

}  // namespace artemis::robust
