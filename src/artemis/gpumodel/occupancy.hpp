#pragma once

#include <cstdint>

#include "artemis/gpumodel/device.hpp"

namespace artemis::gpumodel {

/// Inputs to the occupancy computation for one kernel launch.
struct KernelResources {
  int threads_per_block = 0;
  int regs_per_thread = 0;
  std::int64_t shmem_per_block = 0;
};

/// Result of the CUDA-style occupancy calculation.
struct Occupancy {
  int active_blocks_per_sm = 0;
  int active_warps_per_sm = 0;
  double fraction = 0.0;  ///< active threads / max threads per SM

  /// Which resource capped the block count (for hints/diagnostics).
  enum class Limiter { Threads, Blocks, Registers, SharedMemory, Invalid };
  Limiter limiter = Limiter::Invalid;
};

const char* limiter_name(Occupancy::Limiter l);

/// Compute achievable occupancy for a launch on a device, mirroring the
/// CUDA occupancy calculator: the minimum over the thread, block-slot,
/// register-file, and shared-memory constraints. A launch that cannot run
/// at all (block too large, registers over the per-thread cap, shared
/// memory over the per-block cap) yields zero occupancy with
/// Limiter::Invalid.
Occupancy compute_occupancy(const DeviceSpec& dev, const KernelResources& r);

}  // namespace artemis::gpumodel
