#pragma once

#include <optional>
#include <string>

#include "artemis/telemetry/report.hpp"

namespace artemis::telemetry {

/// Where one CLI run's telemetry should land.
struct RunSinksOptions {
  std::string trace_path;    ///< Chrome/Perfetto trace-event file
  std::string report_path;   ///< machine-readable run report
  std::string metrics_path;  ///< measured-metrics JSON (--metrics)
  bool summary = false;      ///< print the human-readable summary
};

/// Scope-exit telemetry flushing for CLI runs.
///
/// Construction enables the global collector when any sink was requested;
/// the destructor flushes every requested sink with whatever was recorded
/// up to that point. A run that throws therefore still leaves valid —
/// truncated but parseable — JSON on disk, with `"completed": false` in
/// each document so downstream tooling can tell an aborted run from a
/// finished one. The normal path calls finalize(), which flushes with
/// `"completed": true` and disarms the destructor.
///
/// The destructor never throws: flush failures during unwinding are
/// reported on stderr and swallowed.
class RunSinks {
 public:
  explicit RunSinks(RunSinksOptions opts);
  ~RunSinks();

  RunSinks(const RunSinks&) = delete;
  RunSinks& operator=(const RunSinks&) = delete;

  /// True when at least one sink (or the summary) was requested.
  bool active() const { return active_; }

  /// Report header; settable as soon as strategy/device resolve.
  void set_meta(ReportMeta meta) { meta_ = std::move(meta); }

  /// The optimization result the report describes. Before this is set a
  /// flush reports an empty schedule (the run died before the driver
  /// finished).
  void set_result(driver::ProgramResult result) {
    result_ = std::move(result);
  }

  /// The measured-metrics document (docs/OBSERVABILITY.md). Written to
  /// `metrics_path` and embedded in the report's "metrics" section.
  void set_metrics(Json metrics) { metrics_ = std::move(metrics); }

  /// Flush all sinks with `"completed": true` and disarm the destructor.
  /// Returns false when any sink could not be written.
  bool finalize();

 private:
  bool flush(bool completed);

  RunSinksOptions opts_;
  bool active_ = false;
  bool finalized_ = false;
  ReportMeta meta_;
  std::optional<driver::ProgramResult> result_;
  std::optional<Json> metrics_;
};

}  // namespace artemis::telemetry
