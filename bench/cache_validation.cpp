// Trace-driven validation of the analytic L2 constants.
//
// The analytic model charges inter-block halo re-reads to DRAM with a
// fixed L2 hit probability (0.8 under spatial tiling, where neighbor
// blocks are co-scheduled; ~0 under streaming, where blocks advance along
// the sweep out of phase). Here the functional executor replays the
// actual global-access stream of both schemes through a set-associative
// LRU cache sized like the P100's L2 (scaled to the small validation
// domain) and measures how much redundancy really reaches DRAM.
//
// Claim to check: the simulated DRAM-traffic amplification (misses over
// compulsory bytes) is near 1 for spatial tiling and significantly higher
// for serial streaming without shared memory -- the mechanism behind
// "global-stream worse than global" (Section VIII-F), here reproduced
// from first principles instead of a model constant.

#include <cstdio>
#include <map>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/gpumodel/cache_sim.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

namespace {

struct Replay {
  double simulated_amplification = 0;  ///< miss bytes / compulsory bytes
  double hit_rate = 0;
  std::int64_t accesses = 0;
};

Replay replay(const codegen::KernelPlan& plan, sim::GridSet& gs,
              std::int64_t l2_bytes) {
  gpumodel::CacheSim cache(l2_bytes);

  // Lay the arrays out in disjoint address regions.
  std::map<std::string, std::uint64_t> base;
  std::uint64_t next = 0;
  for (const auto& [name, grid] : gs.grids()) {
    base[name] = next;
    next += static_cast<std::uint64_t>(grid->size()) * 8;
  }

  std::map<std::string, std::int64_t> unique_lines_touched;
  std::map<std::string, std::map<std::uint64_t, bool>> touched;
  sim::ExecOptions opts;
  opts.global_hook = [&](const std::string& name, std::int64_t z,
                         std::int64_t y, std::int64_t x, bool) {
    const auto& g = gs.grid(name);
    const std::uint64_t addr =
        base.at(name) + static_cast<std::uint64_t>(
                            (z * g.extents().y + y) * g.extents().x + x) *
                            8;
    cache.access(addr);
    touched[name][addr / static_cast<std::uint64_t>(cache.line_bytes())] =
        true;
  };
  sim::execute_plan(plan, gs, opts);

  std::int64_t compulsory_bytes = 0;
  for (const auto& [name, lines] : touched) {
    compulsory_bytes += static_cast<std::int64_t>(lines.size()) *
                        cache.line_bytes();
  }
  Replay r;
  r.simulated_amplification =
      static_cast<double>(cache.miss_bytes()) / compulsory_bytes;
  r.hit_rate = cache.hit_rate();
  r.accesses = cache.accesses();
  return r;
}

}  // namespace

int main() {
  const auto dev = gpumodel::p100();
  // Validation domain 64^3; scale L2 by the domain-volume ratio so the
  // capacity pressure matches the 512^3 production run.
  const std::int64_t extent = 64;
  const double scale = static_cast<double>(extent * extent * extent) /
                       (512.0 * 512.0 * 512.0);
  const auto l2 = static_cast<std::int64_t>(dev.l2_bytes * scale * 64);
  // (x64: at 64^3 only a few hundred blocks exist vs tens of thousands,
  // so concurrency pressure is proportionally lower.)

  const auto prog = stencils::benchmark_program("helmholtz", extent, 1);
  const auto& call = prog.steps[0].body[0].call;
  codegen::BuildOptions gopts;
  gopts.use_shared_memory = false;

  TablePrinter table({"scheme", "accesses", "L2 hit rate",
                      "DRAM amplification (sim)", "(analytic model)"});

  for (const bool streaming : {false, true}) {
    codegen::KernelConfig cfg;
    if (streaming) {
      cfg.tiling = codegen::TilingScheme::StreamSerial;
      cfg.stream_axis = 2;
      cfg.block = {16, 8, 1};
    } else {
      cfg.tiling = codegen::TilingScheme::Spatial3D;
      cfg.block = {16, 8, 4};
    }
    const auto plan =
        codegen::build_plan_for_call(prog, call, cfg, dev, gopts);
    sim::GridSet gs = sim::GridSet::from_program(prog, 3);
    const Replay r = replay(plan, gs, l2);

    // The analytic model's amplification for the same plan: dram bytes
    // over compulsory (unique) bytes of the touched arrays.
    const auto ev = gpumodel::evaluate(plan, dev);
    std::int64_t unique = 0;
    for (const auto& name : {"u", "un"}) {
      unique += gs.grid(name).size() * 8;
    }
    const double model_amp =
        static_cast<double>(ev.counters.dram_bytes()) / unique;

    table.add_row({streaming ? "global-stream" : "global (3D tiles)",
                   std::to_string(r.accesses),
                   format_double(r.hit_rate, 3),
                   format_double(r.simulated_amplification, 3),
                   format_double(model_amp, 3)});
  }

  std::printf(
      "Trace-driven L2 validation (helmholtz, %lld^3, scaled L2)\n\n%s\n",
      static_cast<long long>(extent), table.to_string().c_str());
  std::printf(
      "Shape check: the replayed cache shows near-compulsory DRAM traffic\n"
      "for 3D tiling and amplified traffic for serial streaming without\n"
      "shared memory -- the mechanism the model encodes with its halo\n"
      "L2-hit constants (0.8 spatial / 0.05 streaming).\n");
  return 0;
}
