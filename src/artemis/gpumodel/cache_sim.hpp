#pragma once

#include <cstdint>
#include <vector>

namespace artemis::gpumodel {

/// A set-associative LRU cache simulator, used to *validate* the analytic
/// model's L2 constants rather than to drive tuning (Section IV dismisses
/// cycle-accurate simulation as too slow for bottleneck analysis; this is
/// the cheap trace-level middle ground, replayed only on small domains by
/// the validation harness).
class CacheSim {
 public:
  /// `capacity_bytes` rounded to sets x ways x line_bytes.
  CacheSim(std::int64_t capacity_bytes, int line_bytes = 32, int ways = 16);

  /// Access one byte address; returns true on hit. Misses fill the line
  /// (write-allocate; writes and reads are treated alike, matching a
  /// sectored write-back L2).
  bool access(std::uint64_t addr);

  void reset();

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t accesses() const { return hits_ + misses_; }
  double hit_rate() const {
    return accesses() > 0 ? static_cast<double>(hits_) / accesses() : 0.0;
  }
  /// Bytes fetched from the next level (misses x line).
  std::int64_t miss_bytes() const {
    return misses_ * static_cast<std::int64_t>(line_bytes_);
  }

  int line_bytes() const { return line_bytes_; }
  std::int64_t capacity_bytes() const {
    return static_cast<std::int64_t>(num_sets_) * ways_ * line_bytes_;
  }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  int line_bytes_;
  int ways_;
  std::size_t num_sets_;
  std::vector<Way> ways_storage_;  ///< num_sets x ways
  std::uint64_t clock_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace artemis::gpumodel
