# Empty dependencies file for sw4_fission.
# This may be replaced when dependencies are built.
