#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "artemis/codegen/plan.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/ir/program.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/gridset.hpp"

namespace artemis::verify {

/// One global-memory element access observed through the executor's
/// global hook: (array, z, y, x, read/write) in deterministic block order.
struct TraceEntry {
  std::string array;
  std::int64_t z = 0, y = 0, x = 0;
  bool write = false;
  bool operator==(const TraceEntry&) const = default;
};

/// The grids, summed counters and (optionally) the access trace of one
/// full program execution through the plan builder + functional executor.
struct RunResult {
  sim::GridSet gs;
  sim::ExecCounters totals;
  std::vector<TraceEntry> trace;
};

void add_counters(sim::ExecCounters& a, const sim::ExecCounters& b);

/// Execute every plan of `prog` — per-call, or all calls fused into one
/// plan — with the given engine and job count, collecting summed counters
/// and, optionally, the global-access trace. This is the differential
/// driver the bytecode simulator tests use, extracted so any caller (the
/// verify properties, the corpus replayer, benches) can run it.
RunResult run_program_plans(const ir::Program& prog,
                            const codegen::KernelConfig& cfg, bool fuse,
                            std::uint64_t seed, sim::SimEngine engine,
                            int jobs, bool record_trace,
                            bool native_fast_math = false);

/// Bitwise grid comparison: stricter than max_abs_diff == 0
/// (distinguishes -0.0 and NaN payloads). Returns "" when identical,
/// otherwise a one-line description of the first mismatching grid.
std::string grids_diff(const sim::GridSet& a, const sim::GridSet& b);

/// "" when equal, otherwise a field-by-field mismatch description.
std::string counters_diff(const sim::ExecCounters& a,
                          const sim::ExecCounters& b);

/// ULP-bounded grid comparison for the native engine's declared
/// fast-math mode: every element of `b` must be within `max_ulps` units
/// in the last place of the matching element of `a` (two NaNs compare
/// equal regardless of payload; a NaN against a number fails). Returns
/// "" on success, otherwise the first out-of-bound element.
std::string grids_ulp_diff(const sim::GridSet& a, const sim::GridSet& b,
                           std::uint64_t max_ulps);

/// The differential check across every engine: the reference interpreter
/// (the semantics oracle) against the tree-walk engine, the tree-walk
/// engine against the compiled bytecode engine at jobs 1, 2 and 4, and
/// the native SIMD engine — strict mode bit-identical to the oracle at
/// jobs 1, 2 and 4, declared fast-math mode ULP-bounded against it and
/// bit-identical across job counts — grids bit-identical, counters
/// identical (the per-block reduction makes them job-count independent)
/// and jobs=1 hook traces identical. With
/// `fuse` the calls execute as one fused plan; the reference comparison
/// is skipped then because fused boundary geometry legitimately differs
/// (the engines must still agree with each other bit-for-bit).
/// Returns "" on success, otherwise the first mismatch.
std::string engines_diff(const ir::Program& prog,
                         const codegen::KernelConfig& cfg, bool fuse,
                         std::uint64_t seed);

/// A random but always-launchable kernel configuration for `dims`
/// iterators: spatial or streaming tiling, small block shapes, optional
/// unroll (the same distribution the bytecode simulator sweep uses).
codegen::KernelConfig random_config(Rng& rng, int dims);

}  // namespace artemis::verify
