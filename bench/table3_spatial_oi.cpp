// Reproduces Table III: nvprof-style metrics and OI for the spatial
// stencils' tuned global-memory versions.
//
// For each of the seven complex spatial kernels we print the theoretical
// OI (FLOPs over one compulsory access per touched array), the modelled
// FLOP count, DRAM and texture byte counters, and the resulting OI_dram /
// OI_tex of the tuned global version. Expected shape (paper): every
// kernel is severely texture-cache bandwidth-bound (OI_tex far below
// 2.35) while OI_dram spans ~0.5 (miniflux) to ~5.7 (rhs4center).

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/profile/profiler.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  TablePrinter table({"Bench.", "OI_T", "FLOP", "Byte_dram", "OI_dram",
                      "(paper)", "Byte_tex", "OI_tex", "(paper)"});

  struct PaperRow {
    const char* name;
    double oi_dram;
    double oi_tex;
  };
  // First kernel per benchmark row of the paper's table.
  const PaperRow paper[] = {
      {"miniflux", 0.54, 0.22}, {"hypterm", 2.06, 0.30},
      {"diffterm", 0.87, 0.18}, {"addsgd4", 2.08, 0.35},
      {"addsgd6", 3.13, 0.43},  {"rhs4center", 5.69, 0.46},
      {"rhs4sgcurv", 5.26, 0.50},
  };

  for (const auto& row : paper) {
    const auto prog = stencils::benchmark_program(row.name);
    // Tuned global-memory version (the paper profiles these).
    const auto r = driver::optimize_program(prog, dev, params,
                                            driver::global_strategy(false));
    // Merge counters across the program's kernels.
    gpumodel::Counters c;
    double oi_t = 0;
    for (const auto& k : r.kernels) {
      c.flops += k.eval.counters.flops * k.invocations;
      c.dram_read_bytes += k.eval.counters.dram_read_bytes * k.invocations;
      c.dram_write_bytes += k.eval.counters.dram_write_bytes * k.invocations;
      c.tex_bytes += k.eval.counters.tex_bytes * k.invocations;
    }
    {
      const auto info =
          ir::analyze(prog, ir::bind_call(prog, prog.steps[0].call));
      oi_t = static_cast<double>(info.flops_per_point) /
             (8.0 * info.num_io_arrays);
    }

    table.add_row({row.name, format_double(oi_t, 3),
                   str_cat(format_double(static_cast<double>(c.flops), 3)),
                   format_double(static_cast<double>(c.dram_bytes()), 3),
                   format_double(c.oi_dram(), 3),
                   format_double(row.oi_dram, 3),
                   format_double(static_cast<double>(c.tex_bytes), 3),
                   format_double(c.oi_tex(), 3),
                   format_double(row.oi_tex, 3)});
  }

  std::printf(
      "Table III: modelled nvprof metrics and OI for the spatial stencils\n"
      "(tuned global-memory versions; paper's first-kernel OI alongside)\n"
      "\n%s\n",
      table.to_string().c_str());
  std::printf(
      "Shape check: all seven kernels are texture-cache bandwidth-bound\n"
      "(OI_tex << alpha/beta_tex = 2.35); time tiling is not applicable,\n"
      "so only shared memory and register reuse can help (Section VIII-C).\n");
  return 0;
}
