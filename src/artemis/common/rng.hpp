#pragma once

#include <cstdint>

namespace artemis {

/// Deterministic xoshiro256** generator. The library never uses wall-clock
/// or std::random_device seeding: every simulated run is reproducible from
/// an explicit seed, which the tests and the bench harnesses rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the four lanes.
    std::uint64_t s = seed;
    for (auto& lane : state_) {
      s += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  bool coin(double p = 0.5) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace artemis
