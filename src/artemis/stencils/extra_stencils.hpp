#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::stencils {

/// A secondary suite of classic 1D/2D stencils. The paper's framework
/// handles "both time-iterated 2D/3D stencils, and complex spatial
/// stencils" (Section III-B); Table I only evaluates the 3D kernels, so
/// these exercise the lower-dimensional code paths (2D streaming along j,
/// 1D tiling) end to end: prior frameworks like Overtile were evaluated
/// on exactly these patterns.
struct ExtraStencilSpec {
  std::string name;
  int dims = 2;
  std::int64_t domain = 4096;  ///< extent per axis
  int time_steps = 8;
  bool iterative = true;
  std::string description;
  std::string dsl(std::int64_t extent = 0, int t = -1) const;
  std::function<std::string(std::int64_t, int)> generator;
};

/// heat-1d (3pt), jacobi-2d (5pt), blur9-2d (9pt box), wave-2d (order-2
/// 13pt), gradient-2d (spatial 2-stage DAG).
const std::vector<ExtraStencilSpec>& extra_stencils();

const ExtraStencilSpec& extra_stencil(const std::string& name);

ir::Program extra_stencil_program(const std::string& name,
                                  std::int64_t extent = 0, int t = -1);

}  // namespace artemis::stencils
