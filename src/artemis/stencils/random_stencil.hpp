#pragma once

#include "artemis/common/rng.hpp"
#include "artemis/ir/program.hpp"

namespace artemis::stencils {

/// Options for the random stencil program generator used by the
/// property-based tests (and by the fuzzing example).
struct RandomStencilOptions {
  int dims = 3;             ///< 1..3 iterators
  int max_order = 2;        ///< max |offset| per axis
  int max_stages = 1;       ///< length of the producer/consumer chain
  int max_terms = 6;        ///< additive terms per statement
  int max_locals = 2;       ///< local scalar temps per stencil
  std::int64_t extent = 14; ///< domain extent per axis
  bool allow_accumulate = true;
  bool allow_calls = false; ///< sqrt/fabs/min/max intrinsics
  /// Attach random (always valid) `#pragma` clauses — stream/block/
  /// unroll/occupancy — and `#assign` pins on read-only array formals,
  /// so the printer/parser round-trip and the resource mapper see
  /// decorated definitions too.
  bool decorate = false;
  /// For single-stage programs, sometimes wrap the call in an
  /// `iterate N { call; swap; }` ping-pong block (the time-tiling and
  /// iterate-unrolling paths are unreachable from a plain call chain).
  bool allow_iterate = false;
};

/// Generate a random, semantically valid DSL program: a chain of
/// `max_stages` stencils where stage s+1 reads stage s's output, each with
/// random affine reads (offsets bounded by max_order), random +,-,*
/// expression trees over array reads, scalars and literals, and optional
/// local temporaries. Coefficients are kept in [0.1, 1] and the operator
/// set avoids division so results stay finite. The program validates and
/// round-trips through the printer.
ir::Program random_program(Rng& rng, const RandomStencilOptions& opts = {});

}  // namespace artemis::stencils
