// Replays every checked-in reproducer in tests/corpus/ against its
// recorded property family. Each entry is a bug the verifier once found
// and this PR (or a later one) fixed; a failure here means a regression
// resurrected it. Also lints that reproducers stay minimized, so the
// corpus remains fast and readable forever.

#include <gtest/gtest.h>

#include "artemis/dsl/parser.hpp"
#include "artemis/verify/corpus.hpp"

#ifndef ARTEMIS_CORPUS_DIR
#error "build must define ARTEMIS_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace artemis::verify {
namespace {

TEST(VerifyCorpus, EveryReproducerStaysFixed) {
  const auto entries = load_corpus(ARTEMIS_CORPUS_DIR);
  // The harness has found real bugs; their reproducers are checked in.
  ASSERT_FALSE(entries.empty()) << "no corpus at " << ARTEMIS_CORPUS_DIR;
  for (const auto& entry : entries) {
    const CheckResult r = replay_entry(entry);
    EXPECT_TRUE(r.ok) << entry.path << "\n"
                      << "property: " << property_name(entry.property)
                      << ", seed " << entry.seed << "\n"
                      << r.detail << "\noriginal failure: " << entry.detail;
  }
}

TEST(VerifyCorpus, ReproducersAreMinimized) {
  // The shrinker (or the committer, by hand) must keep reproducers tiny:
  // small extents, few stages, few statements. Oversized entries slow the
  // replay down for every future change and obscure the actual bug.
  for (const auto& entry : load_corpus(ARTEMIS_CORPUS_DIR)) {
    ASSERT_FALSE(entry.dsl_text.empty()) << entry.path << ": " << entry.detail;
    const ir::Program prog = dsl::parse(entry.dsl_text);
    for (const auto& param : prog.params) {
      EXPECT_LE(param.value, 16) << entry.path << ": extent " << param.name;
    }
    EXPECT_LE(prog.stencils.size(), 3u) << entry.path;
    std::size_t stmts = 0;
    for (const auto& def : prog.stencils) stmts += def.stmts.size();
    EXPECT_LE(stmts, 6u) << entry.path;
  }
}

}  // namespace
}  // namespace artemis::verify
