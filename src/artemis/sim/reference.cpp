#include "artemis/sim/reference.hpp"

#include "artemis/common/check.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/sim/bytecode.hpp"

namespace artemis::sim {

void run_stencil_reference(const ir::Program& prog,
                           const ir::BoundStencil& bound, GridSet& gs) {
  const ir::StencilInfo info = ir::analyze(prog, bound);
  const int dims = static_cast<int>(prog.iterators.size());

  // Snapshot arrays whose reads could observe another point's write
  // (kernel semantics: every point sees pre-kernel values). The reference
  // never recomputes points, so aliasing-free read-write arrays skip the
  // copy.
  std::map<std::string, Grid3D> snapshots;
  for (const auto& [name, ai] : info.arrays) {
    if (needs_snapshot(ai, dims, /*recompute=*/false)) {
      snapshots.emplace(name, gs.grid(name));
    }
  }

  ARTEMIS_CHECK_MSG(!info.outputs.empty(),
                    "stencil '" << bound.name << "' writes nothing");
  const Extents dom = gs.grid(info.outputs.front()).extents();
  for (const auto& out : info.outputs) {
    ARTEMIS_CHECK_MSG(gs.grid(out).extents() == dom,
                      "outputs of '" << bound.name
                                     << "' have mismatched extents");
  }

  // Slot-resolve every name once per run: the statement list compiles to
  // bytecode against dense array/scalar tables instead of rebuilding
  // string-keyed maps at every point.
  SlotMap arrays;
  for (const auto& [name, ai] : info.arrays) arrays.add(name);
  SlotMap scalar_slots;
  std::vector<double> scalar_vals;
  for (const auto& name : info.scalars_read) {
    scalar_slots.add(name);
    scalar_vals.push_back(gs.scalar(name));
  }
  const CompiledStencil cs =
      compile_stmts(bound.stmts, dims, arrays, scalar_slots);

  std::vector<ArrayView> views(static_cast<std::size_t>(arrays.size()));
  for (int slot = 0; slot < arrays.size(); ++slot) {
    const std::string& name = arrays.name(slot);
    ArrayView& v = views[static_cast<std::size_t>(slot)];
    v.name = &arrays.name(slot);
    Grid3D& g = gs.grid(name);
    const Extents e = g.extents();
    v.ez = e.z;
    v.ey = e.y;
    v.ex = e.x;
    v.wz = e.z;
    v.wy = e.y;
    v.wx = e.x;
    v.write = g.data();
    const auto snap = snapshots.find(name);
    v.read = snap != snapshots.end() ? snap->second.data() : g.data();
  }

  // Parallelize over the outermost axis: points are independent
  // (snapshotted reads) and every write targets a distinct coordinate.
  parallel_for(dom.z, [&](std::int64_t z) {
    BcRegion slab;
    slab.lo = {z, 0, 0};
    slab.hi = {z + 1, dom.y, dom.x};
    BcCounters c;  // the reference reports no counters
    run_compiled_region(cs, views, scalar_vals.data(), slab, BcRegion{},
                        /*drop_outside_commit=*/false, c);
  });
}

void run_program_reference(const ir::Program& prog, GridSet& gs) {
  for (const auto& step : ir::flatten_steps(prog)) {
    switch (step.kind) {
      case ir::ExecStep::Kind::Stencil:
        run_stencil_reference(prog, step.stencil, gs);
        break;
      case ir::ExecStep::Kind::Swap:
        gs.swap(step.swap.a, step.swap.b);
        break;
    }
  }
}

}  // namespace artemis::sim
