#include <gtest/gtest.h>

#include <cstdio>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/common/check.hpp"
#include "artemis/common/hash.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::autotune {
namespace {

using codegen::KernelConfig;
using codegen::Perspective;
using codegen::TilingScheme;
using codegen::UnrollStrategy;

KernelConfig fancy_config() {
  KernelConfig cfg;
  cfg.block = {64, 8, 1};
  cfg.unroll = {2, 4, 1};
  cfg.tiling = TilingScheme::StreamConcurrent;
  cfg.stream_axis = 2;
  cfg.stream_chunk = 96;
  cfg.perspective = Perspective::Mixed;
  cfg.unroll_strategy = UnrollStrategy::Cyclic;
  cfg.prefetch = true;
  cfg.retime = true;
  cfg.fold = false;
  cfg.max_registers = 128;
  cfg.time_tile = 3;
  cfg.target_occupancy = 0.5;
  return cfg;
}

bool config_equal(const KernelConfig& a, const KernelConfig& b) {
  return a.block == b.block && a.unroll == b.unroll && a.tiling == b.tiling &&
         a.stream_axis == b.stream_axis && a.stream_chunk == b.stream_chunk &&
         a.perspective == b.perspective &&
         a.unroll_strategy == b.unroll_strategy &&
         a.prefetch == b.prefetch && a.retime == b.retime &&
         a.fold == b.fold && a.max_registers == b.max_registers &&
         a.time_tile == b.time_tile &&
         a.target_occupancy == b.target_occupancy;
}

TEST(ConfigSerialization, RoundTripsEveryField) {
  const KernelConfig cfg = fancy_config();
  const KernelConfig back = parse_config(serialize_config(cfg));
  EXPECT_TRUE(config_equal(cfg, back));
}

TEST(ConfigSerialization, DefaultRoundTrips) {
  const KernelConfig cfg;
  EXPECT_TRUE(config_equal(cfg, parse_config(serialize_config(cfg))));
}

TEST(ConfigSerialization, RejectsGarbage) {
  EXPECT_THROW(parse_config("nonsense"), Error);
  EXPECT_THROW(parse_config("wibble=3"), Error);
  EXPECT_THROW(parse_config("tiling=pyramid"), Error);
}

TEST(TuningCache, PutGetContains) {
  TuningCache cache;
  EXPECT_FALSE(cache.contains("k"));
  cache.put("k", {fancy_config(), 1.5e-3, 0.8});
  ASSERT_TRUE(cache.contains("k"));
  const auto e = cache.get("k");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time_s, 1.5e-3);
  EXPECT_DOUBLE_EQ(e->tflops, 0.8);
  EXPECT_TRUE(config_equal(e->config, fancy_config()));
  EXPECT_FALSE(cache.get("other").has_value());
}

TEST(TuningCache, TextRoundTrip) {
  TuningCache cache;
  cache.put("7pt/p100/x1", {KernelConfig{}, 3.1e-3, 0.44});
  cache.put("7pt/p100/x3", {fancy_config(), 4.0e-3, 1.0});
  TuningCache loaded;
  loaded.load_text(cache.save_text());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(config_equal(loaded.get("7pt/p100/x3")->config,
                           fancy_config()));
  EXPECT_DOUBLE_EQ(loaded.get("7pt/p100/x1")->time_s, 3.1e-3);
}

TEST(TuningCache, LoadMergesAndLaterWins) {
  TuningCache a;
  a.put("k", {KernelConfig{}, 1.0, 0.1});
  TuningCache b;
  KernelConfig other;
  other.max_registers = 64;
  b.put("k", {other, 2.0, 0.2});
  b.put("extra", {KernelConfig{}, 3.0, 0.3});
  a.load_text(b.save_text());
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.get("k")->config.max_registers, 64);
}

TEST(TuningCache, MalformedLinesSkippedAndCounted) {
  TuningCache cache;
  const auto report =
      cache.load_text("this is not a record\nk\t1.0\tbadfloat\tblock=1,1,1\n"
                      "ok\t1e-3\t0.5\t" +
                      serialize_config(KernelConfig{}) + "\n");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("ok"));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 2);
}

TEST(TuningCache, PartiallyCorruptFileLoadsIntactRows) {
  // A corrupt row sandwiched between two good ones: both good rows load,
  // the corruption is reported, and nothing throws.
  TuningCache good;
  good.put("first", {KernelConfig{}, 1e-3, 0.5});
  good.put("second", {fancy_config(), 2e-3, 0.6});
  const std::string text = good.save_text();
  const auto mid = text.find('\n') + 1;
  const std::string corrupt = text.substr(0, mid) +
                              "second\t2e-3\t0.6\ttiling=pyramid axis=9\n" +
                              text.substr(mid);
  TuningCache cache;
  const auto report = cache.load_text(corrupt);
  EXPECT_EQ(report.loaded, 2);
  EXPECT_EQ(report.skipped, 1);
  EXPECT_TRUE(cache.contains("first"));
  // Later rows win: the intact "second" record overwrote nothing (the
  // corrupt one never loaded) and is present.
  EXPECT_TRUE(config_equal(cache.get("second")->config, fancy_config()));
}

TEST(TuningCache, FileRoundTrip) {
  const std::string path = "/tmp/artemis_cache_test.txt";
  TuningCache cache;
  cache.put("a/b", {fancy_config(), 7e-4, 2.0});
  ASSERT_TRUE(cache.save_file(path));
  TuningCache loaded;
  const auto report = loaded.load_file(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.get("a/b")->tflops, 2.0);
  std::remove(path.c_str());
}

TEST(TuningCache, MissingFileDistinctFromUnreadable) {
  TuningCache cache;
  const auto missing = cache.load_file("/tmp/definitely/not/here.txt");
  EXPECT_EQ(missing.status, CacheLoadReport::Status::Missing);
  EXPECT_FALSE(missing.ok());
  // A directory exists but cannot be read as a cache file.
  const auto unreadable = cache.load_file("/tmp");
  EXPECT_EQ(unreadable.status, CacheLoadReport::Status::IoError);
  EXPECT_FALSE(unreadable.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, RejectsKeysWithSeparators) {
  TuningCache cache;
  EXPECT_THROW(cache.put("bad\tkey", {KernelConfig{}, 1, 1}), Error);
  EXPECT_THROW(cache.put("bad\nkey", {KernelConfig{}, 1, 1}), Error);
}

// ---- v2 durable format: header, per-row CRC, drop classification ------------

TEST(TuningCacheV2, SaveTextEmitsVersionedChecksummedRows) {
  TuningCache cache;
  cache.put("k", {KernelConfig{}, 1e-3, 0.5});
  const std::string text = cache.save_text();
  ASSERT_EQ(text.rfind("#artemis-tuning-cache v2\n", 0), 0u);
  const auto row_start = text.find('\n') + 1;
  const auto first_tab = text.find('\t', row_start);
  ASSERT_NE(first_tab, std::string::npos);
  // The leading column is the CRC-32 of everything after the first tab.
  const std::string crc_col =
      text.substr(row_start, first_tab - row_start);
  const std::string rest =
      text.substr(first_tab + 1, text.size() - first_tab - 2);  // sans \n
  EXPECT_EQ(crc_col, crc32_hex(crc32(rest)));
}

TEST(TuningCacheV2, CrcMismatchRowDroppedAndClassified) {
  TuningCache good;
  good.put("victim", {KernelConfig{}, 1e-3, 0.5});
  good.put("intact", {fancy_config(), 2e-3, 0.6});
  std::string text = good.save_text();
  // Bit-rot the "victim" row's payload without touching its checksum.
  // The CRC is checked before the row is parsed, so any payload byte
  // works.
  const auto row = text.find("\tvictim\t");
  ASSERT_NE(row, std::string::npos);
  const auto nl = text.find('\n', row);
  ASSERT_NE(nl, std::string::npos);
  text[nl - 1] = text[nl - 1] == 'x' ? 'y' : 'x';
  TuningCache cache;
  const auto report = cache.load_text(text);
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 1);
  EXPECT_EQ(report.crc_mismatch, 1);
  EXPECT_EQ(report.torn_tail + report.version_skew + report.malformed, 0);
  EXPECT_FALSE(cache.contains("victim"));
  EXPECT_TRUE(cache.contains("intact"));
}

TEST(TuningCacheV2, TornTailDroppedAndClassified) {
  // Keys chosen so the to-be-torn row sorts (and is saved) last.
  TuningCache good;
  good.put("a-whole", {KernelConfig{}, 1e-3, 0.5});
  good.put("z-torn", {fancy_config(), 2e-3, 0.6});
  std::string text = good.save_text();
  text.resize(text.size() - 10);  // crash mid-append: no final newline
  TuningCache cache;
  const auto report = cache.load_text(text);
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 1);
  EXPECT_EQ(report.torn_tail, 1);
  EXPECT_EQ(report.crc_mismatch, 0);
  EXPECT_TRUE(cache.contains("a-whole"));
  EXPECT_FALSE(cache.contains("z-torn"));
}

TEST(TuningCacheV2, UnsupportedVersionStopsLoadAsSkew) {
  TuningCache cache;
  const auto report = cache.load_text(
      "#artemis-tuning-cache v99\nsomething from the future\n");
  EXPECT_EQ(report.loaded, 0);
  EXPECT_EQ(report.version_skew, 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCacheV2, LegacyHeaderlessV1StillLoads) {
  TuningCache cache;
  const auto report = cache.load_text(
      "old/key\t1e-3\t0.5\t" + serialize_config(KernelConfig{}) + "\n");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_TRUE(cache.contains("old/key"));
}

TEST(TuningCacheV2, FailedSaveLeavesPreviousFileIntact) {
  // Regression for the pre-Vfs save: a truncate-overwrite save that hits
  // ENOSPC midway used to leave a half-written cache. Publishing through
  // write-temp + rename must leave the old file byte-identical instead.
  storage::MemVfs mem;
  TuningCache old_cache;
  old_cache.put("old/key", {KernelConfig{}, 1e-3, 0.5});
  ASSERT_TRUE(old_cache.save_file("cache.db", &mem));
  const std::string before = mem.read("cache.db").value();

  robust::FaultSpec spec;
  spec.fs_enospc_p = 1.0;  // every write hits a full disk
  storage::FaultVfs faulty(mem, spec);
  TuningCache bigger;
  bigger.put("new/key", {fancy_config(), 2e-3, 0.6});
  EXPECT_FALSE(bigger.save_file("cache.db", &faulty));
  EXPECT_EQ(mem.read("cache.db").value(), before)
      << "a failed save must not touch the published cache";
  // The aborted temp file was cleaned up, not leaked.
  for (const auto& name : mem.list(".")) {
    EXPECT_EQ(name.find(".tmp-"), std::string::npos)
        << "leaked temp file: " << name;
  }
}

}  // namespace
}  // namespace artemis::autotune
