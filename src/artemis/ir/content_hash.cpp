#include "artemis/ir/content_hash.hpp"

#include <cstring>
#include <sstream>

namespace artemis::ir {

namespace {

/// Every field is emitted as `<tag>:<value>;` so adjacent fields can never
/// run together ("ab"+"c" vs "a"+"bc") and an absent optional hashes
/// differently from a present-but-empty one.
class Writer {
 public:
  explicit Writer(ContentHasher& h) : h_(h) {}

  void field(const char* tag, const std::string& value) {
    h_.update(tag, std::strlen(tag));
    h_.update(":", 1);
    const std::string len = std::to_string(value.size());
    h_.update(len);  // length-prefixed, platform-independent
    h_.update("=", 1);
    h_.update(value);
    h_.update(";", 1);
  }
  void field(const char* tag, std::int64_t value) {
    field(tag, std::to_string(value));
  }
  void field(const char* tag, double value) {
    std::ostringstream os;
    os.precision(17);
    os << value;
    field(tag, os.str());
  }

 private:
  ContentHasher& h_;
};

std::string stmt_text(const Stmt& s, const std::vector<std::string>& iters) {
  std::ostringstream os;
  if (s.declares_local) os << "local ";
  os << s.lhs_name;
  for (const auto& ix : s.lhs_indices) {
    os << '[';
    if (ix.iter >= 0) {
      os << iters[static_cast<std::size_t>(ix.iter)];
      if (ix.offset != 0) os << (ix.offset > 0 ? "+" : "") << ix.offset;
    } else {
      os << ix.offset;
    }
    os << ']';
  }
  os << (s.accumulate ? " += " : " = ") << to_string(*s.rhs, iters);
  return os.str();
}

void hash_steps(const std::vector<Step>& steps, Writer& w) {
  w.field("steps", static_cast<std::int64_t>(steps.size()));
  for (const auto& step : steps) {
    switch (step.kind) {
      case Step::Kind::Call: {
        std::string sig = step.call.callee;
        for (const auto& a : step.call.args) sig += "," + a;
        w.field("call", sig);
        break;
      }
      case Step::Kind::Swap:
        w.field("swap", step.swap.a + "," + step.swap.b);
        break;
      case Step::Kind::Iterate:
        w.field("iterate", step.iterations);
        hash_steps(step.body, w);
        break;
    }
  }
}

}  // namespace

void hash_program(const Program& prog, ContentHasher& h) {
  Writer w(h);
  for (const auto& p : prog.params) {
    w.field("param", p.name);
    w.field("value", p.value);
  }
  for (const auto& it : prog.iterators) w.field("iter", it);
  for (const auto& a : prog.arrays) {
    std::string sig = a.name;
    for (const auto& d : a.dims) sig += "[" + d + "]";
    w.field("array", sig);
  }
  for (const auto& s : prog.scalars) w.field("scalar", s.name);
  for (const auto& c : prog.copyin) w.field("copyin", c);
  for (const auto& c : prog.copyout) w.field("copyout", c);
  for (const auto& sd : prog.stencils) {
    w.field("stencil", sd.name);
    for (const auto& p : sd.params) w.field("formal", p);
    for (const auto& st : sd.stmts) {
      w.field("stmt", stmt_text(st, prog.iterators));
    }
    // std::map iteration is name-ordered, hence canonical.
    for (const auto& [name, space] : sd.resources.spaces) {
      w.field("assign", name + "=" + mem_space_name(space));
    }
    if (sd.pragma.stream_iter) w.field("stream", *sd.pragma.stream_iter);
    for (const auto b : sd.pragma.block) w.field("block", b);
    for (const auto& [it, f] : sd.pragma.unroll) {
      w.field("unroll", it + "=" + std::to_string(f));
    }
    if (sd.pragma.occupancy) w.field("occ", *sd.pragma.occupancy);
  }
  hash_steps(prog.steps, w);
}

std::string content_hash(const Program& prog) {
  ContentHasher h;
  hash_program(prog, h);
  return h.hex_digest();
}

}  // namespace artemis::ir
