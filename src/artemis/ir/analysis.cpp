#include "artemis/ir/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::ir {

namespace {

/// Rename scalar/array references according to `renames`; names absent
/// from the map are kept.
ExprPtr rename_refs(const ExprPtr& e,
                    const std::map<std::string, std::string>& renames) {
  return rewrite(e, [&renames](const ExprPtr& node) -> ExprPtr {
    if (node->kind != ExprKind::ScalarRef && node->kind != ExprKind::ArrayRef) {
      return nullptr;
    }
    auto it = renames.find(node->name);
    if (it == renames.end()) return nullptr;
    auto copy = std::make_shared<Expr>(*node);
    copy->name = it->second;
    return copy;
  });
}

}  // namespace

BoundStencil bind_call(const Program& prog, const StencilCall& call,
                       const std::string& prefix) {
  const StencilDef* def = prog.find_stencil(call.callee);
  ARTEMIS_CHECK_MSG(def != nullptr, "unknown stencil '" << call.callee << "'");
  ARTEMIS_CHECK_MSG(def->params.size() == call.args.size(),
                    "arity mismatch calling '" << call.callee << "'");

  BoundStencil out;
  out.name = call.callee;
  out.def = def;
  out.pragma = def->pragma;

  std::map<std::string, std::string> renames;
  for (std::size_t i = 0; i < def->params.size(); ++i) {
    renames[def->params[i]] = call.args[i];
    out.binding[def->params[i]] = call.args[i];
  }
  // Rename locals to avoid collisions when fusing bound stencils.
  for (const auto& st : def->stmts) {
    if (st.declares_local && !prefix.empty()) {
      renames[st.lhs_name] = prefix + st.lhs_name;
    }
  }

  for (const auto& st : def->stmts) {
    Stmt b = st;
    auto it = renames.find(st.lhs_name);
    if (it != renames.end()) b.lhs_name = it->second;
    b.rhs = rename_refs(st.rhs, renames);
    out.stmts.push_back(std::move(b));
  }

  for (const auto& [formal, space] : def->resources.spaces) {
    out.resources.spaces[out.binding.at(formal)] = space;
  }
  return out;
}

std::vector<ExecStep> flatten_steps(const Program& prog) {
  std::vector<ExecStep> out;
  std::function<void(const std::vector<Step>&)> walk =
      [&](const std::vector<Step>& steps) {
        for (const auto& step : steps) {
          switch (step.kind) {
            case Step::Kind::Call: {
              ExecStep es;
              es.kind = ExecStep::Kind::Stencil;
              es.stencil = bind_call(prog, step.call);
              out.push_back(std::move(es));
              break;
            }
            case Step::Kind::Swap: {
              ExecStep es;
              es.kind = ExecStep::Kind::Swap;
              es.swap = step.swap;
              out.push_back(std::move(es));
              break;
            }
            case Step::Kind::Iterate:
              for (std::int64_t t = 0; t < step.iterations; ++t) {
                walk(step.body);
              }
              break;
          }
        }
      };
  walk(prog.steps);
  return out;
}

StencilInfo analyze(const Program& prog, const BoundStencil& bound) {
  StencilInfo info;
  info.num_statements = static_cast<std::int64_t>(bound.stmts.size());

  std::set<std::string> locals;
  for (const auto& st : bound.stmts) {
    if (st.declares_local) locals.insert(st.lhs_name);
  }

  auto array_info = [&](const std::string& name) -> ArrayAccessInfo& {
    auto [it, inserted] = info.arrays.try_emplace(name);
    if (inserted) {
      it->second.array = name;
      const ArrayDecl* decl = prog.find_array(name);
      it->second.dims = decl ? static_cast<int>(decl->dims.size()) : 0;
    }
    return it->second;
  };

  for (const auto& st : bound.stmts) {
    info.flops_per_point += flop_count(*st.rhs);
    if (st.accumulate) ++info.flops_per_point;  // the += add
    if (!st.declares_local) {
      auto& ai = array_info(st.lhs_name);
      ai.written = true;
      if (std::find(ai.write_offsets.begin(), ai.write_offsets.end(),
                    st.lhs_indices) == ai.write_offsets.end()) {
        ai.write_offsets.push_back(st.lhs_indices);
      }
    }
    visit(*st.rhs, [&](const Expr& e) {
      if (e.kind == ExprKind::ArrayRef) {
        auto& ai = array_info(e.name);
        ai.read = true;
        if (std::find(ai.read_offsets.begin(), ai.read_offsets.end(),
                      e.indices) == ai.read_offsets.end()) {
          ai.read_offsets.push_back(e.indices);
        }
        for (const auto& ix : e.indices) {
          if (!ix.is_const()) {
            const auto dim = static_cast<std::size_t>(ix.iter);
            ARTEMIS_CHECK(dim < 3);
            ai.radius[dim] = std::max(
                ai.radius[dim], static_cast<int>(std::abs(ix.offset)));
          }
        }
      } else if (e.kind == ExprKind::ScalarRef && !locals.count(e.name)) {
        info.scalars_read.insert(e.name);
      }
    });
  }

  for (const auto& [name, ai] : info.arrays) {
    if (ai.written) info.outputs.push_back(name);
    if (ai.read) info.inputs.push_back(name);
    for (std::size_t d = 0; d < 3; ++d) {
      info.radius[d] = std::max(info.radius[d], ai.radius[d]);
    }
  }
  info.order = *std::max_element(info.radius.begin(), info.radius.end());
  info.num_io_arrays = static_cast<int>(info.arrays.size());
  return info;
}

StmtGraph build_stmt_graph(const std::vector<Stmt>& stmts) {
  const int n = static_cast<int>(stmts.size());
  StmtGraph g;
  g.succs.resize(static_cast<std::size_t>(n));
  g.preds.resize(static_cast<std::size_t>(n));

  // For every read in statement j, find the latest earlier statement i that
  // wrote the same name (local temp or array): RAW edge i -> j. Accumulation
  // statements also read their own LHS.
  auto add_edge = [&](int i, int j) {
    auto& s = g.succs[static_cast<std::size_t>(i)];
    if (std::find(s.begin(), s.end(), j) == s.end()) {
      s.push_back(j);
      g.preds[static_cast<std::size_t>(j)].push_back(i);
    }
  };

  for (int j = 0; j < n; ++j) {
    std::set<std::string> reads;
    visit(*stmts[static_cast<std::size_t>(j)].rhs, [&](const Expr& e) {
      if (e.kind == ExprKind::ScalarRef || e.kind == ExprKind::ArrayRef) {
        reads.insert(e.name);
      }
    });
    if (stmts[static_cast<std::size_t>(j)].accumulate) {
      reads.insert(stmts[static_cast<std::size_t>(j)].lhs_name);
    }
    for (const auto& name : reads) {
      for (int i = j - 1; i >= 0; --i) {
        if (stmts[static_cast<std::size_t>(i)].lhs_name == name) {
          add_edge(i, j);
          break;
        }
      }
    }
  }
  return g;
}

std::vector<int> StmtGraph::topo_order() const {
  std::vector<int> order(succs.size());
  for (std::size_t i = 0; i < succs.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  return order;
}

CallGraph build_call_graph(const std::vector<BoundStencil>& calls) {
  const int n = static_cast<int>(calls.size());
  CallGraph g;
  g.succs.resize(static_cast<std::size_t>(n));
  g.preds.resize(static_cast<std::size_t>(n));

  auto writes_of = [](const BoundStencil& b) {
    std::set<std::string> w;
    for (const auto& st : b.stmts) {
      if (!st.declares_local) w.insert(st.lhs_name);
    }
    return w;
  };
  auto reads_of = [](const BoundStencil& b) {
    std::set<std::string> r;
    for (const auto& st : b.stmts) {
      visit(*st.rhs, [&](const Expr& e) {
        if (e.kind == ExprKind::ArrayRef) r.insert(e.name);
      });
    }
    return r;
  };

  std::vector<std::set<std::string>> writes;
  std::vector<std::set<std::string>> reads;
  writes.reserve(calls.size());
  reads.reserve(calls.size());
  for (const auto& c : calls) {
    writes.push_back(writes_of(c));
    reads.push_back(reads_of(c));
  }

  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) {
      bool dep = false;
      for (const auto& w : writes[static_cast<std::size_t>(i)]) {
        if (reads[static_cast<std::size_t>(j)].count(w) ||
            writes[static_cast<std::size_t>(j)].count(w)) {
          dep = true;
          break;
        }
      }
      if (dep) {
        g.succs[static_cast<std::size_t>(i)].push_back(j);
        g.preds[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  return g;
}

}  // namespace artemis::ir
