#include <gtest/gtest.h>

#include <cstdio>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/common/check.hpp"

namespace artemis::autotune {
namespace {

using codegen::KernelConfig;
using codegen::Perspective;
using codegen::TilingScheme;
using codegen::UnrollStrategy;

KernelConfig fancy_config() {
  KernelConfig cfg;
  cfg.block = {64, 8, 1};
  cfg.unroll = {2, 4, 1};
  cfg.tiling = TilingScheme::StreamConcurrent;
  cfg.stream_axis = 2;
  cfg.stream_chunk = 96;
  cfg.perspective = Perspective::Mixed;
  cfg.unroll_strategy = UnrollStrategy::Cyclic;
  cfg.prefetch = true;
  cfg.retime = true;
  cfg.fold = false;
  cfg.max_registers = 128;
  cfg.time_tile = 3;
  cfg.target_occupancy = 0.5;
  return cfg;
}

bool config_equal(const KernelConfig& a, const KernelConfig& b) {
  return a.block == b.block && a.unroll == b.unroll && a.tiling == b.tiling &&
         a.stream_axis == b.stream_axis && a.stream_chunk == b.stream_chunk &&
         a.perspective == b.perspective &&
         a.unroll_strategy == b.unroll_strategy &&
         a.prefetch == b.prefetch && a.retime == b.retime &&
         a.fold == b.fold && a.max_registers == b.max_registers &&
         a.time_tile == b.time_tile &&
         a.target_occupancy == b.target_occupancy;
}

TEST(ConfigSerialization, RoundTripsEveryField) {
  const KernelConfig cfg = fancy_config();
  const KernelConfig back = parse_config(serialize_config(cfg));
  EXPECT_TRUE(config_equal(cfg, back));
}

TEST(ConfigSerialization, DefaultRoundTrips) {
  const KernelConfig cfg;
  EXPECT_TRUE(config_equal(cfg, parse_config(serialize_config(cfg))));
}

TEST(ConfigSerialization, RejectsGarbage) {
  EXPECT_THROW(parse_config("nonsense"), Error);
  EXPECT_THROW(parse_config("wibble=3"), Error);
  EXPECT_THROW(parse_config("tiling=pyramid"), Error);
}

TEST(TuningCache, PutGetContains) {
  TuningCache cache;
  EXPECT_FALSE(cache.contains("k"));
  cache.put("k", {fancy_config(), 1.5e-3, 0.8});
  ASSERT_TRUE(cache.contains("k"));
  const auto e = cache.get("k");
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time_s, 1.5e-3);
  EXPECT_DOUBLE_EQ(e->tflops, 0.8);
  EXPECT_TRUE(config_equal(e->config, fancy_config()));
  EXPECT_FALSE(cache.get("other").has_value());
}

TEST(TuningCache, TextRoundTrip) {
  TuningCache cache;
  cache.put("7pt/p100/x1", {KernelConfig{}, 3.1e-3, 0.44});
  cache.put("7pt/p100/x3", {fancy_config(), 4.0e-3, 1.0});
  TuningCache loaded;
  loaded.load_text(cache.save_text());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(config_equal(loaded.get("7pt/p100/x3")->config,
                           fancy_config()));
  EXPECT_DOUBLE_EQ(loaded.get("7pt/p100/x1")->time_s, 3.1e-3);
}

TEST(TuningCache, LoadMergesAndLaterWins) {
  TuningCache a;
  a.put("k", {KernelConfig{}, 1.0, 0.1});
  TuningCache b;
  KernelConfig other;
  other.max_registers = 64;
  b.put("k", {other, 2.0, 0.2});
  b.put("extra", {KernelConfig{}, 3.0, 0.3});
  a.load_text(b.save_text());
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.get("k")->config.max_registers, 64);
}

TEST(TuningCache, MalformedLinesSkippedAndCounted) {
  TuningCache cache;
  const auto report =
      cache.load_text("this is not a record\nk\t1.0\tbadfloat\tblock=1,1,1\n"
                      "ok\t1e-3\t0.5\t" +
                      serialize_config(KernelConfig{}) + "\n");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("ok"));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 2);
}

TEST(TuningCache, PartiallyCorruptFileLoadsIntactRows) {
  // A corrupt row sandwiched between two good ones: both good rows load,
  // the corruption is reported, and nothing throws.
  TuningCache good;
  good.put("first", {KernelConfig{}, 1e-3, 0.5});
  good.put("second", {fancy_config(), 2e-3, 0.6});
  const std::string text = good.save_text();
  const auto mid = text.find('\n') + 1;
  const std::string corrupt = text.substr(0, mid) +
                              "second\t2e-3\t0.6\ttiling=pyramid axis=9\n" +
                              text.substr(mid);
  TuningCache cache;
  const auto report = cache.load_text(corrupt);
  EXPECT_EQ(report.loaded, 2);
  EXPECT_EQ(report.skipped, 1);
  EXPECT_TRUE(cache.contains("first"));
  // Later rows win: the intact "second" record overwrote nothing (the
  // corrupt one never loaded) and is present.
  EXPECT_TRUE(config_equal(cache.get("second")->config, fancy_config()));
}

TEST(TuningCache, FileRoundTrip) {
  const std::string path = "/tmp/artemis_cache_test.txt";
  TuningCache cache;
  cache.put("a/b", {fancy_config(), 7e-4, 2.0});
  ASSERT_TRUE(cache.save_file(path));
  TuningCache loaded;
  const auto report = loaded.load_file(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.loaded, 1);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.get("a/b")->tflops, 2.0);
  std::remove(path.c_str());
}

TEST(TuningCache, MissingFileDistinctFromUnreadable) {
  TuningCache cache;
  const auto missing = cache.load_file("/tmp/definitely/not/here.txt");
  EXPECT_EQ(missing.status, CacheLoadReport::Status::Missing);
  EXPECT_FALSE(missing.ok());
  // A directory exists but cannot be read as a cache file.
  const auto unreadable = cache.load_file("/tmp");
  EXPECT_EQ(unreadable.status, CacheLoadReport::Status::IoError);
  EXPECT_FALSE(unreadable.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, RejectsKeysWithSeparators) {
  TuningCache cache;
  EXPECT_THROW(cache.put("bad\tkey", {KernelConfig{}, 1, 1}), Error);
  EXPECT_THROW(cache.put("bad\nkey", {KernelConfig{}, 1, 1}), Error);
}

}  // namespace
}  // namespace artemis::autotune
