// artemis_client — thin client for the artemisd tuning daemon.
//
//   artemis_client --socket s.sock tune prog.dsl      tune (or fetch) a plan
//   artemis_client --socket s.sock compile prog.dsl   keys + program facts
//   artemis_client --socket s.sock run prog.dsl       functional checksums
//   artemis_client --socket s.sock stats              daemon counters
//   artemis_client --socket s.sock shutdown           stop the daemon
//
// Prints the response JSON (the `result` object on success) to stdout.
// Exit code: 0 on an ok response, 1 on a structured error or transport
// failure, 2 on usage errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "artemis/common/str.hpp"
#include "artemis/service/socket_server.hpp"

using namespace artemis;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket <path> "
               "compile|tune|run <file.dsl>\n"
               "       %s --socket <path> stats|shutdown\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, method, path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (method.empty()) {
      method = arg;
    } else {
      path = arg;
    }
  }
  if (socket_path.empty() || method.empty()) return usage(argv[0]);
  const bool needs_source =
      method == "compile" || method == "tune" || method == "run";
  if (needs_source && path.empty()) return usage(argv[0]);

  try {
    Json req = Json::object();
    req.set("id", Json(1));
    req.set("method", Json(method));
    Json params = Json::object();
    if (needs_source) {
      std::ifstream in(path);
      if (!in) throw Error(str_cat("cannot open '", path, "'"));
      std::ostringstream buf;
      buf << in.rdbuf();
      params.set("source", Json(buf.str()));
    }
    req.set("params", std::move(params));

    service::UnixClient client(socket_path);
    const Json resp = client.call(req);
    if (resp["ok"].as_bool()) {
      std::printf("%s\n", resp["result"].dump(2).c_str());
      return 0;
    }
    std::fprintf(stderr, "artemis_client: %s: %s\n",
                 resp["error"]["code"].as_string().c_str(),
                 resp["error"]["message"].as_string().c_str());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "artemis_client: error: %s\n", e.what());
    return 1;
  }
}
