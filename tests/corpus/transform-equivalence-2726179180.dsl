// artemis-verify reproducer
// property: transform-equivalence
// seed: 2726179180
// detail: time-tile x=2: grid 'a0' max|diff| = 0.94891644991780422
// fixed: sim::zero_boundary silently skipped axes narrower than
// 2*margin, so the homogeneous-Dirichlet precondition for overlapped
// time tiling was never established on this N=4 grid and the tiled
// kernel read random halo values the reference had guarded away.
parameter N=4;
iterator i;
double a0[N], v0[N], c0, c1;
copyin a0, c0, c1;
stencil stage0 (OUT, IN, c0, c1) {
  OUT[i] = IN[i-3];
}
iterate 6 {
  stage0 (v0, a0, c0, c1);
  swap (v0, a0);
}
copyout a0;
