#pragma once

#include <string>

#include "artemis/codegen/plan.hpp"
#include "artemis/ir/program.hpp"

namespace artemis::codegen {

/// Generated CUDA translation unit.
struct CudaSource {
  std::string kernel;  ///< __global__ kernel definition(s)
  std::string host;    ///< host-side launcher (allocs, copies, dim3 launch)

  std::string full() const;
};

/// Emit CUDA C++ source realizing a kernel plan:
///
///  - spatial plans produce a 3D-tiled kernel, staging shared-memory
///    arrays with cooperative halo loads and a __syncthreads barrier;
///  - streaming plans produce the Listing-2 shape: one shared plane per
///    streamed array, +/- register planes, the serial k sweep with the
///    rotate-shift-load epilogue, and (optionally) prefetch registers that
///    overlap the next plane's loads with computation (Listing 2 /
///    Section III-A4);
///  - unrolled plans wrap the body in per-axis output loops (blocked or
///    cyclic lane mapping);
///  - retimed plans emit per-plane accumulation statements instead of the
///    gathered form.
///
/// The text is for inspection and golden-testing; execution and
/// performance evaluation go through sim::execute_plan and
/// gpumodel::evaluate, which consume the same plan.
CudaSource emit_cuda(const ir::Program& prog, const KernelPlan& plan);

}  // namespace artemis::codegen
