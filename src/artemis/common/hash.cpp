#include "artemis/common/hash.hpp"

#include <array>
#include <cctype>

#include "artemis/common/str.hpp"

namespace artemis {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

/// SplitMix64 finalizer, same avalanche step the fault-injection hash
/// uses: cheap, well-mixed, platform-stable.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& s) { return crc32(s.data(), s.size()); }

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool parse_crc32_hex(const std::string& s, std::uint32_t* out) {
  if (s.size() != 8) return false;
  std::uint32_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

ContentHasher::ContentHasher()
    : lo_(kFnvOffset), hi_(mix64(kFnvOffset)) {}

void ContentHasher::update(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    hi_ = mix64(hi_ ^ p[i]);
  }
}

void ContentHasher::update(const std::string& s) {
  update(s.data(), s.size());
}

std::string ContentHasher::hex_digest() const {
  static const char* digits = "0123456789abcdef";
  // Finalize copies so the hasher stays usable for further updates.
  const std::uint64_t a = mix64(lo_);
  const std::uint64_t b = mix64(hi_ ^ lo_);
  std::string out;
  out.reserve(32);
  for (int i = 15; i >= 0; --i) out += digits[(a >> (4 * i)) & 0xFu];
  for (int i = 15; i >= 0; --i) out += digits[(b >> (4 * i)) & 0xFu];
  return out;
}

}  // namespace artemis
