file(REMOVE_RECURSE
  "CMakeFiles/table3_spatial_oi.dir/table3_spatial_oi.cpp.o"
  "CMakeFiles/table3_spatial_oi.dir/table3_spatial_oi.cpp.o.d"
  "table3_spatial_oi"
  "table3_spatial_oi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_spatial_oi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
