#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace artemis::dsl {

enum class TokKind {
  Ident,
  Integer,
  Float,
  // punctuation
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Comma, Semicolon, Assign, PlusAssign,
  Plus, Minus, Star, Slash,
  Hash,  ///< introduces #pragma / #assign
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;        ///< identifier spelling / literal spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int col = 0;
};

/// Tokenize a DSL source string. Supports `//` line comments and
/// `/* */` block comments. Throws ParseError on unknown characters.
std::vector<Token> lex(const std::string& source);

const char* tok_kind_name(TokKind k);

}  // namespace artemis::dsl
