file(REMOVE_RECURSE
  "CMakeFiles/halide_autoscheduler.dir/halide_autoscheduler.cpp.o"
  "CMakeFiles/halide_autoscheduler.dir/halide_autoscheduler.cpp.o.d"
  "halide_autoscheduler"
  "halide_autoscheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halide_autoscheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
