file(REMOVE_RECURSE
  "CMakeFiles/deep_tuning_hpgmg.dir/deep_tuning_hpgmg.cpp.o"
  "CMakeFiles/deep_tuning_hpgmg.dir/deep_tuning_hpgmg.cpp.o.d"
  "deep_tuning_hpgmg"
  "deep_tuning_hpgmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_tuning_hpgmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
