// Reproduces Table I: characteristics of the 3D benchmarks.
//
// For each of the 11 stencils we print the domain, time tile size T,
// stencil order k, FLOPs per point and the number of distinct IO arrays,
// as computed by the IR analysis, next to the paper's values. The
// synthesized complex kernels (miniflux..rhs4sgcurv) are constructed to
// match order/arrays exactly and FLOPs within a few percent (DESIGN.md
// section 2).

#include <cstdio>
#include <functional>
#include <set>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  TablePrinter table({"Benchmark", "Domain", "T", "k", "# Flops",
                      "(paper)", "# IO Arrays", "(paper)"});

  for (const auto& spec : stencils::paper_benchmarks()) {
    const ir::Program prog = stencils::benchmark_program(spec.name);
    int order = 0;
    std::int64_t flops = 0;
    std::set<std::string> arrays;
    std::function<void(const std::vector<ir::Step>&)> walk =
        [&](const std::vector<ir::Step>& steps) {
          for (const auto& step : steps) {
            if (step.kind == ir::Step::Kind::Iterate) {
              walk(step.body);
              continue;
            }
            if (step.kind != ir::Step::Kind::Call) continue;
            const auto info =
                ir::analyze(prog, ir::bind_call(prog, step.call));
            order = std::max(order, info.order);
            flops += info.flops_per_point;
            for (const auto& [name, ai] : info.arrays) arrays.insert(name);
          }
        };
    walk(prog.steps);

    table.add_row({spec.name, str_cat(spec.domain, "^3"),
                   std::to_string(spec.time_steps), std::to_string(order),
                   std::to_string(flops), std::to_string(spec.paper_flops),
                   std::to_string(arrays.size()),
                   std::to_string(spec.paper_arrays)});
  }

  std::printf("Table I: Characteristics of the 3D benchmarks\n");
  std::printf("(# Flops / # IO Arrays computed by IR analysis; paper values "
              "alongside)\n\n%s\n",
              table.to_string().c_str());
  std::printf("T: time tile size, k: stencil order\n");
  return 0;
}
