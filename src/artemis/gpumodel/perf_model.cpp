#include "artemis/gpumodel/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::gpumodel {

namespace {

using codegen::KernelPlan;
using codegen::Perspective;
using codegen::TilingScheme;
using codegen::UnrollStrategy;

constexpr std::int64_t kElem = 8;  // double precision

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Geometry of the plan collected once.
struct Geometry {
  std::array<std::int64_t, 3> tile = {1, 1, 1};   ///< output tile per block
  std::array<std::int64_t, 3> domain = {1, 1, 1};
  std::int64_t blocks = 1;
  std::int64_t sweep_len = 1;       ///< z extent swept per block (1 if none)
  bool streaming = false;
};

Geometry make_geometry(const KernelPlan& plan) {
  Geometry g;
  g.domain = {plan.domain.x, plan.domain.y, plan.domain.z};
  for (int a = 0; a < plan.dims; ++a) {
    g.tile[static_cast<std::size_t>(a)] = std::min(
        plan.tile_extent(a), g.domain[static_cast<std::size_t>(a)]);
  }
  const auto& cfg = plan.config;
  g.streaming = cfg.tiling != TilingScheme::Spatial3D;
  const int sweep_axis = plan.dims - 1;
  if (cfg.tiling == TilingScheme::StreamSerial) {
    g.sweep_len = g.domain[static_cast<std::size_t>(sweep_axis)];
    g.tile[static_cast<std::size_t>(sweep_axis)] = g.sweep_len;
  } else if (cfg.tiling == TilingScheme::StreamConcurrent) {
    g.sweep_len = std::min<std::int64_t>(cfg.stream_chunk,
                                         g.domain[static_cast<std::size_t>(
                                             sweep_axis)]);
    g.tile[static_cast<std::size_t>(sweep_axis)] = g.sweep_len;
  }
  g.blocks = 1;
  for (int a = 0; a < plan.dims; ++a) {
    g.blocks *= ceil_div(g.domain[static_cast<std::size_t>(a)],
                         g.tile[static_cast<std::size_t>(a)]);
  }
  return g;
}

/// Volume of the block's tile expanded by `e` per axis; the swept axis of
/// serial streaming carries no per-axis expansion cost (redundancy only in
/// the tiled dimensions, Fig. 1c), while concurrent streaming pays the
/// expansion on its chunk.
std::int64_t expanded_volume(const KernelPlan& plan, const Geometry& g,
                             const std::array<int, 3>& e) {
  std::int64_t v = 1;
  for (int a = 0; a < plan.dims; ++a) {
    const auto idx = static_cast<std::size_t>(a);
    std::int64_t ext = g.tile[idx];
    const bool is_sweep_axis = g.streaming && a == plan.dims - 1;
    if (!is_sweep_axis ||
        plan.config.tiling == TilingScheme::StreamConcurrent) {
      if (!is_sweep_axis) {
        ext += 2 * e[idx];
      }
      // Concurrent streaming pays the sweep-axis expansion once per chunk
      // for fused stages (pipeline fill), which is small; we fold it in.
      if (is_sweep_axis &&
          plan.config.tiling == TilingScheme::StreamConcurrent) {
        ext += 2 * e[idx];
      }
    }
    v *= ext;
  }
  return v;
}

/// Effective halo of array `name` per axis (0 when untracked).
std::array<std::int64_t, 3> halo_of(const KernelPlan& plan,
                                    const std::string& name) {
  std::array<std::int64_t, 3> h = {0, 0, 0};
  if (const auto it = plan.eff_halo.find(name); it != plan.eff_halo.end()) {
    for (std::size_t a = 0; a < 3; ++a) h[a] = it->second[a];
  }
  return h;
}

/// Register-level reuse factor for repeated x-offset reads under blocked
/// unrolling (Section III-A3): ux adjacent outputs share a sliding window
/// of 2rx+ux loads instead of ux*(2rx+1).
double unroll_reuse_factor(const KernelPlan& plan,
                           const ir::ArrayAccessInfo& ai) {
  if (plan.config.unroll_strategy != UnrollStrategy::Blocked) return 1.0;
  const int ux = plan.config.unroll[0];
  if (ux <= 1) return 1.0;
  // Radius along the innermost iterator (axis x).
  const int rx = ai.radius[static_cast<std::size_t>(plan.dims - 1)];
  if (rx == 0 || ai.read_offsets.size() <= 1) return 1.0;
  const double w = 2.0 * rx + 1.0;
  return (2.0 * rx + ux) / (ux * w);
}

/// Number of elements of `name` loaded (from the global space) per block
/// over the block's whole sweep, assuming the array is staged (each
/// element fetched once).
std::int64_t staged_loads_per_block(const KernelPlan& plan, const Geometry& g,
                                    const ir::ArrayAccessInfo& ai,
                                    const std::array<std::int64_t, 3>& halo) {
  if (ai.dims < plan.dims) return g.tile[0] + 2 * halo[0];
  std::int64_t v = 1;
  for (int a = 0; a < plan.dims; ++a) {
    const auto idx = static_cast<std::size_t>(a);
    std::int64_t h = halo[idx];
    if (g.streaming && a == plan.dims - 1) {
      // Streaming pipelines fused stages along the sweep: only the
      // array's own radius of extra planes is ever loaded.
      h = ai.radius[0];
    }
    v *= g.tile[idx] + 2 * h;
  }
  return v;
}

double ramp(double concurrency, double saturation) {
  return std::clamp(concurrency / saturation, 0.02, 1.0);
}

}  // namespace

const char* bound_name(Bound b) {
  switch (b) {
    case Bound::Dram: return "dram-bandwidth";
    case Bound::Tex: return "tex-bandwidth";
    case Bound::Shm: return "shm-bandwidth";
    case Bound::Compute: return "compute";
    case Bound::Latency: return "latency";
  }
  return "?";
}

KernelEval evaluate(const KernelPlan& plan, const DeviceSpec& dev,
                    const ModelParams& params) {
  KernelEval ev;
  const Geometry g = make_geometry(plan);
  const auto& cfg = plan.config;

  // ---- threads per block under the chosen perspective ---------------------
  const std::int64_t hx = plan.radius[0];
  const std::int64_t hy = plan.dims >= 2 ? plan.radius[1] : 0;
  bool any_shared = false;
  for (const auto& [name, pl] : plan.placement) {
    any_shared |= pl.space == ir::MemSpace::Shared;
  }
  std::int64_t threads_pb = cfg.threads_per_block();
  if (cfg.tiling == TilingScheme::StreamConcurrent) {
    threads_pb = static_cast<std::int64_t>(cfg.block[0]) * cfg.block[1];
  }
  if (any_shared) {
    switch (cfg.perspective) {
      case Perspective::Output:
        break;
      case Perspective::Input:
        threads_pb = (cfg.block[0] + 2 * hx) *
                     (plan.dims >= 2 ? (cfg.block[1] + 2 * hy) : 1) *
                     (g.streaming ? 1 : cfg.block[2]);
        break;
      case Perspective::Mixed:
        threads_pb = (cfg.block[0] + 2 * hx) *
                     (plan.dims >= 2 ? cfg.block[1] : 1) *
                     (g.streaming ? 1 : cfg.block[2]);
        break;
    }
  }
  if (threads_pb > dev.max_threads_per_block) {
    ev.valid = false;
    ev.invalid_reason = str_cat("perspective-expanded block of ", threads_pb,
                                " threads exceeds device limit");
    ev.time_s = std::numeric_limits<double>::infinity();
    return ev;
  }

  // ---- registers and occupancy --------------------------------------------
  ev.regs = estimate_registers(plan);
  const int regs_alloc = std::min(ev.regs.total, cfg.max_registers);
  const int spilled = ev.regs.spilled(cfg.max_registers);

  KernelResources res;
  res.threads_per_block = static_cast<int>(threads_pb);
  res.regs_per_thread = regs_alloc;
  res.shmem_per_block = plan.shmem_bytes_per_block;
  ev.occupancy = compute_occupancy(dev, res);
  if (ev.occupancy.fraction <= 0.0) {
    ev.valid = false;
    ev.invalid_reason =
        str_cat("launch cannot run: ", limiter_name(ev.occupancy.limiter));
    ev.time_s = std::numeric_limits<double>::infinity();
    return ev;
  }

  // ---- FLOPs (with overlapped-tiling recomputation) ------------------------
  const std::int64_t points_total =
      plan.domain.x * plan.domain.y * plan.domain.z;
  std::int64_t flops_per_point_useful = 0;
  std::int64_t computed_points = 0;  // incl. recompute, over all stages
  {
    std::int64_t flops = 0;
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const std::int64_t region = expanded_volume(plan, g, plan.stage_expand[s]);
      flops += plan.stage_flops[s] * region;
      computed_points += region;
      flops_per_point_useful += plan.stage_flops[s];
    }
    ev.counters.flops = flops * g.blocks;
    computed_points *= g.blocks;
  }
  ev.useful_flops = flops_per_point_useful * points_total;
  // Folding removes recomputed multiplies at the source level.
  if (!plan.fold_groups.empty()) {
    // Savings are per point of the stage reading the folded arrays; the
    // plan builder guarantees groups only form among co-indexed reads.
    std::int64_t savings_pp = 0;
    for (const auto& grp : plan.fold_groups) {
      savings_pp += static_cast<std::int64_t>(grp.size()) - 1;
    }
    ev.counters.flops -= savings_pp * computed_points / 2;
    ev.counters.flops = std::max<std::int64_t>(ev.counters.flops, 0);
  }

  // ---- memory traffic -------------------------------------------------------
  const double halo_hit = g.streaming ? params.stream_halo_l2_hit
                                      : params.spatial_halo_l2_hit;
  const double recompute_ratio =
      points_total > 0 ? static_cast<double>(computed_points) /
                             (static_cast<double>(points_total) *
                              std::max<std::size_t>(plan.stages.size(), 1))
                       : 1.0;

  // Working set that must survive in L2 between consecutive sweep steps of
  // streaming blocks that read straight from global memory.
  double stream_global_ws = 0.0;
  const std::int64_t active_blocks_possible =
      static_cast<std::int64_t>(dev.num_sms) *
      std::max(1, ev.occupancy.active_blocks_per_sm);
  const std::int64_t active_blocks = std::min(g.blocks, active_blocks_possible);
  if (g.streaming) {
    for (const auto& [name, pl] : plan.placement) {
      if (pl.space != ir::MemSpace::Global) continue;
      const auto it = plan.info.arrays.find(name);
      if (it == plan.info.arrays.end() || !it->second.read) continue;
      if (it->second.dims < plan.dims) continue;  // low-dim arrays are tiny
      const auto h = halo_of(plan, name);
      const std::int64_t rz = h[static_cast<std::size_t>(plan.dims - 1)];
      const std::int64_t plane =
          (g.tile[0] + 2 * h[0]) *
          (plan.dims >= 3 ? (g.tile[1] + 2 * h[1]) : 1) * kElem;
      stream_global_ws += static_cast<double>(active_blocks) *
                          static_cast<double>(plane) *
                          static_cast<double>(2 * rz + 1);
    }
  }
  const double stream_keep =
      stream_global_ws > 0.0
          ? std::clamp(static_cast<double>(dev.l2_bytes) / stream_global_ws,
                       0.0, 0.98)
          : 1.0;

  std::set<int> fold_counted;
  for (const auto& [name, pl] : plan.placement) {
    const auto ait = plan.info.arrays.find(name);
    ARTEMIS_CHECK(ait != plan.info.arrays.end());
    const auto& ai = ait->second;
    const auto halo = halo_of(plan, name);

    std::int64_t unique_elems = 1;
    {
      // Unique footprint: the declared array volume, bounded by what the
      // kernel touches.
      if (ai.dims == 1) {
        unique_elems = g.domain[0];
      } else {
        for (int a = 0; a < ai.dims; ++a) {
          unique_elems *= g.domain[static_cast<std::size_t>(a)];
        }
      }
    }
    const std::int64_t unique_bytes = unique_elems * kElem;
    const auto n_offsets = static_cast<std::int64_t>(ai.read_offsets.size());
    const double reuse = unroll_reuse_factor(plan, ai);
    const bool internal =
        std::find(plan.internal_arrays.begin(), plan.internal_arrays.end(),
                  name) != plan.internal_arrays.end();

    // Perspective-dependent coalescing waste on staged halo loads.
    double persp_waste = 1.0;
    if (any_shared && pl.space == ir::MemSpace::Shared) {
      if (cfg.perspective == Perspective::Output) {
        persp_waste = params.output_persp_halo_waste;
      } else if (cfg.perspective == Perspective::Mixed) {
        persp_waste = params.mixed_persp_halo_waste;
      }
    }

    switch (pl.space) {
      case ir::MemSpace::Shared:
      case ir::MemSpace::Reg: {
        if (internal) {
          // Produced and consumed inside the kernel: no global read
          // traffic; fills and reads go through shared memory below. If
          // the array is also a program output it still streams out once.
          if (std::find(plan.materialized_internals.begin(),
                        plan.materialized_internals.end(),
                        name) != plan.materialized_internals.end()) {
            ev.counters.dram_write_bytes += unique_bytes;
          }
          if (pl.space == ir::MemSpace::Shared) {
            const double region =
                static_cast<double>(computed_points) /
                std::max<std::size_t>(plan.stages.size(), 1);
            ev.counters.shm_bytes += static_cast<std::int64_t>(
                region * kElem);  // fill by producer stage
            ev.counters.shm_bytes += static_cast<std::int64_t>(
                region * static_cast<double>(std::max<std::int64_t>(
                             n_offsets, 1)) *
                reuse * kElem);
          }
          break;
        }
        if (ai.read && ai.dims < plan.dims) {
          // Low-dimensional coefficient arrays: warp-broadcast loads, one
          // line per block, resident in L2 thereafter.
          const std::int64_t line =
              (g.tile[0] + 2 * halo[0]) * g.blocks * kElem;
          ev.counters.tex_bytes += line;
          ev.counters.dram_read_bytes += unique_bytes;
          if (pl.space == ir::MemSpace::Shared) {
            // Naive generators allocate tile-shaped buffers even for 1D
            // arrays (Section II-B1); the fill and the per-point reads go
            // through shared memory.
            const std::int64_t fill =
                pl.user_pinned
                    ? line
                    : (g.tile[0] + 2 * halo[0]) *
                          (plan.dims >= 2 ? (g.tile[1] + 2 * halo[1]) : 1) *
                          g.blocks * kElem;
            const auto reads = static_cast<std::int64_t>(
                static_cast<double>(points_total) * recompute_ratio *
                static_cast<double>(std::max<std::int64_t>(n_offsets, 1)) *
                kElem);
            ev.counters.shm_bytes += fill + reads;
          }
          if (ai.written) ev.counters.dram_write_bytes += unique_bytes;
          break;
        }
        if (ai.read) {
          const std::int64_t per_block =
              staged_loads_per_block(plan, g, ai, halo);
          const std::int64_t total_loaded = per_block * g.blocks * kElem;
          const std::int64_t redundant =
              std::max<std::int64_t>(total_loaded - unique_bytes, 0);
          const double halo_frac =
              total_loaded > 0
                  ? static_cast<double>(redundant) / total_loaded
                  : 0.0;
          ev.counters.tex_bytes += static_cast<std::int64_t>(
              total_loaded * (1.0 + (persp_waste - 1.0) * halo_frac));
          ev.counters.dram_read_bytes += static_cast<std::int64_t>(
              std::min(unique_bytes, total_loaded) +
              redundant * (1.0 - halo_hit));
          if (pl.space == ir::MemSpace::Shared) {
            std::int64_t fill = total_loaded;
            std::int64_t reads = static_cast<std::int64_t>(
                static_cast<double>(points_total) * recompute_ratio *
                static_cast<double>(n_offsets) * reuse * kElem);
            if (pl.fold_group >= 0) {
              // Folded buffers are filled once per group; count the fill
              // and reads only for the first member encountered.
              if (fold_counted.count(pl.fold_group)) {
                reads = 0;
                fill = 0;
              } else {
                fold_counted.insert(pl.fold_group);
              }
            }
            ev.counters.shm_bytes += fill + reads;
          }
        }
        if (ai.written) {
          ev.counters.dram_write_bytes += unique_bytes;
        }
        break;
      }
      case ir::MemSpace::Global: {
        if (internal) {
          // Fused stages exchanging data through global memory: producer
          // writes and consumer reads the expanded region.
          const double region = static_cast<double>(computed_points) /
                                std::max<std::size_t>(plan.stages.size(), 1);
          const auto bytes = static_cast<std::int64_t>(region * kElem);
          ev.counters.dram_write_bytes += bytes;
          ev.counters.tex_bytes += static_cast<std::int64_t>(
              region * static_cast<double>(std::max<std::int64_t>(n_offsets,
                                                                  1)) *
              reuse * kElem);
          ev.counters.dram_read_bytes += bytes / 2;  // partial L2 reuse
          break;
        }
        if (ai.read && ai.dims < plan.dims) {
          // Broadcast reads of low-dimensional arrays: one line of tex
          // traffic per block, resident in L2.
          ev.counters.tex_bytes +=
              (g.tile[0] + 2 * halo[0]) * g.blocks * kElem *
              std::max<std::int64_t>(n_offsets, 1);
          ev.counters.dram_read_bytes += unique_bytes;
          if (ai.written) ev.counters.dram_write_bytes += unique_bytes;
          break;
        }
        if (ai.read) {
          // Every (CSE'd) offset access is a tex transaction.
          ev.counters.tex_bytes += static_cast<std::int64_t>(
              static_cast<double>(points_total) * recompute_ratio *
              static_cast<double>(std::max<std::int64_t>(n_offsets, 1)) *
              reuse * kElem);
          if (false) {
            // (low-dimensional arrays handled above)
          } else {
            const std::int64_t per_block =
                staged_loads_per_block(plan, g, ai, halo);
            const std::int64_t total_touched = per_block * g.blocks * kElem;
            const std::int64_t redundant =
                std::max<std::int64_t>(total_touched - unique_bytes, 0);
            double dram = static_cast<double>(
                              std::min(unique_bytes, total_touched)) +
                          static_cast<double>(redundant) * (1.0 - halo_hit);
            if (g.streaming) {
              // Plane revisits along the sweep miss when the inter-step
              // working set exceeds L2 (the global-stream effect of
              // Section VIII-F).
              const std::int64_t rz =
                  halo[static_cast<std::size_t>(plan.dims - 1)];
              dram += static_cast<double>(unique_bytes) * 2.0 *
                      static_cast<double>(rz) * (1.0 - stream_keep);
            }
            ev.counters.dram_read_bytes += static_cast<std::int64_t>(dram);
          }
        }
        if (ai.written) {
          ev.counters.dram_write_bytes += unique_bytes;
          if (ai.read && ai.written) {
            // Read-modify-write arrays (+=) are also read once.
          }
        }
        break;
      }
      case ir::MemSpace::Auto:
        ARTEMIS_CHECK_MSG(false, "placement left unresolved for '" << name
                                                                   << "'");
    }
  }

  // ---- spills ---------------------------------------------------------------
  if (spilled > 0) {
    ev.counters.spill_bytes = static_cast<std::int64_t>(
        static_cast<double>(computed_points) * spilled * kElem *
        params.spill_sector_waste);
    ev.counters.tex_bytes += ev.counters.spill_bytes * 2;  // st + ld
    ev.counters.dram_read_bytes += static_cast<std::int64_t>(
        ev.counters.spill_bytes * params.spill_dram_fraction);
    ev.counters.dram_write_bytes += static_cast<std::int64_t>(
        ev.counters.spill_bytes * params.spill_dram_fraction);
  }
  ev.counters.num_blocks = g.blocks;

  // ---- timing ----------------------------------------------------------------
  const double occ = ev.occupancy.fraction;
  const std::int64_t uprod = cfg.unroll_product();
  const double ilp_per_u =
      cfg.unroll_strategy == UnrollStrategy::Blocked
          ? params.ilp_per_unroll_blocked
          : params.ilp_per_unroll_cyclic;
  const double ilp =
      std::min(4.0, 1.0 + ilp_per_u * static_cast<double>(uprod - 1));

  const double waves = std::ceil(static_cast<double>(g.blocks) /
                                 static_cast<double>(active_blocks_possible));
  const double tail_util =
      std::clamp(static_cast<double>(g.blocks) /
                     (waves * static_cast<double>(active_blocks_possible)),
                 0.05, 1.0);

  const double mem_conc = occ * (1.0 + 0.15 * (ilp - 1.0));
  const double comp_conc = occ * ilp;

  ev.t_dram = static_cast<double>(ev.counters.dram_bytes()) /
              (dev.dram_bytes_per_s * ramp(mem_conc, params.dram_sat_occ) *
               tail_util);
  ev.t_tex = static_cast<double>(ev.counters.tex_bytes) /
             (dev.tex_bytes_per_s * ramp(mem_conc, params.tex_sat_occ) *
              tail_util);
  ev.t_shm = static_cast<double>(ev.counters.shm_bytes) /
             (dev.shm_bytes_per_s * ramp(mem_conc, params.shm_sat_occ) *
              tail_util);
  ev.t_compute =
      static_cast<double>(ev.counters.flops) /
      (dev.peak_dp_flops * ramp(comp_conc, params.compute_sat_conc) *
       tail_util);
  if (spilled > 0) {
    // Dependent local-memory ld/st chains stall the issue pipeline.
    ev.t_compute *= 1.0 + params.spill_compute_drag * spilled;
  }

  double overlap = params.overlap_spatial;
  if (g.streaming) {
    overlap = cfg.prefetch ? params.overlap_stream_pf
                           : params.overlap_stream_nopf;
  }
  const double t_mem = std::max({ev.t_dram, ev.t_tex, ev.t_shm});
  ev.time_s = std::max(t_mem, ev.t_compute) +
              (1.0 - overlap) * std::min(t_mem, ev.t_compute);

  // ---- bottleneck verdict ------------------------------------------------
  struct Cand {
    double t;
    Bound b;
    double eff;
  };
  const Cand cands[] = {
      {ev.t_dram, Bound::Dram, ramp(mem_conc, params.dram_sat_occ)},
      {ev.t_tex, Bound::Tex, ramp(mem_conc, params.tex_sat_occ)},
      {ev.t_shm, Bound::Shm, ramp(mem_conc, params.shm_sat_occ)},
      {ev.t_compute, Bound::Compute, ramp(comp_conc, params.compute_sat_conc)},
  };
  const Cand* top = &cands[0];
  for (const auto& c : cands) {
    if (c.t > top->t) top = &c;
  }
  ev.bound = top->eff < 0.7 ? Bound::Latency : top->b;
  return ev;
}

}  // namespace artemis::gpumodel
