// Robustness sweep: random stencil programs through the whole stack.
//
// Generates random DSL programs (random orders, DAG depths, expression
// shapes), then for each: round-trips through the printer/parser, plans a
// random configuration, executes the plan over real grids, and compares
// against the reference interpreter bit-for-bit. This is the same
// machinery as the property tests, packaged as a standalone tool:
//
//   ./fuzz_roundtrip [num_trials] [seed]

#include <cstdio>
#include <cstdlib>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/random_stencil.hpp"

using namespace artemis;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::uint64_t seed = argc > 2
                                 ? std::strtoull(argv[2], nullptr, 10)
                                 : 0xF00DF00Dull;
  Rng rng(seed);
  const auto dev = gpumodel::p100();

  int executed = 0;
  int infeasible = 0;
  for (int t = 0; t < trials; ++t) {
    stencils::RandomStencilOptions opts;
    opts.dims = static_cast<int>(rng.uniform_int(1, 3));
    opts.max_order = static_cast<int>(rng.uniform_int(1, 3));
    opts.max_stages = static_cast<int>(rng.uniform_int(1, 3));
    const ir::Program prog = stencils::random_program(rng, opts);

    // Printer round trip must be a fixed point.
    const std::string printed = dsl::print_program(prog);
    if (dsl::print_program(dsl::parse(printed)) != printed) {
      std::printf("FAIL trial %d: printer round-trip diverged\n", t);
      return 1;
    }

    // Random configuration.
    codegen::KernelConfig cfg;
    const std::int64_t roll = rng.uniform_int(0, 2);
    if (opts.dims >= 2 && roll == 1) {
      cfg.tiling = codegen::TilingScheme::StreamSerial;
    } else if (opts.dims >= 2 && roll == 2) {
      cfg.tiling = codegen::TilingScheme::StreamConcurrent;
      cfg.stream_chunk = static_cast<int>(rng.uniform_int(3, 9));
    }
    cfg.stream_axis = opts.dims - 1;
    cfg.block = {static_cast<int>(rng.uniform_int(2, 8)),
                 opts.dims >= 2 ? static_cast<int>(rng.uniform_int(2, 8)) : 1,
                 opts.dims >= 3 ? static_cast<int>(rng.uniform_int(1, 4))
                                : 1};
    if (cfg.tiling != codegen::TilingScheme::Spatial3D) {
      cfg.block[static_cast<std::size_t>(opts.dims - 1)] = 1;
    }
    if (rng.coin(0.3)) cfg.unroll[0] = 2;

    sim::GridSet ref = sim::GridSet::from_program(prog, seed + t);
    sim::GridSet tiled = ref.clone();
    sim::run_program_reference(prog, ref);
    try {
      // Fuse the whole chain when there are multiple stages.
      const auto stages = [&] {
        std::vector<ir::BoundStencil> out;
        int idx = 0;
        for (const auto& step : prog.steps) {
          out.push_back(ir::bind_call(prog, step.call,
                                      "s" + std::to_string(idx++) + "_"));
        }
        return out;
      }();
      const auto plan = codegen::build_plan(prog, stages, cfg, dev);
      sim::execute_plan(plan, tiled);
    } catch (const PlanError&) {
      ++infeasible;
      continue;
    }
    ++executed;

    for (const auto& out : prog.copyout) {
      const double diff =
          Grid3D::max_abs_diff(ref.grid(out), tiled.grid(out));
      if (diff != 0.0) {
        std::printf("FAIL trial %d: max |diff| = %g on '%s'\nprogram:\n%s\n",
                    t, diff, out.c_str(), printed.c_str());
        return 1;
      }
    }
  }
  std::printf("fuzz_roundtrip: %d trials, %d executed bit-exact, %d "
              "infeasible configs skipped -- all OK\n",
              trials, executed, infeasible);
  return 0;
}
