// User-guided resource assignment and rationing (Section II-B).
//
// Two expert knobs the DSL exposes beyond Listing 1:
//  - `#assign shmem(...)/gmem(...)` pins arrays to memory spaces; the code
//    generator must obey (here: keeping SW4's six 1D damping coefficients
//    out of shared memory).
//  - `occupancy t` in the #pragma sets a target occupancy; the resource
//    mapper demotes the least-accessed shared buffers until the target is
//    achievable (resource rationing).

#include <cstdio>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();

  // --- #assign: expert vs naive -------------------------------------------
  driver::Strategy s = driver::artemis_strategy();
  s.profile_guided = false;  // isolate the resource-assignment effect
  std::printf("addsgd4, shared-memory pipeline:\n");
  for (const bool with_assign : {false, true}) {
    const auto prog = dsl::parse(stencils::addsgd_dsl(0, 2, with_assign));
    const auto r = driver::optimize_program(prog, dev, {}, s);
    std::printf("  %-22s %.3f TFLOPS   occupancy %.2f   %s\n",
                with_assign ? "with expert #assign:" : "naive default:",
                r.tflops, r.kernels[0].eval.occupancy.fraction,
                r.kernels[0].config.to_string().c_str());
  }

  // --- occupancy rationing ---------------------------------------------------
  // A two-input stencil where staging both arrays prevents the target
  // occupancy; the mapper demotes the least-accessed buffer.
  const char* src = R"(
    parameter L=256, M=256, N=256;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N], o[L,M,N];
    copyin a, b;
    stencil s (O, A, B) {
      O[k][j][i] = A[k][j][i] + A[k][j][i+2] + A[k][j][i-2] + A[k][j+2][i]
                 + A[k][j-2][i] + A[k+2][j][i] + A[k-2][j][i] + B[k][j][i];
    }
    s (o, a, b);
    copyout o;
  )";
  const auto prog = dsl::parse(src);
  std::printf("\noccupancy rationing (order-2 stencil, two staged "
              "inputs, 16x8x4 block):\n");
  for (const double target : {0.25, 0.5, 1.0}) {
    codegen::KernelConfig cfg;
    cfg.block = {16, 8, 4};
    cfg.target_occupancy = target;
    const auto plan =
        codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
    const auto ev = gpumodel::evaluate(plan, dev);
    std::printf("  target %.2f: shmem %5lld B/block  a->%s b->%s  achieved "
                "occupancy %.2f\n",
                target,
                static_cast<long long>(plan.shmem_bytes_per_block),
                ir::mem_space_name(plan.placement.at("a").space),
                ir::mem_space_name(plan.placement.at("b").space),
                ev.occupancy.fraction);
  }
  std::printf(
      "\nAt tight targets the mapper demotes the least-accessed buffer (b,\n"
      "one access) and keeps the seven-times-read a in shared memory --\n"
      "Section II-B2's rationing rule.\n");
  return 0;
}
