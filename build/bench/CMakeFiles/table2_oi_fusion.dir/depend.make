# Empty dependencies file for table2_oi_fusion.
# This may be replaced when dependencies are built.
