#include "artemis/autotune/search.hpp"

#include <algorithm>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/common/check.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::autotune {

namespace {

using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::Perspective;
using codegen::TilingScheme;

Json int_triple(const std::array<int, 3>& a) {
  Json arr = Json::array();
  for (const int v : a) arr.push_back(v);
  return arr;
}

/// One structured telemetry event per considered candidate (Section V
/// observability): the knob values, the outcome, and how many register
/// budgets the escalation pruned before evaluation. `reason` is empty for
/// evaluated candidates; `replayed` marks journal replays.
void record_candidate(const char* stage, const KernelConfig& cfg,
                      int spill_pruned, const Candidate* cand,
                      const char* reason, bool replayed = false) {
  if (!telemetry::enabled()) return;
  std::vector<telemetry::Attr> args;
  args.push_back({"stage", Json(stage)});
  args.push_back({"tiling", Json(codegen::tiling_name(cfg.tiling))});
  args.push_back({"block", int_triple(cfg.block)});
  args.push_back({"unroll", int_triple(cfg.unroll)});
  args.push_back({"max_registers", Json(cfg.max_registers)});
  args.push_back({"prefetch", Json(cfg.prefetch)});
  args.push_back(
      {"perspective", Json(codegen::perspective_name(cfg.perspective))});
  if (spill_pruned > 0) {
    args.push_back({"spill_pruned_budgets", Json(spill_pruned)});
  }
  if (cand != nullptr) {
    args.push_back({"outcome", Json("evaluated")});
    args.push_back({"time_ms", Json(cand->time_s * 1e3)});
    args.push_back({"occupancy", Json(cand->eval.occupancy.fraction)});
    args.push_back({"registers", Json(cand->eval.regs.total)});
  } else {
    args.push_back({"outcome", Json("infeasible")});
    args.push_back({"reason", Json(reason)});
  }
  if (replayed) args.push_back({"replayed", Json(true)});
  telemetry::instant("tuner.candidate", "tune", std::move(args));
}

/// Shared state of one tuning search: the evaluation inputs plus the
/// resilience machinery (runner, journal) that every candidate flows
/// through.
struct EvalContext {
  const PlanFactory& factory;
  const gpumodel::DeviceSpec& dev;
  const gpumodel::ModelParams& params;
  const TuneOptions& opts;
  robust::CandidateRunner runner;
  TuneResult* result;

  EvalContext(const PlanFactory& f, const gpumodel::DeviceSpec& d,
              const gpumodel::ModelParams& p, const TuneOptions& o,
              TuneResult* r)
      : factory(f), dev(d), params(p), opts(o), runner(o.runner),
        result(r) {}

  std::string candidate_key(const KernelConfig& cfg) const {
    return opts.journal_scope.empty()
               ? serialize_config(cfg)
               : str_cat(opts.journal_scope, "|", serialize_config(cfg));
  }

  /// Candidate keys (config serialization) are only materialized when
  /// something consumes them — the journal, the fault harness, or a
  /// non-default runner policy — so the disabled path never pays for
  /// string building.
  bool needs_key() const {
    return opts.journal != nullptr || robust::fault_injection_enabled() ||
           opts.runner.trials > 1 || opts.runner.deadline_ms > 0;
  }
};

/// Evaluate one configuration; returns nullopt for infeasible plans.
/// Every call counts one enumerated candidate towards the telemetry
/// counters, and evaluated + infeasible partition the enumerated set
/// (candidates lost to crashes/timeouts/quarantine after retries count
/// as infeasible, with the failure class as the recorded reason).
/// `stage` labels the sweep ("stage1", "stage2", "exhaustive", "random");
/// `spill_pruned` is how many register budgets escalation skipped while
/// settling this candidate's budget.
std::optional<Candidate> try_config(EvalContext& ctx, const KernelConfig& cfg,
                                    const char* stage = "stage1",
                                    int spill_pruned = 0) {
  telemetry::counter_add("tuner.enumerated");
  const auto fail = [&](const char* reason, bool replayed = false) {
    telemetry::counter_add("tuner.infeasible");
    record_candidate(stage, cfg, spill_pruned, nullptr, reason, replayed);
  };

  robust::TuningJournal* journal = ctx.opts.journal;
  const std::string key =
      ctx.needs_key() ? ctx.candidate_key(cfg) : std::string();

  // Replay: a resumed journal already holds this candidate's outcome, so
  // the (expensive, possibly faulty) measurement is skipped. The cheap
  // analytic evaluation is re-derived for the leaderboard metadata; the
  // journaled median timing stays authoritative.
  if (journal != nullptr) {
    if (const auto rec = journal->lookup(key)) {
      ++ctx.result->journal_hits;
      telemetry::counter_add("tuner.journal_hits");
      if (rec->status == "ok") {
        try {
          const KernelPlan plan = ctx.factory(cfg);
          gpumodel::KernelEval ev =
              gpumodel::evaluate(plan, ctx.dev, ctx.params);
          if (ev.valid) {
            Candidate c;
            c.config = cfg;
            c.time_s = rec->time_s;
            c.eval = std::move(ev);
            telemetry::counter_add("tuner.evaluated");
            record_candidate(stage, cfg, spill_pruned, &c, "",
                             /*replayed=*/true);
            return c;
          }
        } catch (const PlanError&) {
        }
        fail("journal_replay_invalid", /*replayed=*/true);
        return std::nullopt;
      }
      fail(rec->status.c_str(), /*replayed=*/true);
      return std::nullopt;
    }
  }

  const robust::RunOutcome outcome =
      ctx.runner.run("tuner.eval", key, [&]() {
        const KernelPlan plan = ctx.factory(cfg);
        return gpumodel::evaluate(plan, ctx.dev, ctx.params);
      });
  if (outcome.retries > 0) {
    telemetry::counter_add("tuner.eval_retries", outcome.retries);
  }
  if (outcome.quarantined_now) {
    // TuneResult::quarantined is settled from the runner at the end of
    // the search; here only the process-wide counter and event fire.
    telemetry::counter_add("tuner.quarantined");
    if (telemetry::enabled()) {
      telemetry::instant("tuner.quarantine", "tune",
                         {{"key", Json(key)},
                          {"reason", Json(outcome.reason)}});
    }
  }

  const auto journal_record = [&](const char* status, double time_s,
                                  double tflops) {
    if (journal != nullptr) journal->record(key, status, time_s, tflops);
  };

  switch (outcome.status) {
    case robust::RunStatus::Ok: {
      if (!outcome.eval.valid) {
        journal_record("infeasible", 0, 0);
        fail("invalid_launch");
        return std::nullopt;
      }
      Candidate c;
      c.config = cfg;
      c.time_s = outcome.time_s;
      c.eval = outcome.eval;
      // Write-ahead: journal the measurement before it is consumed.
      journal_record("ok", c.time_s, c.eval.tflops());
      telemetry::counter_add("tuner.evaluated");
      record_candidate(stage, cfg, spill_pruned, &c, "");
      return c;
    }
    case robust::RunStatus::Infeasible:
      journal_record("infeasible", 0, 0);
      fail("plan_error");
      return std::nullopt;
    case robust::RunStatus::Crash:
      ++ctx.result->crashed;
      telemetry::counter_add("tuner.eval_crashes");
      journal_record("crash", 0, 0);
      fail("eval_crash");
      return std::nullopt;
    case robust::RunStatus::Timeout:
      ++ctx.result->timed_out;
      telemetry::counter_add("tuner.eval_timeouts");
      journal_record("timeout", 0, 0);
      fail("eval_timeout");
      return std::nullopt;
    case robust::RunStatus::Unstable:
      ++ctx.result->unstable;
      telemetry::counter_add("tuner.eval_unstable");
      journal_record("unstable", 0, 0);
      fail("measurement_unstable");
      return std::nullopt;
    case robust::RunStatus::Quarantined:
      telemetry::counter_add("tuner.quarantine_skips");
      fail("quarantined");
      return std::nullopt;
  }
  fail("unknown");
  return std::nullopt;
}

/// Graceful degradation: when the whole search came up empty (everything
/// infeasible, crashed, or quarantined), fall back to the baseline seed
/// configuration — evaluated directly, outside the fault/retry path — and
/// emit a telemetry warning instead of aborting the pipeline. Returns
/// false when even the baseline cannot run; the caller then throws the
/// historical PlanError.
bool degrade_to_seed(EvalContext& ctx, const KernelConfig& seed,
                     std::vector<Candidate>& board) {
  try {
    const KernelPlan plan = ctx.factory(seed);
    gpumodel::KernelEval ev = gpumodel::evaluate(plan, ctx.dev, ctx.params);
    if (!ev.valid) return false;
    Candidate c;
    c.config = seed;
    c.time_s = ev.time_s;
    c.eval = std::move(ev);
    ctx.result->degraded = true;
    telemetry::counter_add("tuner.degraded");
    if (telemetry::enabled()) {
      telemetry::instant(
          "tuner.degraded", "tune",
          {{"reason",
            Json("search found no feasible configuration; degrading to "
                 "the baseline config")},
           {"config", Json(serialize_config(seed))}});
    }
    board.push_back(std::move(c));  // the board is empty by construction
    return true;
  } catch (const PlanError&) {
    return false;
  }
}

void insert_leaderboard(std::vector<Candidate>& board, Candidate c,
                        int top_k) {
  board.push_back(std::move(c));
  std::sort(board.begin(), board.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.time_s < b.time_s;
            });
  if (board.size() > static_cast<std::size_t>(top_k)) {
    board.resize(static_cast<std::size_t>(top_k));
  }
}

/// Pick the smallest register budget at which the estimate does not
/// spill; returns nullopt when even the largest budget spills (the caller
/// may still evaluate at the top budget and pay the spill penalty).
std::optional<int> spill_free_budget(const PlanFactory& factory,
                                     KernelConfig cfg,
                                     const TuneOptions& opts,
                                     int* skipped) {
  for (const int budget : opts.register_budgets) {
    cfg.max_registers = budget;
    try {
      const KernelPlan plan = factory(cfg);
      const auto est = gpumodel::estimate_registers(plan);
      if (est.total <= budget) return budget;
      ++*skipped;
      telemetry::counter_add("tuner.pruned_spill_budgets");
    } catch (const PlanError&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<std::array<int, 3>> candidate_blocks(int dims, bool streaming,
                                                 const TuneOptions& opts) {
  std::vector<int> sizes;
  for (int s = opts.min_block; s <= opts.max_block; s *= 2) sizes.push_back(s);

  std::vector<std::array<int, 3>> out;
  const int tiled_dims = streaming ? dims - 1 : dims;
  for (const int bx : sizes) {
    if (tiled_dims == 1) {
      if (bx <= 1024) out.push_back({bx, 1, 1});
      continue;
    }
    for (const int by : sizes) {
      if (tiled_dims == 2) {
        if (static_cast<std::int64_t>(bx) * by <= 1024) {
          out.push_back({bx, by, 1});
        }
        continue;
      }
      for (const int bz : sizes) {
        if (static_cast<std::int64_t>(bx) * by * bz <= 1024) {
          out.push_back({bx, by, bz});
        }
      }
    }
  }
  return out;
}

std::vector<std::array<int, 3>> candidate_unrolls(int dims,
                                                  const TuneOptions& opts) {
  const int cap = opts.disable_unroll
                      ? 1
                      : (opts.theoretically_bandwidth_bound
                             ? opts.max_unroll_bandwidth
                             : opts.max_unroll_compute);
  std::vector<int> factors;
  for (int f = 1; f <= cap; f *= 2) factors.push_back(f);

  std::vector<std::array<int, 3>> out;
  for (const int ux : factors) {
    for (const int uy : dims >= 2 ? factors : std::vector<int>{1}) {
      for (const int uz : dims >= 3 ? factors : std::vector<int>{1}) {
        if (static_cast<std::int64_t>(ux) * uy * uz <= cap) {
          out.push_back({ux, uy, uz});
        }
      }
    }
  }
  // Section V: explore in monotonically increasing unroll volume, so the
  // register budget can be escalated incrementally.
  std::sort(out.begin(), out.end(),
            [](const std::array<int, 3>& a, const std::array<int, 3>& b) {
              return a[0] * a[1] * a[2] < b[0] * b[1] * b[2];
            });
  return out;
}

TuneResult hierarchical_tune(const PlanFactory& factory,
                             const KernelConfig& seed,
                             const gpumodel::DeviceSpec& dev,
                             const gpumodel::ModelParams& params,
                             const TuneOptions& opts) {
  TuneResult result;
  std::vector<Candidate> board;
  EvalContext ctx(factory, dev, params, opts, &result);

  // Infer dimensionality from the seed plan.
  int dims = 3;
  try {
    dims = factory(seed).dims;
  } catch (const PlanError&) {
    // Keep the default; the sweep below will discover feasibility.
  }

  std::vector<TilingScheme> tilings = {seed.tiling};
  if (opts.explore_tiling && dims >= 2) {
    tilings = {TilingScheme::Spatial3D, TilingScheme::StreamSerial};
  }

  // ---- stage 1: tiling x block shape x unroll factors ----------------------
  {
    const telemetry::Span stage1_span("tune.stage1", "tune");
    for (const TilingScheme tiling : tilings) {
      const bool streaming = tiling != TilingScheme::Spatial3D;
      for (const auto& block : candidate_blocks(dims, streaming, opts)) {
        for (const auto& unroll : candidate_unrolls(dims, opts)) {
          KernelConfig cfg = seed;
          cfg.tiling = tiling;
          if (streaming) cfg.stream_axis = dims - 1;
          cfg.block = block;
          cfg.unroll = unroll;
          if (streaming) {
            cfg.block[static_cast<std::size_t>(cfg.stream_axis)] = 1;
          }
          const int skipped_before = result.skipped_spilling;
          const auto budget =
              spill_free_budget(factory, cfg, opts, &result.skipped_spilling);
          cfg.max_registers = budget.value_or(opts.register_budgets.back());
          ++result.evaluated_stage1;
          auto cand = try_config(ctx, cfg, "stage1",
                                 result.skipped_spilling - skipped_before);
          if (!cand) {
            ++result.infeasible;
            continue;
          }
          insert_leaderboard(board, std::move(*cand), opts.top_k);
        }
      }
    }
  }

  // ---- stage 2: low-impact toggles on the survivors ------------------------
  const telemetry::Span stage2_span("tune.stage2", "tune");
  const std::vector<Candidate> survivors = board;
  for (const auto& s : survivors) {
    const bool streaming = s.config.tiling != TilingScheme::Spatial3D;
    std::vector<KernelConfig> variants;
    if (opts.tune_prefetch && streaming) {
      KernelConfig v = s.config;
      v.prefetch = true;
      variants.push_back(v);
    }
    if (opts.tune_concurrent_streaming && streaming && dims >= 2) {
      for (const int chunk : {32, 64, 128}) {
        KernelConfig v = s.config;
        v.tiling = TilingScheme::StreamConcurrent;
        v.stream_chunk = chunk;
        variants.push_back(v);
        if (opts.tune_prefetch) {
          v.prefetch = true;
          variants.push_back(v);
        }
      }
    }
    if (opts.tune_perspective) {
      for (const Perspective p : {Perspective::Input, Perspective::Mixed}) {
        KernelConfig v = s.config;
        v.perspective = p;
        variants.push_back(v);
      }
    }
    for (const auto& v : variants) {
      ++result.evaluated_stage2;
      auto cand = try_config(ctx, v, "stage2");
      if (!cand) {
        ++result.infeasible;
        continue;
      }
      insert_leaderboard(board, std::move(*cand), opts.top_k);
    }
  }

  if (board.empty() && !degrade_to_seed(ctx, seed, board)) {
    throw PlanError("autotuner found no feasible configuration");
  }
  result.quarantined = ctx.runner.quarantined_count();
  result.best = board.front();
  result.leaderboard = std::move(board);
  return result;
}

TuneResult exhaustive_tune(const PlanFactory& factory,
                           const KernelConfig& seed,
                           const gpumodel::DeviceSpec& dev,
                           const gpumodel::ModelParams& params,
                           const TuneOptions& opts) {
  TuneResult result;
  std::vector<Candidate> board;
  EvalContext ctx(factory, dev, params, opts, &result);

  int dims = 3;
  try {
    dims = factory(seed).dims;
  } catch (const PlanError&) {
  }

  std::vector<TilingScheme> tilings = {seed.tiling};
  if (opts.explore_tiling && dims >= 2) {
    tilings = {TilingScheme::Spatial3D, TilingScheme::StreamSerial};
  }

  for (const TilingScheme tiling : tilings) {
    const bool streaming = tiling != TilingScheme::Spatial3D;
    for (const auto& block : candidate_blocks(dims, streaming, opts)) {
      for (const auto& unroll : candidate_unrolls(dims, opts)) {
        for (const int budget : opts.register_budgets) {
          for (const bool prefetch :
               streaming ? std::vector<bool>{false, true}
                         : std::vector<bool>{false}) {
            for (const Perspective p : {Perspective::Output,
                                        Perspective::Input,
                                        Perspective::Mixed}) {
              KernelConfig cfg = seed;
              cfg.tiling = tiling;
              if (streaming) cfg.stream_axis = dims - 1;
              cfg.block = block;
              cfg.unroll = unroll;
              cfg.max_registers = budget;
              cfg.prefetch = prefetch;
              cfg.perspective = p;
              if (streaming) {
                cfg.block[static_cast<std::size_t>(cfg.stream_axis)] = 1;
              }
              ++result.evaluated_stage1;
              auto cand = try_config(ctx, cfg, "exhaustive");
              if (!cand) {
                ++result.infeasible;
                continue;
              }
              insert_leaderboard(board, std::move(*cand), opts.top_k);
            }
          }
        }
      }
    }
  }

  if (board.empty() && !degrade_to_seed(ctx, seed, board)) {
    throw PlanError("exhaustive tuner found no feasible configuration");
  }
  result.quarantined = ctx.runner.quarantined_count();
  result.best = board.front();
  result.leaderboard = std::move(board);
  return result;
}

TuneResult random_tune(const PlanFactory& factory,
                       const KernelConfig& seed,
                       const gpumodel::DeviceSpec& dev,
                       const gpumodel::ModelParams& params,
                       const TuneOptions& opts, int budget,
                       std::uint64_t rng_seed) {
  TuneResult result;
  std::vector<Candidate> board;
  EvalContext ctx(factory, dev, params, opts, &result);
  Rng rng(rng_seed);

  int dims = 3;
  try {
    dims = factory(seed).dims;
  } catch (const PlanError&) {
  }

  auto pow2 = [&rng](int lo_exp, int hi_exp) {
    return 1 << rng.uniform_int(lo_exp, hi_exp);
  };

  for (int i = 0; i < budget; ++i) {
    KernelConfig cfg = seed;
    const bool streaming = dims >= 2 && rng.coin();
    cfg.tiling = streaming ? TilingScheme::StreamSerial
                           : TilingScheme::Spatial3D;
    cfg.stream_axis = dims - 1;
    cfg.block = {pow2(2, 8), dims >= 2 ? pow2(2, 8) : 1,
                 dims >= 3 && !streaming ? pow2(0, 5) : 1};
    if (streaming) cfg.block[static_cast<std::size_t>(dims - 1)] = 1;
    cfg.unroll = {pow2(0, 3), dims >= 2 ? pow2(0, 2) : 1,
                  dims >= 3 ? pow2(0, 2) : 1};
    cfg.max_registers = opts.register_budgets[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(
                            opts.register_budgets.size()) -
                            1))];
    cfg.prefetch = streaming && rng.coin();
    cfg.perspective = static_cast<Perspective>(rng.uniform_int(0, 2));
    cfg.unroll_strategy = rng.coin() ? codegen::UnrollStrategy::Blocked
                                     : codegen::UnrollStrategy::Cyclic;
    ++result.evaluated_stage1;
    auto cand = try_config(ctx, cfg, "random");
    if (!cand) {
      ++result.infeasible;
      continue;
    }
    insert_leaderboard(board, std::move(*cand), opts.top_k);
  }
  if (board.empty() && !degrade_to_seed(ctx, seed, board)) {
    throw PlanError("random tuner found no feasible configuration");
  }
  result.quarantined = ctx.runner.quarantined_count();
  result.best = board.front();
  result.leaderboard = std::move(board);
  return result;
}

}  // namespace artemis::autotune
