#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace artemis::robust {

/// Configuration of the deterministic fault-injection harness. Parsed
/// from the `--fault-spec` command-line flag or the ARTEMIS_FAULT_SPEC
/// environment variable; see docs/ROBUSTNESS.md for the grammar:
///
///   crash=0.2,timeout=0.05,perturb=0.1,jitter=0.3,stall_ms=4,seed=42,site=tuner
///
/// All probabilities are per evaluation attempt. Faults are a pure hash
/// of (seed, site, key, attempt): the same candidate fails the same way
/// in every run with the same seed, regardless of enumeration order, so
/// fault-injected searches stay reproducible and resumable.
struct FaultSpec {
  double crash_p = 0;      ///< probability of an injected EvalCrash
  double timeout_p = 0;    ///< probability of an injected stall
  double perturb_p = 0;    ///< probability a timing trial is perturbed
  double jitter = 0.3;     ///< relative magnitude of a perturbed timing
  double stall_ms = 4;     ///< how long an injected stall sleeps
  std::uint64_t seed = 0;  ///< hash seed; same seed => same faults
  std::string site = "";   ///< substring filter on site names ("" = all)

  /// --- fs.* fault points, consumed by storage::FaultVfs --------------------
  /// Grammar: `fs.fail=P,fs.enospc=P,fs.short=P,fs.crash_at=K`. The fs
  /// sites ("fs.create", "fs.write", "fs.sync", "fs.rename", "fs.remove",
  /// "fs.mkdir") honor the same `site=` substring filter, and decisions
  /// are the same pure hash of (seed, site, path, op index) — an fs fault
  /// hits the same operation in every run with the same seed.
  double fs_fail_p = 0;    ///< probability a mutating fs op throws EIO
  double fs_enospc_p = 0;  ///< probability a write throws ENOSPC (torn)
  double fs_short_p = 0;   ///< probability a write is short (torn, then EIO)
  std::int64_t fs_crash_at = -1;  ///< whole-process crash at mutating op K

  /// Evaluation-level faults (the PR-2 fault points). fs faults are
  /// deliberately excluded: they arm FaultVfs, not the eval fault points.
  bool any_faults() const {
    return crash_p > 0 || timeout_p > 0 || perturb_p > 0;
  }
  bool any_fs_faults() const {
    return fs_fail_p > 0 || fs_enospc_p > 0 || fs_short_p > 0 ||
           fs_crash_at >= 0;
  }
};

/// Parse the fault-spec grammar above. Throws artemis::Error (with the
/// offending token in the message) on unknown keys or malformed values.
FaultSpec parse_fault_spec(const std::string& text);

/// The deterministic decision draw: uniform in [0, 1), a pure function of
/// (spec.seed, site, key, attempt, lane). Exposed so storage::FaultVfs can
/// make fs.* decisions with exactly the same hash discipline the eval
/// fault points use. `lane` decorrelates independent decisions taken at
/// the same coordinates.
double fault_uniform(const FaultSpec& spec, const char* site,
                     const std::string& key, int attempt,
                     std::uint64_t lane);

/// Running totals of the decisions the installed plan has made. The
/// counters are relaxed atomics so concurrent tuning shards can hit
/// fault points without a data race; install_fault_plan() resets them.
/// Because decisions are a pure hash of the coordinates, the totals for
/// a fixed candidate set are independent of thread interleaving.
struct FaultCounters {
  std::atomic<std::uint64_t> crashes{0};   ///< injected EvalCrash throws
  std::atomic<std::uint64_t> stalls{0};    ///< injected stalls slept
  std::atomic<std::uint64_t> perturbs{0};  ///< timing trials perturbed
};

/// The process-global decision counters (valid even with no plan
/// installed; all zero then).
const FaultCounters& fault_counters();

/// What the harness decided for one (site, key, attempt) evaluation.
enum class FaultAction { None, Crash, Stall };

/// A deterministic, seeded fault plan. Decisions depend only on the
/// spec's seed and the (site, key, attempt) coordinates, never on call
/// order or wall clock.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {}

  const FaultSpec& spec() const { return spec_; }

  /// Does the site-name filter select this site?
  bool site_enabled(const char* site) const;

  FaultAction decide(const char* site, const std::string& key,
                     int attempt) const;

  /// Possibly-perturbed timing for one trial of one attempt.
  double perturb_time(const char* site, const std::string& key, int attempt,
                      int trial, double time_s) const;

 private:
  FaultSpec spec_;
};

/// --- process-global installation ------------------------------------------
///
/// Disabled by default and free when off: every fault point first checks
/// one relaxed atomic flag and does nothing else, mirroring the telemetry
/// collector's zero-cost-when-off contract.

void install_fault_plan(const FaultSpec& spec);
void clear_fault_plan();

/// True when a fault plan with any non-zero probability is installed.
/// One relaxed atomic load.
bool fault_injection_enabled();

/// The installed plan, or nullptr. Only meaningful after
/// fault_injection_enabled() returned true.
const FaultPlan* current_fault_plan();

/// Install from ARTEMIS_FAULT_SPEC if set; returns whether a plan with
/// faults was installed. Called once automatically at process start so
/// `ARTEMIS_FAULT_SPEC=... ctest` exercises the whole suite under faults.
bool install_fault_plan_from_env();

void fault_point_slow(const char* site, const std::string& key, int attempt);

/// An injection site. When fault injection is off this is one relaxed
/// atomic load. When on, it may throw EvalCrash or sleep past the
/// caller's deadline, according to the installed plan.
inline void fault_point(const char* site, const std::string& key,
                        int attempt = 0) {
  if (!fault_injection_enabled()) return;
  fault_point_slow(site, key, attempt);
}

/// Timing perturbation hook: identity when injection is off.
inline double perturbed_time(const char* site, const std::string& key,
                             int attempt, int trial, double time_s) {
  if (!fault_injection_enabled()) return time_s;
  const FaultPlan* plan = current_fault_plan();
  return plan ? plan->perturb_time(site, key, attempt, trial, time_s)
              : time_s;
}

}  // namespace artemis::robust
