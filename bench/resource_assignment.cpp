// Reproduces Section VIII-E: domain-expert guided resource assignment.
//
// addsgd4 is generated twice: once with the expert `#assign` pinning the
// six 1D coefficient arrays to global memory, and once with the naive
// default that stages every array (including the 1D coefficients, in
// tile-shaped buffers) in shared memory. The expert version frees shared
// memory capacity, enabling larger blocks / higher occupancy
// (paper: 1.05 TFLOPS with #assign vs 0.65 TFLOPS without).

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  // The experiment isolates resource assignment: the shared-memory
  // pipeline runs in both cases (no profiling-driven fallback to the
  // global version), exactly like the paper's A/B comparison.
  driver::Strategy s = driver::artemis_strategy();
  s.profile_guided = false;

  TablePrinter table({"version", "TFLOPS", "occupancy", "blocks/SM",
                      "best config"});
  double with_tf = 0, without_tf = 0;
  for (const bool with_assign : {true, false}) {
    const auto prog = dsl::parse(stencils::addsgd_dsl(0, 2, with_assign));
    const auto r = driver::optimize_program(prog, dev, params, s);
    const auto& k = r.kernels[0];
    table.add_row({with_assign ? "with #assign (expert)" : "naive default",
                   format_double(r.tflops, 4),
                   format_double(k.eval.occupancy.fraction, 3),
                   std::to_string(k.eval.occupancy.active_blocks_per_sm),
                   k.config.to_string()});
    (with_assign ? with_tf : without_tf) = r.tflops;
  }

  std::printf("Section VIII-E: user-guided resource assignment (addsgd4)\n\n%s\n",
              table.to_string().c_str());
  std::printf("speedup from expert #assign: %.2fx (paper: 1.05/0.65 = "
              "1.62x)\n",
              with_tf / without_tf);
  return 0;
}
