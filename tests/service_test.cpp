#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "artemis/common/json.hpp"
#include "artemis/driver/context.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/service/service.hpp"
#include "artemis/storage/plan_store.hpp"
#include "artemis/storage/vfs.hpp"
#include "test_programs.hpp"

// Service-level acceptance tests for the tuning daemon's dispatcher: the
// dedup invariant (N identical concurrent requests -> one tuning
// evaluation, byte-identical plans), equivalence with a one-shot library
// tune, and kill -9 mid-tune + restart resuming from the journal to the
// same plan bytes.

namespace artemis::service {
namespace {

using storage::MemVfs;

Json make_request(int id, const std::string& method,
                  const char* source = nullptr) {
  Json req = Json::object();
  req.set("id", Json(id));
  req.set("method", Json(method));
  Json params = Json::object();
  if (source != nullptr) params.set("source", Json(source));
  req.set("params", std::move(params));
  return req;
}

ServiceOptions service_options(storage::Vfs& vfs, int jobs = 2) {
  ServiceOptions opts;
  opts.context.vfs = &vfs;
  opts.context.store_root = "store";
  opts.context.cache_path = "cache/tuning.cache";
  opts.context.jobs = jobs;
  opts.journal_dir = "wal";
  return opts;
}

std::string tune_bytes(const Json& response) {
  EXPECT_TRUE(response["ok"].as_bool()) << response.dump(2);
  return response["result"]["plan_bytes"].as_string();
}

/// Candidate keys of every complete journal record line
/// (`<status>\t<time_s>\t<tflops>\t<candidate key>`).
std::vector<std::string> journal_candidate_keys(const std::string& text) {
  std::vector<std::string> keys;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) break;  // torn tail: not a record yet
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.rfind('\t');
    if (tab == std::string::npos) continue;
    keys.push_back(line.substr(tab + 1));
  }
  return keys;
}

TEST(ServiceTest, CompileReportsContentKeys) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));
  const Json resp =
      svc.handle_json(make_request(1, "compile", testing::kDagDsl));
  ASSERT_TRUE(resp["ok"].as_bool()) << resp.dump(2);
  const Json& r = resp["result"];
  EXPECT_EQ(r["plan_key"].as_string().size(), 32u);
  EXPECT_FALSE(r["run_key"].as_string().empty());
  EXPECT_EQ(r["steps"].as_int(), 2);
  EXPECT_EQ(svc.stats_snapshot().compile_calls, 1u);
}

TEST(ServiceTest, ClientFailuresAreStructuredErrors) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));

  Json resp = svc.handle_json(make_request(1, "tune", "not a program"));
  ASSERT_FALSE(resp["ok"].as_bool());
  EXPECT_EQ(resp["error"]["code"].as_string(), "compile_error");

  resp = svc.handle_json(make_request(2, "tune"));
  ASSERT_FALSE(resp["ok"].as_bool());
  EXPECT_EQ(resp["error"]["code"].as_string(), "bad_request");

  resp = svc.handle_json(make_request(3, "frobnicate"));
  ASSERT_FALSE(resp["ok"].as_bool());
  EXPECT_EQ(resp["error"]["code"].as_string(), "unknown_method");

  const auto s = svc.stats_snapshot();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.errors, 3u);
  EXPECT_EQ(s.tuner_runs, 0u);
}

// The tentpole dedup invariant: however many identical requests race, the
// tuner runs exactly once and every client receives byte-identical plan
// bytes. Requests that arrive after publication count as plan hits,
// requests that arrive mid-tune count as coalesced; together they account
// for all N-1 non-evaluating requests.
TEST(ServiceTest, ConcurrentIdenticalTunesRunTunerOnce) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));
  constexpr int kClients = 8;

  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      responses[i] =
          svc.handle(make_request(i, "tune", testing::kDagDsl).dump());
    });
  }
  for (auto& t : threads) t.join();

  std::set<std::string> distinct_bytes;
  for (const auto& payload : responses) {
    distinct_bytes.insert(tune_bytes(Json::parse(payload)));
  }
  EXPECT_EQ(distinct_bytes.size(), 1u);
  EXPECT_FALSE(distinct_bytes.begin()->empty());

  const auto s = svc.stats_snapshot();
  EXPECT_EQ(s.tune_calls, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.tuner_runs, 1u);
  EXPECT_EQ(s.plan_hits + s.dedup_coalesced,
            static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(s.errors, 0u);
}

// A restarted daemon over the same store serves the published plan
// without re-tuning, byte-identically.
TEST(ServiceTest, RestartedDaemonServesPublishedPlan) {
  MemVfs vfs;
  std::string first_bytes;
  {
    ArtemisService svc(service_options(vfs));
    first_bytes =
        tune_bytes(svc.handle_json(make_request(1, "tune", testing::kDagDsl)));
  }
  ArtemisService svc(service_options(vfs));
  const Json resp = svc.handle_json(make_request(2, "tune", testing::kDagDsl));
  EXPECT_EQ(tune_bytes(resp), first_bytes);
  EXPECT_TRUE(resp["result"]["cached"].as_bool());
  const auto s = svc.stats_snapshot();
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.tuner_runs, 0u);
}

// Daemon-served plans are byte-identical to a one-shot library tune on a
// completely separate filesystem, even at different tuning parallelism —
// the "artemisc and artemisd always agree" guarantee, including the
// durable object published in the store.
TEST(ServiceTest, DaemonPlanMatchesOneShotLibraryTune) {
  MemVfs daemon_vfs;
  ArtemisService svc(service_options(daemon_vfs, /*jobs=*/3));
  const Json resp = svc.handle_json(make_request(1, "tune", testing::kDagDsl));
  const std::string daemon_bytes = tune_bytes(resp);
  const std::string key = resp["result"]["plan_key"].as_string();

  MemVfs oneshot_vfs;
  driver::ContextOptions copts;
  copts.vfs = &oneshot_vfs;
  copts.store_root = "store";
  copts.jobs = 1;
  driver::ArtemisContext ctx(copts);
  const auto outcome = ctx.tune(testing::kDagDsl);

  EXPECT_EQ(outcome.compile.plan_key, key);
  EXPECT_EQ(outcome.plan_bytes, daemon_bytes);

  const std::string object =
      "store/objects/" + storage::PlanStore::shard_of(key) + "/" + key +
      ".plan";
  const auto daemon_obj = daemon_vfs.read(object);
  const auto oneshot_obj = oneshot_vfs.read(object);
  ASSERT_TRUE(daemon_obj.has_value());
  ASSERT_TRUE(oneshot_obj.has_value());
  EXPECT_EQ(*daemon_obj, *oneshot_obj);
}

TEST(ServiceTest, ShutdownGatesNewWorkButAnswersStats) {
  MemVfs vfs;
  ArtemisService svc(service_options(vfs));
  const Json resp = svc.handle_json(make_request(1, "shutdown"));
  ASSERT_TRUE(resp["ok"].as_bool());
  EXPECT_TRUE(resp["result"]["stopping"].as_bool());
  EXPECT_TRUE(svc.shutdown_requested());

  const Json refused = svc.handle_json(make_request(2, "tune", testing::kDagDsl));
  ASSERT_FALSE(refused["ok"].as_bool());
  EXPECT_EQ(refused["error"]["code"].as_string(), "shutting_down");

  const Json stats = svc.handle_json(make_request(3, "stats"));
  EXPECT_TRUE(stats["ok"].as_bool());
}

// kill -9 mid-tune + restart: crash the simulated machine at several
// filesystem-operation offsets spread across one tune, reboot a fresh
// daemon over the surviving state, and require (a) the re-tune resumes by
// replaying every intact journal record instead of re-evaluating it,
// (b) the journal ends with no duplicate candidate keys and the same
// record count as a crash-free run, and (c) the final plan bytes equal
// the crash-free reference exactly.
TEST(ServiceTest, KillMidTuneResumesFromJournalToSamePlanBytes) {
  // Crash-free reference (jobs=1 keeps the op trace deterministic).
  MemVfs ref_vfs;
  ref_vfs.set_record_trace(true);
  std::string ref_bytes;
  std::string plan_key;
  {
    ArtemisService svc(service_options(ref_vfs, /*jobs=*/1));
    const Json resp =
        svc.handle_json(make_request(1, "tune", testing::kJacobiDsl));
    ref_bytes = tune_bytes(resp);
    plan_key = resp["result"]["plan_key"].as_string();
  }
  const std::size_t total_ops = ref_vfs.trace().size();
  ASSERT_GT(total_ops, 16u);
  const std::string journal_path = "wal/" + plan_key + ".wal";
  const auto ref_journal = ref_vfs.read(journal_path);
  ASSERT_TRUE(ref_journal.has_value());
  const std::size_t ref_records = journal_candidate_keys(*ref_journal).size();
  ASSERT_GT(ref_records, 0u);

  const std::vector<std::size_t> offsets = {
      2, total_ops / 6, total_ops / 3, total_ops / 2, (2 * total_ops) / 3,
      total_ops - 3};
  bool replayed_somewhere = false;
  for (const std::size_t k : offsets) {
    for (const std::uint64_t variant : {std::uint64_t{0}, std::uint64_t{1}}) {
      SCOPED_TRACE("crash_at=" + std::to_string(k) +
                   " variant=" + std::to_string(variant));
      MemVfs mem;
      robust::FaultSpec spec;
      spec.fs_crash_at = static_cast<std::int64_t>(k);
      storage::FaultVfs fault(mem, spec);
      bool crashed = false;
      try {
        ArtemisService svc(service_options(fault, /*jobs=*/1));
        const Json resp =
            svc.handle_json(make_request(1, "tune", testing::kJacobiDsl));
        EXPECT_EQ(tune_bytes(resp), ref_bytes);
      } catch (const storage::FsCrash&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << "crash point never reached";
      mem.crash(variant);

      // What survived the power loss; every intact record must be
      // replayed, not re-evaluated, by the rebooted daemon.
      const std::size_t survivors =
          journal_candidate_keys(mem.read(journal_path).value_or("")).size();

      mem.mkdirs("wal");  // what the rebooted daemon's constructor does
      driver::ContextOptions copts = service_options(mem, /*jobs=*/1).context;
      driver::ArtemisContext ctx(copts);
      driver::TuneRequest treq;
      treq.journal_path = journal_path;
      treq.resume = true;
      treq.reuse_stored_plan = true;
      const auto outcome = ctx.tune(testing::kJacobiDsl, treq);
      EXPECT_EQ(outcome.plan_bytes, ref_bytes);
      if (!outcome.served_from_store) {
        EXPECT_EQ(outcome.journal_replayed, survivors);
        if (outcome.journal_replayed > 0) replayed_somewhere = true;

        const auto final_journal = mem.read(journal_path);
        ASSERT_TRUE(final_journal.has_value());
        const auto keys = journal_candidate_keys(*final_journal);
        EXPECT_EQ(keys.size(), ref_records);
        const std::set<std::string> unique(keys.begin(), keys.end());
        EXPECT_EQ(unique.size(), keys.size())
            << "journal re-appended a replayed candidate";
      }

      // The rebooted daemon itself now serves the same bytes.
      ArtemisService svc(service_options(mem, /*jobs=*/1));
      EXPECT_EQ(tune_bytes(svc.handle_json(
                    make_request(2, "tune", testing::kJacobiDsl))),
                ref_bytes);
    }
  }
  EXPECT_TRUE(replayed_somewhere)
      << "no crash offset left an intact journal record to replay";
}

}  // namespace
}  // namespace artemis::service
