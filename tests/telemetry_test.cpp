#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/common/json.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/telemetry/report.hpp"
#include "artemis/telemetry/run_sinks.hpp"
#include "artemis/telemetry/telemetry.hpp"
#include "artemis/telemetry/trace_sink.hpp"
#include "test_programs.hpp"

namespace artemis::telemetry {
namespace {

/// Every test runs against the (process-global) collector; enable + clear
/// on entry, disable on exit so other suites see a disabled collector.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Collector::global().enable();
    Collector::global().clear();
  }
  void TearDown() override {
    Collector::global().disable();
    Collector::global().clear();
  }
};

TEST_F(TelemetryTest, DisabledRecordsNothing) {
  Collector::global().disable();
  {
    Span s("should-not-appear", "test");
    instant("neither-should-this", "test");
    counter_add("nope", 3);
  }
  EXPECT_TRUE(Collector::global().snapshot().empty());
  EXPECT_TRUE(Collector::global().counters().empty());
}

TEST_F(TelemetryTest, SpanNestingOnOneThread) {
  {
    Span outer("outer", "test");
    { Span inner1("inner1", "test"); }
    { Span inner2("inner2", "test"); }
  }
  const auto events = Collector::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Time-sorted: outer first (same or earlier start, longer duration).
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner1");
  EXPECT_STREQ(events[2].name, "inner2");
  // Children are contained in the parent interval.
  for (int i = 1; i <= 2; ++i) {
    EXPECT_GE(events[i].ts_ns, events[0].ts_ns);
    EXPECT_LE(events[i].ts_ns + events[i].dur_ns,
              events[0].ts_ns + events[0].dur_ns);
  }
  // inner1 ended before inner2 started.
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns, events[2].ts_ns);
}

TEST_F(TelemetryTest, SpansUnderParallelExecutorAreWellNested) {
  // Spans recorded inside parallel_for workers (the work-stealing pool of
  // common/parallel.hpp) must survive thread exit and stay well-nested
  // per thread id.
  constexpr std::int64_t kIters = 64;
  parallel_for(kIters, [](std::int64_t i) {
    Span outer("work", "test");
    outer.arg("i", Json(i));
    { Span inner("sub", "test"); }
  });
  const auto events = Collector::global().snapshot();
  ASSERT_EQ(events.size(), 2 * kIters);

  std::map<int, std::vector<const Event*>> by_tid;
  for (const auto& ev : events) by_tid[ev.tid].push_back(&ev);

  std::int64_t outer_seen = 0;
  for (const auto& [tid, evs] : by_tid) {
    // Within one thread the time-sorted stream must be well-nested:
    // a stack discipline over span intervals.
    std::vector<std::int64_t> end_stack;
    for (const Event* ev : evs) {
      while (!end_stack.empty() && ev->ts_ns >= end_stack.back()) {
        end_stack.pop_back();
      }
      if (!end_stack.empty()) {
        EXPECT_LE(ev->ts_ns + ev->dur_ns, end_stack.back())
            << "span " << ev->name << " escapes its parent on tid " << tid;
      }
      end_stack.push_back(ev->ts_ns + ev->dur_ns);
      if (std::strcmp(ev->name, "work") == 0) ++outer_seen;
    }
  }
  EXPECT_EQ(outer_seen, kIters);

  // Every iteration index must appear exactly once across all threads.
  std::vector<bool> seen(kIters, false);
  for (const auto& ev : events) {
    if (std::strcmp(ev.name, "work") != 0) continue;
    for (const auto& a : ev.args) {
      if (a.key == "i") {
        const auto i = a.value.as_int();
        EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
        seen[static_cast<std::size_t>(i)] = true;
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST_F(TelemetryTest, CountersAccumulateAcrossThreads) {
  parallel_for(100, [](std::int64_t) { counter_add("n", 2); });
  const auto counters = Collector::global().counters();
  ASSERT_TRUE(counters.count("n"));
  EXPECT_EQ(counters.at("n"), 200);
}

TEST_F(TelemetryTest, ChromeTraceEscapesStrings) {
  instant("evil", "test",
          {{"text", Json("quote\" slash\\ newline\ntab\tctrl\x01"
                         " unicode\xc3\xa9")}});
  const auto events = Collector::global().snapshot();
  const Json trace =
      chrome_trace(events, Collector::global().counters());
  const std::string dumped = trace.dump();
  EXPECT_NE(dumped.find("quote\\\" slash\\\\ newline\\ntab\\tctrl\\u0001"),
            std::string::npos);
  // Must parse back to the identical string.
  const Json back = Json::parse(dumped);
  ASSERT_TRUE(back.is_array());
  const Json& args = back.at(0)["args"];
  EXPECT_EQ(args["text"].as_string(),
            "quote\" slash\\ newline\ntab\tctrl\x01 unicode\xc3\xa9");
}

TEST_F(TelemetryTest, ChromeTraceShape) {
  {
    Span s("phase", "pipeline");
    instant("ping", "pipeline");
  }
  counter_add("widgets", 7);
  const Json trace = chrome_trace(Collector::global().snapshot(),
                                  Collector::global().counters());
  ASSERT_TRUE(trace.is_array());
  ASSERT_EQ(trace.size(), 3u);  // instant + span + counter sample
  bool saw_complete = false, saw_instant = false, saw_counter = false;
  for (const auto& rec : trace.items()) {
    ASSERT_TRUE(rec.contains("name"));
    ASSERT_TRUE(rec.contains("ph"));
    ASSERT_TRUE(rec.contains("ts"));
    ASSERT_TRUE(rec.contains("pid"));
    ASSERT_TRUE(rec.contains("tid"));
    const std::string ph = rec["ph"].as_string();
    if (ph == "X") {
      saw_complete = true;
      EXPECT_TRUE(rec.contains("dur"));
    } else if (ph == "i") {
      saw_instant = true;
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(rec["args"]["value"].as_int(), 7);
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST_F(TelemetryTest, SummaryTextShowsTreeAndCounters) {
  {
    Span outer("optimize", "pipeline");
    Span inner("tune", "tune");
  }
  counter_add("tuner.enumerated", 42);
  const std::string text = summary_text(Collector::global().snapshot(),
                                        Collector::global().counters());
  EXPECT_NE(text.find("optimize"), std::string::npos);
  EXPECT_NE(text.find("tune"), std::string::npos);
  EXPECT_NE(text.find("tuner.enumerated = 42"), std::string::npos);
  // The child is indented deeper than the parent.
  EXPECT_NE(text.find("\n  optimize"), std::string::npos);
  EXPECT_NE(text.find("\n    tune"), std::string::npos);
}

// ---- the end-to-end run report --------------------------------------------

TEST_F(TelemetryTest, RunReportRoundTripsAndCountersSumConsistently) {
  // Golden structural test for the --report output: run the full driver
  // pipeline with telemetry on, build the report, dump it, and re-parse
  // it through the minimal JSON parser. The schema (top-level keys, the
  // version field, the counter identity) is the contract trajectory
  // tooling depends on.
  const auto prog = dsl::parse(testing::kJacobiIterativeDsl);
  const auto dev = gpumodel::p100();
  const auto result = driver::optimize_program(prog, dev);

  const ReportMeta meta{"jacobi-iterative.dsl", "artemis", dev.name, 1, "bytecode"};
  const Json report =
      build_run_report(meta, result, Collector::global().snapshot(),
                       Collector::global().counters());
  const Json back = Json::parse(report.dump(2));

  // Golden key set, in order (stable layout is part of the contract).
  const std::vector<std::string> expected_keys = {
      "report_version", "source",          "strategy", "device",
      "schedule",       "fusion_schedule", "hints",    "deep_tuning",
      "tuner",          "resilience",      "storage",  "parallel",
      "sim",            "profile",         "phases"};
  ASSERT_EQ(back.members().size(), expected_keys.size());
  for (std::size_t i = 0; i < expected_keys.size(); ++i) {
    EXPECT_EQ(back.members()[i].first, expected_keys[i]) << i;
  }
  EXPECT_EQ(back["report_version"].as_int(), kReportVersion);
  EXPECT_EQ(back["source"].as_string(), "jacobi-iterative.dsl");
  EXPECT_EQ(back["strategy"].as_string(), "artemis");

  // The chosen schedule round-trips numerically.
  const Json& sched = back["schedule"];
  EXPECT_NEAR(sched["time_ms"].as_double(), result.time_s * 1e3, 1e-9);
  ASSERT_EQ(sched["kernels"].size(), result.kernels.size());
  for (std::size_t i = 0; i < result.kernels.size(); ++i) {
    const Json& kj = sched["kernels"].at(i);
    EXPECT_EQ(kj["name"].as_string(), result.kernels[i].name);
    EXPECT_EQ(kj["config"]["max_registers"].as_int(),
              result.kernels[i].config.max_registers);
    EXPECT_EQ(kj["config"]["line"].as_string(),
              autotune::serialize_config(result.kernels[i].config));
  }
  ASSERT_EQ(back["fusion_schedule"].size(), result.fusion_schedule.size());

  // Section V measurability: the counter identity and the per-candidate
  // records must agree with each other.
  const Json& tuner = back["tuner"];
  const std::int64_t enumerated = tuner["enumerated"].as_int();
  const std::int64_t evaluated = tuner["evaluated"].as_int();
  const std::int64_t infeasible = tuner["infeasible"].as_int();
  EXPECT_GT(enumerated, 0);
  EXPECT_GT(evaluated, 0);
  EXPECT_EQ(enumerated, evaluated + infeasible);
  ASSERT_EQ(static_cast<std::int64_t>(tuner["candidates"].size()),
            enumerated);
  std::int64_t evaluated_events = 0;
  for (const auto& c : tuner["candidates"].items()) {
    const std::string outcome = c["outcome"].as_string();
    EXPECT_TRUE(outcome == "evaluated" || outcome == "infeasible");
    if (outcome == "evaluated") ++evaluated_events;
  }
  EXPECT_EQ(evaluated_events, evaluated);

  // A fault-free run reports no injected-failure activity. (The
  // "dropped" list may still hold deterministic PlanError drops, e.g. an
  // infeasible fusion degree, so it is not asserted empty.)
  const Json& resilience = back["resilience"];
  EXPECT_EQ(resilience["eval_crashes"].as_int(), 0);
  EXPECT_EQ(resilience["eval_timeouts"].as_int(), 0);
  EXPECT_EQ(resilience["eval_unstable"].as_int(), 0);
  EXPECT_EQ(resilience["degraded"].as_int(), 0);
  EXPECT_EQ(resilience["journal_records"].as_int(), 0);

  // The parallel section reports the requested jobs (defaulted to 1 in
  // ReportMeta) and non-negative pool accounting.
  const Json& parallel = back["parallel"];
  EXPECT_EQ(parallel["jobs"].as_int(), 1);
  EXPECT_GE(parallel["pools"].as_int(), 0);
  EXPECT_GE(parallel["tasks"].as_int(), 0);
  EXPECT_GE(parallel["steals"].as_int(), 0);

  // Deep tuning appears for iterative programs and profiling fired.
  EXPECT_TRUE(back["deep_tuning"].is_object());
  EXPECT_GE(back["deep_tuning"]["tipping_point"].as_int(), 1);
  EXPECT_GT(back["profile"].size(), 0u);
  EXPECT_GT(back["phases"].size(), 0u);
}

// ---- RunSinks scope-exit flushing -----------------------------------------

class RunSinksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::string("/tmp/artemis_runsinks_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    trace_ = base_ + "_trace.json";
    report_ = base_ + "_report.json";
    metrics_ = base_ + "_metrics.json";
    cleanup();
    Collector::global().disable();
    Collector::global().clear();
  }
  void TearDown() override {
    cleanup();
    Collector::global().disable();
    Collector::global().clear();
  }
  void cleanup() {
    std::remove(trace_.c_str());
    std::remove(report_.c_str());
    std::remove(metrics_.c_str());
  }
  static Json parse_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
  }
  std::string base_, trace_, report_, metrics_;
};

TEST_F(RunSinksTest, InactiveWithoutSinks) {
  RunSinks sinks({});
  EXPECT_FALSE(sinks.active());
  EXPECT_FALSE(enabled());  // telemetry stays zero-overhead
  EXPECT_TRUE(sinks.finalize());
}

TEST_F(RunSinksTest, ThrownRunStillLeavesParseableJson) {
  // The scope-exit guarantee: a run that throws mid-pipeline leaves
  // valid JSON at every requested path, marked incomplete.
  try {
    RunSinks sinks({trace_, report_, metrics_, /*summary=*/false});
    EXPECT_TRUE(sinks.active());
    EXPECT_TRUE(enabled());
    sinks.set_meta({"boom.dsl", "artemis", "P100", 2, "bytecode"});
    counter_add("tuner.enumerated", 3);
    instant("tuner.leaderboard", "tune");
    throw Error("pipeline exploded");
  } catch (const Error&) {
  }

  // The trace stays a bare record array; the completion marker is the
  // final run.completed instant.
  const Json trace = parse_file(trace_);
  ASSERT_TRUE(trace.is_array());
  ASSERT_GT(trace.size(), 0u);
  const Json& done = trace.at(trace.size() - 1);
  EXPECT_EQ(done["name"].as_string(), "run.completed");
  EXPECT_FALSE(done["args"]["completed"].as_bool());

  const Json report = parse_file(report_);
  EXPECT_FALSE(report["completed"].as_bool());
  EXPECT_EQ(report["report_version"].as_int(), kReportVersion);
  EXPECT_EQ(report["source"].as_string(), "boom.dsl");
  // Truncated but structurally whole: the schedule section exists (and
  // is empty — the driver never finished), and the recorded telemetry
  // made it out.
  EXPECT_EQ(report["schedule"]["kernels"].size(), 0u);
  EXPECT_EQ(report["tuner"]["enumerated"].as_int(), 3);

  const Json metrics = parse_file(metrics_);
  EXPECT_FALSE(metrics["completed"].as_bool());
}

TEST_F(RunSinksTest, FinalizeMarksCompletedAndEmbedsMetrics) {
  {
    RunSinks sinks({"", report_, metrics_, /*summary=*/false});
    sinks.set_meta({"ok.dsl", "artemis", "P100", 1, "bytecode"});
    driver::ProgramResult r;
    r.strategy = "artemis";
    sinks.set_result(std::move(r));
    Json m = Json::object();
    m.set("metrics_version", 1);
    sinks.set_metrics(std::move(m));
    EXPECT_TRUE(sinks.finalize());
  }
  const Json report = parse_file(report_);
  EXPECT_TRUE(report["completed"].as_bool());
  EXPECT_TRUE(report["metrics"].is_object());
  const Json metrics = parse_file(metrics_);
  EXPECT_TRUE(metrics["completed"].as_bool());
  EXPECT_EQ(metrics["metrics_version"].as_int(), 1);
}

TEST_F(RunSinksTest, DestructorIsIdempotentAfterFinalize) {
  {
    RunSinks sinks({"", report_, "", false});
    sinks.set_meta({"once.dsl", "artemis", "P100", 1, "bytecode"});
    EXPECT_TRUE(sinks.finalize());
    // Overwrite the file; the destructor must not clobber it again.
    ASSERT_TRUE(write_file(report_, "{\"sentinel\": true}\n"));
  }
  const Json report = parse_file(report_);
  EXPECT_TRUE(report["sentinel"].as_bool());
}

// ---- Json round-trip ------------------------------------------------------

TEST(JsonTest, RoundTripsValues) {
  Json obj = Json::object();
  obj.set("int", std::int64_t{-123456789012345});
  obj.set("double", 0.125);
  obj.set("bool", true);
  obj.set("null", Json());
  obj.set("string", "a\"b\\c\nd");
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  obj.set("arr", std::move(arr));

  for (const int indent : {-1, 0, 2}) {
    const Json back = Json::parse(obj.dump(indent));
    EXPECT_EQ(back["int"].as_int(), -123456789012345);
    EXPECT_DOUBLE_EQ(back["double"].as_double(), 0.125);
    EXPECT_TRUE(back["bool"].as_bool());
    EXPECT_TRUE(back["null"].is_null());
    EXPECT_EQ(back["string"].as_string(), "a\"b\\c\nd");
    EXPECT_EQ(back["arr"].size(), 2u);
    EXPECT_EQ(back["arr"].at(1).as_string(), "two");
  }
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]2"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("{\"a\":}"), Error);
  EXPECT_THROW(Json::parse("12 34"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
}

TEST(JsonTest, PreservesKeyOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
}

}  // namespace
}  // namespace artemis::telemetry
