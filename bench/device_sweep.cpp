// Portability sweep: the same deep-tuning experiment (Fig. 4, 7pt
// smoother) on three device generations. The machine balance alpha/beta
// determines where fusion stops paying: every number below is a pure
// function of the DeviceSpec, so retargeting is "fill in a struct".

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const gpumodel::ModelParams params;
  const auto prog = stencils::benchmark_program("7pt-smoother");

  TablePrinter table({"device", "alpha (TFLOPS)", "alpha/beta_dram",
                      "tipping point", "best TFLOPS", "opt(T=12)"});
  for (const auto& dev :
       {gpumodel::k40(), gpumodel::p100(), gpumodel::v100()}) {
    const auto r = driver::optimize_program(prog, dev, params);
    ARTEMIS_CHECK(r.deep_tuning.has_value());
    std::string sched;
    for (const int x : r.fusion_schedule) sched += str_cat(" ", x);
    double best = 0;
    for (const auto& e : r.deep_tuning->entries) {
      best = std::max(best, e.tflops);
    }
    table.add_row({dev.name, format_double(dev.peak_dp_flops / 1e12, 3),
                   format_double(dev.balance_dram(), 3),
                   std::to_string(r.deep_tuning->tipping_point),
                   format_double(best, 3), sched});
  }
  std::printf("Device portability: Fig. 4 deep tuning across GPU "
              "generations\n\n%s\n",
              table.to_string().c_str());
  std::printf(
      "Every column is a pure function of the DeviceSpec: absolute TFLOPS\n"
      "scale with the device peak while the fusion cusp tracks the\n"
      "machine balance (more bandwidth-starved devices reward deeper\n"
      "fusion).\n");
  return 0;
}
