#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/sim/native/native.hpp"

namespace artemis::sim::native {

namespace {

/// (array slot, selectors, offsets): the static identity of one access.
/// Equal keys touch the same element at every point; keys that agree on
/// selectors but differ in some offset touch provably distinct elements
/// at every point.
struct AccessKey {
  std::int32_t array;
  std::array<std::uint8_t, 3> sel;
  std::array<std::int64_t, 3> off;
  auto operator<=>(const AccessKey&) const = default;
};

AccessKey key_of(const BcAccess& a) { return {a.array, a.sel, a.off}; }

/// Virtual registers are uint16; a postfix program allocates at most one
/// register per instruction, so bounding the code bounds the file.
constexpr std::size_t kMaxCode = 4096;

struct Lowerer {
  const CompiledStencil& cs;
  const std::vector<std::uint8_t>& is_scratch;
  const bool fast_math;

  LinearProgram out;
  std::string reason;

  std::vector<std::uint16_t> stack;
  std::vector<std::uint16_t> local_reg;
  /// Pinned registers hold values live to the end of the point (consts,
  /// scalars, locals, CSE'd loads, store operands); unpinned registers
  /// are pure temporaries, consumed exactly once.
  std::vector<bool> pinned;
  std::vector<std::uint16_t> free_regs;
  /// body index that defined each register, -1 when dead / not a temp.
  std::vector<std::int32_t> def_instr;
  std::map<std::uint64_t, std::uint16_t> const_regs;  ///< keyed by raw bits
  std::map<std::int32_t, std::uint16_t> scalar_regs;
  std::map<AccessKey, std::uint16_t> load_cse;
  std::map<std::uint16_t, std::int32_t> reg_load;  ///< CSE reg -> loads[] id

  struct Pending {
    AccessKey key;
    std::uint16_t val;
  };
  std::vector<Pending> pending;  ///< statement order, like the exec buffer

  Lowerer(const CompiledStencil& cs_in,
          const std::vector<std::uint8_t>& scratch_in, bool fm)
      : cs(cs_in), is_scratch(scratch_in), fast_math(fm) {}

  std::uint16_t alloc(bool pin) {
    std::uint16_t r;
    if (!pin && !free_regs.empty()) {
      r = free_regs.back();
      free_regs.pop_back();
    } else {
      r = static_cast<std::uint16_t>(out.n_regs++);
      pinned.push_back(false);
      def_instr.push_back(-1);
    }
    pinned[r] = pin;
    return r;
  }

  void push(std::uint16_t r) { stack.push_back(r); }
  std::uint16_t pop() {
    const std::uint16_t r = stack.back();
    stack.pop_back();
    return r;
  }

  void free_if_temp(std::uint16_t r) {
    if (!pinned[r]) {
      free_regs.push_back(r);
      def_instr[r] = -1;
    }
  }

  void emit(NOp op, std::uint16_t a, std::uint16_t b, std::uint16_t c) {
    const std::uint16_t d = alloc(/*pin=*/false);
    NInstr i;
    i.op = op;
    i.dst = d;
    i.a = a;
    i.b = b;
    i.c = c;
    out.body.push_back(i);
    def_instr[d] = static_cast<std::int32_t>(out.body.size()) - 1;
    push(d);
  }

  std::uint16_t const_reg_for(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    if (const auto it = const_regs.find(bits); it != const_regs.end()) {
      return it->second;
    }
    const std::uint16_t r = alloc(/*pin=*/true);
    out.setup_consts.push_back(v);
    out.const_reg.push_back(r);
    const_regs.emplace(bits, r);
    return r;
  }

  std::uint16_t scalar_reg_for(std::int32_t slot) {
    if (const auto it = scalar_regs.find(slot); it != scalar_regs.end()) {
      return it->second;
    }
    const std::uint16_t r = alloc(/*pin=*/true);
    out.setup_scalars.push_back(slot);
    out.scalar_reg.push_back(r);
    scalar_regs.emplace(slot, r);
    return r;
  }

  bool refuse(std::string why) {
    reason = std::move(why);
    return false;
  }

  /// Read one element through the pending-write buffer, statically. The
  /// result register is pinned (it may be read again via CSE). Mirrors
  /// exec_point's read_at: a pending hit forwards the stored register and
  /// touches no memory and no counters; a memory read counts once per
  /// original read op (CSE shares the register, not the count).
  bool read_access(const BcAccess& a, std::uint16_t& result) {
    const AccessKey k = key_of(a);
    if (a.scan_pending) {
      for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        if (it->key.array != a.array) continue;
        if (it->key.sel != a.sel) {
          // The buffered write and this read are driven by different
          // coordinate selectors: whether they alias depends on the
          // point, which only the runtime scan can decide.
          return refuse(str_cat("pending-write aliasing on array slot ",
                                a.array, " is point-dependent"));
        }
        if (it->key.off == a.off) {
          result = it->val;
          return true;  // static forward: always the same element
        }
        // Same selectors, different offsets: never the same element.
      }
      if (is_scratch[static_cast<std::size_t>(a.array)]) {
        // A memory read of a scratch array this stage also stores to can
        // observe another point's write (scratch is never snapshotted),
        // making results depend on point order. The bytecode engine's
        // row-major order defines the semantics; fall back to it.
        return refuse(str_cat("scratch array slot ", a.array,
                              " is read back after a same-stage store"));
      }
    }
    const bool scratch = is_scratch[static_cast<std::size_t>(a.array)] != 0;
    if (scratch) {
      ++out.sreads_pp;
    } else {
      ++out.greads_pp;
    }
    std::int32_t load_idx;
    if (const auto it = load_cse.find(k); it != load_cse.end()) {
      result = it->second;
      load_idx = reg_load.at(result);
    } else {
      load_idx = static_cast<std::int32_t>(out.loads.size());
      NAccess na;
      na.view = a.array;
      na.sel = a.sel;
      na.off = a.off;
      na.scratch = scratch;
      out.loads.push_back(na);
      result = alloc(/*pin=*/true);
      NInstr li;
      li.op = NOp::Load;
      li.dst = result;
      li.aux = load_idx;
      out.body.push_back(li);
      load_cse.emplace(k, result);
      reg_load.emplace(result, load_idx);
    }
    if (!scratch) out.replay_reads.push_back(load_idx);
    return true;
  }

  void unary(NOp op) {
    const std::uint16_t a = pop();
    free_if_temp(a);
    emit(op, a, 0, 0);
  }

  /// True when r is the unpinned result of the immediately preceding Mul
  /// — the fast-math FMA contraction candidate; nothing else can ever
  /// read r, and no instruction after the Mul has touched the file.
  bool fresh_product(std::uint16_t r) const {
    return fast_math && !pinned[r] && def_instr[r] >= 0 &&
           def_instr[r] == static_cast<std::int32_t>(out.body.size()) - 1 &&
           out.body.back().op == NOp::Mul;
  }

  /// Replace {m = a*b; d = combine(m, addend)} with one fused op. The
  /// Mul's operands are still live: registers freed since its emission
  /// can only have been reallocated by another emission, and the Mul is
  /// the last one.
  void fuse(std::uint16_t prod, std::uint16_t addend, NOp fused) {
    const NInstr mi = out.body.back();
    out.body.pop_back();
    def_instr[prod] = -1;
    free_regs.push_back(prod);
    free_if_temp(addend);
    emit(fused, mi.a, mi.b, addend);
  }

  void binary(NOp op) {
    const std::uint16_t b = pop();
    const std::uint16_t a = pop();
    if (op == NOp::Add) {
      if (fresh_product(b)) return fuse(b, a, NOp::Fmadd);
      if (fresh_product(a)) return fuse(a, b, NOp::Fmadd);
    } else if (op == NOp::Sub) {
      if (fresh_product(b)) return fuse(b, a, NOp::Fnmadd);  // a - m1*m2
      if (fresh_product(a)) return fuse(a, b, NOp::Fmsub);   // m1*m2 - b
    }
    free_if_temp(a);
    free_if_temp(b);
    emit(op, a, b, 0);
  }

  bool add_store(const BcAccess& a, std::uint16_t v) {
    // A store that does not consume every iterator maps many points onto
    // one element; the element's final value is then defined by the
    // bytecode's row-major point order, which the native interior does
    // not preserve. Refuse; injective stores are order-free (each
    // element has exactly one writer).
    for (int iter = 3 - cs.dims; iter < 3; ++iter) {
      if (a.sel[0] != iter && a.sel[1] != iter && a.sel[2] != iter) {
        return refuse(str_cat("store on array slot ", a.array,
                              " does not address every iterator"));
      }
    }
    NStore s;
    s.acc.view = a.array;
    s.acc.sel = a.sel;
    s.acc.off = a.off;
    s.acc.scratch = is_scratch[static_cast<std::size_t>(a.array)] != 0;
    s.src = v;
    out.stores.push_back(s);
    pending.push_back({key_of(a), v});
    if (s.acc.scratch) ++out.swrites_pp;
    // External stores contribute to gwrites by committed volume, not per
    // point — accounted analytically in add_interior_counters.
    return true;
  }

  /// Scratch is never snapshotted, so a memory load that can observe a
  /// same-stage store from ANOTHER point makes results depend on point
  /// order. Safe only when the array has a single store key and every
  /// memory load of it uses that exact key: each point then reads only
  /// its own element (stores are injective), whose pre-value no other
  /// point writes.
  bool check_scratch_raw() {
    std::map<std::int32_t, std::set<AccessKey>> scratch_stores;
    for (const NStore& s : out.stores) {
      if (s.acc.scratch) {
        scratch_stores[s.acc.view].insert({s.acc.view, s.acc.sel, s.acc.off});
      }
    }
    for (const NAccess& a : out.loads) {
      if (!a.scratch) continue;
      const auto it = scratch_stores.find(a.view);
      if (it == scratch_stores.end()) continue;
      if (it->second.size() != 1 ||
          it->second.count({a.view, a.sel, a.off}) == 0) {
        return refuse(str_cat("scratch array slot ", a.view,
                              " is read and rewritten within one stage"));
      }
    }
    return true;
  }

  /// Group loads that are pure streaming-axis (z) shifts of one another:
  /// identical view and selectors, offsets equal after subtracting one
  /// common z delta from every z-driven dimension. Runs of consecutive z
  /// offsets become rotating register windows.
  void build_chains() {
    if (out.dims < 3) return;  // only 3D programs stream over z
    using GroupKey = std::tuple<std::int32_t, std::array<std::uint8_t, 3>,
                                std::array<std::int64_t, 3>>;
    std::map<GroupKey, std::vector<std::pair<std::int64_t, std::int32_t>>>
        groups;
    for (std::size_t i = 0; i < out.loads.size(); ++i) {
      const NAccess& a = out.loads[i];
      int d0 = -1;
      for (int d = 0; d < 3; ++d) {
        if (a.sel[static_cast<std::size_t>(d)] == 0) {
          d0 = d;
          break;
        }
      }
      if (d0 < 0) continue;  // value does not move with z
      const std::int64_t coord = a.off[static_cast<std::size_t>(d0)];
      std::array<std::int64_t, 3> norm = a.off;
      for (std::size_t d = 0; d < 3; ++d) {
        if (a.sel[d] == 0) norm[d] -= coord;
      }
      groups[{a.view, a.sel, norm}].emplace_back(
          coord, static_cast<std::int32_t>(i));
    }
    for (auto& [key, members] : groups) {
      std::sort(members.begin(), members.end());
      std::size_t run = 0;
      for (std::size_t i = 1; i <= members.size(); ++i) {
        const bool breaks = i == members.size() ||
                            members[i].first != members[i - 1].first + 1;
        if (!breaks) continue;
        if (i - run >= 2) {
          const auto chain_id = static_cast<std::int32_t>(out.chains.size());
          NChain ch;
          for (std::size_t p = run; p < i; ++p) {
            const std::int32_t li = members[p].second;
            out.loads[static_cast<std::size_t>(li)].chain = chain_id;
            out.loads[static_cast<std::size_t>(li)].chain_pos =
                static_cast<std::int32_t>(p - run);
            ch.members.push_back(li);
          }
          out.chains.push_back(std::move(ch));
        }
        run = i;
      }
    }
  }

  bool run() {
    stack.reserve(static_cast<std::size_t>(std::max(1, cs.max_stack)));
    local_reg.assign(static_cast<std::size_t>(std::max(1, cs.n_locals)), 0);
    for (const BcInstr& ins : cs.code) {
      switch (ins.op) {
        case BcOp::PushConst:
          push(const_reg_for(cs.consts[static_cast<std::size_t>(ins.a)]));
          break;
        case BcOp::PushScalar:
          push(scalar_reg_for(ins.a));
          break;
        case BcOp::PushLocal:
          push(local_reg[static_cast<std::size_t>(ins.a)]);
          break;
        case BcOp::Load: {
          std::uint16_t r;
          if (!read_access(cs.accesses[static_cast<std::size_t>(ins.a)], r)) {
            return false;
          }
          push(r);
          break;
        }
        case BcOp::Neg:
          unary(NOp::Neg);
          break;
        case BcOp::Sqrt:
          unary(NOp::Sqrt);
          break;
        case BcOp::Fabs:
          unary(NOp::Fabs);
          break;
        case BcOp::Exp:
          unary(NOp::Exp);
          break;
        case BcOp::Log:
          unary(NOp::Log);
          break;
        case BcOp::Add:
          binary(NOp::Add);
          break;
        case BcOp::Sub:
          binary(NOp::Sub);
          break;
        case BcOp::Mul:
          binary(NOp::Mul);
          break;
        case BcOp::Div:
          binary(NOp::Div);
          break;
        case BcOp::Min:
          binary(NOp::Min);
          break;
        case BcOp::Max:
          binary(NOp::Max);
          break;
        case BcOp::Pow:
          binary(NOp::Pow);
          break;
        case BcOp::StoreLocal: {
          const std::uint16_t v = pop();
          pinned[v] = true;  // locals may be read any number of times
          local_reg[static_cast<std::size_t>(ins.a)] = v;
          break;
        }
        case BcOp::Store: {
          const std::uint16_t v = pop();
          pinned[v] = true;
          if (!add_store(cs.accesses[static_cast<std::size_t>(ins.a)], v)) {
            return false;
          }
          break;
        }
        case BcOp::StoreAccum: {
          // `*--sp + cur`: read through the pending buffer, add in the
          // bytecode's operand order, store the sum.
          const BcAccess& a = cs.accesses[static_cast<std::size_t>(ins.a)];
          std::uint16_t cur;
          if (!read_access(a, cur)) return false;
          push(cur);
          binary(NOp::Add);
          const std::uint16_t v = pop();
          pinned[v] = true;
          if (!add_store(a, v)) return false;
          break;
        }
      }
    }
    ARTEMIS_CHECK(stack.empty());
    if (!check_scratch_raw()) return false;
    build_chains();
    out.flops_per_point = cs.flops_per_point;
    return true;
  }
};

}  // namespace

LowerResult lower_stencil(const CompiledStencil& cs,
                          const std::vector<std::uint8_t>& is_scratch,
                          bool fast_math) {
  LowerResult res;
  if (cs.code.size() >= kMaxCode) {
    res.reason = "statement list exceeds the virtual register budget";
    return res;
  }
  Lowerer lw(cs, is_scratch, fast_math);
  lw.out.dims = cs.dims;
  if (!lw.run()) {
    res.reason = lw.reason;
    return res;
  }
  res.ok = true;
  res.prog = std::move(lw.out);
  return res;
}

}  // namespace artemis::sim::native
