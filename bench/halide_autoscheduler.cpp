// Reproduces the Section I observation about the Halide GPU autoscheduler:
// "Even the GPU autoscheduler of Halide suffers due to the implemented
// heuristics, leading to a 2x slowdown in performance for complex
// stencils [17]."
//
// The stand-in autoscheduler tiles and fuses greedily but has no
// streaming, no profiling feedback, and -- decisively -- never tunes the
// register budget. On the simple iterative stencils it stays within
// striking distance of ARTEMIS; on the register-constrained spatial
// kernels it falls behind by ~2x or more.

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  TablePrinter table({"Benchmark", "class", "halide-auto", "ARTEMIS",
                      "ARTEMIS/halide"});
  double worst_simple = 0, best_complex = 1e9;
  for (const auto& spec : stencils::paper_benchmarks()) {
    const auto prog = stencils::benchmark_program(spec.name);
    const bool complex_kernel =
        spec.paper_flops >= 300 || spec.paper_arrays >= 20;
    double ha = 0;
    try {
      ha = driver::optimize_program(prog, dev, params,
                                    driver::halide_auto_strategy())
               .tflops;
    } catch (const Error&) {
    }
    const auto ar = driver::optimize_program(prog, dev, params).tflops;
    const double ratio = ha > 0 ? ar / ha : 0;
    table.add_row({spec.name, complex_kernel ? "complex" : "simple",
                   format_double(ha, 3), format_double(ar, 3),
                   format_double(ratio, 3)});
    if (complex_kernel) {
      best_complex = std::min(best_complex, ratio);
    } else {
      worst_simple = std::max(worst_simple, ratio);
    }
  }
  std::printf("Halide-autoscheduler stand-in vs ARTEMIS (useful TFLOPS)\n\n%s\n",
              table.to_string().c_str());
  std::printf("Shape check (Section I): the gap is modest on simple "
              "stencils and\nreaches ~2x on the complex register-bound "
              "kernels.\n");
  return 0;
}
