#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "test_programs.hpp"

namespace artemis::sim {
namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

/// Run every call step of `prog` through build_plan + execute_plan with
/// `config`, and compare all copyout arrays against the reference
/// interpreter. Returns max abs diff over outputs.
double run_and_compare(const ir::Program& prog, const KernelConfig& config,
                       const BuildOptions& opts = {}, bool fuse_all = false,
                       std::uint64_t seed = 1234) {
  const auto dev = gpumodel::p100();

  GridSet ref = GridSet::from_program(prog, seed);
  GridSet tiled = ref.clone();

  run_program_reference(prog, ref);

  if (fuse_all) {
    std::vector<ir::BoundStencil> stages;
    int idx = 0;
    for (const auto& step : prog.steps) {
      ARTEMIS_CHECK(step.kind == ir::Step::Kind::Call);
      stages.push_back(
          ir::bind_call(prog, step.call, str_cat("s", idx++, "_")));
    }
    const KernelPlan plan =
        codegen::build_plan(prog, std::move(stages), config, dev, opts);
    execute_plan(plan, tiled);
  } else {
    for (const auto& step : ir::flatten_steps(prog)) {
      if (step.kind == ir::ExecStep::Kind::Swap) {
        tiled.swap(step.swap.a, step.swap.b);
        continue;
      }
      std::vector<ir::BoundStencil> stages = {step.stencil};
      const KernelPlan plan =
          codegen::build_plan(prog, std::move(stages), config, dev, opts);
      execute_plan(plan, tiled);
    }
  }

  double worst = 0.0;
  for (const auto& out : prog.copyout) {
    worst = std::max(
        worst, Grid3D::max_abs_diff(ref.grid(out), tiled.grid(out)));
  }
  return worst;
}

TEST(Executor, JacobiSpatialMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {8, 4, 2};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, JacobiStreamSerialMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {8, 4, 1};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, JacobiStreamConcurrentMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamConcurrent;
  cfg.stream_axis = 2;
  cfg.stream_chunk = 5;
  cfg.block = {8, 4, 1};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, UnevenTileSizesMatchReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  // 16^3 domain with tiles of 5x3x7: forces partial boundary tiles.
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {5, 3, 7};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, UnrollChangesTilesNotValues) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 2};
  cfg.unroll = {2, 2, 1};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, IterativePingPongMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiIterativeDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 4};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, FusedDagMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 2};
  EXPECT_EQ(run_and_compare(prog, cfg, {}, /*fuse_all=*/true), 0.0);
}

TEST(Executor, FusedDagStreamingMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {4, 4, 1};
  EXPECT_EQ(run_and_compare(prog, cfg, {}, /*fuse_all=*/true), 0.0);
}

TEST(Executor, FusedDagGlobalOnlyMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 2};
  BuildOptions opts;
  opts.use_shared_memory = false;
  EXPECT_EQ(run_and_compare(prog, cfg, opts, /*fuse_all=*/true), 0.0);
}

TEST(Executor, CountsComputeAndSkips) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  GridSet gs = GridSet::from_program(prog, 7);
  KernelConfig cfg;
  cfg.block = {8, 8, 8};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  const ExecCounters c = execute_plan(plan, gs);
  // 16^3 domain, order-1: interior 14^3 computed, the shell skipped.
  EXPECT_EQ(c.computed_points, 14 * 14 * 14);
  EXPECT_EQ(c.skipped_points, 16 * 16 * 16 - 14 * 14 * 14);
  EXPECT_EQ(c.blocks, 8);
  EXPECT_EQ(c.global_write_elems, 14 * 14 * 14);
}

// ---- property tests: random programs x random configs ----------------------

struct PropertyCase {
  int dims;
  int max_order;
  int max_stages;
};

class ExecutorProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExecutorProperty, TiledMatchesReference) {
  const PropertyCase pc = GetParam();
  Rng rng(0xC0FFEE + static_cast<std::uint64_t>(pc.dims * 100 +
                                                pc.max_order * 10 +
                                                pc.max_stages));
  for (int trial = 0; trial < 8; ++trial) {
    stencils::RandomStencilOptions opts;
    opts.dims = pc.dims;
    opts.max_order = pc.max_order;
    opts.max_stages = pc.max_stages;
    const ir::Program prog = stencils::random_program(rng, opts);

    KernelConfig cfg;
    const std::int64_t roll = rng.uniform_int(0, 2);
    if (pc.dims >= 2 && roll == 1) {
      cfg.tiling = TilingScheme::StreamSerial;
    } else if (pc.dims >= 2 && roll == 2) {
      cfg.tiling = TilingScheme::StreamConcurrent;
      cfg.stream_chunk = static_cast<int>(rng.uniform_int(3, 9));
    } else {
      cfg.tiling = TilingScheme::Spatial3D;
    }
    cfg.stream_axis = pc.dims - 1;
    cfg.block = {static_cast<int>(rng.uniform_int(2, 7)),
                 pc.dims >= 2 ? static_cast<int>(rng.uniform_int(2, 7)) : 1,
                 pc.dims >= 3 ? static_cast<int>(rng.uniform_int(1, 5)) : 1};
    if (cfg.tiling != TilingScheme::Spatial3D) {
      cfg.block[static_cast<std::size_t>(pc.dims - 1)] = 1;
    }
    if (rng.coin(0.3)) cfg.unroll[0] = 2;

    const bool fuse = pc.max_stages > 1;
    const double diff = run_and_compare(
        prog, cfg, {}, fuse, 0x5EED0 + static_cast<std::uint64_t>(trial));
    EXPECT_EQ(diff, 0.0) << "dims=" << pc.dims << " order=" << pc.max_order
                         << " stages=" << pc.max_stages
                         << " trial=" << trial << " cfg "
                         << cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorProperty,
    ::testing::Values(PropertyCase{1, 1, 1}, PropertyCase{1, 3, 1},
                      PropertyCase{2, 1, 1}, PropertyCase{2, 2, 2},
                      PropertyCase{3, 1, 1}, PropertyCase{3, 2, 1},
                      PropertyCase{3, 1, 3}, PropertyCase{3, 2, 2}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "d" + std::to_string(info.param.dims) + "r" +
             std::to_string(info.param.max_order) + "s" +
             std::to_string(info.param.max_stages);
    });

}  // namespace
}  // namespace artemis::sim
