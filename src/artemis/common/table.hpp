#pragma once

#include <string>
#include <vector>

namespace artemis {

/// Minimal fixed-width ASCII table printer used by the bench harnesses to
/// reproduce the paper's tables. Columns auto-size to their widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render the whole table (header, rule, rows) as a string.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace artemis
