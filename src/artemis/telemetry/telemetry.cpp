#include "artemis/telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>

namespace artemis::telemetry {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Owns this thread's buffer registration. On thread exit the remaining
/// events are retired into the collector so spans recorded inside
/// short-lived parallel_for workers survive the join.
struct Collector::ThreadHandle {
  std::shared_ptr<ThreadBuffer> buffer;

  ~ThreadHandle() {
    if (!buffer) return;
    std::vector<Event> drained;
    {
      const std::lock_guard<std::mutex> lock(buffer->mu);
      drained = std::move(buffer->events);
      buffer->events.clear();
    }
    if (!drained.empty()) {
      auto& c = Collector::global();
      const std::lock_guard<std::mutex> lock(c.mu_);
      c.retired_.insert(c.retired_.end(),
                        std::make_move_iterator(drained.begin()),
                        std::make_move_iterator(drained.end()));
    }
    // The buffer itself stays in buffers_ (cheap, keeps tids stable); it
    // is empty from here on.
  }
};

Collector& Collector::global() {
  static Collector* c = new Collector();  // leaked: outlives all threads
  return *c;
}

Collector::ThreadBuffer* Collector::this_thread_buffer() {
  thread_local ThreadHandle handle;
  if (!handle.buffer) {
    auto buf = std::make_shared<ThreadBuffer>();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      buf->tid = next_tid_++;
      buffers_.push_back(buf);
    }
    handle.buffer = std::move(buf);
  }
  return handle.buffer.get();
}

void Collector::enable() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    epoch_ns_ = steady_ns();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Collector::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Collector::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_.clear();
    counters_.clear();
    epoch_ns_ = steady_ns();
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mu);
    b->events.clear();
  }
}

std::int64_t Collector::now_ns() const { return steady_ns() - epoch_ns_; }

void Collector::record(Event ev) {
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  ev.tid = buf->tid;
  const std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(std::move(ev));
}

void Collector::counter_add(const std::string& name, std::int64_t delta) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::vector<Event> Collector::snapshot() const {
  std::vector<Event> out;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = retired_;
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mu);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     // Outer spans end later: longer duration first so a
                     // parent sorts before its same-start child.
                     return a.dur_ns > b.dur_ns;
                   });
  return out;
}

std::map<std::string, std::int64_t> Collector::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

Span::Span(const char* name, const char* cat, std::vector<Attr> args) {
  auto& c = Collector::global();
  if (!c.enabled()) return;
  active_ = true;
  ev_.phase = Event::Phase::Complete;
  ev_.name = name;
  ev_.cat = cat;
  ev_.ts_ns = c.now_ns();
  ev_.args = std::move(args);
}

Span::~Span() {
  if (!active_) return;
  auto& c = Collector::global();
  ev_.dur_ns = c.now_ns() - ev_.ts_ns;
  c.record(std::move(ev_));
}

void Span::arg(const std::string& key, Json value) {
  if (!active_) return;
  ev_.args.push_back({key, std::move(value)});
}

void instant(const char* name, const char* cat, std::vector<Attr> args) {
  auto& c = Collector::global();
  if (!c.enabled()) return;
  Event ev;
  ev.phase = Event::Phase::Instant;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = c.now_ns();
  ev.args = std::move(args);
  c.record(std::move(ev));
}

void counter_add(const std::string& name, std::int64_t delta) {
  Collector::global().counter_add(name, delta);
}

}  // namespace artemis::telemetry
