#include "artemis/transform/fold.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "artemis/common/check.hpp"

namespace artemis::transform {

namespace {

using ir::BinOp;
using ir::Expr;
using ir::ExprKind;

/// Flatten a multiplicative chain into factors.
void collect_factors(const Expr& e, std::vector<const Expr*>& factors) {
  if (e.kind == ExprKind::Binary && e.bop == BinOp::Mul) {
    collect_factors(*e.args[0], factors);
    collect_factors(*e.args[1], factors);
    return;
  }
  factors.push_back(&e);
}

struct ArrayReadStats {
  int total_reads = 0;
  /// Reads that occurred inside a joint product keyed by the sorted partner
  /// set (including self).
  std::map<std::set<std::string>, int> joint_reads;
};

/// Walk the expression, recording for every array read whether it occurs in
/// a pointwise product with co-indexed partners.
void scan(const Expr& e, std::map<std::string, ArrayReadStats>& stats) {
  // First, see if this node is a product of co-indexed array refs (possibly
  // with extra non-array factors, which do not break folding).
  if (e.kind == ExprKind::Binary && e.bop == BinOp::Mul) {
    std::vector<const Expr*> factors;
    collect_factors(e, factors);
    std::vector<const Expr*> array_factors;
    for (const Expr* f : factors) {
      if (f->kind == ExprKind::ArrayRef) array_factors.push_back(f);
    }
    bool co_indexed = array_factors.size() >= 2;
    for (std::size_t i = 1; co_indexed && i < array_factors.size(); ++i) {
      co_indexed = array_factors[i]->indices == array_factors[0]->indices;
    }
    if (co_indexed) {
      std::set<std::string> group;
      for (const Expr* f : array_factors) group.insert(f->name);
      // Distinct arrays only; A[i]*A[i] is not a fold group.
      if (group.size() == array_factors.size()) {
        for (const Expr* f : array_factors) {
          auto& s = stats[f->name];
          ++s.total_reads;
          ++s.joint_reads[group];
        }
        // Recurse into non-array factors only.
        for (const Expr* f : factors) {
          if (f->kind != ExprKind::ArrayRef) scan(*f, stats);
        }
        return;
      }
    }
    // Not a foldable product: fall through to generic traversal.
  }
  if (e.kind == ExprKind::ArrayRef) {
    ++stats[e.name].total_reads;
    return;
  }
  for (const auto& a : e.args) scan(*a, stats);
}

}  // namespace

std::vector<std::vector<std::string>> find_fold_groups(
    const std::vector<ir::Stmt>& stmts) {
  std::map<std::string, ArrayReadStats> stats;
  std::set<std::string> written;
  for (const auto& st : stmts) {
    scan(*st.rhs, stats);
    if (!st.declares_local) written.insert(st.lhs_name);
  }

  // An array is foldable into group G iff all of its reads are joint reads
  // with exactly the partner set G, and it is never written by the kernel
  // (folding a produced array would change the buffer the producer fills).
  std::set<std::set<std::string>> candidate_groups;
  for (const auto& [name, s] : stats) {
    if (s.joint_reads.size() != 1) continue;
    const auto& [group, count] = *s.joint_reads.begin();
    if (count == s.total_reads) candidate_groups.insert(group);
  }

  std::vector<std::vector<std::string>> out;
  for (const auto& group : candidate_groups) {
    bool all_members_exclusive = true;
    for (const auto& name : group) {
      const auto it = stats.find(name);
      ARTEMIS_CHECK(it != stats.end());
      const auto& s = it->second;
      if (written.count(name) || s.joint_reads.size() != 1 ||
          s.joint_reads.begin()->first != group ||
          s.joint_reads.begin()->second != s.total_reads) {
        all_members_exclusive = false;
        break;
      }
    }
    if (all_members_exclusive) {
      out.emplace_back(group.begin(), group.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t folding_flop_savings(
    const std::vector<ir::Stmt>& stmts,
    const std::vector<std::vector<std::string>>& groups) {
  std::int64_t savings = 0;
  for (const auto& group : groups) {
    ARTEMIS_CHECK(group.size() >= 2);
    // Count distinct offsets the group is read at (reads of the first
    // member are representative since members are always co-indexed).
    std::set<std::vector<ir::IndexExpr>> offsets;
    for (const auto& st : stmts) {
      ir::visit(*st.rhs, [&](const Expr& e) {
        if (e.kind == ExprKind::ArrayRef && e.name == group.front()) {
          offsets.insert(e.indices);
        }
      });
    }
    const auto m = static_cast<std::int64_t>(offsets.size());
    if (m > 1) {
      savings += static_cast<std::int64_t>(group.size() - 1) * (m - 1);
    }
  }
  return savings;
}

}  // namespace artemis::transform
