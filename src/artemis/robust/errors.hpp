#pragma once

#include <exception>

#include "artemis/common/check.hpp"

namespace artemis::robust {

/// Base class for transient evaluation failures. Deliberately distinct
/// from PlanError: a PlanError means the configuration can never run on
/// the device (infeasible — retrying is pointless), while an EvalError
/// means one measurement attempt failed (a crashed generated variant, a
/// hung kernel, an unstable timing) and the candidate may still be
/// salvageable by retrying, or must be quarantined after repeat offenses.
class EvalError : public Error {
 public:
  using Error::Error;
};

/// The evaluation exceeded its wall-clock deadline (hung or pathologically
/// slow variant; on real hardware, a kernel killed by the watchdog).
class EvalTimeout : public EvalError {
 public:
  using EvalError::EvalError;
};

/// The evaluation aborted (a miscompiled variant, a launch that faulted).
class EvalCrash : public EvalError {
 public:
  using EvalError::EvalError;
};

/// Repeated timing trials disagreed beyond the accepted dispersion
/// (median absolute deviation over the median above the tolerance).
class MeasurementUnstable : public EvalError {
 public:
  using EvalError::EvalError;
};

/// Stable lower-case class name for an exception, used by telemetry
/// events that record dropped candidates ("eval_timeout", "eval_crash",
/// "measurement_unstable", "plan_error", "error").
const char* error_class(const std::exception& e);

}  // namespace artemis::robust
