#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::sim {

/// Read one array element at global coordinates (z, y, x); nullopt means
/// the access is out of bounds, which vetoes the whole point (the CUDA
/// guard `if (j >= j0+1 && ...)` semantics).
using ArrayReader = std::function<std::optional<double>(
    const std::string&, std::int64_t, std::int64_t, std::int64_t)>;

/// Commit one array write at global coordinates.
using ArrayWriter = std::function<void(const std::string&, std::int64_t,
                                       std::int64_t, std::int64_t, double)>;

/// Apply a stencil statement list at one grid point.
///
/// `itv` holds the iterator values, outermost first (so for a 3D program
/// itv = {z, y, x}). Scalars resolve from `scalars`; local temporaries are
/// evaluated in statement order. All writes are buffered and committed
/// atomically only if every read was in bounds; returns false (and writes
/// nothing) when the point must be skipped.
///
/// Accumulation statements (`+=`) read the current value through `reader`.
bool apply_stmts_at_point(const std::vector<ir::Stmt>& stmts,
                          const std::map<std::string, double>& scalars,
                          const std::vector<std::int64_t>& itv,
                          const ArrayReader& reader,
                          const ArrayWriter& writer);

/// Evaluate a single expression at a point; nullopt on out-of-bounds reads.
std::optional<double> eval_expr(
    const ir::Expr& e, const std::map<std::string, double>& scalars,
    const std::map<std::string, double>& locals,
    const std::vector<std::int64_t>& itv, const ArrayReader& reader);

/// Map an access's index vector (length = array dimensionality) to global
/// (z, y, x) coordinates given iterator values.
std::array<std::int64_t, 3> access_coords(
    const std::vector<ir::IndexExpr>& indices,
    const std::vector<std::int64_t>& itv);

}  // namespace artemis::sim
