#include "artemis/telemetry/report.hpp"

#include <cstring>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/gpumodel/occupancy.hpp"

namespace artemis::telemetry {

namespace {

Json triple(const std::array<int, 3>& a) {
  Json arr = Json::array();
  for (const int v : a) arr.push_back(v);
  return arr;
}

Json event_json(const Event& ev) {
  Json rec = Json::object();
  rec.set("ts_ms", static_cast<double>(ev.ts_ns) / 1e6);
  for (const auto& a : ev.args) rec.set(a.key, a.value);
  return rec;
}

/// All instant events with a given name, in time order.
Json events_named(const std::vector<Event>& events, const char* name) {
  Json arr = Json::array();
  for (const Event& ev : events) {
    if (std::strcmp(ev.name, name) == 0) arr.push_back(event_json(ev));
  }
  return arr;
}

}  // namespace

Json config_json(const codegen::KernelConfig& cfg) {
  Json j = Json::object();
  j.set("block", triple(cfg.block));
  j.set("unroll", triple(cfg.unroll));
  j.set("tiling", codegen::tiling_name(cfg.tiling));
  j.set("stream_axis", cfg.stream_axis);
  j.set("stream_chunk", cfg.stream_chunk);
  j.set("perspective", codegen::perspective_name(cfg.perspective));
  j.set("unroll_strategy",
        codegen::unroll_strategy_name(cfg.unroll_strategy));
  j.set("prefetch", cfg.prefetch);
  j.set("retime", cfg.retime);
  j.set("fold", cfg.fold);
  j.set("max_registers", cfg.max_registers);
  j.set("time_tile", cfg.time_tile);
  if (cfg.target_occupancy) j.set("target_occupancy", *cfg.target_occupancy);
  // The tuning-cache single-line form, for grep/diff convenience.
  j.set("line", autotune::serialize_config(cfg));
  return j;
}

Json build_run_report(const ReportMeta& meta,
                      const driver::ProgramResult& result,
                      const std::vector<Event>& events,
                      const std::map<std::string, std::int64_t>& counters) {
  Json report = Json::object();
  report.set("report_version", kReportVersion);
  report.set("source", meta.source);
  report.set("strategy",
             meta.strategy.empty() ? result.strategy : meta.strategy);
  report.set("device", meta.device);

  // The chosen schedule.
  Json schedule = Json::object();
  schedule.set("time_ms", result.time_s * 1e3);
  schedule.set("tflops", result.tflops);
  schedule.set("useful_flops", result.useful_flops);
  schedule.set("kernel_launches", result.kernel_launches);
  Json kernels = Json::array();
  for (const auto& k : result.kernels) {
    Json kj = Json::object();
    kj.set("name", k.name);
    kj.set("invocations", k.invocations);
    kj.set("time_ms_per_invocation", k.eval.time_s * 1e3);
    kj.set("time_ms_total", k.time_s() * 1e3);
    kj.set("occupancy", k.eval.occupancy.fraction);
    kj.set("occupancy_limiter",
           gpumodel::limiter_name(k.eval.occupancy.limiter));
    kj.set("bound", gpumodel::bound_name(k.eval.bound));
    kj.set("registers_per_thread", k.eval.regs.total);
    kj.set("config", config_json(k.config));
    kernels.push_back(std::move(kj));
  }
  schedule.set("kernels", std::move(kernels));
  report.set("schedule", std::move(schedule));

  Json fusion = Json::array();
  for (const int x : result.fusion_schedule) fusion.push_back(x);
  report.set("fusion_schedule", std::move(fusion));

  Json hints = Json::array();
  for (const auto& h : result.hints) hints.push_back(h);
  report.set("hints", std::move(hints));

  if (result.deep_tuning) {
    Json deep = Json::object();
    deep.set("tipping_point", result.deep_tuning->tipping_point);
    Json entries = Json::array();
    for (const auto& e : result.deep_tuning->entries) {
      Json ej = Json::object();
      ej.set("time_tile", e.time_tile);
      ej.set("time_ms", e.time_s * 1e3);
      ej.set("time_ms_per_step", e.time_s / e.time_tile * 1e3);
      ej.set("tflops", e.tflops);
      ej.set("configs_evaluated", e.tuned.total_evaluated());
      entries.push_back(std::move(ej));
    }
    deep.set("entries", std::move(entries));
    report.set("deep_tuning", std::move(deep));
  }

  // Tuner counters + per-candidate records, straight from telemetry. The
  // invariants downstream tooling may rely on: enumerated == evaluated +
  // infeasible (every enumerated configuration is either evaluated on the
  // model or rejected as infeasible), with pruned_spill_budgets counting
  // the register-budget escalation steps skipped on top, and
  // space.enumerated == enumerated + model_pruned (the analytical
  // pre-filter skims candidates between enumeration and evaluation).
  Json tuner = Json::object();
  const auto counter = [&](const char* name) -> std::int64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  tuner.set("enumerated", counter("tuner.enumerated"));
  tuner.set("evaluated", counter("tuner.evaluated"));
  tuner.set("infeasible", counter("tuner.infeasible"));
  tuner.set("pruned_spill_budgets", counter("tuner.pruned_spill_budgets"));
  tuner.set("cache_hits", counter("tuning_cache.hits"));
  tuner.set("cache_misses", counter("tuning_cache.misses"));
  tuner.set("journal_hits", counter("tuner.journal_hits"));
  // Model-guided pruning (--model-prune-k): candidates the analytical
  // pre-filter kept from simulation, plus the per-sweep filter summaries
  // and the per-sweep model-vs-sim Spearman rank correlations.
  tuner.set("model_pruned", counter("tuner.model_pruned"));
  tuner.set("model_filter", events_named(events, "tuner.model_filter"));
  tuner.set("model_rank", events_named(events, "tuner.model_rank"));
  tuner.set("candidates", events_named(events, "tuner.candidate"));
  // Search observability: leaderboard-front changes (serial commit order,
  // so identical at any jobs value) and search-space coverage — what each
  // sweep enumerated against the unpruned cross product of its knob axes.
  tuner.set("leaderboard_changes", counter("tuner.leaderboard_changes"));
  tuner.set("leaderboard_events", events_named(events, "tuner.leaderboard"));
  Json space = Json::object();
  const std::int64_t space_enumerated = counter("tuner.space_enumerated");
  const std::int64_t space_unpruned = counter("tuner.space_unpruned");
  space.set("enumerated", space_enumerated);
  space.set("unpruned", space_unpruned);
  // Journal replays are accounted separately from enumeration, so a
  // resumed run's coverage fraction cannot exceed 1.
  space.set("replayed", counter("tuner.space_replayed"));
  space.set("coverage",
            space_unpruned > 0 ? static_cast<double>(space_enumerated) /
                                     static_cast<double>(space_unpruned)
                               : 1.0);
  space.set("sweeps", events_named(events, "tuner.space"));
  tuner.set("space", std::move(space));
  report.set("tuner", std::move(tuner));

  // Resilience accounting (docs/ROBUSTNESS.md): what fault injection,
  // retries, quarantine, and the tuning journal did during this run.
  // Crashed / timed-out / unstable / quarantined candidates are already
  // inside tuner.infeasible above; these break the losses down.
  Json resilience = Json::object();
  resilience.set("eval_crashes", counter("tuner.eval_crashes"));
  resilience.set("eval_timeouts", counter("tuner.eval_timeouts"));
  resilience.set("eval_unstable", counter("tuner.eval_unstable"));
  resilience.set("eval_retries", counter("tuner.eval_retries"));
  resilience.set("quarantined", counter("tuner.quarantined"));
  resilience.set("quarantine_skips", counter("tuner.quarantine_skips"));
  resilience.set("degraded", counter("tuner.degraded"));
  resilience.set("journal_records", counter("journal.records"));
  resilience.set("journal_replayed", counter("journal.replayed"));
  resilience.set("journal_parse_errors", counter("journal.parse_errors"));
  resilience.set("journal_write_errors", counter("journal.write_errors"));
  resilience.set("cache_parse_errors",
                 counter("tuning_cache.parse_errors"));
  // Cache drop breakdown: the same rows counted by cache_parse_errors,
  // classified by why each was dropped.
  Json cache_drops = Json::object();
  cache_drops.set("crc_mismatch", counter("tuning_cache.drop.crc_mismatch"));
  cache_drops.set("torn_tail", counter("tuning_cache.drop.torn_tail"));
  cache_drops.set("version_skew", counter("tuning_cache.drop.version_skew"));
  cache_drops.set("malformed", counter("tuning_cache.drop.malformed"));
  resilience.set("cache_drops", std::move(cache_drops));
  resilience.set("dropped_candidates",
                 counter("driver.dropped_candidates"));
  resilience.set("dropped", events_named(events, "driver.candidate_dropped"));
  report.set("resilience", std::move(resilience));

  // Durable plan store accounting (docs/ROBUSTNESS.md, --store): cache
  // traffic, crash recovery, and the integrity classification of every
  // record the store refused to serve.
  Json storage = Json::object();
  storage.set("hits", counter("plan_store.hits"));
  storage.set("misses", counter("plan_store.misses"));
  storage.set("puts", counter("plan_store.puts"));
  storage.set("put_failures", counter("plan_store.put_failures"));
  storage.set("io_errors", counter("plan_store.io_errors"));
  storage.set("recovered_tmp", counter("plan_store.recovered_tmp"));
  storage.set("quarantined", counter("plan_store.quarantined"));
  Json store_drops = Json::object();
  store_drops.set("torn", counter("plan_store.drop.torn"));
  store_drops.set("crc_mismatch", counter("plan_store.drop.crc_mismatch"));
  store_drops.set("version_skew", counter("plan_store.drop.version_skew"));
  store_drops.set("malformed", counter("plan_store.drop.malformed"));
  storage.set("drops", std::move(store_drops));
  storage.set("stale_locks_reclaimed",
              counter("plan_store.stale_locks_reclaimed"));
  storage.set("compactions", counter("plan_store.compactions"));
  report.set("storage", std::move(storage));

  // Parallel-tuning accounting: the shard count the driver requested and
  // what the work-stealing pools actually did. The tuning outcome is
  // independent of these numbers by construction (ordered commit); they
  // exist to watch utilization, not correctness.
  Json parallel = Json::object();
  parallel.set("jobs", meta.jobs);
  parallel.set("pools", counter("parallel.pools"));
  parallel.set("tasks", counter("parallel.tasks"));
  parallel.set("steals", counter("parallel.steals"));
  report.set("parallel", std::move(parallel));

  // Simulator engine accounting: which engine executed plans, how the
  // stencil-compilation dedup cache behaved, and — under the native
  // engine — how many stages ran on the SIMD tier vs fell back to
  // bytecode. Makes benchmark and verify runs self-describing.
  Json sim = Json::object();
  sim.set("engine", meta.engine.empty() ? "bytecode" : meta.engine);
  sim.set("compile_hits", counter("sim.compile_hits"));
  sim.set("compile_misses", counter("sim.compile_misses"));
  sim.set("native_stages", counter("sim.native_stages"));
  sim.set("native_fallbacks", counter("sim.native_fallbacks"));
  report.set("sim", std::move(sim));

  report.set("profile", events_named(events, "profile.verdict"));

  // Pipeline phase durations (top-level spans), for trajectory tracking.
  Json phases = Json::array();
  for (const Event& ev : events) {
    if (ev.phase != Event::Phase::Complete) continue;
    if (std::strcmp(ev.cat, "pipeline") != 0) continue;
    Json pj = Json::object();
    pj.set("name", ev.name);
    pj.set("ts_ms", static_cast<double>(ev.ts_ns) / 1e6);
    pj.set("dur_ms", static_cast<double>(ev.dur_ns) / 1e6);
    for (const auto& a : ev.args) pj.set(a.key, a.value);
    phases.push_back(std::move(pj));
  }
  report.set("phases", std::move(phases));

  return report;
}

}  // namespace artemis::telemetry
