#include "artemis/driver/driver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/robust/errors.hpp"
#include "artemis/telemetry/telemetry.hpp"
#include "artemis/transform/fission.hpp"
#include "artemis/transform/fusion.hpp"

namespace artemis::driver {

namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

/// Structured record of a candidate (a stage group, a fusion degree, a
/// memory version) the driver dropped on an exception: which derive
/// stage dropped it, what it was, and the error taxonomy class. Keeps
/// every dropped candidate visible in traces and the run report instead
/// of silently vanishing into a catch block. The tuner-level
/// `enumerated == evaluated + infeasible` invariant is untouched: these
/// drops happen above the candidate evaluator.
void record_dropped(const char* stage, const std::string& detail,
                    const std::exception& e) {
  telemetry::counter_add("driver.dropped_candidates");
  if (!telemetry::enabled()) return;
  telemetry::instant("driver.candidate_dropped", "pipeline",
                     {{"stage", Json(stage)},
                      {"detail", Json(detail)},
                      {"error_class", Json(robust::error_class(e))},
                      {"what", Json(std::string(e.what()))}});
}

/// Theoretical operational intensity (Table III "OI_T"): FLOPs per point
/// over one compulsory 8-byte access per touched array.
double theoretical_oi(const ir::StencilInfo& info) {
  return static_cast<double>(info.flops_per_point) /
         (8.0 * std::max(info.num_io_arrays, 1));
}

std::int64_t domain_points(const ir::Program& prog,
                           const ir::StencilInfo& info) {
  ARTEMIS_CHECK(!info.outputs.empty());
  const ir::ArrayDecl* decl = prog.find_array(info.outputs.front());
  ARTEMIS_CHECK(decl != nullptr);
  std::int64_t pts = 1;
  for (const auto& d : decl->dims) pts *= prog.param_value(d);
  return pts;
}

/// Tune one stage list under a strategy; returns the best candidate.
autotune::TuneResult tune_stages(const ir::Program& prog,
                                 const std::vector<ir::BoundStencil>& stages,
                                 const gpumodel::DeviceSpec& dev,
                                 const gpumodel::ModelParams& params,
                                 const Strategy& strategy, bool use_shmem,
                                 std::vector<std::string>* hints,
                                 const std::string& scope_suffix = "") {
  telemetry::Span span("driver.tune_stages", "pipeline");
  std::vector<std::string> names;
  for (const auto& s : stages) names.push_back(s.name);
  const std::string label =
      str_cat(join(names, "+"), use_shmem ? "/shm" : "/gbl",
              scope_suffix.empty() ? "" : "/", scope_suffix);
  if (telemetry::enabled()) {
    span.arg("stages", Json(join(names, "+")));
    span.arg("shared_memory", Json(use_shmem));
  }
  const BuildOptions opts{.use_shared_memory = use_shmem,
                          .fuse_internal = true};
  const autotune::PlanFactory factory =
      [&prog, stages, &dev, opts](const KernelConfig& cfg) {
        return codegen::build_plan(prog, stages, cfg, dev, opts);
      };

  KernelConfig seed =
      codegen::config_from_pragma(prog, stages.front().pragma,
                                  static_cast<int>(prog.iterators.size()));
  if (!strategy.allow_streaming ||
      (!use_shmem && seed.tiling == TilingScheme::StreamSerial &&
       strategy.name == "global")) {
    seed.tiling = TilingScheme::Spatial3D;
  }
  if (strategy.name == "global-stream" && prog.iterators.size() >= 2) {
    seed.tiling = TilingScheme::StreamSerial;
    seed.stream_axis = static_cast<int>(prog.iterators.size()) - 1;
  }
  seed.retime = strategy.allow_retime;
  seed.fold = strategy.allow_fold;

  autotune::TuneOptions topts = strategy.tune;
  // Scope the journal/quarantine keys to this stage list + memory
  // version (+ caller-provided suffix, e.g. the fusion degree), so the
  // same knob vector tuned in different contexts never collides.
  if (topts.journal != nullptr) topts.journal_scope = label;

  // Profile the pragma-derived baseline to prune the search (Section IV-A
  // / Section VII step 2).
  if (strategy.profile_guided) {
    const telemetry::Span span("driver.baseline_profile", "pipeline");
    try {
      const KernelPlan baseline = factory(seed);
      const auto report = profile::profile_plan(baseline, dev, params);
      const auto h = profile::derive_hints(report, /*iterative=*/false,
                                           use_shmem);
      if (h.disable_unroll) topts.disable_unroll = true;
      if (hints) {
        hints->insert(hints->end(), h.text.begin(), h.text.end());
      }
      topts.theoretically_bandwidth_bound =
          theoretical_oi(baseline.info) < dev.balance_dram();
    } catch (const robust::EvalError& e) {
      // The baseline measurement failed transiently; tune unguided.
      record_dropped("baseline_profile", label, e);
    } catch (const PlanError& e) {
      // Baseline infeasible; the tuner will search from scratch.
      record_dropped("baseline_profile", label, e);
    }
  }

  return autotune::hierarchical_tune(factory, seed, dev, params, topts);
}

/// Assemble a result from kernels, applying the strategy's multiplier and
/// launch overhead.
void finalize(ProgramResult& result, const gpumodel::ModelParams& params,
              const Strategy& strategy) {
  result.strategy = strategy.name;
  // Deduplicate hints (multiple kernels can trigger the same guideline).
  {
    std::vector<std::string> unique;
    for (auto& h : result.hints) {
      if (std::find(unique.begin(), unique.end(), h) == unique.end()) {
        unique.push_back(std::move(h));
      }
    }
    result.hints = std::move(unique);
  }
  result.time_s = 0;
  result.kernel_launches = 0;
  for (const auto& k : result.kernels) {
    result.time_s += k.time_s();
    result.kernel_launches += k.invocations;
  }
  result.time_s *= strategy.time_multiplier;
  result.time_s +=
      params.launch_overhead_s * static_cast<double>(result.kernel_launches);
  result.tflops = result.time_s > 0
                      ? static_cast<double>(result.useful_flops) /
                            result.time_s / 1e12
                      : 0.0;
}

/// Iterative programs: deep tuning + the opt(T) schedule (Section VI-A).
ProgramResult optimize_iterative(const ir::Program& prog,
                                 const ir::Step& iterate_step,
                                 const gpumodel::DeviceSpec& dev,
                                 const gpumodel::ModelParams& params,
                                 const Strategy& strategy) {
  ProgramResult result;

  autotune::DeepTuneOptions dopts;
  dopts.max_time_tile = strategy.allow_time_fusion ? strategy.max_time_tile : 1;
  dopts.tune = strategy.tune;

  // Restrict the deep tuner's plan space to the strategy.
  // (The deep tuner seeds serial streaming; global-only strategies flip.)
  autotune::DeepTuneResult deep;
  {
    // We re-implement the deep loop here so the strategy's BuildOptions
    // apply (deep_tune's factory uses defaults).
    bool past_cusp = false;
    for (int x = 1; x <= dopts.max_time_tile; ++x) {
      telemetry::Span span("driver.deep_tune", "pipeline");
      span.arg("time_tile", Json(x));
      const transform::TimeTiledKernel tt =
          transform::time_tile_iterate(prog, iterate_step, x);
      std::vector<std::string> hints;
      autotune::DeepTuneEntry entry;
      entry.time_tile = x;
      try {
        entry.tuned = tune_stages(tt.augmented, tt.stages, dev, params,
                                  strategy, strategy.use_shared_memory,
                                  &hints, str_cat("x", x));
      } catch (const PlanError& e) {
        // Resource constraints leave no feasible configuration at this
        // fusion degree; deeper fusion cannot become feasible again.
        record_dropped("deep_tune", str_cat("x", x), e);
        break;
      }
      entry.time_s = entry.tuned.best.time_s;
      entry.tflops = entry.tuned.best.eval.tflops();
      // Assume bandwidth-bound (keep fusing) if the profile itself fails
      // transiently; the per-step DP still sees the tuned timings.
      bool still_bw = true;
      try {
        const BuildOptions opts{.use_shared_memory =
                                    strategy.use_shared_memory,
                                .fuse_internal = true};
        const KernelPlan best_plan = codegen::build_plan(
            tt.augmented, tt.stages, entry.tuned.best.config, dev, opts);
        entry.report = profile::profile_plan(best_plan, dev, params);
        still_bw = entry.report.bandwidth_bound_anywhere();
      } catch (const robust::EvalError& e) {
        record_dropped("deep_profile", str_cat("x", x), e);
      }
      deep.entries.push_back(std::move(entry));
      if (x == 1) result.hints = hints;
      if (!still_bw) {
        if (past_cusp || dopts.max_time_tile == 1) break;
        past_cusp = true;
      }
    }
    double best_per_step = std::numeric_limits<double>::infinity();
    deep.tipping_point = 1;
    for (const auto& e : deep.entries) {
      const double per_step = e.time_s / e.time_tile;
      if (per_step < best_per_step) {
        best_per_step = per_step;
        deep.tipping_point = e.time_tile;
      }
    }
  }

  const int T = static_cast<int>(iterate_step.iterations);
  {
    telemetry::Span span("driver.fusion_dp", "pipeline");
    span.arg("iterations", Json(T));
    result.fusion_schedule = autotune::fusion_schedule(deep, T);
  }

  // Group the schedule into kernels.
  std::map<int, int> tile_counts;
  for (const int x : result.fusion_schedule) ++tile_counts[x];
  for (const auto& [x, count] : tile_counts) {
    const autotune::DeepTuneEntry* entry = nullptr;
    for (const auto& e : deep.entries) {
      if (e.time_tile == x) entry = &e;
    }
    ARTEMIS_CHECK(entry != nullptr);
    KernelChoice kc;
    kc.name = str_cat("fused_x", x);
    kc.config = entry->tuned.best.config;
    kc.config.time_tile = x;  // record the fusion degree in the config
    kc.eval = entry->tuned.best.eval;
    kc.invocations = count;
    kc.leaderboard = entry->tuned.leaderboard;
    result.kernels.push_back(std::move(kc));
  }

  // Useful FLOPs: T applications of the iterate body.
  std::int64_t per_step_flops = 0;
  {
    const telemetry::Span span("driver.analysis", "pipeline");
    for (const auto& step : iterate_step.body) {
      if (step.kind != ir::Step::Kind::Call) continue;
      const auto info = ir::analyze(prog, ir::bind_call(prog, step.call));
      per_step_flops += info.flops_per_point * domain_points(prog, info);
    }
  }
  result.useful_flops = per_step_flops * T;
  result.deep_tuning = std::move(deep);
  finalize(result, params, strategy);
  return result;
}

/// Spatial programs: per-call (or fused) kernels, profile-guided version
/// selection, fission candidates under register pressure.
ProgramResult optimize_spatial(const ir::Program& prog,
                               const gpumodel::DeviceSpec& dev,
                               const gpumodel::ModelParams& params,
                               const Strategy& strategy, bool allow_fission);

/// Pick the better of the shared-memory and global versions of one stage
/// list, following the Section IV-A guidelines.
KernelChoice choose_version(const ir::Program& prog,
                            const std::vector<ir::BoundStencil>& stages,
                            const gpumodel::DeviceSpec& dev,
                            const gpumodel::ModelParams& params,
                            const Strategy& strategy,
                            std::vector<std::string>* hints) {
  KernelChoice kc;
  std::vector<std::string> names;
  for (const auto& s : stages) names.push_back(s.name);
  kc.name = join(names, "+");

  if (!strategy.use_shared_memory) {
    auto tuned =
        tune_stages(prog, stages, dev, params, strategy, false, hints);
    kc.config = tuned.best.config;
    kc.eval = tuned.best.eval;
    kc.leaderboard = std::move(tuned.leaderboard);
    return kc;
  }

  autotune::TuneResult shm;
  try {
    shm = tune_stages(prog, stages, dev, params, strategy, true, hints);
  } catch (const PlanError& e) {
    // No feasible shared-memory mapping at any block shape (e.g. too many
    // staged arrays at this order): fall back to the global version.
    record_dropped("choose_version", str_cat(kc.name, "/shm"), e);
    if (hints) {
      hints->push_back(
          "no feasible shared-memory mapping: tuning the global version");
    }
    auto gbl =
        tune_stages(prog, stages, dev, params, strategy, false, hints);
    kc.config = gbl.best.config;
    kc.eval = gbl.best.eval;
    kc.leaderboard = std::move(gbl.leaderboard);
    return kc;
  }
  kc.config = shm.best.config;
  kc.eval = shm.best.eval;
  kc.leaderboard = shm.leaderboard;

  if (strategy.profile_guided) {
    try {
      const BuildOptions opts{.use_shared_memory = true,
                              .fuse_internal = true};
      const KernelPlan plan =
          codegen::build_plan(prog, stages, shm.best.config, dev, opts);
      const auto report = profile::profile_plan(plan, dev, params);
      const auto h =
          profile::derive_hints(report, /*iterative=*/false, true);
      if (hints) hints->insert(hints->end(), h.text.begin(), h.text.end());
      // ARTEMIS always materializes the global version as well (it is one
      // of the versions it emits, Section VIII-F); when the shared-memory
      // winner is still bandwidth-bound at DRAM — or merely slower — the
      // global version is kept instead.
      if (h.prefer_global_version || report.bandwidth_bound_anywhere()) {
        auto gbl =
            tune_stages(prog, stages, dev, params, strategy, false, nullptr);
        if (gbl.best.time_s < kc.eval.time_s) {
          kc.config = gbl.best.config;
          kc.eval = gbl.best.eval;
          kc.leaderboard = std::move(gbl.leaderboard);
          if (hints) {
            hints->push_back(
                "tuned global-memory version outperformed the shared-memory "
                "version; keeping it");
          }
        }
      }
    } catch (const robust::EvalError& e) {
      // The comparison profile failed transiently: keep the tuned
      // shared-memory winner instead of aborting the whole program.
      record_dropped("version_select", kc.name, e);
    }
  }
  return kc;
}

ProgramResult optimize_spatial(const ir::Program& prog,
                               const gpumodel::DeviceSpec& dev,
                               const gpumodel::ModelParams& params,
                               const Strategy& strategy, bool allow_fission) {
  ProgramResult result;

  // Bind each call; groups are contiguous runs of the (topologically
  // ordered) call chain.
  std::vector<ir::BoundStencil> bound;
  {
    int idx = 0;
    for (const auto& step : prog.steps) {
      ARTEMIS_CHECK_MSG(step.kind == ir::Step::Kind::Call,
                        "spatial path expects a flat call list");
      bound.push_back(ir::bind_call(prog, step.call,
                                    str_cat("f", idx++, "_")));
    }
  }
  const int n = static_cast<int>(bound.size());

  auto group_stages = [&](int i, int j) {
    return std::vector<ir::BoundStencil>(bound.begin() + i,
                                         bound.begin() + j + 1);
  };

  if (!strategy.allow_dag_fusion || n == 1) {
    for (int i = 0; i < n; ++i) {
      result.kernels.push_back(choose_version(prog, group_stages(i, i), dev,
                                              params, strategy,
                                              &result.hints));
    }
  } else if (!strategy.partition_dag) {
    // Maxfuse-only (STENCILGEN): one kernel for the whole chain.
    result.kernels.push_back(choose_version(prog, group_stages(0, n - 1),
                                            dev, params, strategy,
                                            &result.hints));
  } else {
    // Fusion-partition search (Section VI-B): tune every contiguous group
    // [i..j], then solve best[j] = min_i cost(i,j) + best[i-1]. The chain
    // order is a topological order, so contiguous groups are always legal
    // fusion forests.
    telemetry::Span span("driver.fusion_dp", "pipeline");
    span.arg("chain_length", Json(n));
    std::vector<std::vector<std::optional<KernelChoice>>> cost(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      cost[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(n));
      for (int j = i; j < n; ++j) {
        try {
          cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              choose_version(prog, group_stages(i, j), dev, params, strategy,
                             i == 0 && j == 0 ? &result.hints : nullptr);
        } catch (const PlanError& e) {
          // No feasible version for this group in any memory space.
          record_dropped("fusion_partition", str_cat(i, "..", j), e);
        }
      }
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> best(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<int> cut(static_cast<std::size_t>(n) + 1, -1);
    best[0] = 0.0;
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i <= j; ++i) {
        const auto& c =
            cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (!c) continue;
        const double t = best[static_cast<std::size_t>(i)] +
                         c->eval.time_s + params.launch_overhead_s;
        if (t < best[static_cast<std::size_t>(j) + 1]) {
          best[static_cast<std::size_t>(j) + 1] = t;
          cut[static_cast<std::size_t>(j) + 1] = i;
        }
      }
    }
    ARTEMIS_CHECK_MSG(std::isfinite(best[static_cast<std::size_t>(n)]),
                      "no feasible fusion partition");
    std::vector<std::pair<int, int>> groups;
    for (int j = n; j > 0; j = cut[static_cast<std::size_t>(j)]) {
      groups.emplace_back(cut[static_cast<std::size_t>(j)], j - 1);
    }
    std::reverse(groups.begin(), groups.end());
    for (const auto& [i, j] : groups) {
      result.kernels.push_back(
          *cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    if (groups.size() > 1 && n > 1) {
      result.hints.push_back(str_cat(
          "fusion-partition search chose ", groups.size(),
          " kernel(s) over the ", n, "-call chain"));
    }
  }

  {
    const telemetry::Span span("driver.analysis", "pipeline");
    for (const auto& step : prog.steps) {
      const auto info = ir::analyze(prog, ir::bind_call(prog, step.call));
      result.useful_flops += info.flops_per_point * domain_points(prog, info);
    }
  }
  finalize(result, params, strategy);

  // Register-pressure-driven fission (Section VI-B): when the chosen
  // kernel spills or is register-capped, emit fission candidates,
  // optimize each, and keep the best schedule.
  if (allow_fission && strategy.allow_fission && prog.steps.size() == 1) {
    const auto& call = prog.steps[0].call;
    // Register-pressure verdict straight from the chosen kernel's
    // evaluation: spills, or register-capped low occupancy.
    const auto& ev = result.kernels[0].eval;
    const bool pressure =
        ev.regs.spilled(result.kernels[0].config.max_registers) > 0 ||
        (ev.occupancy.limiter == gpumodel::Occupancy::Limiter::Registers &&
         ev.occupancy.fraction <= 0.25);
    if (pressure) {
      const telemetry::Span span("driver.fission", "pipeline");
      result.hints.push_back(
          "register pressure on the fused kernel: generating fission "
          "candidates (trivial, recompute)");
      std::vector<ir::Program> candidates;
      candidates.push_back(transform::trivial_fission(prog, call.callee));
      candidates.push_back(transform::recompute_fission(
          prog, call.callee, dev, strategy.tune.register_budgets.back()));
      for (auto& cand : candidates) {
        result.candidate_dsl.push_back(dsl::print_program(cand));
        Strategy sub = strategy;
        sub.allow_dag_fusion = false;  // fissioned kernels stay separate
        ProgramResult sub_result =
            optimize_spatial(cand, dev, params, sub, /*allow_fission=*/false);
        if (sub_result.time_s < result.time_s) {
          sub_result.hints = result.hints;
          sub_result.hints.push_back(
              "kernel fission outperformed the fused version");
          sub_result.candidate_dsl = result.candidate_dsl;
          sub_result.useful_flops = result.useful_flops;
          finalize(sub_result, params, strategy);
          result = std::move(sub_result);
        }
      }
    }
  }
  return result;
}

}  // namespace

Strategy artemis_strategy() { return Strategy{}; }

Strategy ppcg_strategy() {
  Strategy s;
  s.name = "ppcg";
  s.use_shared_memory = true;   // naive all-arrays staging
  s.allow_streaming = false;    // no spatial/temporal streaming
  s.allow_time_fusion = true;   // time tiling, but shallow
  s.max_time_tile = 2;
  s.allow_dag_fusion = false;   // poor fusion choices: one kernel per call
  s.allow_fission = false;
  s.allow_retime = false;
  s.allow_fold = false;
  s.profile_guided = false;
  s.tune.max_unroll_bandwidth = 4;
  s.tune.explore_tiling = false;  // no streaming in the search space
  s.tune.tune_prefetch = false;
  s.tune.tune_perspective = false;
  s.tune.tune_concurrent_streaming = false;
  s.time_multiplier = 1.35;  // complex generated conditionals (VIII-F)
  return s;
}

Strategy stencilgen_strategy() {
  Strategy s;
  s.name = "stencilgen";
  s.partition_dag = false;  // fuses maximally, no partition search
  s.use_shared_memory = true;
  s.allow_streaming = true;    // automates streaming (VIII-F)
  s.allow_time_fusion = true;  // time tiling with associative reordering
  s.allow_dag_fusion = true;   // fusion for multi-statement stencils
  s.allow_fission = false;
  s.allow_retime = true;       // retiming (if massaged; we grant it)
  s.allow_fold = false;
  s.profile_guided = false;
  s.reject_mixed_dims = true;  // no mixed-dimensionality domains
  s.tune.disable_unroll = true;        // no unrolling
  s.tune.tune_prefetch = false;        // no prefetching
  s.tune.tune_perspective = false;     // no load/compute adjustment
  s.tune.tune_concurrent_streaming = false;
  return s;
}

Strategy halide_auto_strategy() {
  Strategy s;
  s.name = "halide-auto";
  s.use_shared_memory = true;
  s.allow_streaming = false;    // GPU schedules tile, they do not stream
  s.allow_time_fusion = true;   // sliding-window fusion, kept shallow
  s.max_time_tile = 2;
  s.allow_dag_fusion = true;
  s.partition_dag = false;      // greedy maximal fusion
  s.allow_fission = false;
  s.allow_retime = false;
  s.allow_fold = false;
  s.profile_guided = false;     // heuristics only, no counter feedback
  s.tune.explore_tiling = false;
  s.tune.tune_prefetch = false;
  s.tune.tune_perspective = false;
  s.tune.tune_concurrent_streaming = false;
  // The autoscheduler does not tune maxrregcount; nvcc's own allocation
  // (up to the 255 ceiling) applies, so very large kernels still spill
  // and there is no fission to relieve them.
  s.tune.register_budgets = {255};
  return s;
}

Strategy global_strategy(bool streaming) {
  Strategy s;
  s.name = streaming ? "global-stream" : "global";
  s.use_shared_memory = false;
  s.tune.explore_tiling = false;  // the ablation pins its tiling scheme
  s.allow_streaming = streaming;
  s.allow_time_fusion = false;  // plain per-step execution
  s.allow_dag_fusion = false;
  s.allow_fission = false;
  s.allow_retime = false;
  s.allow_fold = false;
  s.profile_guided = false;
  s.tune.tune_prefetch = false;
  s.tune.tune_concurrent_streaming = false;
  s.tune.tune_perspective = false;
  return s;
}

ProgramResult optimize_program(const ir::Program& prog,
                               const gpumodel::DeviceSpec& dev,
                               const gpumodel::ModelParams& params,
                               const Strategy& strategy) {
  telemetry::Span span("driver.optimize", "pipeline");
  span.arg("strategy", Json(strategy.name));
  span.arg("device", Json(dev.name));
  if (strategy.reject_mixed_dims) {
    for (const auto& a : prog.arrays) {
      if (a.dims.size() < prog.iterators.size()) {
        throw Error(str_cat(
            strategy.name, ": cannot generate code for '", a.name,
            "': domains with different dimensions within the same stencil "
            "function are not supported"));
      }
    }
  }

  // Iterative programs: a single iterate step.
  if (prog.steps.size() == 1 &&
      prog.steps[0].kind == ir::Step::Kind::Iterate) {
    return optimize_iterative(prog, prog.steps[0], dev, params, strategy);
  }
  for (const auto& step : prog.steps) {
    ARTEMIS_CHECK_MSG(step.kind == ir::Step::Kind::Call,
                      "programs must be a flat call list or one iterate "
                      "block");
  }
  return optimize_spatial(prog, dev, params, strategy,
                          strategy.allow_fission);
}

}  // namespace artemis::driver
