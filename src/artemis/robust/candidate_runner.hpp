#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/robust/errors.hpp"

namespace artemis::robust {

/// Retry / deadline / trial / quarantine policy for candidate evaluation.
/// The defaults are the zero-cost configuration: one attempt-set of one
/// trial, no deadline, no backoff — with fault injection off, run() is a
/// single try/catch around the evaluation, byte-for-byte the behavior the
/// tuner had before the resilience layer existed.
struct RunnerOptions {
  /// Evaluation attempts per candidate before giving up (1 = no retry).
  int max_attempts = 3;
  /// Timing trials per attempt; the median is kept. 1 = trust one trial.
  int trials = 1;
  /// Relative median-absolute-deviation above which an attempt's trials
  /// are rejected as MeasurementUnstable (and the attempt retried).
  double mad_tolerance = 0.2;
  /// Wall-clock deadline per attempt, in milliseconds. 0 disables the
  /// check; when fault injection is stalling evaluations and no explicit
  /// deadline is set, half the injected stall time is used so stalls are
  /// always classified as timeouts.
  double deadline_ms = 0;
  /// Backoff slept between attempts: backoff_ms * 2^attempt. 0 = none.
  double backoff_ms = 0;
  /// Consecutive failed attempts (across run() calls) after which a
  /// candidate key is quarantined and never evaluated again.
  int quarantine_threshold = 3;
};

/// Why one run() call ended the way it did.
enum class RunStatus {
  Ok,           ///< eval holds a valid measurement
  Infeasible,   ///< PlanError: the configuration can never run
  Crash,        ///< attempts exhausted on EvalCrash
  Timeout,      ///< attempts exhausted on wall-clock deadline
  Unstable,     ///< attempts exhausted on trial dispersion
  Quarantined,  ///< key was quarantined; evaluation skipped
};
const char* run_status_name(RunStatus s);

/// Everything one evaluation produced, success or not.
struct RunOutcome {
  RunStatus status = RunStatus::Ok;
  gpumodel::KernelEval eval;  ///< valid only when status == Ok
  double time_s = 0;          ///< median measured time (Ok only)
  int attempts = 0;           ///< attempts consumed by this call
  int retries = 0;            ///< attempts beyond the first
  bool quarantined_now = false;  ///< this call pushed the key into quarantine
  std::string reason;         ///< last failure message (non-Ok)

  bool ok() const { return status == RunStatus::Ok; }
};

/// Runs candidate evaluations with wall-clock deadlines, bounded retries
/// with exponential backoff, repeated timing trials with median/MAD
/// outlier rejection, and per-key quarantine after K consecutive
/// failures. One runner instance spans one tuning search so quarantine
/// state persists across stages. run() may be called concurrently from
/// the tuner's work-stealing shards: the failure/quarantine maps are
/// mutex-protected, and because fault decisions are a pure hash of
/// (seed, site, key, attempt), a key fails the same way on every thread
/// — quarantine membership is independent of evaluation order.
class CandidateRunner {
 public:
  using EvalFn = std::function<gpumodel::KernelEval()>;

  explicit CandidateRunner(const RunnerOptions& opts = {});

  /// Evaluate one candidate identified by `key` (the journal/quarantine
  /// identity, e.g. the serialized config). `site` names the injection
  /// site consulted by the fault harness. Thread-safe.
  RunOutcome run(const char* site, const std::string& key,
                 const EvalFn& eval);

  bool is_quarantined(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return quarantined_.count(key) > 0;
  }
  int quarantined_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(quarantined_.size());
  }

  const RunnerOptions& options() const { return opts_; }

 private:
  /// True when any resilience machinery is live; false selects the
  /// single-attempt fast path.
  bool armed() const;
  double effective_deadline_ms() const;

  RunnerOptions opts_;
  mutable std::mutex mu_;  ///< guards the two maps below
  std::map<std::string, int> consecutive_failures_;
  std::set<std::string> quarantined_;
};

}  // namespace artemis::robust
