#include "artemis/dsl/lexer.hpp"

#include <cctype>

#include "artemis/common/check.hpp"

namespace artemis::dsl {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const char* tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::Ident: return "identifier";
    case TokKind::Integer: return "integer";
    case TokKind::Float: return "float";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::Comma: return "','";
    case TokKind::Semicolon: return "';'";
    case TokKind::Assign: return "'='";
    case TokKind::PlusAssign: return "'+='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Hash: return "'#'";
    case TokKind::End: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto advance = [&](std::size_t count = 1) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  auto push = [&](TokKind kind, std::string text, int tline, int tcol) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tline;
    t.col = tcol;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int sl = line, sc = col;
      advance(2);
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        advance();
      }
      if (i + 1 >= n) throw ParseError("unterminated block comment", sl, sc);
      advance(2);
      continue;
    }
    const int tl = line, tc = col;
    if (is_ident_start(c)) {
      std::string text;
      while (i < n && is_ident_char(source[i])) {
        text.push_back(source[i]);
        advance();
      }
      push(TokKind::Ident, std::move(text), tl, tc);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::string text;
      bool is_float = false;
      while (i < n) {
        const char d = source[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          text.push_back(d);
          advance();
        } else if (d == '.') {
          is_float = true;
          text.push_back(d);
          advance();
        } else if (d == 'e' || d == 'E') {
          is_float = true;
          text.push_back(d);
          advance();
          if (i < n && (source[i] == '+' || source[i] == '-')) {
            text.push_back(source[i]);
            advance();
          }
        } else {
          break;
        }
      }
      Token t;
      t.text = text;
      t.line = tl;
      t.col = tc;
      try {
        if (is_float) {
          t.kind = TokKind::Float;
          t.float_value = std::stod(text);
        } else {
          t.kind = TokKind::Integer;
          t.int_value = std::stoll(text);
          t.float_value = static_cast<double>(t.int_value);
        }
      } catch (const std::exception&) {
        throw ParseError("malformed numeric literal '" + text + "'", tl, tc);
      }
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': push(TokKind::LParen, "(", tl, tc); advance(); break;
      case ')': push(TokKind::RParen, ")", tl, tc); advance(); break;
      case '[': push(TokKind::LBracket, "[", tl, tc); advance(); break;
      case ']': push(TokKind::RBracket, "]", tl, tc); advance(); break;
      case '{': push(TokKind::LBrace, "{", tl, tc); advance(); break;
      case '}': push(TokKind::RBrace, "}", tl, tc); advance(); break;
      case ',': push(TokKind::Comma, ",", tl, tc); advance(); break;
      case ';': push(TokKind::Semicolon, ";", tl, tc); advance(); break;
      case '*': push(TokKind::Star, "*", tl, tc); advance(); break;
      case '/': push(TokKind::Slash, "/", tl, tc); advance(); break;
      case '#': push(TokKind::Hash, "#", tl, tc); advance(); break;
      case '=': push(TokKind::Assign, "=", tl, tc); advance(); break;
      case '+':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokKind::PlusAssign, "+=", tl, tc);
          advance(2);
        } else {
          push(TokKind::Plus, "+", tl, tc);
          advance();
        }
        break;
      case '-':
        push(TokKind::Minus, "-", tl, tc);
        advance();
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", tl,
                         tc);
    }
  }
  Token end;
  end.kind = TokKind::End;
  end.line = line;
  end.col = col;
  out.push_back(end);
  return out;
}

}  // namespace artemis::dsl
