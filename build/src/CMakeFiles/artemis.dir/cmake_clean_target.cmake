file(REMOVE_RECURSE
  "libartemis.a"
)
