#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "artemis/common/check.hpp"
#include "artemis/robust/fault_injection.hpp"

namespace artemis::storage {

/// A filesystem operation failed. `code()` distinguishes the conditions a
/// durable store must handle differently: plain I/O errors (retryable or
/// not, the data may be torn), a full disk (the write is torn for sure),
/// and a missing path.
class VfsError : public Error {
 public:
  enum class Code { Io, NoSpace, NotFound };
  VfsError(Code code, const std::string& what) : Error(what), code_(code) {}
  Code code() const { return code_; }

 private:
  Code code_;
};

/// Thrown by FaultVfs once its injected crash point is reached: the
/// simulated machine is dead and every subsequent filesystem operation —
/// read or write — fails with this. Callers must NOT catch-and-continue
/// past it (a real crash would not have); the crash-consistency harness
/// catches it at the top of the simulated process only.
class FsCrash : public Error {
 public:
  using Error::Error;
};

/// An open writable file. write() either transfers every byte or throws
/// (a short transfer surfaces as VfsError with the prefix already on
/// disk — exactly the torn-write failure mode durable formats must
/// tolerate). sync() is fsync: after it returns, everything written so
/// far survives a crash. close() is idempotent; the destructor closes
/// without syncing, like a process exit.
class VfsFile {
 public:
  virtual ~VfsFile() = default;
  virtual void write(const std::string& data) = 0;
  virtual void sync() = 0;
  virtual void close() = 0;
};

/// A held advisory lock; released on destruction. See Vfs::try_lock.
class VfsLock {
 public:
  virtual ~VfsLock() = default;
};

/// The filesystem abstraction every durable artifact (plan store, tuning
/// cache, tuning journal) writes through. Narrow by design: just the
/// operations the write-ahead / write-temp-publish protocols need, each
/// with explicit durability semantics, so a fault-injecting or in-memory
/// implementation can stand in for the real thing in tests and the
/// crash-consistency harness.
class Vfs {
 public:
  virtual ~Vfs() = default;

  // --- reads ----------------------------------------------------------------

  virtual bool exists(const std::string& path) = 0;
  /// Whole-file read. nullopt = no such file; VfsError on any other
  /// failure (so "missing" and "unreadable" can never be conflated).
  virtual std::optional<std::string> read(const std::string& path) = 0;
  /// Names (not paths) of entries directly under `dir`, sorted. An absent
  /// directory lists as empty.
  virtual std::vector<std::string> list(const std::string& dir) = 0;

  // --- mutations ------------------------------------------------------------

  /// Open for writing: truncate-or-create when `truncate`, append-or-create
  /// otherwise.
  virtual std::unique_ptr<VfsFile> create(const std::string& path,
                                          bool truncate) = 0;
  virtual void mkdirs(const std::string& path) = 0;
  /// Atomic replace (POSIX rename): readers see the old file or the new
  /// one, never a mixture. The publish step of every durable write.
  virtual void rename(const std::string& from, const std::string& to) = 0;
  /// Returns false if the path did not exist; throws on real failure.
  virtual bool remove(const std::string& path) = 0;
  /// fsync the directory itself, making previously renamed/created entries
  /// durable. No-op on filesystems that do not support it.
  virtual void sync_dir(const std::string& path) = 0;

  // --- locking --------------------------------------------------------------

  /// Try to acquire the advisory whole-store lock at `path` (creating the
  /// lock file if needed). Returns nullptr when another *live* process
  /// holds it. On success the holder's tag is written into the file; a
  /// clean release truncates it back to empty. A non-empty lock file at
  /// acquisition therefore proves the previous holder died while holding
  /// the lock — that is reported through `stale_reclaimed` so stores can
  /// count reclaimed stale locks.
  virtual std::unique_ptr<VfsLock> try_lock(const std::string& path,
                                            bool* stale_reclaimed) = 0;

  /// Identity written into lock files and used to make temp names unique
  /// per process ("pid:1234").
  virtual std::string process_tag() const = 0;

  /// Is the process a tag names still alive? Recovery sweeps use this to
  /// distinguish a dead writer's orphan temp (reclaimable) from a live
  /// concurrent writer's in-flight temp (must not be touched — deleting
  /// it would fail that writer's commit rename). The default is
  /// deliberately conservative: a tag this Vfs cannot interpret is
  /// treated as alive, so at worst an orphan lingers until its owner's
  /// pid can be ruled dead — never the reverse.
  virtual bool tag_alive(const std::string& tag) {
    (void)tag;
    return true;
  }
};

/// The process-global real (POSIX) filesystem.
Vfs& real_vfs();

/// Directory part of a path ("a/b/c" -> "a/b", "c" -> ".").
std::string dirname(const std::string& path);

/// The durable-write protocol in one call: write `content` to a unique
/// sibling temp file, fsync it, atomically rename it over `path`, and
/// fsync the parent directory. After this returns, a crash at any instant
/// leaves either the complete old file or the complete new one. Throws
/// VfsError on failure (the temp file is cleaned up best-effort; `path`
/// is untouched).
void atomic_write_file(Vfs& vfs, const std::string& path,
                       const std::string& content);

// ---------------------------------------------------------------------------
// MemVfs — in-memory filesystem with crash semantics and an op trace
// ---------------------------------------------------------------------------

/// One recorded mutation, replayable by MemVfs::apply.
struct VfsOp {
  enum class Kind { Create, Write, Sync, Rename, Remove, Mkdir, SyncDir };
  Kind kind = Kind::Write;
  std::string path;
  std::string path2;  ///< Rename target
  std::string data;   ///< Write payload
  bool truncate = false;  ///< Create mode
};

const char* vfs_op_name(VfsOp::Kind k);

/// In-memory Vfs with explicit durability semantics, the substrate of the
/// crash-consistency harness:
///
///  - file *data* written through a VfsFile is volatile until sync();
///  - *namespace* operations (create/rename/remove/mkdir) apply in order
///    and survive a crash (the ext4 ordered-journal model; sync_dir is
///    kept in the protocol but is a no-op here);
///  - crash(variant) drops volatile state: each file keeps its synced
///    content plus a deterministic, variant-seeded prefix of its unsynced
///    tail — "the page cache wrote back what it pleased". Variant 0
///    models strictly-nothing-written-back, variant 1 models
///    everything-made-it, higher variants mix per file. Held locks are
///    dropped (the kernel releases them with the process) but lock-file
///    contents survive, which is what makes stale-lock detection testable.
///
/// Every successful mutation is appended to trace() (when recording is
/// on), so a workload can be replayed prefix-by-prefix via replay_prefix.
/// All operations are thread-safe behind one mutex.
class MemVfs : public Vfs {
 public:
  MemVfs() = default;

  bool exists(const std::string& path) override;
  std::optional<std::string> read(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  std::unique_ptr<VfsFile> create(const std::string& path,
                                  bool truncate) override;
  void mkdirs(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) override;
  void sync_dir(const std::string& path) override;
  std::unique_ptr<VfsLock> try_lock(const std::string& path,
                                    bool* stale_reclaimed) override;
  std::string process_tag() const override { return tag_; }
  bool tag_alive(const std::string& tag) override;

  /// Change the simulated process identity (for multi-process tests: two
  /// "processes" are two tags sharing one MemVfs). The new tag joins the
  /// live set; previous tags stay alive until mark_tag_dead.
  void set_process_tag(std::string tag);

  /// Simulate one tagged process dying (without machine loss): its tag
  /// stops answering alive and its held locks are released by the
  /// "kernel", lock-file contents left in place — exactly what a real
  /// SIGKILL leaves behind.
  void mark_tag_dead(const std::string& tag);

  void set_record_trace(bool on) { record_ = on; }
  std::vector<VfsOp> trace() const;
  void clear_trace();

  /// Replay one recorded mutation (never traced itself).
  void apply(const VfsOp& op);

  /// Simulate power loss; see the class comment.
  void crash(std::uint64_t variant);

  /// Direct durable-state pokes for tests: overwrite a file as fully
  /// synced content (bypasses the trace).
  void install_file(const std::string& path, const std::string& content);

 private:
  struct File {
    std::string data;         ///< current (volatile) content
    std::size_t synced = 0;   ///< prefix length guaranteed durable
  };

  friend class MemVfsFile;

  void do_write(const std::string& path, const std::string& data);
  void do_sync(const std::string& path);
  void do_create(const std::string& path, bool truncate);
  void record(VfsOp op);
  File* find(const std::string& path);

  mutable std::mutex mu_;
  std::map<std::string, File> files_;
  std::set<std::string> dirs_{"."};
  std::map<std::string, std::string> held_locks_;  ///< path -> holder tag
  std::vector<VfsOp> trace_;
  bool record_ = false;
  std::string tag_ = "pid:mem";
  std::set<std::string> live_tags_{"pid:mem"};
};

/// Rebuild the filesystem state a crash at operation `k` of `trace` could
/// leave behind: a fresh MemVfs with ops [0, k) applied, then
/// crash(variant). Every (k, variant) pair is deterministic.
std::unique_ptr<MemVfs> replay_prefix(const std::vector<VfsOp>& trace,
                                      std::size_t k, std::uint64_t variant);

// ---------------------------------------------------------------------------
// FaultVfs — deterministic filesystem fault injection
// ---------------------------------------------------------------------------

/// Running totals of injected filesystem faults.
struct FsFaultCounters {
  std::atomic<std::uint64_t> failures{0};      ///< injected EIO
  std::atomic<std::uint64_t> enospc{0};        ///< injected ENOSPC
  std::atomic<std::uint64_t> short_writes{0};  ///< injected torn writes
  std::atomic<std::uint64_t> crashed{0};       ///< crash point reached
};

/// Wraps any Vfs and injects faults according to the `fs.*` keys of the
/// PR-2 fault-spec grammar (docs/ROBUSTNESS.md):
///
///   fs.fail=P      any mutating op (or read) throws VfsError(Io)
///   fs.enospc=P    a write throws VfsError(NoSpace), prefix already on disk
///   fs.short=P     a write transfers a strict prefix, then throws Io
///   fs.crash_at=K  the K-th mutating op (0-based) and everything after it
///                  throws FsCrash — the simulated machine is dead
///
/// Decisions reuse the deterministic (seed, site, key, attempt) hash of
/// the eval fault points, with site = "fs.<op>", key = path and attempt =
/// the mutating-op index, and honor the spec's `site=` substring filter —
/// so the same spec tears the same write in every run.
class FaultVfs : public Vfs {
 public:
  FaultVfs(Vfs& base, robust::FaultSpec spec)
      : base_(base), spec_(std::move(spec)) {}

  bool exists(const std::string& path) override;
  std::optional<std::string> read(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  std::unique_ptr<VfsFile> create(const std::string& path,
                                  bool truncate) override;
  void mkdirs(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) override;
  void sync_dir(const std::string& path) override;
  std::unique_ptr<VfsLock> try_lock(const std::string& path,
                                    bool* stale_reclaimed) override;
  std::string process_tag() const override { return base_.process_tag(); }
  bool tag_alive(const std::string& tag) override;

  const FsFaultCounters& counters() const { return counters_; }
  /// Mutating ops seen so far (the fs.crash_at coordinate).
  std::uint64_t op_count() const { return ops_.load(); }
  bool crashed() const { return crashed_.load(); }
  /// Reset the crash flag and op counter ("reboot" after FsCrash) so one
  /// FaultVfs can drive repeated crash/recover cycles.
  void reboot();

 private:
  friend class FaultVfsFile;

  /// Bump the mutating-op counter, honor the crash point, and decide
  /// whether this op fails. Throws FsCrash / VfsError accordingly;
  /// returns the op index for write-tear decisions.
  std::uint64_t mutating_op(const char* site, const std::string& path);
  void check_crashed() const;
  bool decide(const char* site, const std::string& path, std::uint64_t op,
              double p, std::uint64_t lane) const;

  Vfs& base_;
  robust::FaultSpec spec_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<bool> crashed_{false};
  FsFaultCounters counters_;
};

}  // namespace artemis::storage
