// Reproduces Section VIII-D: exploring fission candidates for rhs4sgcurv.
//
// The monolithic (maxfuse) kernel spills registers even at the 255-register
// ceiling; ARTEMIS' trivial fission splits it into three spill-free
// sub-kernels that significantly outperform the fused version
// (paper: 1.048 TFLOPS vs 0.48 TFLOPS).

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/transform/fission.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;
  const auto prog = stencils::benchmark_program("rhs4sgcurv");

  driver::Strategy no_fission = driver::artemis_strategy();
  no_fission.allow_fission = false;
  no_fission.name = "maxfuse";

  const auto maxfuse =
      driver::optimize_program(prog, dev, params, no_fission);

  const auto trivial_prog = transform::trivial_fission(prog, "rhs4sgcurv");
  driver::Strategy sub = driver::artemis_strategy();
  sub.allow_dag_fusion = false;
  sub.allow_fission = false;
  sub.name = "trivial-fission";
  const auto trivial =
      driver::optimize_program(trivial_prog, dev, params, sub);

  const auto recompute_prog =
      transform::recompute_fission(prog, "rhs4sgcurv", dev, 255);
  sub.name = "recompute-fission";
  const auto recompute =
      driver::optimize_program(recompute_prog, dev, params, sub);

  const auto full = driver::optimize_program(prog, dev, params);

  TablePrinter table(
      {"version", "kernels", "TFLOPS", "spilled regs", "time (ms)"});
  auto add = [&](const char* name, const driver::ProgramResult& r) {
    int spilled = 0;
    for (const auto& k : r.kernels) {
      spilled += k.eval.regs.spilled(k.config.max_registers);
    }
    table.add_row({name, std::to_string(r.kernels.size()),
                   format_double(r.tflops, 4), std::to_string(spilled),
                   format_double(r.time_s * 1e3, 4)});
  };
  add("maxfuse (monolithic)", maxfuse);
  add("trivial-fission", trivial);
  add("recompute-fission", recompute);
  add("ARTEMIS end-to-end", full);

  std::printf("Section VIII-D: fission candidates for rhs4sgcurv\n\n%s\n",
              table.to_string().c_str());
  std::printf("speedup of trivial-fission over maxfuse: %.2fx "
              "(paper: 1.048/0.48 = 2.18x)\n",
              trivial.tflops / maxfuse.tflops);
  std::printf("\nGenerated trivial-fission DSL (Fig. 3c analogue), kernel "
              "signatures:\n");
  for (const auto& def : trivial_prog.stencils) {
    std::string args;
    for (const auto& p : def.params) args += " " + p;
    std::printf("  stencil %s (%s )\n", def.name.c_str(), args.c_str());
  }
  return 0;
}
