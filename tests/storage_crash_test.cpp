// Crash-consistency sweeps (mini-ALICE): record the full VFS operation
// trace of a storage workload, then for EVERY k-operation prefix and
// every writeback variant, rebuild the filesystem a power cut at that
// instant could leave behind and assert the recovery invariants. This is
// the acceptance gate of the durable plan store: no crash instant may
// corrupt a published record, lose more than the one in-flight write, or
// leave the store unable to serve put/get.

#include <gtest/gtest.h>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/storage/crash_check.hpp"
#include "artemis/storage/plan_store.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::storage {
namespace {

PlanRecord record_for(char nibble, double tflops) {
  PlanRecord rec;
  rec.key = std::string(32, nibble);
  rec.config = "block=8,8,4 unroll=1,1,1";
  rec.time_s = 1e-3;
  rec.tflops = tflops;
  rec.meta["device"] = "P100";
  return rec;
}

TEST(PlanStoreCrashSweep, EveryCrashPointRecovers) {
  // Record a workload: open, three puts (one overwrite), a get, compact.
  MemVfs vfs;
  vfs.set_record_trace(true);
  std::map<std::string, PlanRecord> expected;
  {
    PlanStore store(vfs, "store");
    for (const char nibble : {'1', '2', '3'}) {
      const PlanRecord rec = record_for(nibble, 1.0);
      ASSERT_TRUE(store.put(rec));
      expected[rec.key] = rec;
    }
    // Overwrite key '2' — after the second rename commits, readers must
    // see exactly the old or the new version.
    const PlanRecord rewrite = record_for('2', 2.0);
    ASSERT_TRUE(store.put(rewrite));
    expected[rewrite.key] = rewrite;
    ASSERT_TRUE(store.get(rewrite.key).has_value());
    ASSERT_TRUE(store.compact().ran);
  }
  const auto trace = vfs.trace();
  ASSERT_GT(trace.size(), 20u);

  // The overwrite means two versions of key '2' are legal, depending on
  // whether the crash lands before or after its commit rename. Express
  // that by checking against "old version allowed" until the recovered
  // state shows the new one.
  auto old2 = expected;
  old2[record_for('2', 0).key] = record_for('2', 1.0);
  const auto report = crash_sweep(
      trace, default_crash_variants(), [&](MemVfs& state) -> std::string {
        const std::string with_new =
            check_plan_store_state(state, "store", expected);
        if (with_new.empty()) return "";
        const std::string with_old =
            check_plan_store_state(state, "store", old2);
        if (with_old.empty()) return "";
        return with_new + " / " + with_old;
      });
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.states, 100u);
}

TEST(PlanStoreCrashSweep, CrashDuringQuarantineIsSafe) {
  // Corruption handling itself must be crash-safe. The whole workload —
  // including planting the bit-rotted object — goes through traced VFS
  // ops, so every replayed prefix is reachable from the empty filesystem.
  MemVfs vfs;
  vfs.set_record_trace(true);
  const PlanRecord rec = record_for('a', 1.0);
  const std::string object = "store/objects/aa/" + rec.key + ".plan";
  {
    PlanStore store(vfs, "store");  // lays down the skeleton (traced)
    std::string bytes = encode_plan_record(rec);
    bytes[bytes.size() - 2] ^= 0x01;  // flip a payload byte: CRC mismatch
    vfs.mkdirs("store/objects/aa");
    auto f = vfs.create(object, /*truncate=*/true);
    f->write(bytes);
    f->sync();
    f->close();
    ASSERT_FALSE(store.get(rec.key).has_value());  // quarantines it
    EXPECT_EQ(store.stats().drop_crc_mismatch, 1u);
  }
  // A valid version of rec.key never existed, so no crash instant may
  // make get() serve it — and recovery must always keep working.
  const auto report = crash_sweep(
      vfs.trace(), default_crash_variants(),
      [&](MemVfs& state) -> std::string {
        try {
          PlanStore store(state, "store");
          if (store.get(rec.key).has_value()) {
            return "corrupt record was served";
          }
          PlanRecord probe = record_for('b', 3.0);
          if (!store.put(probe)) return "put failed after recovery";
          if (!store.get(probe.key).has_value()) {
            return "probe missed after recovery";
          }
        } catch (const std::exception& e) {
          return std::string("recovery threw: ") + e.what();
        }
        return "";
      });
  EXPECT_TRUE(report.ok()) << report.summary();
}

// The journal's own crash-at-every-op sweep lives in journal_test.cpp
// (JournalCrashSweep.SyncedRecordsSurviveEveryCrashPoint), next to the
// rest of the journal contract tests.

TEST(TuningCacheCrashSweep, AtomicSaveNeverTearsTheCacheFile) {
  // Regression for the non-atomic truncate-overwrite save: crash at any
  // instant of save_file must leave either the complete old cache or the
  // complete new one — never a prefix.
  MemVfs vfs;
  autotune::TuningCache old_cache;
  old_cache.put("old/key", {codegen::KernelConfig{}, 1e-3, 1.0});
  ASSERT_TRUE(old_cache.save_file("cache.db", &vfs));
  const std::string old_bytes = vfs.read("cache.db").value();

  vfs.set_record_trace(true);
  autotune::TuningCache new_cache;
  new_cache.put("new/key", {codegen::KernelConfig{}, 2e-3, 2.0});
  new_cache.put("new/key2", {codegen::KernelConfig{}, 3e-3, 3.0});
  ASSERT_TRUE(new_cache.save_file("cache.db", &vfs));
  const std::string new_bytes = vfs.read("cache.db").value();
  ASSERT_NE(old_bytes, new_bytes);

  const auto report = crash_sweep(
      vfs.trace(), default_crash_variants(),
      [&](MemVfs& state) -> std::string {
        // Seed the pre-save state: the trace starts after the old cache
        // was (fully synced) on disk.
        if (!state.exists("cache.db")) state.install_file("cache.db",
                                                          old_bytes);
        const std::string got = state.read("cache.db").value();
        if (got != old_bytes && got != new_bytes) {
          return "cache file is neither the old nor the new content";
        }
        autotune::TuningCache reload;
        const auto r = reload.load_file("cache.db", &state);
        if (!r.ok() || r.skipped != 0) {
          return "recovered cache file did not load cleanly";
        }
        return "";
      });
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.states, 20u);
}

}  // namespace
}  // namespace artemis::storage
