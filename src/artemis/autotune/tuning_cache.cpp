#include "artemis/autotune/tuning_cache.hpp"

#include <sstream>

#include "artemis/common/check.hpp"
#include "artemis/common/hash.hpp"
#include "artemis/common/str.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::autotune {

namespace {

using codegen::KernelConfig;
using codegen::Perspective;
using codegen::TilingScheme;
using codegen::UnrollStrategy;

const char* tiling_key(TilingScheme t) {
  switch (t) {
    case TilingScheme::Spatial3D: return "spatial";
    case TilingScheme::StreamSerial: return "stream";
    case TilingScheme::StreamConcurrent: return "stream-conc";
  }
  return "?";
}

TilingScheme parse_tiling(const std::string& s) {
  if (s == "spatial") return TilingScheme::Spatial3D;
  if (s == "stream") return TilingScheme::StreamSerial;
  if (s == "stream-conc") return TilingScheme::StreamConcurrent;
  throw Error(str_cat("bad tiling '", s, "'"));
}

}  // namespace

std::string serialize_config(const KernelConfig& cfg) {
  std::ostringstream os;
  os << "block=" << cfg.block[0] << "," << cfg.block[1] << "," << cfg.block[2]
     << " unroll=" << cfg.unroll[0] << "," << cfg.unroll[1] << ","
     << cfg.unroll[2] << " tiling=" << tiling_key(cfg.tiling)
     << " axis=" << cfg.stream_axis << " chunk=" << cfg.stream_chunk
     << " persp=" << codegen::perspective_name(cfg.perspective)
     << " dist=" << codegen::unroll_strategy_name(cfg.unroll_strategy)
     << " prefetch=" << (cfg.prefetch ? 1 : 0)
     << " retime=" << (cfg.retime ? 1 : 0) << " fold=" << (cfg.fold ? 1 : 0)
     << " maxreg=" << cfg.max_registers << " timetile=" << cfg.time_tile;
  if (cfg.target_occupancy) os << " occ=" << *cfg.target_occupancy;
  return os.str();
}

KernelConfig parse_config(const std::string& line) {
  KernelConfig cfg;
  for (const auto& tokenized : split(line, ' ')) {
    const std::string token = trim(tokenized);
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) throw Error("bad config token: " + token);
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    auto parse_triple = [&](std::array<int, 3>& out) {
      const auto parts = split(val, ',');
      ARTEMIS_CHECK_MSG(parts.size() == 3, "bad triple '" << val << "'");
      for (int d = 0; d < 3; ++d) {
        out[static_cast<std::size_t>(d)] =
            std::stoi(parts[static_cast<std::size_t>(d)]);
      }
    };
    if (key == "block") {
      parse_triple(cfg.block);
    } else if (key == "unroll") {
      parse_triple(cfg.unroll);
    } else if (key == "tiling") {
      cfg.tiling = parse_tiling(val);
    } else if (key == "axis") {
      cfg.stream_axis = std::stoi(val);
    } else if (key == "chunk") {
      cfg.stream_chunk = std::stoi(val);
    } else if (key == "persp") {
      cfg.perspective = val == "input"
                            ? Perspective::Input
                            : (val == "mixed" ? Perspective::Mixed
                                              : Perspective::Output);
    } else if (key == "dist") {
      cfg.unroll_strategy =
          val == "cyclic" ? UnrollStrategy::Cyclic : UnrollStrategy::Blocked;
    } else if (key == "prefetch") {
      cfg.prefetch = val == "1";
    } else if (key == "retime") {
      cfg.retime = val == "1";
    } else if (key == "fold") {
      cfg.fold = val == "1";
    } else if (key == "maxreg") {
      cfg.max_registers = std::stoi(val);
    } else if (key == "timetile") {
      cfg.time_tile = std::stoi(val);
    } else if (key == "occ") {
      cfg.target_occupancy = std::stod(val);
    } else {
      throw Error(str_cat("unknown config key '", key, "'"));
    }
  }
  return cfg;
}

void TuningCache::put(const std::string& key, const CacheEntry& entry) {
  ARTEMIS_CHECK_MSG(key.find('\t') == std::string::npos &&
                        key.find('\n') == std::string::npos,
                    "cache keys must not contain tabs or newlines");
  const std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = entry;
}

std::optional<CacheEntry> TuningCache::get(const std::string& key) const {
  std::optional<CacheEntry> found;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) found = it->second;
  }
  const bool hit = found.has_value();
  telemetry::counter_add(hit ? "tuning_cache.hits" : "tuning_cache.misses");
  if (telemetry::enabled()) {
    telemetry::instant("tuning_cache.lookup", "cache",
                       {{"key", Json(key)}, {"hit", Json(hit)}});
  }
  return found;
}

bool TuningCache::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) > 0;
}

namespace {
constexpr const char* kCacheHeaderPrefix = "#artemis-tuning-cache v";
constexpr int kCacheVersion = 2;
}  // namespace

std::string TuningCache::save_text() const {
  std::ostringstream os;
  os << kCacheHeaderPrefix << kCacheVersion << '\n';
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : entries_) {
    std::ostringstream row;
    row.precision(17);
    row << key << '\t' << e.time_s << '\t' << e.tflops << '\t'
        << serialize_config(e.config);
    // Checksum over everything after the crc column, so a torn or
    // bit-rotted row is detected instead of parsed.
    os << crc32_hex(crc32(row.str())) << '\t' << row.str() << '\n';
  }
  return os.str();
}

namespace {

/// Why one row (or the whole file) was dropped. Each class has its own
/// CacheLoadReport field and telemetry counter on top of the shared
/// tuning_cache.parse_errors total.
enum class DropClass { Malformed, CrcMismatch, TornTail, VersionSkew };

void record_drop(CacheLoadReport& report, const std::string& line,
                 DropClass cls, const char* why) {
  ++report.skipped;
  const char* counter = "tuning_cache.drop.malformed";
  switch (cls) {
    case DropClass::Malformed:
      ++report.malformed;
      break;
    case DropClass::CrcMismatch:
      ++report.crc_mismatch;
      counter = "tuning_cache.drop.crc_mismatch";
      break;
    case DropClass::TornTail:
      ++report.torn_tail;
      counter = "tuning_cache.drop.torn_tail";
      break;
    case DropClass::VersionSkew:
      ++report.version_skew;
      counter = "tuning_cache.drop.version_skew";
      break;
  }
  telemetry::counter_add(counter);
  telemetry::counter_add("tuning_cache.parse_errors");
  if (telemetry::enabled()) {
    telemetry::instant(
        "tuning_cache.parse_error", "cache",
        {{"why", Json(why)},
         {"line", Json(line.substr(0, 120))}});
  }
}

}  // namespace

CacheLoadReport TuningCache::load_text(const std::string& text) {
  CacheLoadReport report;
  auto lines = split(text, '\n');

  // Version header: present => the checksummed v2 grammar; absent =>
  // the legacy headerless 4-column shape. An unsupported version stops
  // the load (guessing at a future grammar is worse than a cold cache).
  bool v2 = false;
  std::size_t first = 0;
  while (first < lines.size() && trim(lines[first]).empty()) ++first;
  if (first < lines.size() &&
      starts_with(lines[first], kCacheHeaderPrefix)) {
    const std::string version =
        lines[first].substr(std::string(kCacheHeaderPrefix).size());
    if (version != std::to_string(kCacheVersion)) {
      record_drop(report, lines[first], DropClass::VersionSkew,
                  "version_skew");
      return report;
    }
    v2 = true;
    ++first;
  }

  // A crash can tear the final row of a (legacy, non-atomic) save: a v2
  // fragment without its newline is dropped as torn, not as corrupt.
  bool torn = false;
  if (v2 && !text.empty() && text.back() != '\n') {
    torn = true;  // the last split() element is the unterminated fragment
  }

  for (std::size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (trim(line).empty()) continue;
    if (torn && i + 1 == lines.size()) {
      record_drop(report, line, DropClass::TornTail, "torn_tail");
      continue;
    }
    auto cols = split(line, '\t');
    if (v2) {
      if (cols.size() != 5) {
        record_drop(report, line, DropClass::Malformed, "column_count");
        continue;
      }
      std::uint32_t want = 0;
      if (!parse_crc32_hex(cols[0], &want) ||
          crc32(line.substr(line.find('\t') + 1)) != want) {
        record_drop(report, line, DropClass::CrcMismatch, "crc_mismatch");
        continue;
      }
      cols.erase(cols.begin());
    } else if (cols.size() != 4) {
      record_drop(report, line, DropClass::Malformed, "column_count");
      continue;
    }
    try {
      CacheEntry e;
      e.time_s = std::stod(cols[1]);
      e.tflops = std::stod(cols[2]);
      e.config = parse_config(cols[3]);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        entries_[cols[0]] = e;
      }
      ++report.loaded;
    } catch (const Error&) {
      // parse_config rejected the row (unknown key, bad tiling, ...).
      record_drop(report, line, DropClass::Malformed, "bad_config");
    } catch (const std::logic_error&) {
      // std::stod / std::stoi rejected a numeric column. Anything else
      // (bad_alloc, EvalError, ...) is not a parse failure and must
      // propagate.
      record_drop(report, line, DropClass::Malformed, "bad_number");
    }
  }
  return report;
}

bool TuningCache::save_file(const std::string& path,
                            storage::Vfs* vfs) const {
  storage::Vfs& fs = vfs != nullptr ? *vfs : storage::real_vfs();
  try {
    // Crash-safe publish: the previous cache file stays intact until the
    // new one is complete, fsynced, and renamed into place.
    storage::atomic_write_file(fs, path, save_text());
  } catch (const storage::VfsError&) {
    telemetry::counter_add("tuning_cache.save_errors");
    return false;
  }
  return true;
}

CacheLoadReport TuningCache::load_file(const std::string& path,
                                       storage::Vfs* vfs) {
  storage::Vfs& fs = vfs != nullptr ? *vfs : storage::real_vfs();
  std::optional<std::string> text;
  try {
    text = fs.read(path);
  } catch (const storage::VfsError&) {
    // Unreadable (permissions, a directory, injected EIO, ...): an I/O
    // error, not an empty cache.
    CacheLoadReport report;
    report.status = CacheLoadReport::Status::IoError;
    return report;
  }
  if (!text.has_value()) {
    CacheLoadReport report;
    report.status = CacheLoadReport::Status::Missing;
    return report;
  }
  return load_text(*text);
}

}  // namespace artemis::autotune
