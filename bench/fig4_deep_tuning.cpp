// Reproduces Fig. 4: deep tuning for arbitrary time iterations of the
// 7pt-smoother and 27pt-smoother.
//
// For each time tile size (x x 1), the fused kernel is autotuned and its
// useful TFLOPS (per smoother application) is printed, exposing the cusp:
// performance climbs with the fusion degree, then drops once the version
// is no longer bandwidth-bound (the tipping point, circled in the paper's
// figure). The opt(T) dynamic program then schedules the paper's T=12
// iterations from the tuned versions.

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  for (const char* name : {"7pt-smoother", "27pt-smoother"}) {
    const auto prog = stencils::benchmark_program(name);
    const auto r = driver::optimize_program(prog, dev, params);
    ARTEMIS_CHECK(r.deep_tuning.has_value());

    std::printf("Fig. 4 deep tuning: %s (T = 12)\n", name);
    TablePrinter table({"time tile x", "TFLOPS (per-step)", "kernel time",
                        "bandwidth-bound?", "best config"});
    for (const auto& e : r.deep_tuning->entries) {
      // Per-step TFLOPS: x applications of the smoother per invocation.
      const double tflops = e.tflops;
      table.add_row({std::to_string(e.time_tile),
                     format_double(tflops, 4),
                     str_cat(format_double(e.time_s * 1e3, 4), " ms"),
                     e.report.bandwidth_bound_anywhere() ? "yes" : "no",
                     e.tuned.best.config.to_string()});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("tipping point (cusp): x = %d\n",
                r.deep_tuning->tipping_point);

    std::string sched;
    for (const int x : r.fusion_schedule) sched += str_cat(" ", x);
    std::printf("opt(T=12) schedule:%s   total %.3f ms   %.3f TFLOPS\n\n",
                sched.c_str(), r.time_s * 1e3, r.tflops);

    // Schedules for a few other iteration counts (Section VI-A: the deep
    // tuning is done once and amortized over invocations).
    for (const int T : {5, 13, 40}) {
      const auto s = autotune::fusion_schedule(*r.deep_tuning, T);
      std::string text;
      for (const int x : s) text += str_cat(" ", x);
      std::printf("  opt(T=%2d):%s\n", T, text.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: both smoothers peak at an interior fusion degree\n"
      "(7pt ~0.75 TFLOPS around x=3-4, 27pt ~1.7 TFLOPS around x=3) and\n"
      "drop beyond the cusp; the tipping point was under 4 for every\n"
      "iterative stencil evaluated.\n");
  return 0;
}
