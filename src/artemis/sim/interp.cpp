#include "artemis/sim/interp.hpp"

#include <cmath>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::sim {

std::array<std::int64_t, 3> access_coords(
    const std::vector<ir::IndexExpr>& indices,
    const std::vector<std::int64_t>& itv) {
  std::array<std::int64_t, 3> zyx = {0, 0, 0};
  const std::size_t nd = indices.size();
  ARTEMIS_CHECK(nd >= 1 && nd <= 3);
  for (std::size_t d = 0; d < nd; ++d) {
    const auto& ix = indices[d];
    std::int64_t v = ix.offset;
    if (!ix.is_const()) {
      ARTEMIS_CHECK(static_cast<std::size_t>(ix.iter) < itv.size());
      v += itv[static_cast<std::size_t>(ix.iter)];
    }
    zyx[3 - nd + d] = v;
  }
  return zyx;
}

std::optional<double> eval_expr(const ir::Expr& e,
                                const std::map<std::string, double>& scalars,
                                const std::map<std::string, double>& locals,
                                const std::vector<std::int64_t>& itv,
                                const ArrayReader& reader) {
  using ir::ExprKind;
  switch (e.kind) {
    case ExprKind::Number:
      return e.number;
    case ExprKind::ScalarRef: {
      if (const auto it = locals.find(e.name); it != locals.end()) {
        return it->second;
      }
      const auto it = scalars.find(e.name);
      ARTEMIS_CHECK_MSG(it != scalars.end(),
                        "unbound scalar '" << e.name << "'");
      return it->second;
    }
    case ExprKind::ArrayRef: {
      const auto c = access_coords(e.indices, itv);
      return reader(e.name, c[0], c[1], c[2]);
    }
    case ExprKind::Unary: {
      const auto v = eval_expr(*e.args[0], scalars, locals, itv, reader);
      if (!v) return std::nullopt;
      return -*v;
    }
    case ExprKind::Binary: {
      const auto a = eval_expr(*e.args[0], scalars, locals, itv, reader);
      if (!a) return std::nullopt;
      const auto b = eval_expr(*e.args[1], scalars, locals, itv, reader);
      if (!b) return std::nullopt;
      switch (e.bop) {
        case ir::BinOp::Add: return *a + *b;
        case ir::BinOp::Sub: return *a - *b;
        case ir::BinOp::Mul: return *a * *b;
        case ir::BinOp::Div: return *a / *b;
      }
      return std::nullopt;
    }
    case ExprKind::Call: {
      std::vector<double> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        const auto v = eval_expr(*a, scalars, locals, itv, reader);
        if (!v) return std::nullopt;
        args.push_back(*v);
      }
      if (e.name == "sqrt") return std::sqrt(args.at(0));
      if (e.name == "fabs") return std::fabs(args.at(0));
      if (e.name == "exp") return std::exp(args.at(0));
      if (e.name == "log") return std::log(args.at(0));
      if (e.name == "min") return std::min(args.at(0), args.at(1));
      if (e.name == "max") return std::max(args.at(0), args.at(1));
      if (e.name == "pow") return std::pow(args.at(0), args.at(1));
      throw Error(str_cat("unknown intrinsic '", e.name, "'"));
    }
  }
  return std::nullopt;
}

bool apply_stmts_at_point(const std::vector<ir::Stmt>& stmts,
                          const std::map<std::string, double>& scalars,
                          const std::vector<std::int64_t>& itv,
                          const ArrayReader& reader,
                          const ArrayWriter& writer) {
  std::map<std::string, double> locals;
  struct PendingWrite {
    std::string array;
    std::array<std::int64_t, 3> coords;
    double value;
  };
  std::vector<PendingWrite> writes;

  // Reads of arrays written earlier in this statement list at this point
  // must observe the pending (not yet committed) values.
  auto read_with_pending =
      [&](const std::string& name, std::int64_t z, std::int64_t y,
          std::int64_t x) -> std::optional<double> {
    for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
      if (it->array == name && it->coords[0] == z && it->coords[1] == y &&
          it->coords[2] == x) {
        return it->value;
      }
    }
    return reader(name, z, y, x);
  };

  for (const auto& st : stmts) {
    const auto v =
        eval_expr(*st.rhs, scalars, locals, itv, read_with_pending);
    if (!v) return false;
    if (st.declares_local) {
      locals[st.lhs_name] = *v;
      continue;
    }
    const auto coords = access_coords(st.lhs_indices, itv);
    double value = *v;
    if (st.accumulate) {
      const auto cur =
          read_with_pending(st.lhs_name, coords[0], coords[1], coords[2]);
      if (!cur) return false;
      value += *cur;
    }
    writes.push_back({st.lhs_name, coords, value});
  }

  for (const auto& w : writes) {
    writer(w.array, w.coords[0], w.coords[1], w.coords[2], w.value);
  }
  return true;
}

}  // namespace artemis::sim
