#include "artemis/autotune/search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <set>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/common/check.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/metrics/compare.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::autotune {

namespace {

using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::Perspective;
using codegen::TilingScheme;

Json int_triple(const std::array<int, 3>& a) {
  Json arr = Json::array();
  for (const int v : a) arr.push_back(v);
  return arr;
}

/// One structured telemetry event per considered candidate (Section V
/// observability): the knob values, the outcome, and how many register
/// budgets the escalation pruned before evaluation. `reason` is empty for
/// evaluated candidates; `replayed` marks journal replays.
void record_candidate(const char* stage, const KernelConfig& cfg,
                      int spill_pruned, const Candidate* cand,
                      const char* reason, bool replayed = false) {
  if (!telemetry::enabled()) return;
  std::vector<telemetry::Attr> args;
  args.push_back({"stage", Json(stage)});
  args.push_back({"tiling", Json(codegen::tiling_name(cfg.tiling))});
  args.push_back({"block", int_triple(cfg.block)});
  args.push_back({"unroll", int_triple(cfg.unroll)});
  args.push_back({"max_registers", Json(cfg.max_registers)});
  args.push_back({"prefetch", Json(cfg.prefetch)});
  args.push_back(
      {"perspective", Json(codegen::perspective_name(cfg.perspective))});
  if (spill_pruned > 0) {
    args.push_back({"spill_pruned_budgets", Json(spill_pruned)});
  }
  if (cand != nullptr) {
    args.push_back({"outcome", Json("evaluated")});
    args.push_back({"time_ms", Json(cand->time_s * 1e3)});
    args.push_back({"occupancy", Json(cand->eval.occupancy.fraction)});
    args.push_back({"registers", Json(cand->eval.regs.total)});
  } else {
    args.push_back({"outcome", Json("infeasible")});
    args.push_back({"reason", Json(reason)});
  }
  if (replayed) args.push_back({"replayed", Json(true)});
  telemetry::instant("tuner.candidate", "tune", std::move(args));
}

/// Shared state of one tuning search: the evaluation inputs plus the
/// resilience machinery (runner, journal) that every candidate flows
/// through.
struct EvalContext {
  const PlanFactory& factory;
  const gpumodel::DeviceSpec& dev;
  const gpumodel::ModelParams& params;
  const TuneOptions& opts;
  robust::CandidateRunner runner;
  TuneResult* result;

  // Model-vs-simulation agreement accumulated across this search's
  // model-filtered sweeps (model_prune_k): one (model score, committed
  // simulated time) pair per evaluated survivor.
  std::vector<double> model_scores;
  std::vector<double> sim_times;

  EvalContext(const PlanFactory& f, const gpumodel::DeviceSpec& d,
              const gpumodel::ModelParams& p, const TuneOptions& o,
              TuneResult* r)
      : factory(f), dev(d), params(p), opts(o), runner(o.runner),
        result(r) {}

  std::string candidate_key(const KernelConfig& cfg) const {
    return opts.journal_scope.empty()
               ? serialize_config(cfg)
               : str_cat(opts.journal_scope, "|", serialize_config(cfg));
  }

  /// Candidate keys (config serialization) are only materialized when
  /// something consumes them — the journal, the fault harness, or a
  /// non-default runner policy — so the disabled path never pays for
  /// string building.
  bool needs_key() const {
    return opts.journal != nullptr || robust::fault_injection_enabled() ||
           opts.runner.trials > 1 || opts.runner.deadline_ms > 0;
  }
};

/// What the thread-safe half of one candidate evaluation produced. The
/// serial commit half (commit_candidate) turns it into telemetry
/// counters, journal records, and leaderboard entries — always in
/// enumeration order, so a parallel sweep is indistinguishable from the
/// serial one.
struct EvalOutcome {
  std::string key;  ///< journal/quarantine key ("" when nothing needs it)
  bool replayed = false;                        ///< journal replay hit
  std::optional<robust::JournalRecord> replay;  ///< the replayed record
  robust::RunOutcome outcome;  ///< live measurement (replayed == false)
  std::optional<Candidate> candidate;  ///< success, either path
};

/// The thread-safe half of try-one-configuration: journal lookup (the
/// replay map is immutable during a run), plan construction, and the
/// measurement through the resilient runner. No telemetry counters, no
/// journal writes, no TuneResult mutation — commit_candidate does those.
EvalOutcome evaluate_candidate(EvalContext& ctx, const KernelConfig& cfg) {
  EvalOutcome eo;
  if (ctx.needs_key()) eo.key = ctx.candidate_key(cfg);

  // Replay: a resumed journal already holds this candidate's outcome, so
  // the (expensive, possibly faulty) measurement is skipped. The cheap
  // analytic evaluation is re-derived for the leaderboard metadata; the
  // journaled median timing stays authoritative.
  if (ctx.opts.journal != nullptr) {
    if (const auto rec = ctx.opts.journal->lookup(eo.key)) {
      eo.replayed = true;
      eo.replay = rec;
      if (rec->status == "ok") {
        try {
          const KernelPlan plan = ctx.factory(cfg);
          gpumodel::KernelEval ev =
              gpumodel::evaluate(plan, ctx.dev, ctx.params);
          if (ev.valid) {
            Candidate c;
            c.config = cfg;
            c.time_s = rec->time_s;
            c.eval = std::move(ev);
            eo.candidate = std::move(c);
          }
        } catch (const PlanError&) {
        }
      }
      return eo;
    }
  }

  eo.outcome = ctx.runner.run("tuner.eval", eo.key, [&]() {
    const KernelPlan plan = ctx.factory(cfg);
    return gpumodel::evaluate(plan, ctx.dev, ctx.params);
  });
  if (eo.outcome.status == robust::RunStatus::Ok && eo.outcome.eval.valid) {
    Candidate c;
    c.config = cfg;
    c.time_s = eo.outcome.time_s;
    c.eval = eo.outcome.eval;
    eo.candidate = std::move(c);
  }
  return eo;
}

/// The serial half: fold one evaluation outcome into the counters, the
/// journal, and the result bookkeeping. Returns nullopt for infeasible
/// candidates. Every call counts one enumerated candidate, and
/// evaluated + infeasible partition the enumerated set (candidates lost
/// to crashes/timeouts/quarantine after retries count as infeasible,
/// with the failure class as the recorded reason). `stage` labels the
/// sweep ("stage1", "stage2", "exhaustive", "random"); `spill_pruned` is
/// how many register budgets escalation skipped for this candidate.
std::optional<Candidate> commit_candidate(EvalContext& ctx,
                                          const KernelConfig& cfg,
                                          EvalOutcome& eo, const char* stage,
                                          int spill_pruned = 0) {
  telemetry::counter_add("tuner.enumerated");
  const auto fail = [&](const char* reason, bool replayed = false) {
    telemetry::counter_add("tuner.infeasible");
    record_candidate(stage, cfg, spill_pruned, nullptr, reason, replayed);
  };

  if (eo.replayed) {
    ++ctx.result->journal_hits;
    telemetry::counter_add("tuner.journal_hits");
    // Replays are counted separately from the sweep's enumeration so the
    // report's space-coverage fraction cannot double-count a resumed
    // run's candidates (coverage stays <= 1 across --resume).
    telemetry::counter_add("tuner.space_replayed");
    if (eo.candidate) {
      telemetry::counter_add("tuner.evaluated");
      record_candidate(stage, cfg, spill_pruned, &*eo.candidate, "",
                       /*replayed=*/true);
      return std::move(eo.candidate);
    }
    fail(eo.replay->status == "ok" ? "journal_replay_invalid"
                                   : eo.replay->status.c_str(),
         /*replayed=*/true);
    return std::nullopt;
  }

  const robust::RunOutcome& outcome = eo.outcome;
  if (outcome.retries > 0) {
    telemetry::counter_add("tuner.eval_retries", outcome.retries);
  }
  if (outcome.quarantined_now) {
    // TuneResult::quarantined is settled from the runner at the end of
    // the search; here only the process-wide counter and event fire.
    telemetry::counter_add("tuner.quarantined");
    if (telemetry::enabled()) {
      telemetry::instant("tuner.quarantine", "tune",
                         {{"key", Json(eo.key)},
                          {"reason", Json(outcome.reason)}});
    }
  }

  robust::TuningJournal* journal = ctx.opts.journal;
  const auto journal_record = [&](const char* status, double time_s,
                                  double tflops) {
    if (journal != nullptr) journal->record(eo.key, status, time_s, tflops);
  };

  switch (outcome.status) {
    case robust::RunStatus::Ok: {
      if (!eo.candidate) {
        journal_record("infeasible", 0, 0);
        fail("invalid_launch");
        return std::nullopt;
      }
      // Write-ahead: journal the measurement before it is consumed.
      journal_record("ok", eo.candidate->time_s,
                     eo.candidate->eval.tflops());
      telemetry::counter_add("tuner.evaluated");
      record_candidate(stage, cfg, spill_pruned, &*eo.candidate, "");
      return std::move(eo.candidate);
    }
    case robust::RunStatus::Infeasible:
      journal_record("infeasible", 0, 0);
      fail("plan_error");
      return std::nullopt;
    case robust::RunStatus::Crash:
      ++ctx.result->crashed;
      telemetry::counter_add("tuner.eval_crashes");
      journal_record("crash", 0, 0);
      fail("eval_crash");
      return std::nullopt;
    case robust::RunStatus::Timeout:
      ++ctx.result->timed_out;
      telemetry::counter_add("tuner.eval_timeouts");
      journal_record("timeout", 0, 0);
      fail("eval_timeout");
      return std::nullopt;
    case robust::RunStatus::Unstable:
      ++ctx.result->unstable;
      telemetry::counter_add("tuner.eval_unstable");
      journal_record("unstable", 0, 0);
      fail("measurement_unstable");
      return std::nullopt;
    case robust::RunStatus::Quarantined:
      telemetry::counter_add("tuner.quarantine_skips");
      fail("quarantined");
      return std::nullopt;
  }
  fail("unknown");
  return std::nullopt;
}

/// Graceful degradation: when the whole search came up empty (everything
/// infeasible, crashed, or quarantined), fall back to the baseline seed
/// configuration — evaluated directly, outside the fault/retry path — and
/// emit a telemetry warning instead of aborting the pipeline. Returns
/// false when even the baseline cannot run; the caller then throws the
/// historical PlanError.
bool degrade_to_seed(EvalContext& ctx, const KernelConfig& seed,
                     std::vector<Candidate>& board) {
  try {
    const KernelPlan plan = ctx.factory(seed);
    gpumodel::KernelEval ev = gpumodel::evaluate(plan, ctx.dev, ctx.params);
    if (!ev.valid) return false;
    Candidate c;
    c.config = seed;
    c.time_s = ev.time_s;
    c.eval = std::move(ev);
    ctx.result->degraded = true;
    telemetry::counter_add("tuner.degraded");
    if (telemetry::enabled()) {
      telemetry::instant(
          "tuner.degraded", "tune",
          {{"reason",
            Json("search found no feasible configuration; degrading to "
                 "the baseline config")},
           {"config", Json(serialize_config(seed))}});
    }
    board.push_back(std::move(c));  // the board is empty by construction
    return true;
  } catch (const PlanError&) {
    return false;
  }
}

void insert_leaderboard(std::vector<Candidate>& board, Candidate c,
                        int top_k) {
  const bool had_best = !board.empty();
  const double prev_best_s = had_best ? board.front().time_s : 0;
  const std::string prev_best_cfg =
      had_best && telemetry::enabled() ? serialize_config(board.front().config)
                                       : std::string();
  // A config never holds two slots: the random sweep and stage-2 variant
  // generation can enumerate the same config twice, and under timing
  // trials the two measurements may differ. The better one keeps the one
  // slot; the rest of the board stays available for distinct configs
  // instead of a duplicate pushing them past the top_k cut.
  const std::string key = serialize_config(c.config);
  const auto dup =
      std::find_if(board.begin(), board.end(), [&](const Candidate& e) {
        return serialize_config(e.config) == key;
      });
  if (dup != board.end()) {
    if (c.time_s >= dup->time_s) return;  // existing entry at least as good
    *dup = std::move(c);
  } else {
    board.push_back(std::move(c));
  }
  // Ties on time are broken by the canonical config serialization: a
  // total order, so the board never depends on insertion history and the
  // parallel tuner's plan matches the serial one even among equal-cost
  // candidates.
  std::sort(board.begin(), board.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return serialize_config(a.config) < serialize_config(b.config);
            });
  if (board.size() > static_cast<std::size_t>(top_k)) {
    board.resize(static_cast<std::size_t>(top_k));
  }
  // Leaderboard-change events ride the serial commit path, so the event
  // stream is identical at any jobs value (search observability).
  if (telemetry::enabled()) {
    const std::string best_cfg = serialize_config(board.front().config);
    if (!had_best || best_cfg != prev_best_cfg) {
      telemetry::counter_add("tuner.leaderboard_changes");
      std::vector<telemetry::Attr> args;
      args.push_back({"config", Json(best_cfg)});
      args.push_back({"time_ms", Json(board.front().time_s * 1e3)});
      if (had_best) {
        args.push_back({"previous_best_ms", Json(prev_best_s * 1e3)});
      }
      args.push_back(
          {"board_size", Json(static_cast<std::int64_t>(board.size()))});
      telemetry::instant("tuner.leaderboard", "tune", std::move(args));
    }
  }
}

/// Pick the smallest register budget at which the estimate does not
/// spill; returns nullopt when even the largest budget spills (the caller
/// may still evaluate at the top budget and pay the spill penalty).
std::optional<int> spill_free_budget(const PlanFactory& factory,
                                     KernelConfig cfg,
                                     const TuneOptions& opts,
                                     int* skipped) {
  for (const int budget : opts.register_budgets) {
    cfg.max_registers = budget;
    try {
      const KernelPlan plan = factory(cfg);
      const auto est = gpumodel::estimate_registers(plan);
      if (est.total <= budget) return budget;
      ++*skipped;
      telemetry::counter_add("tuner.pruned_spill_budgets");
    } catch (const PlanError&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}


/// Silent twin of spill_free_budget for the pre-filter's scoring pass:
/// identical settling logic, but no telemetry and no skip accounting, so
/// a surviving candidate's later (counted) escalation stays the first
/// and only one observed.
int settled_budget(const PlanFactory& factory, KernelConfig cfg,
                   const TuneOptions& opts) {
  for (const int budget : opts.register_budgets) {
    cfg.max_registers = budget;
    try {
      if (gpumodel::estimate_registers(factory(cfg)).total <= budget) {
        return budget;
      }
    } catch (const PlanError&) {
      break;
    }
  }
  return opts.register_budgets.back();
}

/// Analytical pre-filter (TuneOptions::model_prune_k, after Ernst et
/// al.): score every enumerated configuration with the pure model and
/// keep only the best k for simulation. Scoring is a pure function of
/// (config, device, params) — evaluated across the pool when one is
/// available — and selection uses the total order (score, canonical
/// config key), so the surviving set and its enumeration order are
/// identical for any `jobs`. Infeasible plans and invalid launches score
/// +inf and are pruned first. `scores_out` receives the survivors'
/// model scores (aligned with the returned list) when the filter ran,
/// and is left empty when it did not.
std::vector<KernelConfig> model_prefilter(EvalContext& ctx, TaskPool* pool,
                                          const char* stage,
                                          std::vector<KernelConfig> raw,
                                          bool escalate_budget,
                                          std::vector<double>* scores_out) {
  scores_out->clear();
  const std::int64_t n = static_cast<std::int64_t>(raw.size());
  const int k = ctx.opts.model_prune_k;
  if (k <= 0 || n <= k) return raw;

  std::vector<double> scores(raw.size(), 0.0);
  const auto score_one = [&](std::int64_t i) {
    KernelConfig cfg = raw[static_cast<std::size_t>(i)];
    if (escalate_budget) {
      cfg.max_registers = settled_budget(ctx.factory, cfg, ctx.opts);
    }
    double s = std::numeric_limits<double>::infinity();
    try {
      const gpumodel::KernelEval ev =
          gpumodel::evaluate(ctx.factory(cfg), ctx.dev, ctx.params);
      if (ev.valid) s = ev.time_s;
    } catch (const PlanError&) {
    }
    scores[static_cast<std::size_t>(i)] = s;
  };
  if (pool != nullptr && pool->parallelism() >= 2) {
    pool->for_each(n, score_one);
  } else {
    for (std::int64_t i = 0; i < n; ++i) score_one(i);
  }

  std::vector<std::string> keys(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    keys[i] = serialize_config(raw[i]);
  }
  std::vector<std::int64_t> order(raw.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::int64_t a, std::int64_t b) {
              const double sa = scores[static_cast<std::size_t>(a)];
              const double sb = scores[static_cast<std::size_t>(b)];
              if (sa != sb) return sa < sb;
              return keys[static_cast<std::size_t>(a)] <
                     keys[static_cast<std::size_t>(b)];
            });
  order.resize(static_cast<std::size_t>(k));
  // Survivors keep their enumeration order, so everything downstream
  // (journal bytes, telemetry, leaderboard commits) sees the same
  // schedule a hand-pruned enumeration would produce.
  std::sort(order.begin(), order.end());

  std::vector<KernelConfig> kept;
  kept.reserve(static_cast<std::size_t>(k));
  scores_out->reserve(static_cast<std::size_t>(k));
  for (const std::int64_t i : order) {
    kept.push_back(std::move(raw[static_cast<std::size_t>(i)]));
    scores_out->push_back(scores[static_cast<std::size_t>(i)]);
  }

  const std::int64_t pruned = n - k;
  ctx.result->model_pruned += static_cast<int>(pruned);
  telemetry::counter_add("tuner.model_pruned", pruned);
  if (telemetry::enabled()) {
    telemetry::instant("tuner.model_filter", "tune",
                       {{"stage", Json(std::string(stage))},
                        {"considered", Json(n)},
                        {"kept", Json(static_cast<std::int64_t>(k))},
                        {"pruned", Json(pruned)}});
  }
  return kept;
}

/// Drive one sweep: evaluate `raw` configurations (optionally settling
/// each one's register budget first) and fold them into the board and
/// the counters with results identical to the serial loop for any pool.
///
/// The parallel path works in chunks of ~8 tasks per shard: a chunk is
/// evaluated across the pool (the thread-safe half only), then committed
/// in enumeration order (counters, journal, leaderboard). Chunking keeps
/// the write-ahead journal growing incrementally, so a run killed
/// mid-sweep still resumes from everything committed so far.
///
/// Duplicate candidate keys (possible in the random sweep and among
/// stage-2 variants) are the one place evaluation order touches shared
/// state: the retry/quarantine ledger couples a key's later evaluations
/// to its earlier ones. Such repeats are deferred and evaluated at their
/// commit slot — after every earlier duplicate has fully committed —
/// which is exactly the serial schedule for them.
void run_candidates(EvalContext& ctx, TaskPool* pool, const char* stage,
                    std::vector<KernelConfig> raw, bool escalate_budget,
                    int& evaluated_counter, std::vector<Candidate>& board) {
  // Model-guided pruning happens before anything else sees the sweep:
  // the survivors flow through the unchanged evaluate/commit machinery,
  // so a pruned sweep is bit-indistinguishable from enumerating only the
  // survivors in the first place.
  std::vector<double> model_scores;
  raw = model_prefilter(ctx, pool, stage, std::move(raw), escalate_budget,
                        &model_scores);
  const std::int64_t n = static_cast<std::int64_t>(raw.size());
  if (n == 0) return;

  struct Prepared {
    KernelConfig cfg;
    int spill_pruned = 0;
    bool deferred = false;
    EvalOutcome eo;
  };

  const auto prepare = [&](KernelConfig cfg, Prepared& p) {
    if (escalate_budget) {
      const auto budget =
          spill_free_budget(ctx.factory, cfg, ctx.opts, &p.spill_pruned);
      cfg.max_registers = budget.value_or(ctx.opts.register_budgets.back());
    }
    p.eo = evaluate_candidate(ctx, cfg);
    p.cfg = std::move(cfg);
  };

  // (model score, simulated time) pairs for this sweep's evaluated
  // survivors; collected on the serial commit path, in enumeration
  // order, so the rank-correlation stream is jobs-invariant too.
  std::int64_t committed = 0;
  std::vector<double> sweep_model;
  std::vector<double> sweep_sim;

  const auto commit = [&](Prepared& p) {
    const std::int64_t slot = committed++;
    ctx.result->skipped_spilling += p.spill_pruned;
    ++evaluated_counter;
    auto cand = commit_candidate(ctx, p.cfg, p.eo, stage, p.spill_pruned);
    if (!cand) {
      ++ctx.result->infeasible;
      return;
    }
    if (!model_scores.empty()) {
      sweep_model.push_back(model_scores[static_cast<std::size_t>(slot)]);
      sweep_sim.push_back(cand->time_s);
    }
    insert_leaderboard(board, std::move(*cand), ctx.opts.top_k);
  };

  if (pool == nullptr || pool->parallelism() < 2) {
    for (auto& cfg : raw) {
      Prepared p;
      prepare(std::move(cfg), p);
      commit(p);
    }
  } else {
    // Mark key repeats for deferred (in-order) evaluation. Budget
    // escalation never produces repeats — the pre-budget knobs already
    // differ — and keys only exist when the resilience machinery needs
    // them, so this pass is free on the default path.
    std::vector<bool> deferred(static_cast<std::size_t>(n), false);
    if (!escalate_budget && ctx.needs_key()) {
      std::set<std::string> seen;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        deferred[idx] = !seen.insert(ctx.candidate_key(raw[idx])).second;
      }
    }

    const std::int64_t chunk = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(pool->parallelism()) * 8);
    std::vector<Prepared> prepared;
    for (std::int64_t lo = 0; lo < n; lo += chunk) {
      const std::int64_t count = std::min(chunk, n - lo);
      prepared.assign(static_cast<std::size_t>(count), Prepared{});
      for (std::int64_t i = 0; i < count; ++i) {
        prepared[static_cast<std::size_t>(i)].deferred =
            deferred[static_cast<std::size_t>(lo + i)];
      }
      pool->for_each(count, [&](std::int64_t i) {
        Prepared& p = prepared[static_cast<std::size_t>(i)];
        if (p.deferred) return;
        prepare(std::move(raw[static_cast<std::size_t>(lo + i)]), p);
      });
      for (std::int64_t i = 0; i < count; ++i) {
        Prepared& p = prepared[static_cast<std::size_t>(i)];
        if (p.deferred) {
          prepare(std::move(raw[static_cast<std::size_t>(lo + i)]), p);
        }
        commit(p);
      }
    }
  }

  if (!model_scores.empty() && !sweep_model.empty()) {
    ctx.model_scores.insert(ctx.model_scores.end(), sweep_model.begin(),
                            sweep_model.end());
    ctx.sim_times.insert(ctx.sim_times.end(), sweep_sim.begin(),
                         sweep_sim.end());
    if (telemetry::enabled() && sweep_model.size() >= 2) {
      telemetry::instant(
          "tuner.model_rank", "tune",
          {{"stage", Json(std::string(stage))},
           {"spearman", Json(metrics::spearman(sweep_model, sweep_sim))},
           {"candidates",
            Json(static_cast<std::int64_t>(sweep_model.size()))}});
    }
  }
}

/// Fold the accumulated model-vs-sim pairs into the result's run-level
/// Spearman (meaningful only when the pre-filter ran for some sweep).
void settle_model_rank(EvalContext& ctx) {
  if (ctx.model_scores.size() < 2) return;
  ctx.result->model_sim_spearman =
      metrics::spearman(ctx.model_scores, ctx.sim_times);
  ctx.result->has_model_sim_spearman = true;
}

/// Count the powers of two in [lo, hi] — the side length of one axis of
/// the unpruned search space.
std::int64_t pow2_count(int lo, int hi) {
  std::int64_t n = 0;
  for (int s = lo; s <= hi; s *= 2) ++n;
  return n;
}

std::int64_t ipow(std::int64_t base, int exp) {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// Search-space coverage observability: how many configurations a sweep
/// actually enumerated against the unpruned cross product of its knob
/// axes. The ratio is the tuner's pruning effectiveness; the counters
/// feed the run report's tuner section and `--metrics`.
void record_space_coverage(const char* stage, std::int64_t enumerated,
                           std::int64_t unpruned) {
  if (!telemetry::enabled()) return;
  telemetry::counter_add("tuner.space_enumerated", enumerated);
  telemetry::counter_add("tuner.space_unpruned", unpruned);
  telemetry::instant("tuner.space", "tune",
                     {{"stage", Json(std::string(stage))},
                      {"enumerated", Json(enumerated)},
                      {"unpruned", Json(unpruned)}});
}

}  // namespace

int resolve_tune_jobs(const TuneOptions& opts) {
  // Nested searches (inner sweeps already running on a pool worker) drop
  // to 1 — one level of parallelism wins, and the inner serial path
  // keeps determinism trivially.
  if (TaskPool::inside_worker()) return 1;
  if (opts.jobs == 0) return default_jobs();
  return std::max(1, opts.jobs);
}

std::vector<std::array<int, 3>> candidate_blocks(int dims, bool streaming,
                                                 const TuneOptions& opts) {
  std::vector<int> sizes;
  for (int s = opts.min_block; s <= opts.max_block; s *= 2) sizes.push_back(s);

  std::vector<std::array<int, 3>> out;
  const int tiled_dims = streaming ? dims - 1 : dims;
  for (const int bx : sizes) {
    if (tiled_dims == 1) {
      if (bx <= 1024) out.push_back({bx, 1, 1});
      continue;
    }
    for (const int by : sizes) {
      if (tiled_dims == 2) {
        if (static_cast<std::int64_t>(bx) * by <= 1024) {
          out.push_back({bx, by, 1});
        }
        continue;
      }
      for (const int bz : sizes) {
        if (static_cast<std::int64_t>(bx) * by * bz <= 1024) {
          out.push_back({bx, by, bz});
        }
      }
    }
  }
  return out;
}

std::vector<std::array<int, 3>> candidate_unrolls(int dims,
                                                  const TuneOptions& opts) {
  const int cap = opts.disable_unroll
                      ? 1
                      : (opts.theoretically_bandwidth_bound
                             ? opts.max_unroll_bandwidth
                             : opts.max_unroll_compute);
  std::vector<int> factors;
  for (int f = 1; f <= cap; f *= 2) factors.push_back(f);

  std::vector<std::array<int, 3>> out;
  for (const int ux : factors) {
    for (const int uy : dims >= 2 ? factors : std::vector<int>{1}) {
      for (const int uz : dims >= 3 ? factors : std::vector<int>{1}) {
        if (static_cast<std::int64_t>(ux) * uy * uz <= cap) {
          out.push_back({ux, uy, uz});
        }
      }
    }
  }
  // Section V: explore in monotonically increasing unroll volume, so the
  // register budget can be escalated incrementally.
  std::sort(out.begin(), out.end(),
            [](const std::array<int, 3>& a, const std::array<int, 3>& b) {
              return a[0] * a[1] * a[2] < b[0] * b[1] * b[2];
            });
  return out;
}

TuneResult hierarchical_tune(const PlanFactory& factory,
                             const KernelConfig& seed,
                             const gpumodel::DeviceSpec& dev,
                             const gpumodel::ModelParams& params,
                             const TuneOptions& opts) {
  TuneResult result;
  std::vector<Candidate> board;
  EvalContext ctx(factory, dev, params, opts, &result);
  const int jobs = resolve_tune_jobs(opts);
  std::optional<TaskPool> pool_storage;
  if (jobs > 1) pool_storage.emplace(jobs);
  TaskPool* pool = pool_storage ? &*pool_storage : nullptr;

  // Infer dimensionality from the seed plan.
  int dims = 3;
  try {
    dims = factory(seed).dims;
  } catch (const PlanError&) {
    // Keep the default; the sweep below will discover feasibility.
  }

  std::vector<TilingScheme> tilings = {seed.tiling};
  if (opts.explore_tiling && dims >= 2) {
    tilings = {TilingScheme::Spatial3D, TilingScheme::StreamSerial};
  }

  // ---- stage 1: tiling x block shape x unroll factors ----------------------
  {
    const telemetry::Span stage1_span("tune.stage1", "tune");
    std::vector<KernelConfig> raw;
    for (const TilingScheme tiling : tilings) {
      const bool streaming = tiling != TilingScheme::Spatial3D;
      for (const auto& block : candidate_blocks(dims, streaming, opts)) {
        for (const auto& unroll : candidate_unrolls(dims, opts)) {
          KernelConfig cfg = seed;
          cfg.tiling = tiling;
          if (streaming) cfg.stream_axis = dims - 1;
          cfg.block = block;
          cfg.unroll = unroll;
          if (streaming) {
            cfg.block[static_cast<std::size_t>(cfg.stream_axis)] = 1;
          }
          raw.push_back(cfg);
        }
      }
    }
    const std::int64_t enumerated = static_cast<std::int64_t>(raw.size());
    run_candidates(ctx, pool, "stage1", std::move(raw),
                   /*escalate_budget=*/true, result.evaluated_stage1, board);
    if (telemetry::enabled()) {
      const std::int64_t nsizes = pow2_count(opts.min_block, opts.max_block);
      const int unroll_cap =
          opts.disable_unroll ? 1
                              : (opts.theoretically_bandwidth_bound
                                     ? opts.max_unroll_bandwidth
                                     : opts.max_unroll_compute);
      const std::int64_t nfactors = pow2_count(1, unroll_cap);
      std::int64_t unpruned = 0;
      for (const TilingScheme tiling : tilings) {
        const int tiled_dims =
            tiling != TilingScheme::Spatial3D ? dims - 1 : dims;
        unpruned += ipow(nsizes, tiled_dims) * ipow(nfactors, dims);
      }
      record_space_coverage("stage1", enumerated, unpruned);
    }
  }

  // ---- stage 2: low-impact toggles on the survivors ------------------------
  const telemetry::Span stage2_span("tune.stage2", "tune");
  const std::vector<Candidate> survivors = board;
  std::vector<KernelConfig> variants;
  for (const auto& s : survivors) {
    const bool streaming = s.config.tiling != TilingScheme::Spatial3D;
    if (opts.tune_prefetch && streaming) {
      KernelConfig v = s.config;
      v.prefetch = true;
      variants.push_back(v);
    }
    if (opts.tune_concurrent_streaming && streaming && dims >= 2) {
      for (const int chunk : {32, 64, 128}) {
        KernelConfig v = s.config;
        v.tiling = TilingScheme::StreamConcurrent;
        v.stream_chunk = chunk;
        variants.push_back(v);
        if (opts.tune_prefetch) {
          v.prefetch = true;
          variants.push_back(v);
        }
      }
    }
    if (opts.tune_perspective) {
      for (const Perspective p : {Perspective::Input, Perspective::Mixed}) {
        KernelConfig v = s.config;
        v.perspective = p;
        variants.push_back(v);
      }
    }
  }
  record_space_coverage("stage2", static_cast<std::int64_t>(variants.size()),
                        static_cast<std::int64_t>(variants.size()));
  run_candidates(ctx, pool, "stage2", std::move(variants),
                 /*escalate_budget=*/false, result.evaluated_stage2, board);

  if (board.empty() && !degrade_to_seed(ctx, seed, board)) {
    throw PlanError("autotuner found no feasible configuration");
  }
  settle_model_rank(ctx);
  result.quarantined = ctx.runner.quarantined_count();
  result.best = board.front();
  result.leaderboard = std::move(board);
  return result;
}

TuneResult exhaustive_tune(const PlanFactory& factory,
                           const KernelConfig& seed,
                           const gpumodel::DeviceSpec& dev,
                           const gpumodel::ModelParams& params,
                           const TuneOptions& opts) {
  TuneResult result;
  std::vector<Candidate> board;
  EvalContext ctx(factory, dev, params, opts, &result);
  const int jobs = resolve_tune_jobs(opts);
  std::optional<TaskPool> pool_storage;
  if (jobs > 1) pool_storage.emplace(jobs);
  TaskPool* pool = pool_storage ? &*pool_storage : nullptr;

  int dims = 3;
  try {
    dims = factory(seed).dims;
  } catch (const PlanError&) {
  }

  std::vector<TilingScheme> tilings = {seed.tiling};
  if (opts.explore_tiling && dims >= 2) {
    tilings = {TilingScheme::Spatial3D, TilingScheme::StreamSerial};
  }

  std::vector<KernelConfig> raw;
  for (const TilingScheme tiling : tilings) {
    const bool streaming = tiling != TilingScheme::Spatial3D;
    for (const auto& block : candidate_blocks(dims, streaming, opts)) {
      for (const auto& unroll : candidate_unrolls(dims, opts)) {
        for (const int budget : opts.register_budgets) {
          for (const bool prefetch :
               streaming ? std::vector<bool>{false, true}
                         : std::vector<bool>{false}) {
            for (const Perspective p : {Perspective::Output,
                                        Perspective::Input,
                                        Perspective::Mixed}) {
              KernelConfig cfg = seed;
              cfg.tiling = tiling;
              if (streaming) cfg.stream_axis = dims - 1;
              cfg.block = block;
              cfg.unroll = unroll;
              cfg.max_registers = budget;
              cfg.prefetch = prefetch;
              cfg.perspective = p;
              if (streaming) {
                cfg.block[static_cast<std::size_t>(cfg.stream_axis)] = 1;
              }
              raw.push_back(cfg);
            }
          }
        }
      }
    }
  }
  if (telemetry::enabled()) {
    const std::int64_t nsizes = pow2_count(opts.min_block, opts.max_block);
    const int unroll_cap =
        opts.disable_unroll ? 1
                            : (opts.theoretically_bandwidth_bound
                                   ? opts.max_unroll_bandwidth
                                   : opts.max_unroll_compute);
    const std::int64_t nfactors = pow2_count(1, unroll_cap);
    std::int64_t unpruned = 0;
    for (const TilingScheme tiling : tilings) {
      const int tiled_dims =
          tiling != TilingScheme::Spatial3D ? dims - 1 : dims;
      unpruned += ipow(nsizes, tiled_dims) * ipow(nfactors, dims) *
                  static_cast<std::int64_t>(opts.register_budgets.size()) *
                  2 * 3;  // prefetch x perspective
    }
    record_space_coverage("exhaustive", static_cast<std::int64_t>(raw.size()),
                          unpruned);
  }
  run_candidates(ctx, pool, "exhaustive", std::move(raw),
                 /*escalate_budget=*/false, result.evaluated_stage1, board);

  if (board.empty() && !degrade_to_seed(ctx, seed, board)) {
    throw PlanError("exhaustive tuner found no feasible configuration");
  }
  settle_model_rank(ctx);
  result.quarantined = ctx.runner.quarantined_count();
  result.best = board.front();
  result.leaderboard = std::move(board);
  return result;
}

TuneResult random_tune(const PlanFactory& factory,
                       const KernelConfig& seed,
                       const gpumodel::DeviceSpec& dev,
                       const gpumodel::ModelParams& params,
                       const TuneOptions& opts, int budget,
                       std::uint64_t rng_seed) {
  TuneResult result;
  std::vector<Candidate> board;
  EvalContext ctx(factory, dev, params, opts, &result);
  const int jobs = resolve_tune_jobs(opts);
  std::optional<TaskPool> pool_storage;
  if (jobs > 1) pool_storage.emplace(jobs);
  TaskPool* pool = pool_storage ? &*pool_storage : nullptr;
  Rng rng(rng_seed);

  int dims = 3;
  try {
    dims = factory(seed).dims;
  } catch (const PlanError&) {
  }

  auto pow2 = [&rng](int lo_exp, int hi_exp) {
    return 1 << rng.uniform_int(lo_exp, hi_exp);
  };

  // Draw the whole sample serially first: the RNG stream, and therefore
  // the candidate list, is identical for any jobs value.
  std::vector<KernelConfig> raw;
  raw.reserve(static_cast<std::size_t>(std::max(0, budget)));
  for (int i = 0; i < budget; ++i) {
    KernelConfig cfg = seed;
    const bool streaming = dims >= 2 && rng.coin();
    cfg.tiling = streaming ? TilingScheme::StreamSerial
                           : TilingScheme::Spatial3D;
    cfg.stream_axis = dims - 1;
    cfg.block = {pow2(2, 8), dims >= 2 ? pow2(2, 8) : 1,
                 dims >= 3 && !streaming ? pow2(0, 5) : 1};
    if (streaming) cfg.block[static_cast<std::size_t>(dims - 1)] = 1;
    cfg.unroll = {pow2(0, 3), dims >= 2 ? pow2(0, 2) : 1,
                  dims >= 3 ? pow2(0, 2) : 1};
    cfg.max_registers = opts.register_budgets[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(
                            opts.register_budgets.size()) -
                            1))];
    cfg.prefetch = streaming && rng.coin();
    cfg.perspective = static_cast<Perspective>(rng.uniform_int(0, 2));
    cfg.unroll_strategy = rng.coin() ? codegen::UnrollStrategy::Blocked
                                     : codegen::UnrollStrategy::Cyclic;
    raw.push_back(cfg);
  }
  record_space_coverage("random", static_cast<std::int64_t>(raw.size()),
                        static_cast<std::int64_t>(std::max(0, budget)));
  run_candidates(ctx, pool, "random", std::move(raw),
                 /*escalate_budget=*/false, result.evaluated_stage1, board);
  if (board.empty() && !degrade_to_seed(ctx, seed, board)) {
    throw PlanError("random tuner found no feasible configuration");
  }
  settle_model_rank(ctx);
  result.quarantined = ctx.runner.quarantined_count();
  result.best = board.front();
  result.leaderboard = std::move(board);
  return result;
}

}  // namespace artemis::autotune
