
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/artemis/autotune/deep_tuning.cpp" "src/CMakeFiles/artemis.dir/artemis/autotune/deep_tuning.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/autotune/deep_tuning.cpp.o.d"
  "/root/repo/src/artemis/autotune/search.cpp" "src/CMakeFiles/artemis.dir/artemis/autotune/search.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/autotune/search.cpp.o.d"
  "/root/repo/src/artemis/autotune/tuning_cache.cpp" "src/CMakeFiles/artemis.dir/artemis/autotune/tuning_cache.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/autotune/tuning_cache.cpp.o.d"
  "/root/repo/src/artemis/baselines/baselines.cpp" "src/CMakeFiles/artemis.dir/artemis/baselines/baselines.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/baselines/baselines.cpp.o.d"
  "/root/repo/src/artemis/codegen/cuda_emitter.cpp" "src/CMakeFiles/artemis.dir/artemis/codegen/cuda_emitter.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/codegen/cuda_emitter.cpp.o.d"
  "/root/repo/src/artemis/codegen/plan.cpp" "src/CMakeFiles/artemis.dir/artemis/codegen/plan.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/codegen/plan.cpp.o.d"
  "/root/repo/src/artemis/codegen/plan_builder.cpp" "src/CMakeFiles/artemis.dir/artemis/codegen/plan_builder.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/codegen/plan_builder.cpp.o.d"
  "/root/repo/src/artemis/common/check.cpp" "src/CMakeFiles/artemis.dir/artemis/common/check.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/common/check.cpp.o.d"
  "/root/repo/src/artemis/common/grid.cpp" "src/CMakeFiles/artemis.dir/artemis/common/grid.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/common/grid.cpp.o.d"
  "/root/repo/src/artemis/common/parallel.cpp" "src/CMakeFiles/artemis.dir/artemis/common/parallel.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/common/parallel.cpp.o.d"
  "/root/repo/src/artemis/common/str.cpp" "src/CMakeFiles/artemis.dir/artemis/common/str.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/common/str.cpp.o.d"
  "/root/repo/src/artemis/common/table.cpp" "src/CMakeFiles/artemis.dir/artemis/common/table.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/common/table.cpp.o.d"
  "/root/repo/src/artemis/driver/driver.cpp" "src/CMakeFiles/artemis.dir/artemis/driver/driver.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/driver/driver.cpp.o.d"
  "/root/repo/src/artemis/dsl/lexer.cpp" "src/CMakeFiles/artemis.dir/artemis/dsl/lexer.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/dsl/lexer.cpp.o.d"
  "/root/repo/src/artemis/dsl/parser.cpp" "src/CMakeFiles/artemis.dir/artemis/dsl/parser.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/dsl/parser.cpp.o.d"
  "/root/repo/src/artemis/dsl/printer.cpp" "src/CMakeFiles/artemis.dir/artemis/dsl/printer.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/dsl/printer.cpp.o.d"
  "/root/repo/src/artemis/gpumodel/cache_sim.cpp" "src/CMakeFiles/artemis.dir/artemis/gpumodel/cache_sim.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/gpumodel/cache_sim.cpp.o.d"
  "/root/repo/src/artemis/gpumodel/device.cpp" "src/CMakeFiles/artemis.dir/artemis/gpumodel/device.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/gpumodel/device.cpp.o.d"
  "/root/repo/src/artemis/gpumodel/occupancy.cpp" "src/CMakeFiles/artemis.dir/artemis/gpumodel/occupancy.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/gpumodel/occupancy.cpp.o.d"
  "/root/repo/src/artemis/gpumodel/perf_model.cpp" "src/CMakeFiles/artemis.dir/artemis/gpumodel/perf_model.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/gpumodel/perf_model.cpp.o.d"
  "/root/repo/src/artemis/gpumodel/registers.cpp" "src/CMakeFiles/artemis.dir/artemis/gpumodel/registers.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/gpumodel/registers.cpp.o.d"
  "/root/repo/src/artemis/ir/analysis.cpp" "src/CMakeFiles/artemis.dir/artemis/ir/analysis.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/ir/analysis.cpp.o.d"
  "/root/repo/src/artemis/ir/expr.cpp" "src/CMakeFiles/artemis.dir/artemis/ir/expr.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/ir/expr.cpp.o.d"
  "/root/repo/src/artemis/ir/program.cpp" "src/CMakeFiles/artemis.dir/artemis/ir/program.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/ir/program.cpp.o.d"
  "/root/repo/src/artemis/profile/profiler.cpp" "src/CMakeFiles/artemis.dir/artemis/profile/profiler.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/profile/profiler.cpp.o.d"
  "/root/repo/src/artemis/sim/executor.cpp" "src/CMakeFiles/artemis.dir/artemis/sim/executor.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/sim/executor.cpp.o.d"
  "/root/repo/src/artemis/sim/gridset.cpp" "src/CMakeFiles/artemis.dir/artemis/sim/gridset.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/sim/gridset.cpp.o.d"
  "/root/repo/src/artemis/sim/interp.cpp" "src/CMakeFiles/artemis.dir/artemis/sim/interp.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/sim/interp.cpp.o.d"
  "/root/repo/src/artemis/sim/reference.cpp" "src/CMakeFiles/artemis.dir/artemis/sim/reference.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/sim/reference.cpp.o.d"
  "/root/repo/src/artemis/stencils/benchmarks.cpp" "src/CMakeFiles/artemis.dir/artemis/stencils/benchmarks.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/stencils/benchmarks.cpp.o.d"
  "/root/repo/src/artemis/stencils/extra_stencils.cpp" "src/CMakeFiles/artemis.dir/artemis/stencils/extra_stencils.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/stencils/extra_stencils.cpp.o.d"
  "/root/repo/src/artemis/stencils/random_stencil.cpp" "src/CMakeFiles/artemis.dir/artemis/stencils/random_stencil.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/stencils/random_stencil.cpp.o.d"
  "/root/repo/src/artemis/transform/fission.cpp" "src/CMakeFiles/artemis.dir/artemis/transform/fission.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/transform/fission.cpp.o.d"
  "/root/repo/src/artemis/transform/fold.cpp" "src/CMakeFiles/artemis.dir/artemis/transform/fold.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/transform/fold.cpp.o.d"
  "/root/repo/src/artemis/transform/fusion.cpp" "src/CMakeFiles/artemis.dir/artemis/transform/fusion.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/transform/fusion.cpp.o.d"
  "/root/repo/src/artemis/transform/retime.cpp" "src/CMakeFiles/artemis.dir/artemis/transform/retime.cpp.o" "gcc" "src/CMakeFiles/artemis.dir/artemis/transform/retime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
