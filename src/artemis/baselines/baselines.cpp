#include "artemis/baselines/baselines.hpp"

#include <algorithm>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::baselines {

const GeneratorResult& ComparisonRow::by_name(const std::string& name) const {
  for (const auto& g : generators) {
    if (g.generator == name) return g;
  }
  throw Error(str_cat("no generator named '", name, "' in row"));
}

bool ComparisonRow::artemis_wins(double tolerance) const {
  const double artemis = by_name("artemis").tflops();
  double best_other = 0.0;
  for (const auto& g : generators) {
    if (g.generator != "artemis") {
      best_other = std::max(best_other, g.tflops());
    }
  }
  return artemis >= (1.0 - tolerance) * best_other;
}

std::vector<driver::Strategy> figure5_strategies() {
  return {driver::ppcg_strategy(), driver::global_strategy(true),
          driver::global_strategy(false), driver::stencilgen_strategy(),
          driver::artemis_strategy()};
}

ComparisonRow compare_generators(const std::string& benchmark_name,
                                 const ir::Program& prog,
                                 const gpumodel::DeviceSpec& dev,
                                 const gpumodel::ModelParams& params) {
  ComparisonRow row;
  row.benchmark = benchmark_name;
  for (const auto& strat : figure5_strategies()) {
    GeneratorResult g;
    g.generator = strat.name;
    try {
      g.result = driver::optimize_program(prog, dev, params, strat);
    } catch (const Error& e) {
      g.failure = e.what();
    }
    row.generators.push_back(std::move(g));
  }
  return row;
}

}  // namespace artemis::baselines
