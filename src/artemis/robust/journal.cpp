#include "artemis/robust/journal.hpp"

#include <sstream>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::robust {

namespace {

constexpr const char* kHeaderPrefix = "#artemis-tuning-journal v";

std::string header_line(const std::string& run_key) {
  return str_cat(kHeaderPrefix, TuningJournal::kVersion, " key=", run_key);
}

}  // namespace

JournalLoadResult parse_journal_text(
    const std::string& text, const std::string& run_key,
    std::map<std::string, JournalRecord>* out) {
  JournalLoadResult res;
  if (text.empty()) {
    res.status = JournalLoadResult::Status::Missing;
    res.message = "journal is empty";
    return res;
  }

  // A crash can tear the final record mid-write: only lines terminated by
  // a newline are trusted; an unterminated tail is dropped and reported.
  std::string body = text;
  if (body.back() != '\n') {
    const auto last_nl = body.rfind('\n');
    body = last_nl == std::string::npos ? "" : body.substr(0, last_nl + 1);
    res.torn_tail = true;
  }

  const auto lines = split(body, '\n');
  if (lines.empty() || !starts_with(lines[0], kHeaderPrefix)) {
    res.status = JournalLoadResult::Status::VersionMismatch;
    res.message = "missing or unrecognized journal header";
    return res;
  }
  const std::string after = lines[0].substr(std::string(kHeaderPrefix).size());
  const auto key_at = after.find(" key=");
  int version = -1;
  try {
    version = std::stoi(after.substr(0, key_at));
  } catch (const std::exception&) {
  }
  if (version != TuningJournal::kVersion) {
    res.status = JournalLoadResult::Status::VersionMismatch;
    res.message = str_cat("journal version ",
                          key_at == std::string::npos
                              ? after
                              : after.substr(0, key_at),
                          " != supported v", TuningJournal::kVersion);
    return res;
  }
  const std::string file_key =
      key_at == std::string::npos ? "" : after.substr(key_at + 5);
  if (file_key != run_key) {
    res.status = JournalLoadResult::Status::KeyMismatch;
    res.message = str_cat("journal belongs to run '", file_key,
                          "', expected '", run_key, "'");
    return res;
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (trim(lines[i]).empty()) continue;
    const auto cols = split(lines[i], '\t');
    if (cols.size() != 4) {
      ++res.skipped;
      telemetry::counter_add("journal.parse_errors");
      continue;
    }
    try {
      JournalRecord rec;
      rec.status = cols[0];
      rec.time_s = std::stod(cols[1]);
      rec.tflops = std::stod(cols[2]);
      if (out != nullptr) (*out)[cols[3]] = rec;  // duplicates: later wins
      ++res.replayed;
    } catch (const std::exception&) {
      ++res.skipped;
      telemetry::counter_add("journal.parse_errors");
    }
  }
  res.status = JournalLoadResult::Status::Replayed;
  return res;
}

JournalLoadResult TuningJournal::open(const std::string& path,
                                      const std::string& run_key,
                                      bool resume) {
  entries_.clear();
  recorded_ = 0;
  out_.close();

  JournalLoadResult res;
  std::string text;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }

  if (resume) {
    res = parse_journal_text(text, run_key, &entries_);
    if (res.status != JournalLoadResult::Status::Replayed) entries_.clear();
  } else {
    res.status = JournalLoadResult::Status::Fresh;
  }

  if (res.status == JournalLoadResult::Status::Replayed) {
    // Heal a torn tail before appending: rewrite the clean prefix so the
    // next record starts on its own line.
    if (res.torn_tail) {
      const auto last_nl = text.rfind('\n');
      std::ofstream rewrite(path, std::ios::trunc);
      if (!rewrite) {
        res.status = JournalLoadResult::Status::IoError;
        res.message = str_cat("cannot rewrite journal '", path, "'");
        entries_.clear();
        return res;
      }
      rewrite << text.substr(0, last_nl + 1);
    }
    out_.open(path, std::ios::app);
  } else {
    // Fresh start (explicitly requested, missing file, or an
    // incompatible journal being replaced).
    out_.open(path, std::ios::trunc);
    if (out_) out_ << header_line(run_key) << '\n' << std::flush;
  }
  if (!out_) {
    res.status = JournalLoadResult::Status::IoError;
    res.message = str_cat("cannot open journal '", path, "' for append");
    entries_.clear();
  }
  return res;
}

std::optional<JournalRecord> TuningJournal::lookup(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningJournal::record(const std::string& key, const std::string& status,
                           double time_s, double tflops) {
  if (!out_.is_open()) return;
  ARTEMIS_CHECK_MSG(key.find('\t') == std::string::npos &&
                        key.find('\n') == std::string::npos,
                    "journal keys must not contain tabs or newlines");
  std::ostringstream os;
  os.precision(17);
  os << status << '\t' << time_s << '\t' << tflops << '\t' << key << '\n';
  // Write-ahead: the record reaches the OS before its result is used, so
  // a kill at any later instant cannot lose this evaluation. The lock
  // keeps concurrent appends whole-line atomic.
  {
    const std::lock_guard<std::mutex> lock(write_mu_);
    out_ << os.str() << std::flush;
    ++recorded_;
  }
  telemetry::counter_add("journal.records");
}

}  // namespace artemis::robust
