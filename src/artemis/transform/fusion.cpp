#include "artemis/transform/fusion.hpp"

#include <algorithm>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::transform {

TimeTiledKernel time_tile_iterate(const ir::Program& prog,
                                  const ir::Step& iterate_step, int x) {
  ARTEMIS_CHECK(x >= 1);
  if (iterate_step.kind != ir::Step::Kind::Iterate ||
      iterate_step.body.size() < 2 ||
      iterate_step.body.back().kind != ir::Step::Kind::Swap) {
    throw SemanticError(
        "time tiling requires an iterate block of the form "
        "{ call(...); ...; swap(out, in); }");
  }
  std::vector<const ir::StencilCall*> body_calls;
  for (std::size_t i = 0; i + 1 < iterate_step.body.size(); ++i) {
    if (iterate_step.body[i].kind != ir::Step::Kind::Call) {
      throw SemanticError(
          "time tiling supports iterate bodies of calls ending in one swap");
    }
    body_calls.push_back(&iterate_step.body[i].call);
  }
  const ir::SwapStmt& swap = iterate_step.body.back().swap;
  const std::string& out_name = swap.a;
  const std::string& in_name = swap.b;

  // Arrays recomputed by the body each iteration (besides the ping-pong
  // output): per-step temporaries like denoise's diffusion coefficient.
  std::set<std::string> step_temps;
  bool writes_out = false;
  for (const ir::StencilCall* call : body_calls) {
    const ir::StencilDef* def = prog.find_stencil(call->callee);
    ARTEMIS_CHECK(def != nullptr);
    for (const auto& st : def->stmts) {
      if (st.declares_local) continue;
      const auto formal = std::find(def->params.begin(), def->params.end(),
                                    st.lhs_name);
      ARTEMIS_CHECK(formal != def->params.end());
      const std::string& actual = call->args[static_cast<std::size_t>(
          formal - def->params.begin())];
      if (actual == out_name) {
        writes_out = true;
      } else if (actual != in_name) {
        step_temps.insert(actual);
      }
    }
  }
  if (!writes_out) {
    throw SemanticError(
        "iterate body never writes the swapped output array");
  }

  TimeTiledKernel result;
  result.time_tile = x;
  result.augmented = prog;

  const ir::ArrayDecl* out_decl = prog.find_array(out_name);
  ARTEMIS_CHECK(out_decl != nullptr);

  // Ping-pong chain: input of step k.
  std::vector<std::string> chain;
  chain.push_back(in_name);
  for (int k = 0; k + 1 < x; ++k) {
    const std::string tmp = str_cat("__tt", k, "_", out_name);
    result.augmented.arrays.push_back({tmp, out_decl->dims});
    chain.push_back(tmp);
  }
  chain.push_back(out_name);

  // Per-step temporaries get private copies for non-final steps.
  for (int k = 0; k + 1 < x; ++k) {
    for (const auto& temp : step_temps) {
      const ir::ArrayDecl* decl = prog.find_array(temp);
      ARTEMIS_CHECK(decl != nullptr);
      result.augmented.arrays.push_back({str_cat("__tt", k, "_", temp),
                                         decl->dims});
    }
  }

  for (int k = 0; k < x; ++k) {
    const bool final_step = (k + 1 == x);
    for (std::size_t c = 0; c < body_calls.size(); ++c) {
      ir::StencilCall staged = *body_calls[c];
      for (auto& arg : staged.args) {
        if (arg == in_name) {
          arg = chain[static_cast<std::size_t>(k)];
        } else if (arg == out_name) {
          arg = chain[static_cast<std::size_t>(k + 1)];
        } else if (!final_step && step_temps.count(arg)) {
          arg = str_cat("__tt", k, "_", arg);
        }
      }
      result.stages.push_back(ir::bind_call(result.augmented, staged,
                                            str_cat("tt", k, "c", c, "_")));
    }
  }
  return result;
}

std::vector<ir::BoundStencil> bind_all_calls(const ir::Program& prog) {
  std::vector<ir::BoundStencil> stages;
  int idx = 0;
  for (const auto& step : prog.steps) {
    ARTEMIS_CHECK_MSG(step.kind == ir::Step::Kind::Call,
                      "bind_all_calls expects a flat call sequence");
    stages.push_back(ir::bind_call(prog, step.call, str_cat("f", idx++, "_")));
  }
  return stages;
}

ir::Program maxfuse_program(const ir::Program& prog) {
  const auto stages = bind_all_calls(prog);
  ARTEMIS_CHECK(!stages.empty());

  // A single fused stencil body executes all statements at one point
  // before moving on, so a statement may read an array produced by an
  // earlier statement only at the center point. Cross-point
  // producer/consumer DAGs must instead be planned as a staged kernel
  // (build_plan with multiple stages), which stages them around barriers.
  {
    std::set<std::string> written;
    for (const auto& stage : stages) {
      for (const auto& st : stage.stmts) {
        if (st.declares_local) continue;
        ir::visit(*st.rhs, [&](const ir::Expr& e) {
          if (e.kind != ir::ExprKind::ArrayRef || !written.count(e.name)) {
            return;
          }
          for (const auto& ix : e.indices) {
            if (ix.is_const() || ix.offset != 0) {
              throw SemanticError(str_cat(
                  "maxfuse: '", e.name,
                  "' is produced by an earlier statement and read at a "
                  "non-center offset; fuse these calls as a staged plan "
                  "instead"));
            }
          }
        });
        written.insert(st.lhs_name);
      }
    }
  }

  ir::Program fused = prog;
  fused.stencils.clear();
  fused.steps.clear();

  ir::StencilDef def;
  def.name = "maxfuse";
  def.pragma = stages.front().pragma;

  // Formal parameters: every distinct array and external scalar, bound to
  // themselves (the bound statements already carry actual names).
  std::set<std::string> params;
  for (const auto& stage : stages) {
    for (const auto& st : stage.stmts) {
      if (!st.declares_local) params.insert(st.lhs_name);
      ir::visit(*st.rhs, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::ArrayRef) params.insert(e.name);
        if (e.kind == ir::ExprKind::ScalarRef && prog.find_scalar(e.name)) {
          params.insert(e.name);
        }
      });
    }
    for (const auto& [name, space] : stage.resources.spaces) {
      def.resources.spaces[name] = space;
    }
    def.stmts.insert(def.stmts.end(), stage.stmts.begin(), stage.stmts.end());
  }
  def.params.assign(params.begin(), params.end());

  ir::StencilCall call;
  call.callee = def.name;
  call.args = def.params;  // identity binding

  fused.stencils.push_back(std::move(def));
  ir::Step step;
  step.kind = ir::Step::Kind::Call;
  step.call = std::move(call);
  fused.steps.push_back(std::move(step));
  ir::validate(fused);
  return fused;
}

}  // namespace artemis::transform
