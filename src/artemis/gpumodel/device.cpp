#include "artemis/gpumodel/device.hpp"

namespace artemis::gpumodel {

DeviceSpec p100() { return DeviceSpec{}; }

DeviceSpec v100() {
  DeviceSpec d;
  d.name = "V100";
  d.num_sms = 80;
  d.shmem_per_sm = 96 * 1024;
  d.shmem_per_block = 96 * 1024;
  d.l2_bytes = 6 * 1024 * 1024;
  d.peak_dp_flops = 7.8e12;
  d.dram_bytes_per_s = 900e9;
  d.tex_bytes_per_s = 2.7e12;
  d.shm_bytes_per_s = 13.8e12;
  return d;
}

DeviceSpec k40() {
  DeviceSpec d;
  d.name = "K40";
  d.num_sms = 15;
  d.max_blocks_per_sm = 16;
  d.shmem_per_sm = 48 * 1024;
  d.shmem_per_block = 48 * 1024;
  d.l2_bytes = 1536 * 1024;
  d.peak_dp_flops = 1.43e12;
  d.dram_bytes_per_s = 288e9;
  d.tex_bytes_per_s = 0.75e12;
  d.shm_bytes_per_s = 2.8e12;
  return d;
}

}  // namespace artemis::gpumodel
