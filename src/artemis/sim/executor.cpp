#include "artemis/sim/executor.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/hash.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/str.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/sim/interp.hpp"
#include "artemis/sim/native/native.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::sim {

const char* engine_name(SimEngine engine) {
  switch (engine) {
    case SimEngine::Bytecode:
      return "bytecode";
    case SimEngine::TreeWalk:
      return "treewalk";
    case SimEngine::Native:
      return "native";
  }
  return "bytecode";
}

SimEngine engine_by_name(const std::string& name) {
  if (name == "bytecode") return SimEngine::Bytecode;
  if (name == "tree" || name == "treewalk") return SimEngine::TreeWalk;
  if (name == "native") return SimEngine::Native;
  throw Error(str_cat("unknown sim engine '", name,
                      "' (expected tree, bytecode, or native)"));
}

namespace {

using codegen::KernelPlan;
using codegen::TilingScheme;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// --- stencil compilation dedup ---------------------------------------------
//
// Identical stages recur constantly: every block of every time step of a
// tuning evaluation compiles the same (plan, stage) statement list, and
// distinct plans over one program share stages verbatim. Content-hash the
// compilation inputs — the statement list plus the slot tables it is
// resolved against (slot numbering is plan-dependent) — and share one
// immutable CompiledStencil per key.

void hash_expr(ContentHasher& h, const ir::Expr& e) {
  const auto tag = static_cast<std::uint8_t>(e.kind);
  h.update(&tag, sizeof tag);
  const auto str = [&h](const std::string& s) {
    const auto n = static_cast<std::uint32_t>(s.size());
    h.update(&n, sizeof n);
    h.update(s);
  };
  switch (e.kind) {
    case ir::ExprKind::Number: {
      std::uint64_t bits;
      std::memcpy(&bits, &e.number, sizeof bits);
      h.update(&bits, sizeof bits);
      break;
    }
    case ir::ExprKind::ScalarRef:
      str(e.name);
      break;
    case ir::ExprKind::ArrayRef: {
      str(e.name);
      const auto n = static_cast<std::uint32_t>(e.indices.size());
      h.update(&n, sizeof n);
      for (const auto& ix : e.indices) {
        h.update(&ix.iter, sizeof ix.iter);
        h.update(&ix.offset, sizeof ix.offset);
      }
      break;
    }
    case ir::ExprKind::Binary: {
      const auto b = static_cast<std::uint8_t>(e.bop);
      h.update(&b, sizeof b);
      break;
    }
    case ir::ExprKind::Call:
      str(e.name);
      break;
    case ir::ExprKind::Unary:
      break;
  }
  const auto nargs = static_cast<std::uint32_t>(e.args.size());
  h.update(&nargs, sizeof nargs);
  for (const auto& a : e.args) hash_expr(h, *a);
}

std::string stencil_key(const std::vector<ir::Stmt>& stmts, int dims,
                        const SlotMap& arrays, const SlotMap& scalars) {
  ContentHasher h;
  const auto str = [&h](const std::string& s) {
    const auto n = static_cast<std::uint32_t>(s.size());
    h.update(&n, sizeof n);
    h.update(s);
  };
  const auto i32 = [&h](std::int32_t v) { h.update(&v, sizeof v); };
  i32(dims);
  i32(arrays.size());
  for (int s = 0; s < arrays.size(); ++s) str(arrays.name(s));
  i32(scalars.size());
  for (int s = 0; s < scalars.size(); ++s) str(scalars.name(s));
  i32(static_cast<std::int32_t>(stmts.size()));
  for (const auto& st : stmts) {
    const std::uint8_t flags = (st.declares_local ? 1 : 0) |
                               (st.accumulate ? 2 : 0);
    h.update(&flags, sizeof flags);
    str(st.lhs_name);
    i32(static_cast<std::int32_t>(st.lhs_indices.size()));
    for (const auto& ix : st.lhs_indices) {
      h.update(&ix.iter, sizeof ix.iter);
      h.update(&ix.offset, sizeof ix.offset);
    }
    hash_expr(h, *st.rhs);
  }
  return h.hex_digest();
}

std::shared_ptr<const CompiledStencil> compile_stmts_cached(
    const std::vector<ir::Stmt>& stmts, int dims, const SlotMap& arrays,
    const SlotMap& scalars) {
  static std::mutex mu;
  static std::map<std::string, std::shared_ptr<const CompiledStencil>> cache;
  constexpr std::size_t kMaxEntries = 1024;  // runaway-program backstop

  const std::string key = stencil_key(stmts, dims, arrays, scalars);
  {
    const std::lock_guard<std::mutex> lk(mu);
    if (const auto it = cache.find(key); it != cache.end()) {
      telemetry::counter_add("sim.compile_hits");
      return it->second;
    }
  }
  // Compile outside the lock; a throwing compilation caches nothing.
  auto cs = std::make_shared<const CompiledStencil>(
      compile_stmts(stmts, dims, arrays, scalars));
  const std::lock_guard<std::mutex> lk(mu);
  telemetry::counter_add("sim.compile_misses");
  if (cache.size() >= kMaxEntries) cache.clear();
  return cache.try_emplace(key, std::move(cs)).first->second;
}

/// A block-local scratch buffer standing in for the shared-memory (or
/// register-plane) storage of a fused internal array. Covers the block's
/// tile expanded by the plan's total halo; zero-initialized, like the
/// intermediate global arrays of the unfused reference schedule.
struct Scratch {
  std::array<std::int64_t, 3> lo = {0, 0, 0};  ///< global coords (z,y,x)
  Extents ext;
  std::vector<double> data;
  std::vector<std::uint8_t> written;  ///< guard-passed points only

  bool contains(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return z >= lo[0] && z < lo[0] + ext.z && y >= lo[1] &&
           y < lo[1] + ext.y && x >= lo[2] && x < lo[2] + ext.x;
  }
  std::size_t index(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return static_cast<std::size_t>(
        ((z - lo[0]) * ext.y + (y - lo[1])) * ext.x + (x - lo[2]));
  }
  double& at(std::int64_t z, std::int64_t y, std::int64_t x) {
    return data[index(z, y, x)];
  }
};

}  // namespace

ExecCounters execute_plan(const KernelPlan& plan, GridSet& gs,
                          const ExecOptions& opts) {
  telemetry::Span span("sim.execute_plan", "sim");
  span.arg("kernel", Json(plan.name));
  span.arg("engine", Json(engine_name(opts.engine)));
  robust::fault_point("sim.execute", plan.name);
  const bool hooked = static_cast<bool>(opts.global_hook);
  const bool serial = opts.serial || hooked;
  PlanTrace* trace = opts.trace;
  if (trace != nullptr) {
    ARTEMIS_CHECK_MSG(!hooked, "counting mode (ExecOptions::trace) and the "
                               "global-access hook are mutually exclusive");
    ARTEMIS_CHECK_MSG(opts.engine != SimEngine::TreeWalk,
                      "counting mode requires the bytecode or native engine");
    *trace = PlanTrace{};
  }
  ExecCounters totals;
  const int dims = plan.dims;

  // --- geometry: block grid over tiled axes --------------------------------
  std::array<std::int64_t, 3> tile = {1, 1, 1};   // x, y, z
  std::array<std::int64_t, 3> domain = {plan.domain.x, plan.domain.y,
                                        plan.domain.z};
  for (int a = 0; a < dims; ++a) {
    tile[static_cast<std::size_t>(a)] =
        std::min(plan.tile_extent(a), domain[static_cast<std::size_t>(a)]);
  }
  const int sweep_axis = dims - 1;
  if (plan.config.tiling == TilingScheme::StreamSerial) {
    tile[static_cast<std::size_t>(sweep_axis)] =
        domain[static_cast<std::size_t>(sweep_axis)];
  } else if (plan.config.tiling == TilingScheme::StreamConcurrent) {
    tile[static_cast<std::size_t>(sweep_axis)] =
        std::min<std::int64_t>(plan.config.stream_chunk,
                               domain[static_cast<std::size_t>(sweep_axis)]);
  }
  std::array<std::int64_t, 3> nblocks = {1, 1, 1};
  for (int a = 0; a < dims; ++a) {
    nblocks[static_cast<std::size_t>(a)] =
        ceil_div(domain[static_cast<std::size_t>(a)],
                 tile[static_cast<std::size_t>(a)]);
  }
  const std::int64_t total_blocks = nblocks[0] * nblocks[1] * nblocks[2];
  totals.blocks = total_blocks;

  // The streamed axis of serial streaming carries no recompute expansion
  // (Fig. 1c); spatial tiling expands every axis.
  auto expansion = [&](std::size_t stage, int axis) -> std::int64_t {
    if (plan.config.tiling == TilingScheme::StreamSerial &&
        axis == sweep_axis) {
      return 0;
    }
    return plan.stage_expand[stage][static_cast<std::size_t>(axis)];
  };
  bool recompute = false;
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    for (int a = 0; a < dims; ++a) {
      if (expansion(s, a) != 0) recompute = true;
    }
  }

  // --- arrays whose reads could observe another point's write: snapshot ----
  const std::set<std::string> internals(plan.internal_arrays.begin(),
                                        plan.internal_arrays.end());
  std::map<std::string, Grid3D> snapshots;
  for (const auto& [name, ai] : plan.info.arrays) {
    if (internals.count(name)) continue;
    if (needs_snapshot(ai, dims, recompute)) snapshots.emplace(name, gs.grid(name));
  }

  // --- slot resolution: names bind once per plan, not once per point ------
  SlotMap arrays;
  for (const auto& [name, ai] : plan.info.arrays) arrays.add(name);
  SlotMap scalar_slots;
  std::vector<double> scalar_vals;
  std::map<std::string, double> env;  // tree-walk engine's environment
  for (const auto& name : plan.info.scalars_read) {
    scalar_slots.add(name);
    scalar_vals.push_back(gs.scalar(name));
    env[name] = gs.scalar(name);
  }

  std::vector<std::shared_ptr<const CompiledStencil>> compiled;
  if (opts.engine != SimEngine::TreeWalk) {
    compiled.reserve(plan.stages.size());
    for (const auto& stage : plan.stages) {
      compiled.push_back(
          compile_stmts_cached(stage.stmts, dims, arrays, scalar_slots));
    }
  }

  // Native engine: lower each compiled stage once per plan execution
  // (cheap next to compilation); stages the lowering refuses — and any
  // hooked run — fall back to the bytecode engine, whose semantics the
  // native tier reproduces bit-identically in strict mode.
  const bool native = opts.engine == SimEngine::Native && !hooked;
  std::vector<native::LowerResult> lowered;
  const native::Tier tier = native ? native::active_tier()
                                   : native::Tier::Scalar;
  if (native) {
    span.arg("native_tier", Json(native::tier_name(tier)));
    std::vector<std::uint8_t> is_scratch(
        static_cast<std::size_t>(arrays.size()), 0);
    for (const auto& name : plan.internal_arrays) {
      is_scratch[static_cast<std::size_t>(arrays.slot(name))] = 1;
    }
    lowered.reserve(compiled.size());
    for (const auto& cs : compiled) {
      lowered.push_back(
          native::lower_stencil(*cs, is_scratch, opts.native_fast_math));
      telemetry::counter_add(lowered.back().ok ? "sim.native_stages"
                                               : "sim.native_fallbacks");
    }
  }

  // External arrays look the same from every block; internal slots are
  // patched per block with that block's scratch window.
  std::vector<ArrayView> base_views(static_cast<std::size_t>(arrays.size()));
  for (int slot = 0; slot < arrays.size(); ++slot) {
    const std::string& name = arrays.name(slot);
    ArrayView& v = base_views[static_cast<std::size_t>(slot)];
    v.name = &arrays.name(slot);
    Grid3D& g = gs.grid(name);
    const Extents e = g.extents();
    v.ez = e.z;
    v.ey = e.y;
    v.ex = e.x;
    v.wz = e.z;
    v.wy = e.y;
    v.wx = e.x;
    v.write = g.data();
    const auto snap = snapshots.find(name);
    v.read = snap != snapshots.end() ? snap->second.data() : g.data();
  }

  // Counting mode: lay the arrays out in one flat, disjoint, line-aligned
  // byte address space (slot order), the coordinate system of the line
  // streams. Internal arrays keep a base too: their scratch accesses are
  // never recorded, but materialized write-backs target the global copy.
  if (trace != nullptr) {
    std::uint64_t next_base = 0;
    for (auto& v : base_views) {
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(v.wz * v.wy * v.wx) * sizeof(double);
      v.elem_base = next_base;
      next_base += (bytes + kTraceLineBytes - 1) / kTraceLineBytes *
                   kTraceLineBytes;
      trace->arrays.push_back(
          {*v.name, v.elem_base,
           static_cast<std::int64_t>(v.wz * v.wy * v.wx)});
    }
    // Line ids are 31-bit in the stream (see kTraceWriteBit); 64 GiB of
    // flat address space is far beyond any simulated grid set.
    ARTEMIS_CHECK_MSG(next_base / kTraceLineBytes < (1ull << 31),
                      "counting-mode address space overflows 31-bit line "
                      "ids");
    trace->stages.resize(plan.stages.size());
  }

  // --- one block of the sweep ----------------------------------------------
  // Counters accumulate into a per-block slot so totals reduce in block
  // order, independent of worker scheduling.
  const auto block_geometry = [&](std::int64_t block_id,
                                  std::array<std::int64_t, 3>& own_lo,
                                  std::array<std::int64_t, 3>& own_hi) {
    std::array<std::int64_t, 3> bc;  // block coords, x fastest
    bc[0] = block_id % nblocks[0];
    bc[1] = (block_id / nblocks[0]) % nblocks[1];
    bc[2] = block_id / (nblocks[0] * nblocks[1]);
    own_lo = {0, 0, 0};
    own_hi = {1, 1, 1};  // exclusive; x, y, z ordered
    for (int a = 0; a < dims; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      own_lo[idx] = bc[idx] * tile[idx];
      own_hi[idx] = std::min(own_lo[idx] + tile[idx], domain[idx]);
    }
  };

  const auto make_scratch = [&](const std::array<std::int64_t, 3>& own_lo,
                                const std::array<std::int64_t, 3>& own_hi) {
    // Tile expanded by the total plan halo (a superset of any stage's
    // requirement).
    std::map<std::string, Scratch> scratch;
    for (const auto& name : plan.internal_arrays) {
      Scratch s;
      std::array<std::int64_t, 3> ext = {1, 1, 1};
      for (int a = 0; a < dims; ++a) {
        const auto idx = static_cast<std::size_t>(a);
        const std::int64_t h =
            (plan.config.tiling == TilingScheme::StreamSerial &&
             a == sweep_axis)
                ? 0
                : plan.radius[idx];
        s.lo[2 - a] = own_lo[idx] - h;  // Scratch::lo is (z,y,x)
        ext[idx] = (own_hi[idx] - own_lo[idx]) + 2 * h;
      }
      s.ext = {ext[2], ext[1], ext[0]};
      s.data.assign(static_cast<std::size_t>(s.ext.volume()), 0.0);
      s.written.assign(static_cast<std::size_t>(s.ext.volume()), 0);
      scratch.emplace(name, std::move(s));
    }
    return scratch;
  };

  // Stage compute region (zyx, clamped to the domain) for a block.
  const auto stage_region = [&](std::size_t s,
                                const std::array<std::int64_t, 3>& own_lo,
                                const std::array<std::int64_t, 3>& own_hi) {
    std::array<std::int64_t, 3> lo = own_lo, hi = own_hi;
    for (int a = 0; a < dims; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      const std::int64_t e = expansion(s, a);
      lo[idx] = std::max<std::int64_t>(lo[idx] - e, 0);
      hi[idx] = std::min(hi[idx] + e, domain[idx]);
    }
    BcRegion r;
    r.lo = {dims >= 3 ? lo[2] : 0, dims >= 2 ? lo[1] : 0, lo[0]};
    r.hi = {dims >= 3 ? hi[2] : 1, dims >= 2 ? hi[1] : 1, hi[0]};
    return r;
  };

  const auto commit_box = [&](const std::array<std::int64_t, 3>& own_lo,
                              const std::array<std::int64_t, 3>& own_hi) {
    BcRegion r;
    r.lo = {dims >= 3 ? own_lo[2] : 0, dims >= 2 ? own_lo[1] : 0, own_lo[0]};
    r.hi = {dims >= 3 ? own_hi[2] : 1, dims >= 2 ? own_hi[1] : 1, own_hi[0]};
    return r;
  };

  // Write back internal arrays that are also program outputs: the owned
  // tile of their scratch commits to global memory.
  const auto materialize = [&](std::map<std::string, Scratch>& scratch,
                               const BcRegion& own, BcCounters& c,
                               StageTrace* wb) {
    for (const auto& name : plan.materialized_internals) {
      auto& s = scratch.at(name);
      Grid3D& g = gs.grid(name);
      const ArrayView& v =
          base_views[static_cast<std::size_t>(arrays.slot(name))];
      for (std::int64_t z = own.lo[0]; z < own.hi[0]; ++z) {
        for (std::int64_t y = own.lo[1]; y < own.hi[1]; ++y) {
          for (std::int64_t x = own.lo[2]; x < own.hi[2]; ++x) {
            if (!g.in_bounds(z, y, x)) continue;
            if (!s.written[s.index(z, y, x)]) continue;
            g.at(z, y, x) = s.at(z, y, x);
            ++c.gwrites;
            if (hooked) opts.global_hook(name, z, y, x, true);
            if (wb != nullptr) {
              const std::uint64_t idx =
                  static_cast<std::uint64_t>((z * v.wy + y) * v.wx + x);
              wb->record(v.elem_base + idx * sizeof(double),
                         /*is_write=*/true);
            }
          }
        }
      }
    }
  };

  // Per-block counting slots: stage traces plus one write-back trace,
  // merged in block order after the sweep (same determinism argument as
  // the counter reduction).
  struct BlockTrace {
    std::vector<StageTrace> stages;
    StageTrace writeback;
  };

  const auto run_block_compiled = [&](std::int64_t block_id, BcCounters& c,
                                      BlockTrace* bt) {
    std::array<std::int64_t, 3> own_lo, own_hi;
    block_geometry(block_id, own_lo, own_hi);
    auto scratch = make_scratch(own_lo, own_hi);

    std::vector<ArrayView> views = base_views;
    for (auto& [name, s] : scratch) {
      const int slot = arrays.slot(name);
      ARTEMIS_CHECK(slot >= 0);
      ArrayView& v = views[static_cast<std::size_t>(slot)];
      v.read = s.data.data();
      v.write = s.data.data();
      v.written = s.written.data();
      v.scratch = true;
      v.lo_z = s.lo[0];
      v.lo_y = s.lo[1];
      v.lo_x = s.lo[2];
      v.wz = s.ext.z;
      v.wy = s.ext.y;
      v.wx = s.ext.x;
    }

    const BcRegion own = commit_box(own_lo, own_hi);
    const GlobalAccessHook* hook = hooked ? &opts.global_hook : nullptr;
    if (bt != nullptr) bt->stages.resize(plan.stages.size());
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      StageTrace* st = bt != nullptr ? &bt->stages[s] : nullptr;
      if (native && lowered[s].ok) {
        native::run_native_region(lowered[s].prog, *compiled[s], views,
                                  scalar_vals.data(),
                                  stage_region(s, own_lo, own_hi), own,
                                  /*drop_outside_commit=*/true, c, st, tier);
      } else {
        run_compiled_region(*compiled[s], views, scalar_vals.data(),
                            stage_region(s, own_lo, own_hi), own,
                            /*drop_outside_commit=*/true, c, hook, st);
      }
    }
    materialize(scratch, own, c, bt != nullptr ? &bt->writeback : nullptr);
  };

  // The tree-walking oracle: identical semantics, one recursive evaluation
  // per point (kept for differential testing of the compiled engine).
  const auto run_block_treewalk = [&](std::int64_t block_id, BcCounters& c) {
    std::array<std::int64_t, 3> own_lo, own_hi;
    block_geometry(block_id, own_lo, own_hi);
    auto scratch = make_scratch(own_lo, own_hi);

    const ArrayReader reader = [&](const std::string& name, std::int64_t z,
                                   std::int64_t y,
                                   std::int64_t x) -> std::optional<double> {
      if (const auto it = scratch.find(name); it != scratch.end()) {
        // Reads outside the domain veto the point, mirroring the unfused
        // schedule where the intermediate array has no such element.
        const Grid3D& shape = gs.grid(name);
        if (!shape.in_bounds(z, y, x)) return std::nullopt;
        ARTEMIS_CHECK_MSG(it->second.contains(z, y, x),
                          "internal read of '"
                              << name << "' at (" << z << "," << y << "," << x
                              << ") escapes its scratch region: plan halo "
                                 "geometry is wrong");
        ++c.sreads;
        return it->second.at(z, y, x);
      }
      const auto snap = snapshots.find(name);
      const Grid3D& g =
          snap != snapshots.end() ? snap->second : gs.grid(name);
      if (!g.in_bounds(z, y, x)) return std::nullopt;
      ++c.greads;
      if (hooked) opts.global_hook(name, z, y, x, false);
      return g.at(z, y, x);
    };

    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const ArrayWriter writer = [&](const std::string& name, std::int64_t z,
                                     std::int64_t y, std::int64_t x,
                                     double v) {
        if (const auto it = scratch.find(name); it != scratch.end()) {
          ARTEMIS_CHECK_MSG(it->second.contains(z, y, x),
                            "internal write of '" << name
                                                  << "' escapes scratch");
          it->second.at(z, y, x) = v;
          it->second.written[it->second.index(z, y, x)] = 1;
          ++c.swrites;
          return;
        }
        // External arrays commit only inside the owned tile to avoid
        // double-writes from overlapping expanded regions.
        const bool owned = z >= (dims >= 3 ? own_lo[2] : 0) &&
                           z < (dims >= 3 ? own_hi[2] : 1) &&
                           y >= (dims >= 2 ? own_lo[1] : 0) &&
                           y < (dims >= 2 ? own_hi[1] : 1) &&
                           x >= own_lo[0] && x < own_hi[0];
        if (!owned) return;
        gs.grid(name).at(z, y, x) = v;
        ++c.gwrites;
        if (hooked) opts.global_hook(name, z, y, x, true);
      };

      const BcRegion reg = stage_region(s, own_lo, own_hi);
      std::vector<std::int64_t> itv(static_cast<std::size_t>(dims), 0);
      for (std::int64_t z = reg.lo[0]; z < reg.hi[0]; ++z) {
        for (std::int64_t y = reg.lo[1]; y < reg.hi[1]; ++y) {
          for (std::int64_t x = reg.lo[2]; x < reg.hi[2]; ++x) {
            if (dims == 3) {
              itv = {z, y, x};
            } else if (dims == 2) {
              itv = {y, x};
            } else {
              itv = {x};
            }
            if (apply_stmts_at_point(plan.stages[s].stmts, env, itv, reader,
                                     writer)) {
              ++c.computed;
            } else {
              ++c.skipped;
            }
          }
        }
      }
    }

    materialize(scratch, commit_box(own_lo, own_hi), c, nullptr);
  };

  std::vector<BcCounters> block_counters(
      static_cast<std::size_t>(total_blocks));
  std::vector<BlockTrace> block_traces(
      trace != nullptr ? static_cast<std::size_t>(total_blocks) : 0);
  const auto run_block = [&](std::int64_t b) {
    BcCounters c;
    if (opts.engine != SimEngine::TreeWalk) {
      run_block_compiled(b, c,
                         trace != nullptr
                             ? &block_traces[static_cast<std::size_t>(b)]
                             : nullptr);
    } else {
      run_block_treewalk(b, c);
    }
    block_counters[static_cast<std::size_t>(b)] = c;
  };

  int jobs = 1;
  if (!serial) {
    jobs = opts.jobs > 0 ? opts.jobs : default_jobs();
    jobs = static_cast<int>(
        std::min<std::int64_t>(jobs, std::max<std::int64_t>(total_blocks, 1)));
  }
  span.arg("jobs", Json(jobs));
  if (jobs < 2 || TaskPool::inside_worker()) {
    for (std::int64_t b = 0; b < total_blocks; ++b) run_block(b);
  } else {
    TaskPool pool(jobs);
    pool.for_each(total_blocks, run_block);
  }

  // Deterministic reduction: block order, not completion order. Reserve
  // the concatenated stream sizes up front so the merge copies each
  // entry exactly once.
  if (trace != nullptr) {
    for (std::size_t s = 0; s < trace->stages.size(); ++s) {
      std::size_t total = 0;
      for (const auto& bt : block_traces) total += bt.stages[s].lines.size();
      trace->stages[s].lines.reserve(total);
    }
    for (auto& bt : block_traces) {
      for (std::size_t s = 0; s < trace->stages.size(); ++s) {
        trace->stages[s] += bt.stages[s];
      }
      trace->writeback += bt.writeback;
    }
  }
  BcCounters sum;
  for (const auto& c : block_counters) sum += c;
  totals.computed_points = sum.computed;
  totals.skipped_points = sum.skipped;
  totals.global_read_elems = sum.greads;
  totals.global_write_elems = sum.gwrites;
  totals.scratch_read_elems = sum.sreads;
  totals.scratch_write_elems = sum.swrites;
  return totals;
}

}  // namespace artemis::sim
