#include "artemis/transform/retime.hpp"

#include <algorithm>
#include <optional>

#include "artemis/common/check.hpp"

namespace artemis::transform {

namespace {

using ir::BinOp;
using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;

/// Expansion cap: products of long sums are kept whole rather than blown
/// up combinatorially.
constexpr std::size_t kMaxDistributedTerms = 64;

/// Flatten `e` into signed terms, distributing multiplication (and the
/// numerator of division) over embedded +/- chains — the "associativity
/// and distributivity" step of Section III-B2 that exposes per-plane
/// accumulation statements.
void collect_terms(const ExprPtr& e, bool negate,
                   std::vector<std::pair<ExprPtr, bool>>& terms) {
  if (e->kind == ExprKind::Binary &&
      (e->bop == BinOp::Add || e->bop == BinOp::Sub)) {
    collect_terms(e->args[0], negate, terms);
    collect_terms(e->args[1], negate ^ (e->bop == BinOp::Sub), terms);
    return;
  }
  if (e->kind == ExprKind::Unary) {
    collect_terms(e->args[0], !negate, terms);
    return;
  }
  if (e->kind == ExprKind::Binary && e->bop == BinOp::Mul) {
    std::vector<std::pair<ExprPtr, bool>> lhs, rhs;
    collect_terms(e->args[0], false, lhs);
    collect_terms(e->args[1], false, rhs);
    if (lhs.size() * rhs.size() > 1 &&
        lhs.size() * rhs.size() <= kMaxDistributedTerms) {
      for (const auto& [le, ls] : lhs) {
        for (const auto& [re, rs] : rhs) {
          terms.emplace_back(ir::mul(le, re), negate ^ ls ^ rs);
        }
      }
      return;
    }
  }
  if (e->kind == ExprKind::Binary && e->bop == BinOp::Div) {
    std::vector<std::pair<ExprPtr, bool>> num;
    collect_terms(e->args[0], false, num);
    if (num.size() > 1 && num.size() <= kMaxDistributedTerms) {
      for (const auto& [ne, ns] : num) {
        terms.emplace_back(ir::div(ne, e->args[1]), negate ^ ns);
      }
      return;
    }
  }
  terms.emplace_back(e, negate);
}

/// Offset along `stream_iter` shared by all array reads in `e`, or
/// nullopt when reads disagree. Returns 0 when no read uses the iterator.
std::optional<std::int64_t> common_stream_offset(const Expr& e,
                                                 int stream_iter) {
  std::optional<std::int64_t> common;
  bool conflict = false;
  ir::visit(e, [&](const Expr& n) {
    if (n.kind != ExprKind::ArrayRef) return;
    for (const auto& ix : n.indices) {
      if (!ix.is_const() && ix.iter == stream_iter) {
        if (!common) {
          common = ix.offset;
        } else if (*common != ix.offset) {
          conflict = true;
        }
      }
    }
  });
  if (conflict) return std::nullopt;
  return common.value_or(0);
}

}  // namespace

std::vector<ir::Stmt> decompose_statement(const ir::Stmt& stmt) {
  if (stmt.declares_local) return {stmt};
  std::vector<std::pair<ExprPtr, bool>> terms;
  collect_terms(stmt.rhs, /*negate=*/false, terms);
  if (terms.size() <= 1) return {stmt};

  std::vector<ir::Stmt> out;
  out.reserve(terms.size());
  for (std::size_t t = 0; t < terms.size(); ++t) {
    ir::Stmt sub;
    sub.lhs_name = stmt.lhs_name;
    sub.lhs_indices = stmt.lhs_indices;
    sub.rhs = terms[t].second ? ir::unary_neg(terms[t].first) : terms[t].first;
    // The first sub-statement seeds the accumulator unless the original
    // statement was itself accumulating.
    sub.accumulate = (t > 0) || stmt.accumulate;
    out.push_back(std::move(sub));
  }
  return out;
}

bool is_homogenizable(const ir::Expr& e, int stream_iter) {
  return common_stream_offset(e, stream_iter).has_value();
}

RetimeResult try_retime(const std::vector<ir::Stmt>& stmts, int stream_iter) {
  RetimeResult result;
  bool all_homogenizable = true;

  for (const auto& stmt : stmts) {
    for (auto& sub : decompose_statement(stmt)) {
      std::int64_t offset = 0;
      if (!sub.declares_local) {
        ++result.num_substatements;
        const auto common = common_stream_offset(*sub.rhs, stream_iter);
        if (!common) {
          all_homogenizable = false;
        } else {
          offset = *common;
        }
      } else {
        // Local temporaries must themselves be stream-invariant (offset 0)
        // to be computed once per retimed plane.
        const auto common = common_stream_offset(*sub.rhs, stream_iter);
        if (!common || *common != 0) all_homogenizable = false;
      }
      result.stream_offsets.push_back(offset);
      result.stmts.push_back(std::move(sub));
    }
  }

  result.applied = all_homogenizable;
  if (!result.applied) {
    // Echo the decomposed list but zero the (meaningless) shifts.
    std::fill(result.stream_offsets.begin(), result.stream_offsets.end(), 0);
  }
  return result;
}

}  // namespace artemis::transform
