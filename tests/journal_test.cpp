#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/storage/crash_check.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::robust {
namespace {

using Status = JournalLoadResult::Status;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = str_cat("/tmp/artemis_journal_test_",
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name(),
                    ".wal");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_file() const {
    std::ifstream in(path_);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  void write_file(const std::string& text) const {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }

  std::string path_;
};

TEST_F(JournalTest, FreshOpenRecordsAndResumes) {
  {
    TuningJournal j;
    const auto res = j.open(path_, "runA", /*resume=*/false);
    EXPECT_EQ(res.status, Status::Fresh);
    ASSERT_TRUE(j.active());
    j.record("cfg1", "ok", 1.5e-3, 0.8);
    j.record("cfg2", "infeasible", 0, 0);
    EXPECT_EQ(j.recorded(), 2u);
  }  // close = crash at an arbitrary later point

  TuningJournal j2;
  const auto res = j2.open(path_, "runA", /*resume=*/true);
  EXPECT_EQ(res.status, Status::Replayed);
  EXPECT_EQ(res.replayed, 2u);
  EXPECT_EQ(res.skipped, 0u);
  EXPECT_FALSE(res.torn_tail);
  const auto rec = j2.lookup("cfg1");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, "ok");
  EXPECT_DOUBLE_EQ(rec->time_s, 1.5e-3);
  EXPECT_DOUBLE_EQ(rec->tflops, 0.8);
  EXPECT_EQ(j2.lookup("cfg2")->status, "infeasible");
  EXPECT_FALSE(j2.lookup("cfg3").has_value());
}

TEST_F(JournalTest, DuplicateKeysLaterRecordWins) {
  {
    TuningJournal j;
    j.open(path_, "runA", false);
    j.record("cfg", "crash", 0, 0);
    j.record("cfg", "ok", 2e-3, 0.5);  // retry on a later run succeeded
  }
  TuningJournal j2;
  const auto res = j2.open(path_, "runA", true);
  EXPECT_EQ(res.replayed, 2u);
  EXPECT_EQ(j2.replay_size(), 1u) << "same key collapses to one entry";
  EXPECT_EQ(j2.lookup("cfg")->status, "ok");
}

TEST_F(JournalTest, TornFinalLineIsDroppedAndHealed) {
  {
    TuningJournal j;
    j.open(path_, "runA", false);
    j.record("cfg1", "ok", 1e-3, 0.4);
    j.record("cfg2", "ok", 2e-3, 0.3);
  }
  // Simulate a kill mid-write: append half a record with no newline.
  {
    std::ofstream out(path_, std::ios::app);
    out << "ok\t3e-3\t0.2";
  }
  TuningJournal j2;
  const auto res = j2.open(path_, "runA", true);
  EXPECT_EQ(res.status, Status::Replayed);
  EXPECT_TRUE(res.torn_tail);
  EXPECT_EQ(res.replayed, 2u) << "the torn record is not trusted";
  j2.record("cfg3", "ok", 4e-3, 0.1);
  // The healed file holds intact lines only: the torn fragment is gone
  // and the new record starts on its own line.
  const std::string text = read_file();
  EXPECT_EQ(text.find("3e-3"), std::string::npos);
  EXPECT_NE(text.find("cfg3"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  TuningJournal j3;
  EXPECT_EQ(j3.open(path_, "runA", true).replayed, 3u);
}

TEST_F(JournalTest, VersionMismatchStartsFresh) {
  write_file("#artemis-tuning-journal v999 key=runA\n"
             "ok\t1e-3\t0.4\tcfg1\n");
  TuningJournal j;
  const auto res = j.open(path_, "runA", true);
  EXPECT_EQ(res.status, Status::VersionMismatch);
  EXPECT_EQ(j.replay_size(), 0u) << "incompatible records are not replayed";
  ASSERT_TRUE(j.active());
  // The file was replaced by a fresh v1 journal.
  EXPECT_NE(read_file().find("#artemis-tuning-journal v1 key=runA"),
            std::string::npos);
}

TEST_F(JournalTest, RunKeyMismatchStartsFresh) {
  {
    TuningJournal j;
    j.open(path_, "runA", false);
    j.record("cfg1", "ok", 1e-3, 0.4);
  }
  TuningJournal j2;
  const auto res = j2.open(path_, "runB", true);
  EXPECT_EQ(res.status, Status::KeyMismatch);
  EXPECT_EQ(j2.replay_size(), 0u)
      << "another run's journal must never be replayed";
}

TEST_F(JournalTest, MissingFileIsAFreshStart) {
  TuningJournal j;
  const auto res = j.open(path_, "runA", true);
  EXPECT_EQ(res.status, Status::Missing);
  EXPECT_TRUE(j.active());
  j.record("cfg1", "ok", 1e-3, 0.4);
  EXPECT_EQ(j.recorded(), 1u);
}

TEST_F(JournalTest, MalformedInteriorLinesSkippedNotFatal) {
  write_file("#artemis-tuning-journal v1 key=runA\n"
             "ok\t1e-3\t0.4\tcfg1\n"
             "complete garbage with no tabs\n"
             "ok\tnotanumber\t0.4\tcfg2\n"
             "ok\t2e-3\t0.3\tcfg3\n");
  std::map<std::string, JournalRecord> out;
  const auto res = parse_journal_text(read_file(), "runA", &out);
  EXPECT_EQ(res.status, Status::Replayed);
  EXPECT_EQ(res.replayed, 2u);
  EXPECT_EQ(res.skipped, 2u);
  EXPECT_EQ(out.count("cfg1"), 1u);
  EXPECT_EQ(out.count("cfg3"), 1u);
}

TEST_F(JournalTest, RecordRejectsKeysWithSeparators) {
  TuningJournal j;
  j.open(path_, "runA", false);
  EXPECT_THROW(j.record("bad\tkey", "ok", 0, 0), Error);
  EXPECT_THROW(j.record("bad\nkey", "ok", 0, 0), Error);
}

// ---- crash-at-every-op sweep (mini-ALICE, docs/ROBUSTNESS.md) ---------------

TEST(JournalCrashSweep, SyncedRecordsSurviveEveryCrashPoint) {
  // The journal's durability contract: a record whose record() returned
  // survives ANY later crash instant. Completed record() calls are
  // visible in the trace as fsyncs of the journal file, so the invariant
  // is computable per prefix: replayed >= (syncs in prefix) - 1 (the
  // first sync covers the header).
  using storage::MemVfs;
  using storage::VfsOp;
  MemVfs vfs;
  vfs.set_record_trace(true);
  const std::string run_key = "prog/artemis/P100";
  {
    TuningJournal journal(vfs);
    const auto load = journal.open("tune.wal", run_key, /*resume=*/false);
    ASSERT_EQ(load.status, Status::Fresh);
    for (int i = 0; i < 6; ++i) {
      journal.record("cand" + std::to_string(i), "ok", 1e-3 * (i + 1), 2.0);
    }
  }
  const auto trace = vfs.trace();
  const auto syncs_in_prefix = [&](std::size_t k) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (trace[i].kind == VfsOp::Kind::Sync && trace[i].path == "tune.wal") {
        ++n;
      }
    }
    return n;
  };
  // storage::crash_sweep's invariant has no access to the prefix index k,
  // and the invariant here ("replayed >= completed syncs - 1") depends on
  // it — so run the (k, variant) sweep directly.
  std::size_t states = 0;
  for (std::size_t k = 0; k <= trace.size(); ++k) {
    const std::size_t syncs = syncs_in_prefix(k);
    const std::size_t must_have = syncs == 0 ? 0 : syncs - 1;
    for (const std::uint64_t variant : storage::default_crash_variants()) {
      ++states;
      auto state = storage::replay_prefix(trace, k, variant);
      std::map<std::string, JournalRecord> rec;
      const auto text = state->read("tune.wal").value_or("");
      const auto parsed = parse_journal_text(text, run_key, &rec);
      if (syncs > 0 && parsed.status != Status::Replayed &&
          parsed.status != Status::Missing) {
        // Before the header sync lands the file may be torn arbitrarily;
        // after it, the journal must parse.
        ADD_FAILURE() << "k=" << k << " variant=" << variant
                      << ": journal unreadable (" << parsed.message << ")";
        continue;
      }
      EXPECT_GE(parsed.replayed, must_have)
          << "k=" << k << " variant=" << variant
          << ": a completed record was lost";
      EXPECT_EQ(parsed.skipped, 0u)
          << "k=" << k << " variant=" << variant
          << ": a malformed interior line appeared";
      // Recovery must be able to continue the journal: open with resume
      // heals any torn tail (or replaces an unusable file) and appends.
      TuningJournal cont(*state);
      cont.open("tune.wal", run_key, /*resume=*/true);
      EXPECT_TRUE(cont.active())
          << "k=" << k << " variant=" << variant
          << ": journal would not reopen after recovery";
      cont.record("after-crash", "ok", 1.0, 1.0);
      std::map<std::string, JournalRecord> reread;
      parse_journal_text(state->read("tune.wal").value_or(""), run_key,
                         &reread);
      EXPECT_TRUE(reread.count("after-crash") > 0)
          << "k=" << k << " variant=" << variant
          << ": journal could not continue after recovery";
    }
  }
  EXPECT_EQ(states,
            (trace.size() + 1) * storage::default_crash_variants().size());
}

TEST(JournalFaults, WriteFailureDeactivatesInsteadOfAborting) {
  // A filesystem that starts failing mid-run must not take tuning down
  // with it: the failing record() deactivates the journal (counted as
  // journal.write_errors) and later record() calls become no-ops.
  storage::MemVfs mem;
  {
    TuningJournal seedj(mem);
    seedj.open("tune.wal", "runA", /*resume=*/false);
    seedj.record("cfg1", "ok", 1e-3, 0.4);
  }
  FaultSpec spec;
  spec.fs_fail_p = 1.0;
  spec.site = "fs.write";  // appends fail; open's read/create still work
  storage::FaultVfs faulty(mem, spec);
  TuningJournal j(faulty);
  const auto res = j.open("tune.wal", "runA", /*resume=*/true);
  ASSERT_EQ(res.status, Status::Replayed);
  ASSERT_TRUE(j.active());
  j.record("cfg2", "ok", 2e-3, 0.5);  // injected EIO — swallowed
  EXPECT_FALSE(j.active());
  EXPECT_EQ(j.recorded(), 0u);
  j.record("cfg3", "ok", 3e-3, 0.6);  // no-op, must not throw
  EXPECT_EQ(faulty.counters().failures.load(), 1u)
      << "exactly the one failing append was injected";
  // The journal on disk is untouched by the failed appends.
  TuningJournal check(mem);
  EXPECT_EQ(check.open("tune.wal", "runA", true).replayed, 1u);
}

// ---- resume-after-kill round trip through the tuner -------------------------

class JournalTuneTest : public JournalTest {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;
};

TEST_F(JournalTuneTest, ResumedTuneReplaysAndMatchesUninterruptedRun) {
  const auto prog = stencils::benchmark_program("miniflux", 128);
  const autotune::PlanFactory factory =
      [&prog, this](const codegen::KernelConfig& cfg) {
        return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg,
                                            dev_);
      };
  const codegen::KernelConfig seed;

  // Uninterrupted journaled run.
  autotune::TuneOptions opts;
  TuningJournal journal;
  journal.open(path_, "runA", false);
  opts.journal = &journal;
  opts.journal_scope = "miniflux";
  const auto full = autotune::hierarchical_tune(factory, seed, dev_,
                                                params_, opts);
  EXPECT_EQ(full.journal_hits, 0);
  const std::size_t total = journal.recorded();
  ASSERT_GT(total, 100u);

  // Simulate a kill partway through: keep the header and the first half
  // of the records, tearing the final kept line mid-write.
  const std::string text = read_file();
  std::size_t cut = text.size() / 2;
  cut = text.find('\n', cut);  // a line boundary...
  ASSERT_NE(cut, std::string::npos);
  write_file(text.substr(0, cut - 7));  // ...then tear the last line

  // Resume: replayed records are served from the journal, the rest are
  // re-evaluated, and the winner is identical.
  TuningJournal resumed;
  const auto res = resumed.open(path_, "runA", true);
  EXPECT_EQ(res.status, Status::Replayed);
  EXPECT_TRUE(res.torn_tail);
  ASSERT_GT(res.replayed, 0u);
  opts.journal = &resumed;
  const auto rerun = autotune::hierarchical_tune(factory, seed, dev_,
                                                 params_, opts);
  EXPECT_GT(rerun.journal_hits, 0);
  EXPECT_EQ(autotune::serialize_config(rerun.best.config),
            autotune::serialize_config(full.best.config));
  EXPECT_DOUBLE_EQ(rerun.best.time_s, full.best.time_s);
  // Replay saved work: the resumed run appended fewer records than the
  // full run wrote, and the journal file is whole again.
  EXPECT_LT(resumed.recorded(), total);
  TuningJournal check;
  EXPECT_EQ(check.open(path_, "runA", true).replayed,
            res.replayed + resumed.recorded());
}

}  // namespace
}  // namespace artemis::robust
