// Native SIMD engine: lowering, tier dispatch, fallback, and equivalence
// properties that go beyond the differential sweeps in bytecode_sim_test.

#include <gtest/gtest.h>

#include <cstring>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/native/native.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/telemetry/telemetry.hpp"
#include "artemis/verify/oracle.hpp"
#include "test_programs.hpp"

namespace artemis::sim {
namespace {

using codegen::KernelConfig;

/// Compile one bound call into the raw bytecode + view tables the native
/// layer consumes (the same binding executor.cpp performs, minus tiling).
struct RawStage {
  GridSet gs;
  SlotMap arrays;
  SlotMap scalars;
  CompiledStencil cs;
  std::vector<ArrayView> views;
  std::vector<std::uint8_t> is_scratch;
  std::vector<double> scalar_vals;
  BcRegion domain;

  explicit RawStage(const ir::Program& prog, std::uint64_t seed)
      : gs(GridSet::from_program(prog, seed)) {
    const ir::BoundStencil bound = ir::bind_call(prog, prog.steps[0].call);
    const ir::StencilInfo info = ir::analyze(prog, bound);
    for (const auto& [name, ai] : info.arrays) arrays.add(name);
    for (const auto& name : info.scalars_read) scalars.add(name);
    for (int s = 0; s < scalars.size(); ++s) {
      scalar_vals.push_back(gs.scalar(scalars.name(s)));
    }
    const int dims = static_cast<int>(prog.iterators.size());
    cs = compile_stmts(bound.stmts, dims, arrays, scalars);
    is_scratch.assign(static_cast<std::size_t>(arrays.size()), 0);

    views.resize(static_cast<std::size_t>(arrays.size()));
    for (int s = 0; s < arrays.size(); ++s) {
      ArrayView& v = views[static_cast<std::size_t>(s)];
      Grid3D& g = gs.grid(arrays.name(s));
      v.name = &arrays.name(s);
      v.read = g.data();
      v.write = g.data();
      v.ez = v.wz = g.extents().z;
      v.ey = v.wy = g.extents().y;
      v.ex = v.wx = g.extents().x;
    }
    const Extents e = gs.grid(info.outputs.front()).extents();
    domain.lo = {0, 0, 0};
    domain.hi = {e.z, e.y, e.x};
  }
};

bool grids_bit_identical(const GridSet& a, const GridSet& b) {
  for (const auto& [name, ga] : a.grids()) {
    const Grid3D& gb = b.grid(name);
    if (std::memcmp(ga->raw().data(), gb.raw().data(),
                    ga->raw().size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// ---- lowering --------------------------------------------------------------

TEST(NativeEngine, JacobiLowers) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  RawStage st(prog, 1);
  const auto r = native::lower_stencil(st.cs, st.is_scratch, false);
  ASSERT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.prog.dims, 3);
  EXPECT_EQ(r.prog.stores.size(), 1u);
  // 7-point star: six +/-1 neighbors and the center, all distinct loads.
  EXPECT_EQ(r.prog.loads.size(), 7u);
  // The source reads the center twice (a*A[...] and A[...]*6.0): CSE
  // dedupes the load, but the per-point read count must stay at the
  // bytecode engine's 8 so analytic counters match it bit for bit.
  EXPECT_EQ(r.prog.greads_pp, 8);
  EXPECT_EQ(r.prog.flops_per_point, st.cs.flops_per_point);
  // The z-axis star column {-1, 0, +1} forms one rotating chain.
  ASSERT_FALSE(r.prog.chains.empty());
  bool has_len3 = false;
  for (const auto& ch : r.prog.chains) {
    has_len3 = has_len3 || ch.members.size() == 3;
  }
  EXPECT_TRUE(has_len3);
}

TEST(NativeEngine, FastMathFusesMulAdd) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  RawStage st(prog, 1);
  const auto strict = native::lower_stencil(st.cs, st.is_scratch, false);
  const auto fast = native::lower_stencil(st.cs, st.is_scratch, true);
  ASSERT_TRUE(strict.ok && fast.ok);
  const auto count_fused = [](const native::LinearProgram& lp) {
    int n = 0;
    for (const auto& in : lp.body) {
      if (in.op == native::NOp::Fmadd || in.op == native::NOp::Fmsub ||
          in.op == native::NOp::Fnmadd) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count_fused(strict.prog), 0);
  EXPECT_GT(count_fused(fast.prog), 0);
  // Fusing removes instructions but never changes per-point accounting.
  EXPECT_EQ(fast.prog.flops_per_point, strict.prog.flops_per_point);
  EXPECT_EQ(fast.prog.greads_pp, strict.prog.greads_pp);
}

TEST(NativeEngine, RefusesNonInjectiveStore) {
  // A store that drops iterator i maps every x to one element, so the
  // result depends on point order — the lowering must refuse, never
  // reorder. The DSL frontend cannot express this (outputs must write
  // the center point), so mutate the compiled store access directly.
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  RawStage st(prog, 1);
  const int out_slot = st.arrays.slot("out");
  ASSERT_GE(out_slot, 0);
  for (auto& a : st.cs.accesses) {
    if (a.array == out_slot) {
      a.sel[2] = 3;  // x coordinate pinned to the constant 0
      a.off[2] = 0;
    }
  }
  const auto r = native::lower_stencil(st.cs, st.is_scratch, false);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("does not address every iterator"),
            std::string::npos)
      << r.reason;
}

TEST(NativeEngine, RefusesPointDependentPendingAlias) {
  // Statement 2 reads B with a transposed selector after statement 1
  // wrote B: whether the read hits the pending buffer depends on the
  // point, which no static lowering can resolve.
  const ir::Program prog = dsl::parse(R"(
parameter L=8, M=8, N=8;
iterator k, j, i;
double in[L,M,N], out[L,M,N];
copyin in;
stencil transpose (B, A) {
  B[k][j][i] = A[k][j][i];
  B[k][j][i] = B[j][k][i] + 1.0;
}
transpose (out, in);
copyout out;
)");
  RawStage st(prog, 1);
  const auto r = native::lower_stencil(st.cs, st.is_scratch, false);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("pending-write aliasing"), std::string::npos)
      << r.reason;
}

// ---- tier dispatch ---------------------------------------------------------

TEST(NativeEngine, AllSupportedTiersBitIdentical) {
  // Execute the same interior box on every tier the host supports; strict
  // mode must land bit-for-bit on the bytecode result, per tier.
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);

  std::vector<native::Tier> tiers = {native::Tier::Scalar};
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    tiers.push_back(native::Tier::Avx2);
  }
  if (__builtin_cpu_supports("avx512f")) {
    tiers.push_back(native::Tier::Avx512);
  }
#endif

  RawStage want(prog, 9);
  {
    BcCounters c;
    run_compiled_region(want.cs, want.views, want.scalar_vals.data(),
                        want.domain, want.domain, false, c);
  }
  for (const native::Tier tier : tiers) {
    RawStage got(prog, 9);
    const auto r = native::lower_stencil(got.cs, got.is_scratch, false);
    ASSERT_TRUE(r.ok) << r.reason;
    BcCounters c;
    native::run_native_region(r.prog, got.cs, got.views,
                              got.scalar_vals.data(), got.domain,
                              got.domain, false, c, nullptr, tier);
    EXPECT_TRUE(grids_bit_identical(want.gs, got.gs))
        << "tier " << native::tier_name(tier);
  }
}

TEST(NativeEngine, TierNamesAndDispatchTableAreSane) {
  EXPECT_STREQ(native::tier_name(native::Tier::Scalar), "scalar");
  EXPECT_STREQ(native::tier_name(native::Tier::Avx2), "avx2");
  EXPECT_STREQ(native::tier_name(native::Tier::Avx512), "avx512");
  for (const auto t :
       {native::Tier::Scalar, native::Tier::Avx2, native::Tier::Avx512}) {
    EXPECT_NE(native::run_box(t), nullptr);
  }
  // Whatever cpuid picked must be a dispatchable tier.
  EXPECT_NE(native::run_box(native::active_tier()), nullptr);
}

// ---- engine plumbing -------------------------------------------------------

TEST(NativeEngine, EngineNamesRoundTrip) {
  EXPECT_EQ(engine_by_name("tree"), SimEngine::TreeWalk);
  EXPECT_EQ(engine_by_name("treewalk"), SimEngine::TreeWalk);
  EXPECT_EQ(engine_by_name("bytecode"), SimEngine::Bytecode);
  EXPECT_EQ(engine_by_name("native"), SimEngine::Native);
  for (const auto e :
       {SimEngine::TreeWalk, SimEngine::Bytecode, SimEngine::Native}) {
    EXPECT_EQ(engine_by_name(engine_name(e)), e);
  }
  EXPECT_THROW(engine_by_name("cuda"), Error);
}

TEST(NativeEngine, RefusedStageFallsBackAndStillMatches) {
  // A plan whose stage cannot lower must silently run on the bytecode
  // engine and stay bit-identical — the refusal is a performance event,
  // not a semantic one (observable via the sim.native_fallbacks counter).
  // The transposed pending-write read below is the pending-alias refusal.
  const ir::Program prog = dsl::parse(R"(
parameter L=8, M=8, N=8;
iterator k, j, i;
double in[L,M,N], out[L,M,N];
copyin in;
stencil transpose (B, A) {
  B[k][j][i] = A[k][j][i];
  B[k][j][i] = B[j][k][i] + 1.0;
}
transpose (out, in);
copyout out;
)");
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {4, 4, 4};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  telemetry::Collector::global().enable();
  telemetry::Collector::global().clear();
  GridSet bc = GridSet::from_program(prog, 17);
  GridSet nat = bc.clone();
  execute_plan(plan, bc);
  ExecOptions no;
  no.engine = SimEngine::Native;
  execute_plan(plan, nat, no);
  const auto counters = telemetry::Collector::global().counters();
  telemetry::Collector::global().disable();

  EXPECT_TRUE(grids_bit_identical(bc, nat));
  const auto it = counters.find("sim.native_fallbacks");
  ASSERT_NE(it, counters.end());
  EXPECT_GT(it->second, 0);
}

TEST(NativeEngine, CompileCacheDedupesIdenticalStages) {
  // Two executions of one plan compile the statement list once; the
  // second hits the content-addressed cache.
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 8, 8};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  telemetry::Collector::global().enable();
  telemetry::Collector::global().clear();
  GridSet a = GridSet::from_program(prog, 2);
  GridSet b = GridSet::from_program(prog, 2);
  execute_plan(plan, a);
  execute_plan(plan, b);
  const auto counters = telemetry::Collector::global().counters();
  telemetry::Collector::global().disable();

  const auto hit = counters.find("sim.compile_hits");
  ASSERT_NE(hit, counters.end());
  EXPECT_GE(hit->second, 1);
}

// ---- fast-math -------------------------------------------------------------

TEST(NativeEngine, FastMathIsUlpBoundedAndJobsDeterministic) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.block = {8, 4, 2};
  const auto oracle = verify::run_program_plans(
      prog, cfg, false, 31, SimEngine::Bytecode, 1, false);
  const auto fm1 = verify::run_program_plans(
      prog, cfg, false, 31, SimEngine::Native, 1, false,
      /*native_fast_math=*/true);
  EXPECT_EQ(verify::grids_ulp_diff(oracle.gs, fm1.gs, 64), "");
  EXPECT_EQ(verify::counters_diff(oracle.totals, fm1.totals), "");
  const auto fm4 = verify::run_program_plans(
      prog, cfg, false, 31, SimEngine::Native, 4, false,
      /*native_fast_math=*/true);
  EXPECT_TRUE(grids_bit_identical(fm1.gs, fm4.gs));
}

}  // namespace
}  // namespace artemis::sim
