#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "artemis/codegen/plan.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/profile/profiler.hpp"
#include "artemis/robust/candidate_runner.hpp"
#include "artemis/robust/journal.hpp"

namespace artemis::autotune {

/// Version of the tuning algorithm, baked into plan-store content keys
/// (storage::plan_store_key). Bump it whenever a change to the search —
/// pruning rules, stage structure, evaluation policy — could make a
/// previously stored plan stale; old plans then miss instead of being
/// silently reused.
constexpr int kTunerVersion = 1;

/// Builds a plan for a candidate configuration. Implementations wrap
/// codegen::build_plan with the appropriate stage list and BuildOptions;
/// throwing PlanError marks the configuration infeasible.
using PlanFactory =
    std::function<codegen::KernelPlan(const codegen::KernelConfig&)>;

/// Search-space pruning rules (Section V): powers of two, block dims in
/// [4, 256], unroll bounded by 8 (bandwidth-bound) or 4 (compute-bound).
struct TuneOptions {
  int min_block = 4;
  int max_block = 256;
  int max_unroll_bandwidth = 8;
  int max_unroll_compute = 4;
  /// Candidates promoted from the high-impact stage to the refinement
  /// stage of hierarchical tuning.
  int top_k = 4;
  /// Stage 1 explores both spatial tiling and serial streaming (the
  /// paper's default: "serial streaming enabled by default if shared
  /// memory is used"); disable to pin the seed's tiling scheme.
  bool explore_tiling = true;
  /// Stage-2 toggles.
  bool tune_prefetch = true;
  bool tune_perspective = true;
  bool tune_concurrent_streaming = true;
  /// Register budgets explored in escalation order.
  std::vector<int> register_budgets = {32, 64, 128, 255};
  /// Profiler-driven pruning: skip unrolling entirely (register-pressure
  /// or compute-bound kernels, Section IV-A).
  bool disable_unroll = false;
  /// Theoretical machine-balance classification of the kernel, used to
  /// bound unroll factors. True = bandwidth-bound.
  bool theoretically_bandwidth_bound = true;
  /// Resilient-evaluation policy: deadlines, retries, timing trials with
  /// median/MAD rejection, and quarantine (docs/ROBUSTNESS.md). The
  /// defaults are the zero-cost configuration — with fault injection off
  /// the evaluation path is identical to the pre-resilience tuner.
  robust::RunnerOptions runner;
  /// Optional crash-safe evaluation journal (non-owning). When set,
  /// every evaluated candidate is write-ahead recorded, and records
  /// loaded from a resumed journal are replayed instead of re-evaluated.
  robust::TuningJournal* journal = nullptr;
  /// Namespace prefixed to candidate journal/quarantine keys so
  /// identical configs tuned for different stage lists, memory versions
  /// or fusion degrees never collide.
  std::string journal_scope;
  /// Evaluation parallelism: how many work-stealing shards candidate
  /// evaluations are spread across. 1 = the serial path (library
  /// default); 0 = the process default (set_default_jobs / hardware
  /// concurrency). Any value returns byte-identical results to jobs=1:
  /// candidates are evaluated in parallel but committed — telemetry,
  /// journal records, leaderboard insertion — serially in enumeration
  /// order, with leaderboard ties broken by the canonical config
  /// serialization. Nested searches (e.g. deep tuning's inner sweeps
  /// running on pool workers) automatically drop to jobs=1.
  int jobs = 1;
  /// Model-guided search pruning (ROADMAP item 2, after Ernst et al.):
  /// when > 0, each sweep's enumerated space is ranked by the analytical
  /// model (gpumodel::evaluate) and only the best `model_prune_k`
  /// candidates per sweep reach simulation; the rest are counted in
  /// `tuner.model_pruned`. The filter is a pure function of the
  /// enumeration, so plans and journal bytes remain identical for any
  /// `jobs`. 0 (the default) disables the filter and reproduces the
  /// unpruned tuner byte-for-byte. Choose a value >= top_k, or stage-2
  /// refinement may see fewer survivors than it would unpruned.
  int model_prune_k = 0;
};

/// One evaluated configuration.
struct Candidate {
  codegen::KernelConfig config;
  gpumodel::KernelEval eval;
  double time_s = 0;
};

/// Outcome of a tuning run.
struct TuneResult {
  Candidate best;
  std::vector<Candidate> leaderboard;  ///< best-first, top_k entries
  int evaluated_stage1 = 0;            ///< configs tried in stage 1
  int evaluated_stage2 = 0;            ///< configs tried in stage 2
  int skipped_spilling = 0;            ///< pruned by register escalation
  int infeasible = 0;                  ///< PlanError / invalid launches
  // Resilience accounting (counts are per tuning run; the matching
  // process-wide telemetry counters are listed in docs/ROBUSTNESS.md).
  int crashed = 0;        ///< candidates lost to EvalCrash after retries
  int timed_out = 0;      ///< candidates lost to EvalTimeout after retries
  int unstable = 0;       ///< candidates lost to MeasurementUnstable
  int quarantined = 0;    ///< keys quarantined during this run
  int journal_hits = 0;   ///< candidates replayed from a resumed journal
  /// Candidates skipped by the analytical pre-filter (model_prune_k).
  int model_pruned = 0;
  /// Spearman rank correlation between the analytical model's scores and
  /// the committed simulation times over all model-filtered sweeps. Only
  /// meaningful when `has_model_sim_spearman` (the filter ran and at
  /// least two survivors were evaluated); 1.0 in clean runs, where the
  /// simulated time is the model time.
  double model_sim_spearman = 1.0;
  bool has_model_sim_spearman = false;
  /// The search came up empty and fell back to the baseline seed config
  /// instead of throwing (a telemetry warning was emitted).
  bool degraded = false;
  int total_evaluated() const { return evaluated_stage1 + evaluated_stage2; }
};

/// Hierarchical autotuning (Section V). Stage 1 sweeps the high-impact
/// knobs: thread-block shape and unroll factors (explored in increasing
/// unroll volume with dynamic register-budget escalation so only
/// spill-free configurations are evaluated), with serial streaming enabled
/// by default when shared memory is used. Stage 2 takes the top_k
/// candidates and toggles prefetching, concurrent streaming, and thread
/// block load/compute adjustment on them.
TuneResult hierarchical_tune(const PlanFactory& factory,
                             const codegen::KernelConfig& seed,
                             const gpumodel::DeviceSpec& dev,
                             const gpumodel::ModelParams& params = {},
                             const TuneOptions& opts = {});

/// Exhaustive sweep over the full cross product (the OpenTuner stand-in
/// used by the tuning-cost experiment). Returns the same result shape;
/// evaluated counts show the cost difference.
TuneResult exhaustive_tune(const PlanFactory& factory,
                           const codegen::KernelConfig& seed,
                           const gpumodel::DeviceSpec& dev,
                           const gpumodel::ModelParams& params = {},
                           const TuneOptions& opts = {});

/// Random-sampling tuner: the generic-search (OpenTuner-style) stand-in
/// that Section V compares against. Draws `budget` configurations
/// uniformly from the unpruned space (any power-of-two shape, any unroll,
/// any register budget / prefetch / perspective) and keeps the best.
/// Deterministic for a given `rng_seed`.
TuneResult random_tune(const PlanFactory& factory,
                       const codegen::KernelConfig& seed,
                       const gpumodel::DeviceSpec& dev,
                       const gpumodel::ModelParams& params,
                       const TuneOptions& opts, int budget,
                       std::uint64_t rng_seed = 0x7777);

/// The evaluation parallelism a search with these options actually runs
/// at: opts.jobs, with 0 resolved to the process default and nested
/// searches (already on a pool worker) forced to 1.
int resolve_tune_jobs(const TuneOptions& opts);

/// Enumerate the pruned block shapes for a given dimensionality.
std::vector<std::array<int, 3>> candidate_blocks(int dims, bool streaming,
                                                 const TuneOptions& opts);

/// Enumerate pruned unroll vectors in increasing unroll-volume order.
std::vector<std::array<int, 3>> candidate_unrolls(int dims,
                                                  const TuneOptions& opts);

}  // namespace artemis::autotune
