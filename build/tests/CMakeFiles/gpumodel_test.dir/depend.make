# Empty dependencies file for gpumodel_test.
# This may be replaced when dependencies are built.
