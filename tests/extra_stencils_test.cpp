#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/extra_stencils.hpp"
#include "artemis/transform/fusion.hpp"

namespace artemis::stencils {
namespace {

using codegen::KernelConfig;
using codegen::TilingScheme;

class ExtraSuite : public ::testing::TestWithParam<std::string> {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
};

TEST_P(ExtraSuite, ExecutesBitExact) {
  const auto& spec = extra_stencil(GetParam());
  const auto prog = extra_stencil_program(spec.name, 20, 2);
  sim::GridSet ref = sim::GridSet::from_program(prog, 3);
  sim::GridSet tiled = ref.clone();
  sim::run_program_reference(prog, ref);

  KernelConfig cfg;
  cfg.block = {4, spec.dims >= 2 ? 4 : 1, 1};
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind == ir::ExecStep::Kind::Swap) {
      tiled.swap(step.swap.a, step.swap.b);
      continue;
    }
    const auto plan = codegen::build_plan(prog, {step.stencil}, cfg, dev_);
    sim::execute_plan(plan, tiled);
  }
  for (const auto& out : prog.copyout) {
    EXPECT_EQ(Grid3D::max_abs_diff(ref.grid(out), tiled.grid(out)), 0.0)
        << out;
  }
}

TEST_P(ExtraSuite, OptimizesUnderArtemis) {
  const auto& spec = extra_stencil(GetParam());
  const auto prog = extra_stencil_program(spec.name, 512, 4);
  const auto r = driver::optimize_program(prog, dev_);
  EXPECT_GT(r.tflops, 0.0);
  if (spec.iterative && spec.dims >= 2) {
    ASSERT_TRUE(r.deep_tuning.has_value());
    EXPECT_GE(r.deep_tuning->entries.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(All, ExtraSuite,
                         ::testing::Values("heat-1d", "jacobi-2d",
                                           "blur9-2d", "wave-2d",
                                           "gradient-2d"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ExtraSuiteDag, GradientPipelineFusesIn2D) {
  const auto prog = extra_stencil_program("gradient-2d", 40);
  const auto dev = gpumodel::p100();
  const auto stages = transform::bind_all_calls(prog);
  KernelConfig cfg;
  cfg.block = {8, 8, 1};
  const auto plan = codegen::build_plan(prog, stages, cfg, dev);
  EXPECT_EQ(plan.internal_arrays, (std::vector<std::string>{"sm"}));
  EXPECT_EQ(plan.dims, 2);
  // smooth (radius 1) expanded by gradmag (radius 1): halo (2,2).
  EXPECT_EQ(plan.radius[0], 2);
  EXPECT_EQ(plan.radius[1], 2);

  sim::GridSet ref = sim::GridSet::from_program(prog, 4);
  sim::GridSet tiled = ref.clone();
  sim::run_program_reference(prog, ref);
  sim::execute_plan(plan, tiled);
  EXPECT_EQ(Grid3D::max_abs_diff(ref.grid("grad"), tiled.grid("grad")),
            0.0);
}

TEST(ExtraSuiteDag, TwoDStreamingMatchesReference) {
  // 2D streaming sweeps j (the outer iterator).
  const auto prog = extra_stencil_program("jacobi-2d", 24, 2);
  const auto dev = gpumodel::p100();
  sim::GridSet ref = sim::GridSet::from_program(prog, 8);
  sim::GridSet tiled = ref.clone();
  sim::run_program_reference(prog, ref);

  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 1;
  cfg.block = {8, 1, 1};
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind == ir::ExecStep::Kind::Swap) {
      tiled.swap(step.swap.a, step.swap.b);
      continue;
    }
    const auto plan = codegen::build_plan(prog, {step.stencil}, cfg, dev);
    sim::execute_plan(plan, tiled);
  }
  EXPECT_EQ(Grid3D::max_abs_diff(ref.grid("u"), tiled.grid("u")), 0.0);
}

TEST(ExtraSuiteDag, LinearStencilScalesLinearly) {
  // jacobi-2d is linear: scaling the input scales the output.
  const auto prog = extra_stencil_program("jacobi-2d", 20, 3);
  sim::GridSet a = sim::GridSet::from_program(prog, 17);
  sim::GridSet b = a.clone();
  for (auto& v : b.grid("u").raw()) v *= 2.0;
  sim::run_program_reference(prog, a);
  sim::run_program_reference(prog, b);
  const auto& ga = a.grid("u");
  const auto& gb = b.grid("u");
  double worst = 0;
  for (std::size_t i = 0; i < ga.raw().size(); ++i) {
    worst = std::max(worst, std::abs(gb.raw()[i] - 2.0 * ga.raw()[i]));
  }
  EXPECT_LT(worst, 1e-9);
}

}  // namespace
}  // namespace artemis::stencils
