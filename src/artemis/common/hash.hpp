#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace artemis {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), bit-reflected,
/// initial value and final XOR 0xFFFFFFFF. Used to checksum on-disk records
/// (plan store, tuning cache v2) so torn or bit-rotted rows are detected
/// instead of silently parsed.
std::uint32_t crc32(const void* data, std::size_t n);
std::uint32_t crc32(const std::string& s);

/// Eight lowercase hex digits, zero-padded — the canonical textual form a
/// record stores its checksum in.
std::string crc32_hex(std::uint32_t crc);

/// Parse the 8-hex-digit form back. Returns false on anything that is not
/// exactly eight hex digits.
bool parse_crc32_hex(const std::string& s, std::uint32_t* out);

/// Incremental 128-bit content hash (two decorrelated 64-bit FNV-1a
/// lanes, avalanche-finalized). Not cryptographic: collision resistance is
/// "addressing a cache", not "adversarial input". Stable across platforms
/// and process runs — the digest is a pure function of the bytes fed in.
class ContentHasher {
 public:
  ContentHasher();

  void update(const void* data, std::size_t n);
  void update(const std::string& s);

  /// 32 lowercase hex digits. May be called repeatedly; update() may
  /// continue afterwards.
  std::string hex_digest() const;

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

}  // namespace artemis
