#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/occupancy.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/gpumodel/registers.hpp"
#include "test_programs.hpp"

namespace artemis::gpumodel {
namespace {

using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

TEST(Device, P100MachineBalance) {
  const DeviceSpec d = p100();
  // Paper Section VIII-A: alpha/beta ratios 6.42, 2.35, 0.49.
  EXPECT_NEAR(d.balance_dram(), 6.42, 0.01);
  EXPECT_NEAR(d.balance_tex(), 2.35, 0.01);
  EXPECT_NEAR(d.balance_shm(), 0.49, 0.01);
}

TEST(Occupancy, FullAtModestResources) {
  const DeviceSpec d = p100();
  const Occupancy o = compute_occupancy(d, {256, 32, 0});
  EXPECT_EQ(o.active_blocks_per_sm, 8);
  EXPECT_DOUBLE_EQ(o.fraction, 1.0);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Threads);
}

TEST(Occupancy, RegisterLimited) {
  const DeviceSpec d = p100();
  // 128 regs x 256 threads = 32768 regs/block; 65536/32768 = 2 blocks.
  const Occupancy o = compute_occupancy(d, {256, 128, 0});
  EXPECT_EQ(o.active_blocks_per_sm, 2);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
  EXPECT_DOUBLE_EQ(o.fraction, 0.25);
}

TEST(Occupancy, SharedMemoryLimited) {
  const DeviceSpec d = p100();
  // 40KB per block: only one fits in 64KB/SM.
  const Occupancy o = compute_occupancy(d, {128, 32, 40 * 1024});
  EXPECT_EQ(o.active_blocks_per_sm, 1);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::SharedMemory);
}

TEST(Occupancy, InvalidLaunches) {
  const DeviceSpec d = p100();
  EXPECT_DOUBLE_EQ(compute_occupancy(d, {2048, 32, 0}).fraction, 0.0);
  EXPECT_DOUBLE_EQ(compute_occupancy(d, {256, 300, 0}).fraction, 0.0);
  EXPECT_DOUBLE_EQ(compute_occupancy(d, {256, 32, 64 * 1024}).fraction, 0.0);
  // 255 regs x 1024 threads exceeds the register file entirely.
  const Occupancy o = compute_occupancy(d, {1024, 255, 0});
  EXPECT_DOUBLE_EQ(o.fraction, 0.0);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
}

TEST(Occupancy, MaxBlockSlotsLimited) {
  const DeviceSpec d = p100();
  const Occupancy o = compute_occupancy(d, {32, 16, 0});
  EXPECT_EQ(o.active_blocks_per_sm, 32);  // slot limit
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Blocks);
}

TEST(Device, GenerationsOrdered) {
  const auto k = k40();
  const auto p = p100();
  const auto v = v100();
  EXPECT_LT(k.peak_dp_flops, p.peak_dp_flops);
  EXPECT_LT(p.peak_dp_flops, v.peak_dp_flops);
  // Newer devices are more bandwidth-starved (higher balance).
  EXPECT_LT(k.balance_dram(), p.balance_dram());
  EXPECT_LT(p.balance_dram(), v.balance_dram());
}

TEST(Device, FamilySpecInvariants) {
  const auto family = device_family();
  ASSERT_EQ(family.size(), 5u);
  for (const auto& d : family) {
    SCOPED_TRACE(d.name);
    EXPECT_GT(d.num_sms, 0);
    EXPECT_GT(d.max_threads_per_sm, 0);
    EXPECT_GT(d.max_threads_per_block, 0);
    EXPECT_GT(d.regs_per_sm, 0);
    EXPECT_GT(d.shmem_per_sm, 0);
    EXPECT_GT(d.shmem_per_block, 0);
    EXPECT_LE(d.shmem_per_block, d.shmem_per_sm);
    EXPECT_GT(d.l2_bytes, 0);
    EXPECT_GT(d.peak_dp_flops, 0.0);
    EXPECT_GT(d.dram_bytes_per_s, 0.0);
    EXPECT_GT(d.tex_bytes_per_s, 0.0);
    EXPECT_GT(d.shm_bytes_per_s, 0.0);
    // The memory hierarchy is ordered: on-chip levels are faster.
    EXPECT_LT(d.dram_bytes_per_s, d.tex_bytes_per_s);
    EXPECT_LT(d.tex_bytes_per_s, d.shm_bytes_per_s);
    // Machine balances stay in a physically sensible band: every modeled
    // generation is DRAM-starved (balance > 1) but nowhere near the
    // pathological regimes (the real parts range ~5-10 FLOP/byte), and
    // the levels order the same way on every device. Shared memory can
    // essentially feed the ALUs everywhere; on H100 the FP64 peak just
    // barely outruns it (balance_shm 1.02).
    EXPECT_GT(d.balance_dram(), 1.0);
    EXPECT_LT(d.balance_dram(), 16.0);
    EXPECT_LT(d.balance_shm(), d.balance_tex());
    EXPECT_LT(d.balance_tex(), d.balance_dram());
    EXPECT_LT(d.balance_shm(), 1.1);
  }
  // Peaks and bandwidths increase strictly along the generations; the
  // DRAM balance does NOT (V100 8.67 > A100 6.24 — HBM2e outpaced the
  // FP64 peak), which is exactly why plans must be re-tuned per device.
  for (std::size_t i = 1; i < family.size(); ++i) {
    SCOPED_TRACE(family[i].name);
    EXPECT_GT(family[i].peak_dp_flops, family[i - 1].peak_dp_flops);
    EXPECT_GT(family[i].dram_bytes_per_s, family[i - 1].dram_bytes_per_s);
    EXPECT_GT(family[i].shm_bytes_per_s, family[i - 1].shm_bytes_per_s);
  }
  EXPECT_GT(v100().balance_dram(), a100().balance_dram());
  EXPECT_GT(h100().balance_dram(), p100().balance_dram());
}

TEST(Occupancy, RejectsMalformedResourceRequests) {
  for (const auto& d : device_family()) {
    SCOPED_TRACE(d.name);
    // Zero/negative threads, negative registers, negative shared memory.
    EXPECT_EQ(compute_occupancy(d, {0, 32, 0}).limiter,
              Occupancy::Limiter::Invalid);
    EXPECT_EQ(compute_occupancy(d, {-64, 32, 0}).limiter,
              Occupancy::Limiter::Invalid);
    EXPECT_EQ(compute_occupancy(d, {256, -1, 0}).limiter,
              Occupancy::Limiter::Invalid);
    EXPECT_EQ(compute_occupancy(d, {256, 32, -1}).limiter,
              Occupancy::Limiter::Invalid);
    // Shared memory beyond the per-block or per-SM budget.
    EXPECT_EQ(compute_occupancy(d, {256, 32, d.shmem_per_block + 1}).limiter,
              Occupancy::Limiter::Invalid);
    EXPECT_EQ(compute_occupancy(d, {256, 32, d.shmem_per_sm + 1}).limiter,
              Occupancy::Limiter::Invalid);
    // Registers beyond the per-thread architectural cap.
    EXPECT_EQ(
        compute_occupancy(d, {256, d.max_regs_per_thread + 1, 0}).limiter,
        Occupancy::Limiter::Invalid);
  }
}

TEST(Occupancy, NeverDividesByZeroOrGoesNegative) {
  // A grid of extreme resource requests across the whole family: every
  // outcome must be a fraction in [0, 1] with non-negative block counts,
  // no matter how degenerate the request.
  for (const auto& d : device_family()) {
    SCOPED_TRACE(d.name);
    for (const int threads : {-1, 0, 1, 32, 1024, 2048}) {
      for (const int regs : {-1, 0, 1, 128, 255, 256}) {
        for (const std::int64_t shm :
             {std::int64_t{-1}, std::int64_t{0}, std::int64_t{1},
              d.shmem_per_block, d.shmem_per_sm + 1}) {
          const Occupancy o = compute_occupancy(d, {threads, regs, shm});
          EXPECT_GE(o.fraction, 0.0);
          EXPECT_LE(o.fraction, 1.0);
          EXPECT_GE(o.active_blocks_per_sm, 0);
          EXPECT_GE(o.active_warps_per_sm, 0);
        }
      }
    }
    // Over-budget but individually-legal requests yield zero occupancy
    // with the resource limiter, not Invalid: 255 regs x 1024 threads
    // exceeds every family member's register file.
    const Occupancy o = compute_occupancy(d, {1024, 255, 0});
    EXPECT_DOUBLE_EQ(o.fraction, 0.0);
    EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
  }
}

class PlanFixture : public ::testing::Test {
 protected:
  KernelPlan make_plan(const char* src, const KernelConfig& cfg,
                       codegen::BuildOptions opts = {}) {
    prog_ = dsl::parse(src);
    return codegen::build_plan_for_call(prog_, prog_.steps.back().call, cfg,
                                        dev_, opts);
  }
  ir::Program prog_;
  DeviceSpec dev_ = p100();
};

TEST_F(PlanFixture, RegistersGrowWithUnroll) {
  KernelConfig cfg;
  const auto base =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  cfg.unroll = {4, 1, 1};
  const auto unrolled =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  EXPECT_GT(unrolled.total, base.total);
}

TEST_F(PlanFixture, CyclicUsesMoreRegistersThanBlocked) {
  KernelConfig cfg;
  cfg.unroll = {4, 1, 1};
  cfg.unroll_strategy = codegen::UnrollStrategy::Blocked;
  const auto blocked =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  cfg.unroll_strategy = codegen::UnrollStrategy::Cyclic;
  const auto cyclic =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  EXPECT_GT(cyclic.total, blocked.total);
}

TEST_F(PlanFixture, StreamingAddsRegisterPlanes) {
  KernelConfig spatial;
  spatial.tiling = TilingScheme::Spatial3D;
  const auto s =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, spatial));
  KernelConfig stream;
  stream.tiling = TilingScheme::StreamSerial;
  stream.stream_axis = 2;
  const auto t =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, stream));
  EXPECT_GT(t.stream_planes, 0);
  EXPECT_GT(t.total, s.total);
}

TEST_F(PlanFixture, EvaluateProducesFiniteTime) {
  KernelConfig cfg;
  const auto plan = make_plan(artemis::testing::kJacobiDsl, cfg);
  const KernelEval ev = evaluate(plan, dev_);
  ASSERT_TRUE(ev.valid);
  EXPECT_GT(ev.time_s, 0.0);
  EXPECT_GT(ev.counters.flops, 0);
  EXPECT_GT(ev.counters.dram_bytes(), 0);
  EXPECT_GT(ev.tflops(), 0.0);
  EXPECT_LT(ev.tflops(), 4.7);  // cannot beat the device peak
}

TEST_F(PlanFixture, UsefulFlopsMatchAnalysis) {
  KernelConfig cfg;
  const auto plan = make_plan(artemis::testing::kJacobiDsl, cfg);
  const KernelEval ev = evaluate(plan, dev_);
  const std::int64_t points = 16 * 16 * 16;
  EXPECT_EQ(ev.useful_flops, plan.info.flops_per_point * points);
  // With a single stage there is no recomputation.
  EXPECT_EQ(ev.counters.flops >= ev.useful_flops, true);
}

// The 16^3 fixture domain is launch-overhead-bound; DRAM-boundedness
// needs a domain big enough that streaming the grids dominates.
constexpr const char* kBigJacobiDsl = R"(
parameter L=128, M=128, N=128;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin out, in, h2inv, a, b;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
)";

TEST_F(PlanFixture, EvaluateMonotoneInDramBandwidth) {
  // A shared-memory Jacobi sweep over 128^3 is DRAM-bound on every family
  // member (shmem absorbs the neighbor re-reads, so the compulsory
  // read+write traffic binds; a global-memory build would instead pin the
  // tex roofline). Scaling only the DRAM bandwidth must then strictly
  // reduce the modelled time; the roofline never moves the wrong way.
  KernelConfig cfg;
  const auto plan = make_plan(kBigJacobiDsl, cfg);
  for (const auto& base : device_family()) {
    SCOPED_TRACE(base.name);
    const KernelEval slow = evaluate(plan, base);
    ASSERT_TRUE(slow.valid);
    ASSERT_EQ(slow.bound, Bound::Dram);  // premise: genuinely DRAM-bound
    DeviceSpec fast = base;
    fast.dram_bytes_per_s *= 2.0;
    const KernelEval ev = evaluate(plan, fast);
    ASSERT_TRUE(ev.valid);
    EXPECT_LT(ev.time_s, slow.time_s);
  }
}

TEST_F(PlanFixture, InvalidLaunchReported) {
  KernelConfig cfg;
  cfg.block = {32, 32, 1};
  cfg.max_registers = 255;
  cfg.unroll = {8, 8, 1};  // blows past the register file
  cfg.unroll_strategy = codegen::UnrollStrategy::Cyclic;
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;  // isolate the register story
  const auto plan = make_plan(artemis::testing::kJacobiDsl, cfg, opts);
  const KernelEval ev = evaluate(plan, dev_);
  // Either invalid or heavily spilled; both are acceptable model outcomes,
  // but time must reflect the penalty.
  if (ev.valid) {
    EXPECT_GT(ev.counters.spill_bytes, 0);
  } else {
    EXPECT_FALSE(ev.invalid_reason.empty());
  }
}

}  // namespace
}  // namespace artemis::gpumodel
