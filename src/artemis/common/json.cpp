#include "artemis/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "artemis/common/check.hpp"

namespace artemis {

namespace {

const Json& null_value() {
  static const Json kNull;
  return kNull;
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Shorten when a lower precision round-trips (diffable output).
  for (int prec = 1; prec <= 16; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

}  // namespace

void Json::set(const std::string& key, Json v) {
  ARTEMIS_CHECK(kind_ == Kind::Object);
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::contains(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::operator[](const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  return null_value();
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::Double: append_number(out, double_); break;
    case Kind::String:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        out += '"';
        out += escape(obj_[i].first);
        out += "\":";
        if (indent >= 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string view of the document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw Error("json: " + msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = read_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow, and
            // the pair recombines into one supplementary code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned low = read_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // Encode the code point as UTF-8 (1..4 bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  unsigned read_hex4() {
    if (pos_ + 4 > text_.size()) fail("short \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  bool digit() const {
    return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
  }

  // Strict JSON grammar: -? (0|[1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?
  // The old permissive scanner swallowed '1.2.3' wholesale and let
  // strtod decide, accepted '1e' as 1, and read '1e999' as infinity
  // (which the writer then dumped as null).
  Json parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (peek() == '-') ++pos_;
    if (!digit()) fail("malformed number");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit()) fail("leading zeros are not allowed");
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (!digit()) fail("truncated fraction");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) fail("truncated exponent");
      while (digit()) ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      // "-0" only keeps its sign as a double.
      if (tok == "-0") return Json(-0.0);
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to the double representation.
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    if (!std::isfinite(d)) fail("number out of range");
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace artemis
