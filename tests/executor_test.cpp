#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "test_programs.hpp"

namespace artemis::sim {
namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

/// Run every call step of `prog` through build_plan + execute_plan with
/// `config`, and compare all copyout arrays against the reference
/// interpreter. Returns max abs diff over outputs.
double run_and_compare(const ir::Program& prog, const KernelConfig& config,
                       const BuildOptions& opts = {}, bool fuse_all = false,
                       std::uint64_t seed = 1234) {
  const auto dev = gpumodel::p100();

  GridSet ref = GridSet::from_program(prog, seed);
  GridSet tiled = ref.clone();

  run_program_reference(prog, ref);

  if (fuse_all) {
    std::vector<ir::BoundStencil> stages;
    int idx = 0;
    for (const auto& step : prog.steps) {
      ARTEMIS_CHECK(step.kind == ir::Step::Kind::Call);
      stages.push_back(
          ir::bind_call(prog, step.call, str_cat("s", idx++, "_")));
    }
    const KernelPlan plan =
        codegen::build_plan(prog, std::move(stages), config, dev, opts);
    execute_plan(plan, tiled);
  } else {
    for (const auto& step : ir::flatten_steps(prog)) {
      if (step.kind == ir::ExecStep::Kind::Swap) {
        tiled.swap(step.swap.a, step.swap.b);
        continue;
      }
      std::vector<ir::BoundStencil> stages = {step.stencil};
      const KernelPlan plan =
          codegen::build_plan(prog, std::move(stages), config, dev, opts);
      execute_plan(plan, tiled);
    }
  }

  double worst = 0.0;
  for (const auto& out : prog.copyout) {
    worst = std::max(
        worst, Grid3D::max_abs_diff(ref.grid(out), tiled.grid(out)));
  }
  return worst;
}

TEST(Executor, JacobiSpatialMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {8, 4, 2};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, JacobiStreamSerialMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {8, 4, 1};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, JacobiStreamConcurrentMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamConcurrent;
  cfg.stream_axis = 2;
  cfg.stream_chunk = 5;
  cfg.block = {8, 4, 1};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, UnevenTileSizesMatchReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  // 16^3 domain with tiles of 5x3x7: forces partial boundary tiles.
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {5, 3, 7};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, UnrollChangesTilesNotValues) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 2};
  cfg.unroll = {2, 2, 1};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, IterativePingPongMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiIterativeDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 4};
  EXPECT_EQ(run_and_compare(prog, cfg), 0.0);
}

TEST(Executor, FusedDagMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 2};
  EXPECT_EQ(run_and_compare(prog, cfg, {}, /*fuse_all=*/true), 0.0);
}

TEST(Executor, FusedDagStreamingMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {4, 4, 1};
  EXPECT_EQ(run_and_compare(prog, cfg, {}, /*fuse_all=*/true), 0.0);
}

TEST(Executor, FusedDagGlobalOnlyMatchesReference) {
  const ir::Program prog = dsl::parse(artemis::testing::kDagDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::Spatial3D;
  cfg.block = {4, 4, 2};
  BuildOptions opts;
  opts.use_shared_memory = false;
  EXPECT_EQ(run_and_compare(prog, cfg, opts, /*fuse_all=*/true), 0.0);
}

TEST(Executor, CountsComputeAndSkips) {
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  GridSet gs = GridSet::from_program(prog, 7);
  KernelConfig cfg;
  cfg.block = {8, 8, 8};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);
  const ExecCounters c = execute_plan(plan, gs);
  // 16^3 domain, order-1: interior 14^3 computed, the shell skipped.
  EXPECT_EQ(c.computed_points, 14 * 14 * 14);
  EXPECT_EQ(c.skipped_points, 16 * 16 * 16 - 14 * 14 * 14);
  EXPECT_EQ(c.blocks, 8);
  EXPECT_EQ(c.global_write_elems, 14 * 14 * 14);
}

// ---- counting mode ---------------------------------------------------------

void expect_counters_equal(const ExecCounters& a, const ExecCounters& b) {
  EXPECT_EQ(a.computed_points, b.computed_points);
  EXPECT_EQ(a.skipped_points, b.skipped_points);
  EXPECT_EQ(a.global_read_elems, b.global_read_elems);
  EXPECT_EQ(a.global_write_elems, b.global_write_elems);
  EXPECT_EQ(a.scratch_read_elems, b.scratch_read_elems);
  EXPECT_EQ(a.scratch_write_elems, b.scratch_write_elems);
  EXPECT_EQ(a.blocks, b.blocks);
}

TEST(Executor, CountingModeLeavesRunBitIdentical) {
  // Counting mode must be a pure observer: grids and counters stay
  // bit-identical to the plain run, serial or parallel.
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 4, 2};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  for (const int jobs : {1, 4}) {
    GridSet plain = GridSet::from_program(prog, 11);
    GridSet counted = plain.clone();
    ExecOptions po;
    po.jobs = jobs;
    const ExecCounters cp = execute_plan(plan, plain, po);

    PlanTrace trace;
    ExecOptions co;
    co.jobs = jobs;
    co.trace = &trace;
    const ExecCounters cc = execute_plan(plan, counted, co);

    expect_counters_equal(cp, cc);
    for (const auto& [name, grid] : plain.grids()) {
      EXPECT_EQ(grid->raw(), counted.grid(name).raw())
          << "jobs=" << jobs << " array " << name;
    }

    // The trace's own accounting reconciles with the plain counters.
    ASSERT_EQ(trace.stages.size(), 1u);
    const StageTrace& st = trace.stages[0];
    EXPECT_EQ(st.interior.computed + st.rim.computed, cp.computed_points);
    EXPECT_EQ(st.interior.skipped + st.rim.skipped, cp.skipped_points);
    EXPECT_EQ(st.interior.greads + st.rim.greads, cp.global_read_elems);
    EXPECT_EQ(st.interior.gwrites + st.rim.gwrites, cp.global_write_elems);
    // Order-1 Jacobi: the rim class is exactly the domain shell, fully
    // guard-vetoed; the interior path never sees the guard at all.
    EXPECT_GT(st.rim.computed + st.rim.skipped, 0);
    EXPECT_EQ(st.rim.computed, 0);
    EXPECT_EQ(st.interior.skipped, 0);
    EXPECT_GT(st.interior.computed, 0);
    EXPECT_FALSE(st.lines.empty());
    EXPECT_GT(st.flops_per_point, 0);
    ASSERT_FALSE(trace.arrays.empty());
  }
}

TEST(Executor, CountingTraceIsJobsInvariant) {
  // Per-block traces are merged in block-id order, so the concatenated
  // line stream (and everything derived from it) is identical at any
  // worker count.
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {8, 4, 1};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  PlanTrace t1, t4;
  {
    GridSet gs = GridSet::from_program(prog, 3);
    ExecOptions o;
    o.jobs = 1;
    o.trace = &t1;
    execute_plan(plan, gs, o);
  }
  {
    GridSet gs = GridSet::from_program(prog, 3);
    ExecOptions o;
    o.jobs = 4;
    o.trace = &t4;
    execute_plan(plan, gs, o);
  }
  ASSERT_EQ(t1.stages.size(), t4.stages.size());
  for (std::size_t s = 0; s < t1.stages.size(); ++s) {
    EXPECT_EQ(t1.stages[s].lines, t4.stages[s].lines) << "stage " << s;
    EXPECT_EQ(t1.stages[s].interior.computed, t4.stages[s].interior.computed);
    EXPECT_EQ(t1.stages[s].rim.computed, t4.stages[s].rim.computed);
  }
  EXPECT_EQ(t1.writeback.lines, t4.writeback.lines);
}

TEST(Executor, CountingModeDegenerateAxis) {
  // A 1D program: extent-1 y/z axes must not break the interior/rim
  // split (the whole domain is rim along the degenerate axes).
  Rng rng(0xDE6E);
  stencils::RandomStencilOptions ropts;
  ropts.dims = 1;
  ropts.max_order = 1;
  ropts.max_stages = 1;
  const ir::Program prog = stencils::random_program(rng, ropts);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 1, 1};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  GridSet plain = GridSet::from_program(prog, 5);
  GridSet counted = plain.clone();
  const ExecCounters cp = execute_plan(plan, plain);
  PlanTrace trace;
  ExecOptions co;
  co.trace = &trace;
  const ExecCounters cc = execute_plan(plan, counted, co);
  expect_counters_equal(cp, cc);
  for (const auto& [name, grid] : plain.grids()) {
    EXPECT_EQ(grid->raw(), counted.grid(name).raw()) << "array " << name;
  }
}

TEST(Executor, NativeCountingMatchesBytecodeCounting) {
  // The native engine computes interior counters analytically (O(1) per
  // segment) and replays the exact bytecode interleaving for trace
  // records; a counted native run must reproduce the counted bytecode
  // run bit-for-bit — grids, counters, per-stage class split, and the
  // derived line streams — at any worker count.
  const ir::Program prog = dsl::parse(artemis::testing::kJacobiDsl);
  const auto dev = gpumodel::p100();
  KernelConfig cfg;
  cfg.block = {8, 4, 2};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  for (const int jobs : {1, 4}) {
    GridSet bc = GridSet::from_program(prog, 21);
    GridSet nat = bc.clone();
    PlanTrace tb, tn;
    ExecOptions ob;
    ob.jobs = jobs;
    ob.trace = &tb;
    const ExecCounters cb = execute_plan(plan, bc, ob);
    ExecOptions on;
    on.jobs = jobs;
    on.engine = SimEngine::Native;
    on.trace = &tn;
    const ExecCounters cn = execute_plan(plan, nat, on);

    expect_counters_equal(cb, cn);
    for (const auto& [name, grid] : bc.grids()) {
      EXPECT_EQ(grid->raw(), nat.grid(name).raw())
          << "jobs=" << jobs << " array " << name;
    }
    ASSERT_EQ(tb.stages.size(), tn.stages.size());
    for (std::size_t s = 0; s < tb.stages.size(); ++s) {
      const StageTrace& a = tb.stages[s];
      const StageTrace& b = tn.stages[s];
      EXPECT_EQ(a.lines, b.lines) << "jobs=" << jobs << " stage " << s;
      EXPECT_EQ(a.flops_per_point, b.flops_per_point);
      EXPECT_EQ(a.interior.computed, b.interior.computed);
      EXPECT_EQ(a.interior.skipped, b.interior.skipped);
      EXPECT_EQ(a.interior.greads, b.interior.greads);
      EXPECT_EQ(a.interior.gwrites, b.interior.gwrites);
      EXPECT_EQ(a.interior.sreads, b.interior.sreads);
      EXPECT_EQ(a.interior.swrites, b.interior.swrites);
      EXPECT_EQ(a.rim.computed, b.rim.computed);
      EXPECT_EQ(a.rim.skipped, b.rim.skipped);
      EXPECT_EQ(a.rim.greads, b.rim.greads);
      EXPECT_EQ(a.rim.gwrites, b.rim.gwrites);
      EXPECT_EQ(a.rim.sreads, b.rim.sreads);
      EXPECT_EQ(a.rim.swrites, b.rim.swrites);
    }
    EXPECT_EQ(tb.writeback.lines, tn.writeback.lines) << "jobs=" << jobs;
  }
}

// ---- property tests: random programs x random configs ----------------------

struct PropertyCase {
  int dims;
  int max_order;
  int max_stages;
};

class ExecutorProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExecutorProperty, TiledMatchesReference) {
  const PropertyCase pc = GetParam();
  Rng rng(0xC0FFEE + static_cast<std::uint64_t>(pc.dims * 100 +
                                                pc.max_order * 10 +
                                                pc.max_stages));
  for (int trial = 0; trial < 8; ++trial) {
    stencils::RandomStencilOptions opts;
    opts.dims = pc.dims;
    opts.max_order = pc.max_order;
    opts.max_stages = pc.max_stages;
    const ir::Program prog = stencils::random_program(rng, opts);

    KernelConfig cfg;
    const std::int64_t roll = rng.uniform_int(0, 2);
    if (pc.dims >= 2 && roll == 1) {
      cfg.tiling = TilingScheme::StreamSerial;
    } else if (pc.dims >= 2 && roll == 2) {
      cfg.tiling = TilingScheme::StreamConcurrent;
      cfg.stream_chunk = static_cast<int>(rng.uniform_int(3, 9));
    } else {
      cfg.tiling = TilingScheme::Spatial3D;
    }
    cfg.stream_axis = pc.dims - 1;
    cfg.block = {static_cast<int>(rng.uniform_int(2, 7)),
                 pc.dims >= 2 ? static_cast<int>(rng.uniform_int(2, 7)) : 1,
                 pc.dims >= 3 ? static_cast<int>(rng.uniform_int(1, 5)) : 1};
    if (cfg.tiling != TilingScheme::Spatial3D) {
      cfg.block[static_cast<std::size_t>(pc.dims - 1)] = 1;
    }
    if (rng.coin(0.3)) cfg.unroll[0] = 2;

    const bool fuse = pc.max_stages > 1;
    const double diff = run_and_compare(
        prog, cfg, {}, fuse, 0x5EED0 + static_cast<std::uint64_t>(trial));
    EXPECT_EQ(diff, 0.0) << "dims=" << pc.dims << " order=" << pc.max_order
                         << " stages=" << pc.max_stages
                         << " trial=" << trial << " cfg "
                         << cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorProperty,
    ::testing::Values(PropertyCase{1, 1, 1}, PropertyCase{1, 3, 1},
                      PropertyCase{2, 1, 1}, PropertyCase{2, 2, 2},
                      PropertyCase{3, 1, 1}, PropertyCase{3, 2, 1},
                      PropertyCase{3, 1, 3}, PropertyCase{3, 2, 2}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "d" + std::to_string(info.param.dims) + "r" +
             std::to_string(info.param.max_order) + "s" +
             std::to_string(info.param.max_stages);
    });

}  // namespace
}  // namespace artemis::sim
