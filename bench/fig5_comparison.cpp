// Reproduces Fig. 5: performance of all 11 benchmarks on the modelled
// P100 under five code generators: PPCG-like, ARTEMIS' global-stream and
// global ablations, STENCILGEN-like, and full ARTEMIS.
//
// Expected shape (paper): ARTEMIS wins everywhere; STENCILGEN is second
// on the stencils it supports but cannot generate code for the SW4lite
// kernels with 1D arrays (addsgd4/6); PPCG trails the tuned global
// versions; global-stream never beats global (streaming without shared
// memory has poor L2 locality).

#include <cstdio>

#include "artemis/baselines/baselines.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  TablePrinter table({"Benchmark", "PPCG", "global-stream", "global",
                      "STENCILGEN", "ARTEMIS"});

  int artemis_wins = 0;
  int stream_not_better = 0;
  int rows = 0;
  for (const auto& spec : stencils::paper_benchmarks()) {
    const auto prog = stencils::benchmark_program(spec.name);
    const auto cmp =
        baselines::compare_generators(spec.name, prog, dev, params);
    std::vector<std::string> row = {spec.name};
    for (const auto& g : cmp.generators) {
      row.push_back(g.result ? format_double(g.tflops(), 3)
                             : std::string("n/a"));
    }
    table.add_row(row);
    ++rows;
    if (cmp.artemis_wins()) ++artemis_wins;
    if (cmp.by_name("global-stream").tflops() <=
        cmp.by_name("global").tflops()) {
      ++stream_not_better;
    }
  }

  std::printf(
      "Fig. 5: performance (useful TFLOPS) of the benchmarks on the "
      "modelled P100\n\n%s\n",
      table.to_string().c_str());
  std::printf("ARTEMIS best or within 3%% on %d/%d benchmarks\n", artemis_wins,
              rows);
  std::printf("global-stream <= global on %d/%d benchmarks "
              "(streaming without shmem hurts L2 locality)\n",
              stream_not_better, rows);
  std::printf(
      "\nPaper shape: ARTEMIS consistently outperforms STENCILGEN, which\n"
      "outperforms PPCG; STENCILGEN cannot generate the SW4lite kernels\n"
      "with mixed-dimensionality arrays; ARTEMIS-optimized rhs4center\n"
      "reaches ~1.29 TFLOPS vs ~1.13 for SW4lite's hand-optimized kernel.\n");
  return 0;
}
