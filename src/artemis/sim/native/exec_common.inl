// Shared SIMD interior executor. Included inside
//
//   namespace artemis::sim::native { namespace { struct Backend {...};
//   #include "artemis/sim/native/exec_common.inl"
//   } }
//
// of each per-tier translation unit, AFTER that tier's Backend struct is
// defined, so every definition here gets internal linkage: a TU compiled
// with -mavx512f can never leak an AVX-512 symbol into another tier's
// dispatch path through the linker's one-definition folding.
//
// A Backend provides: kWidth, Vec, broadcast/loadu/storeu, the lane
// arithmetic (add/sub/mul/div/min_/max_/neg/fabs_/sqrt_ — IEEE-identical
// to the scalar ops, including NaN and signed-zero behaviour), lane-wise
// libm transcendentals (exp_/log_/pow_), and correctly-rounded FMA
// variants (fmadd/fmsub/fnmadd — reached only by fast-math programs).
//
// Strict-mode bit-identity with the bytecode engine rests on: every body
// op maps 1:1 to the bytecode op with the same operand order, loads read
// pre-point memory (the bytecode buffers writes until end of point, and
// cross-point memory dependences are excluded at lowering time), and
// stores commit per point in statement order with the same last-writer
// ordering along every axis.

/// One load bound to a (y, x0) column: element offset of (z0, y, x0) in
/// the view plus x-lane / z-step strides. The offset (not a pointer)
/// advances by zs per z step so dropped stores never form out-of-window
/// pointers.
struct LoadBind {
  const double* p = nullptr;
  std::int64_t off = 0;
  std::int64_t xs = 0;
  std::int64_t zs = 0;
};

struct StoreBind {
  double* p = nullptr;
  std::uint8_t* wp = nullptr;  ///< scratch written-flags, null for external
  std::int64_t off = 0;
  std::int64_t xs = 0;
  std::int64_t zs = 0;
  bool scratch = false;
  std::int64_t cz0 = 0, cz1 = 0;  ///< commit z interval (absolute z)
  std::uint64_t mask = 0;         ///< per-lane commit mask
};

inline std::int64_t bind_coord(const NAccess& a, std::size_t d,
                               std::int64_t z, std::int64_t y,
                               std::int64_t x) {
  const std::int64_t pt[4] = {z, y, x, 0};
  return pt[a.sel[d]] + a.off[d];
}

inline LoadBind bind_load(const ArrayView* views, const NAccess& a,
                          std::int64_t z, std::int64_t y, std::int64_t x) {
  const ArrayView& v = views[a.view];
  const std::int64_t c0 = bind_coord(a, 0, z, y, x);
  const std::int64_t c1 = bind_coord(a, 1, z, y, x);
  const std::int64_t c2 = bind_coord(a, 2, z, y, x);
  const std::int64_t sz = v.wy * v.wx, sy = v.wx, sx = 1;
  LoadBind b;
  b.p = v.read;
  b.off = ((c0 - v.lo_z) * v.wy + (c1 - v.lo_y)) * v.wx + (c2 - v.lo_x);
  b.xs = (a.sel[0] == 2 ? sz : 0) + (a.sel[1] == 2 ? sy : 0) +
         (a.sel[2] == 2 ? sx : 0);
  b.zs = (a.sel[0] == 0 ? sz : 0) + (a.sel[1] == 0 ? sy : 0) +
         (a.sel[2] == 0 ? sx : 0);
  return b;
}

inline StoreBind bind_store(const ArrayView* views, const NAccess& a,
                            std::int64_t z0, std::int64_t y, std::int64_t x0,
                            std::int64_t lanes, const BcRegion& box,
                            const BcRegion& commit, bool drop) {
  const ArrayView& v = views[a.view];
  const std::int64_t c0 = bind_coord(a, 0, z0, y, x0);
  const std::int64_t c1 = bind_coord(a, 1, z0, y, x0);
  const std::int64_t c2 = bind_coord(a, 2, z0, y, x0);
  const std::int64_t sz = v.wy * v.wx, sy = v.wx, sx = 1;
  StoreBind s;
  s.p = v.write;
  s.wp = v.written;
  s.off = ((c0 - v.lo_z) * v.wy + (c1 - v.lo_y)) * v.wx + (c2 - v.lo_x);
  s.xs = (a.sel[0] == 2 ? sz : 0) + (a.sel[1] == 2 ? sy : 0) +
         (a.sel[2] == 2 ? sx : 0);
  s.zs = (a.sel[0] == 0 ? sz : 0) + (a.sel[1] == 0 ? sy : 0) +
         (a.sel[2] == 0 ? sx : 0);
  s.scratch = a.scratch;
  s.cz0 = box.lo[0];
  s.cz1 = box.hi[0];
  std::uint64_t mask = (1ull << lanes) - 1;
  if (drop && !a.scratch) {
    // Fold the commit-box test into a z interval plus a per-lane mask:
    // each access dimension constrains the point coordinate driving it.
    for (std::size_t d = 0; d < 3; ++d) {
      const std::int64_t lo = commit.lo[d], hi = commit.hi[d];
      switch (a.sel[d]) {
        case 3:
          if (a.off[d] < lo || a.off[d] >= hi) mask = 0;
          break;
        case 0:
          s.cz0 = std::max(s.cz0, lo - a.off[d]);
          s.cz1 = std::min(s.cz1, hi - a.off[d]);
          break;
        case 1:
          if (y + a.off[d] < lo || y + a.off[d] >= hi) mask = 0;
          break;
        case 2:
          for (std::int64_t l = 0; l < lanes; ++l) {
            const std::int64_t cx = x0 + l + a.off[d];
            if (cx < lo || cx >= hi) mask &= ~(1ull << l);
          }
          break;
      }
    }
  }
  s.mask = mask;
  return s;
}

template <class B>
inline typename B::Vec load_vec(const LoadBind& b) {
  if (b.xs == 1) return B::loadu(b.p + b.off);
  if (b.xs == 0) return B::broadcast(b.p[b.off]);
  alignas(64) double buf[8] = {};
  for (std::int64_t l = 0; l < B::kWidth; ++l) {
    buf[l] = b.p[b.off + l * b.xs];
  }
  return B::loadu(buf);
}

template <class B>
inline void exec_body(const LinearProgram& lp, typename B::Vec* regs,
                      const std::int32_t* ring_base, const LoadBind* lbs) {
  for (const NInstr& I : lp.body) {
    switch (I.op) {
      case NOp::Load: {
        const NAccess& a = lp.loads[static_cast<std::size_t>(I.aux)];
        if (a.chain >= 0) {
          regs[I.dst] = regs[ring_base[a.chain] + a.chain_pos];
        } else {
          regs[I.dst] = load_vec<B>(lbs[I.aux]);
        }
        break;
      }
      case NOp::Neg:
        regs[I.dst] = B::neg(regs[I.a]);
        break;
      case NOp::Fabs:
        regs[I.dst] = B::fabs_(regs[I.a]);
        break;
      case NOp::Sqrt:
        regs[I.dst] = B::sqrt_(regs[I.a]);
        break;
      case NOp::Exp:
        regs[I.dst] = B::exp_(regs[I.a]);
        break;
      case NOp::Log:
        regs[I.dst] = B::log_(regs[I.a]);
        break;
      case NOp::Add:
        regs[I.dst] = B::add(regs[I.a], regs[I.b]);
        break;
      case NOp::Sub:
        regs[I.dst] = B::sub(regs[I.a], regs[I.b]);
        break;
      case NOp::Mul:
        regs[I.dst] = B::mul(regs[I.a], regs[I.b]);
        break;
      case NOp::Div:
        regs[I.dst] = B::div(regs[I.a], regs[I.b]);
        break;
      case NOp::Min:
        regs[I.dst] = B::min_(regs[I.a], regs[I.b]);
        break;
      case NOp::Max:
        regs[I.dst] = B::max_(regs[I.a], regs[I.b]);
        break;
      case NOp::Pow:
        regs[I.dst] = B::pow_(regs[I.a], regs[I.b]);
        break;
      case NOp::Fmadd:
        regs[I.dst] = B::fmadd(regs[I.a], regs[I.b], regs[I.c]);
        break;
      case NOp::Fmsub:
        regs[I.dst] = B::fmsub(regs[I.a], regs[I.b], regs[I.c]);
        break;
      case NOp::Fnmadd:
        regs[I.dst] = B::fnmadd(regs[I.a], regs[I.b], regs[I.c]);
        break;
    }
  }
}

template <class B>
inline void commit_stores(const LinearProgram& lp,
                          const typename B::Vec* regs, const StoreBind* sbs,
                          std::int64_t z) {
  constexpr std::uint64_t kFull = (1ull << B::kWidth) - 1;
  for (std::size_t i = 0; i < lp.stores.size(); ++i) {
    const StoreBind& s = sbs[i];
    const typename B::Vec v = regs[lp.stores[i].src];
    if (s.scratch) {
      // Scratch writes always land (interior_region keeps them in-window)
      // and mark their written flags; non-unit strides fall back to lane
      // order, preserving the bytecode's last-lane-wins for xs == 0.
      if (s.xs == 1) {
        B::storeu(s.p + s.off, v);
        std::memset(s.wp + s.off, 1, static_cast<std::size_t>(B::kWidth));
      } else {
        alignas(64) double buf[8];
        B::storeu(buf, v);
        for (std::int64_t l = 0; l < B::kWidth; ++l) {
          const std::int64_t o = s.off + l * s.xs;
          s.p[o] = buf[l];
          s.wp[o] = 1;
        }
      }
      continue;
    }
    if (z < s.cz0 || z >= s.cz1 || s.mask == 0) continue;
    if (s.mask == kFull && s.xs == 1) {
      B::storeu(s.p + s.off, v);
      continue;
    }
    alignas(64) double buf[8];
    B::storeu(buf, v);
    for (std::int64_t l = 0; l < B::kWidth; ++l) {
      if (s.mask >> l & 1) s.p[s.off + l * s.xs] = buf[l];
    }
  }
}

/// Partial x chunks (fewer than kWidth lanes) run a plain double register
/// file with identical per-op semantics: strict ops are the scalar ops
/// the bytecode engine runs, fast-math FMAs are std::fma (the same
/// correctly-rounded operation the vector FMA performs).
inline void run_tail(const LinearProgram& lp, const LoadBind* lbs,
                     const StoreBind* sbs, double* regs, std::int64_t z0,
                     std::int64_t z1, std::int64_t lanes) {
  for (std::int64_t z = z0; z < z1; ++z) {
    const std::int64_t dz = z - z0;
    for (std::int64_t l = 0; l < lanes; ++l) {
      for (const NInstr& I : lp.body) {
        switch (I.op) {
          case NOp::Load: {
            const LoadBind& b = lbs[I.aux];
            regs[I.dst] = b.p[b.off + dz * b.zs + l * b.xs];
            break;
          }
          case NOp::Neg:
            regs[I.dst] = -regs[I.a];
            break;
          case NOp::Fabs:
            regs[I.dst] = std::fabs(regs[I.a]);
            break;
          case NOp::Sqrt:
            regs[I.dst] = std::sqrt(regs[I.a]);
            break;
          case NOp::Exp:
            regs[I.dst] = std::exp(regs[I.a]);
            break;
          case NOp::Log:
            regs[I.dst] = std::log(regs[I.a]);
            break;
          case NOp::Add:
            regs[I.dst] = regs[I.a] + regs[I.b];
            break;
          case NOp::Sub:
            regs[I.dst] = regs[I.a] - regs[I.b];
            break;
          case NOp::Mul:
            regs[I.dst] = regs[I.a] * regs[I.b];
            break;
          case NOp::Div:
            regs[I.dst] = regs[I.a] / regs[I.b];
            break;
          case NOp::Min:
            regs[I.dst] = std::min(regs[I.a], regs[I.b]);
            break;
          case NOp::Max:
            regs[I.dst] = std::max(regs[I.a], regs[I.b]);
            break;
          case NOp::Pow:
            regs[I.dst] = std::pow(regs[I.a], regs[I.b]);
            break;
          case NOp::Fmadd:
            regs[I.dst] = std::fma(regs[I.a], regs[I.b], regs[I.c]);
            break;
          case NOp::Fmsub:
            regs[I.dst] = std::fma(regs[I.a], regs[I.b], -regs[I.c]);
            break;
          case NOp::Fnmadd:
            regs[I.dst] = std::fma(-regs[I.a], regs[I.b], regs[I.c]);
            break;
        }
      }
      for (std::size_t i = 0; i < lp.stores.size(); ++i) {
        const StoreBind& s = sbs[i];
        const double v = regs[lp.stores[i].src];
        const std::int64_t o = s.off + dz * s.zs + l * s.xs;
        if (s.scratch) {
          s.p[o] = v;
          s.wp[o] = 1;
          continue;
        }
        if (z < s.cz0 || z >= s.cz1 || !(s.mask >> l & 1)) continue;
        s.p[o] = v;
      }
    }
  }
}

template <class B>
void run_box_impl(const LinearProgram& lp, const ArrayView* views,
                  const double* scalars, const BcRegion& box,
                  const BcRegion& commit, bool drop) {
  if (box.empty()) return;
  constexpr std::int64_t W = B::kWidth;
  using V = typename B::Vec;

  // Rotating-window rings live after the program's own registers.
  std::int32_t total = lp.n_regs;
  std::vector<std::int32_t> ring_base(lp.chains.size());
  for (std::size_t c = 0; c < lp.chains.size(); ++c) {
    ring_base[c] = total;
    total += static_cast<std::int32_t>(lp.chains[c].members.size());
  }

  std::vector<V> regs(static_cast<std::size_t>(total));
  std::vector<double> sregs(static_cast<std::size_t>(total));
  for (std::size_t i = 0; i < lp.setup_consts.size(); ++i) {
    regs[lp.const_reg[i]] = B::broadcast(lp.setup_consts[i]);
    sregs[lp.const_reg[i]] = lp.setup_consts[i];
  }
  for (std::size_t i = 0; i < lp.setup_scalars.size(); ++i) {
    const double v = scalars[lp.setup_scalars[i]];
    regs[lp.scalar_reg[i]] = B::broadcast(v);
    sregs[lp.scalar_reg[i]] = v;
  }

  std::vector<LoadBind> lbs(lp.loads.size());
  std::vector<StoreBind> sbs(lp.stores.size());

  const std::int64_t z0 = box.lo[0], z1 = box.hi[0];
  for (std::int64_t y = box.lo[1]; y < box.hi[1]; ++y) {
    for (std::int64_t x0 = box.lo[2]; x0 < box.hi[2]; x0 += W) {
      const std::int64_t lanes = std::min(W, box.hi[2] - x0);
      for (std::size_t i = 0; i < lp.loads.size(); ++i) {
        lbs[i] = bind_load(views, lp.loads[i], z0, y, x0);
      }
      for (std::size_t i = 0; i < lp.stores.size(); ++i) {
        sbs[i] = bind_store(views, lp.stores[i].acc, z0, y, x0, lanes, box,
                            commit, drop);
      }
      if (lanes < W) {
        run_tail(lp, lbs.data(), sbs.data(), sregs.data(), z0, z1, lanes);
        continue;
      }
      // Prime the rotating windows with the full star at z0; each later z
      // shifts the ring down one slot and loads only the leading plane.
      for (std::size_t c = 0; c < lp.chains.size(); ++c) {
        const auto& m = lp.chains[c].members;
        for (std::size_t p = 0; p < m.size(); ++p) {
          regs[static_cast<std::size_t>(ring_base[c]) + p] =
              load_vec<B>(lbs[static_cast<std::size_t>(m[p])]);
        }
      }
      for (std::int64_t z = z0; z < z1; ++z) {
        if (z > z0) {
          for (auto& b : lbs) b.off += b.zs;
          for (auto& s : sbs) s.off += s.zs;
          for (std::size_t c = 0; c < lp.chains.size(); ++c) {
            const auto& m = lp.chains[c].members;
            const auto rb = static_cast<std::size_t>(ring_base[c]);
            for (std::size_t p = 0; p + 1 < m.size(); ++p) {
              regs[rb + p] = regs[rb + p + 1];
            }
            regs[rb + m.size() - 1] =
                load_vec<B>(lbs[static_cast<std::size_t>(m.back())]);
          }
        }
        exec_body<B>(lp, regs.data(), ring_base.data(), lbs.data());
        commit_stores<B>(lp, regs.data(), sbs.data(), z);
      }
    }
  }
}
