# Empty dependencies file for perf_behavior_test.
# This may be replaced when dependencies are built.
