// Serial/parallel equivalence of the autotuner (the contract behind
// `artemisc --jobs N`): for any seed and any jobs value the tuner must
// return byte-identical results to the serial path — same best config,
// same reported cost, same leaderboard, same resilience accounting, and
// (when journaling) the same journal bytes. The tests sweep seeded
// random stencils through jobs in {1, 2, 4, 8}, with and without
// injected crash/timeout loads.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "artemis/autotune/deep_tuning.hpp"
#include "artemis/autotune/search.hpp"
#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/common/str.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::autotune {
namespace {

using codegen::KernelConfig;

/// Everything a tuning run decided, flattened to printable text so a
/// mismatch between jobs values shows the exact divergence. Times are
/// printed with max precision: "identical" means bit-identical.
std::string snapshot(const TuneResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << "best=" << serialize_config(r.best.config) << " time=" << r.best.time_s
     << "\n";
  for (const auto& c : r.leaderboard) {
    os << "  board " << serialize_config(c.config) << " time=" << c.time_s
       << "\n";
  }
  os << "evaluated_stage1=" << r.evaluated_stage1
     << " evaluated_stage2=" << r.evaluated_stage2
     << " infeasible=" << r.infeasible
     << " skipped_spilling=" << r.skipped_spilling
     << " crashed=" << r.crashed << " timed_out=" << r.timed_out
     << " unstable=" << r.unstable << " quarantined=" << r.quarantined
     << " journal_hits=" << r.journal_hits << " degraded=" << r.degraded
     << " model_pruned=" << r.model_pruned << "\n";
  return os.str();
}

/// Small-but-real search space so 20 stencils x 4 jobs settings stay
/// fast; every path of the tuner (escalation, both stages, streaming)
/// is still exercised.
TuneOptions small_space(int jobs) {
  TuneOptions o;
  o.max_block = 16;
  o.max_unroll_bandwidth = 2;
  o.register_budgets = {64, 128};
  o.jobs = jobs;
  return o;
}

class ParallelTuningTest : public ::testing::Test {
 protected:
  void SetUp() override { robust::clear_fault_plan(); }
  void TearDown() override { robust::clear_fault_plan(); }

  PlanFactory factory_for(const ir::Program& prog) {
    return [&prog, this](const KernelConfig& cfg) {
      return codegen::build_plan_for_call(prog, prog.steps[0].call, cfg,
                                          dev_);
    };
  }

  ir::Program random_stencil(std::uint64_t seed) {
    Rng rng(seed);
    stencils::RandomStencilOptions opts;
    opts.dims = 2 + static_cast<int>(seed % 2);
    opts.max_order = 2;
    return stencils::random_program(rng, opts);
  }

  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;
};

// ---- the core equivalence sweep: 20 seeded random stencils ---------------

TEST_F(ParallelTuningTest, PlanIdenticalAcrossJobsForTwentyRandomStencils) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ir::Program prog = random_stencil(seed);
    const auto factory = factory_for(prog);
    const KernelConfig seed_cfg;

    const TuneResult serial =
        hierarchical_tune(factory, seed_cfg, dev_, params_, small_space(1));
    const std::string want = snapshot(serial);
    ASSERT_TRUE(serial.best.eval.valid) << "stencil seed " << seed;

    for (const int jobs : {2, 4, 8}) {
      const TuneResult parallel = hierarchical_tune(
          factory, seed_cfg, dev_, params_, small_space(jobs));
      EXPECT_EQ(snapshot(parallel), want)
          << "stencil seed " << seed << ", jobs=" << jobs;
    }
  }
}

// ---- equivalence under injected crash/timeout load -----------------------

TEST_F(ParallelTuningTest, FaultInjectedPlansAreJobsInvariant) {
  // Crashes and stalls hit the same candidates on every thread (fault
  // decisions are a pure hash of the key), and quarantine membership is
  // order-independent; the whole result — including the crash/timeout/
  // quarantine accounting — must not depend on jobs. The stall deadline
  // (stall_ms / 2 = 25 ms) leaves the analytic evaluations far below the
  // timeout threshold even on an oversubscribed CI machine.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    robust::FaultSpec spec;
    spec.crash_p = 0.3;
    spec.timeout_p = 0.05;
    spec.stall_ms = 50;
    spec.seed = 1000 + seed;
    spec.site = "tuner.eval";
    robust::install_fault_plan(spec);

    const ir::Program prog = random_stencil(seed);
    const auto factory = factory_for(prog);
    const KernelConfig seed_cfg;

    const TuneResult serial =
        hierarchical_tune(factory, seed_cfg, dev_, params_, small_space(1));
    const std::string want = snapshot(serial);

    for (const int jobs : {4, 8}) {
      const TuneResult parallel = hierarchical_tune(
          factory, seed_cfg, dev_, params_, small_space(jobs));
      EXPECT_EQ(snapshot(parallel), want)
          << "stencil seed " << seed << ", jobs=" << jobs;
      EXPECT_EQ(parallel.quarantined, serial.quarantined)
          << "quarantine must be order-independent";
    }
  }
}

// ---- equivalence with every model time deliberately tied -----------------

TEST_F(ParallelTuningTest, TiedModelTimesAreJobsInvariant) {
  // Regression for the leaderboard tie-break: a factory that ignores the
  // requested configuration and always builds the same plan makes every
  // candidate's modelled time identical, so the board order is decided
  // entirely by the canonical-serialization tie-break. Neither insertion
  // history nor jobs may leak into the result.
  const ir::Program prog = random_stencil(9);
  const KernelConfig fixed;
  const PlanFactory factory = [&prog, this, fixed](const KernelConfig&) {
    return codegen::build_plan_for_call(prog, prog.steps[0].call, fixed,
                                        dev_);
  };
  const KernelConfig seed_cfg;

  const TuneResult serial =
      hierarchical_tune(factory, seed_cfg, dev_, params_, small_space(1));
  ASSERT_TRUE(serial.best.eval.valid);
  ASSERT_GE(serial.leaderboard.size(), 2u);
  for (std::size_t i = 0; i + 1 < serial.leaderboard.size(); ++i) {
    const auto& a = serial.leaderboard[i];
    const auto& b = serial.leaderboard[i + 1];
    EXPECT_LE(a.time_s, b.time_s);
    if (a.time_s == b.time_s) {
      EXPECT_LT(serialize_config(a.config), serialize_config(b.config))
          << "ties must be ordered by the canonical key, slot " << i;
    }
  }

  const std::string want = snapshot(serial);
  for (const int jobs : {4, 8}) {
    const TuneResult parallel = hierarchical_tune(factory, seed_cfg, dev_,
                                                  params_, small_space(jobs));
    EXPECT_EQ(snapshot(parallel), want) << "jobs=" << jobs;
  }
}

// ---- model pre-filter keeps the plan and stays jobs-invariant ------------

TEST_F(ParallelTuningTest, ModelPrefilterKeepsPlanAndIsJobsInvariant) {
  // With model_prune_k = top_k the analytical pre-filter keeps exactly
  // the candidates that would have won the unpruned stage anyway (the
  // simulated time of a clean run *is* the model time), so the final
  // plan, its cost and the whole leaderboard are unchanged while most of
  // the space is never evaluated. The filter selects by a total order,
  // so the pruned tuner must stay jobs-invariant too.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const ir::Program prog = random_stencil(seed);
    const auto factory = factory_for(prog);
    const KernelConfig seed_cfg;

    const TuneResult full =
        hierarchical_tune(factory, seed_cfg, dev_, params_, small_space(1));
    TuneOptions pruned_opts = small_space(1);
    pruned_opts.model_prune_k = pruned_opts.top_k;
    const TuneResult pruned =
        hierarchical_tune(factory, seed_cfg, dev_, params_, pruned_opts);

    ASSERT_TRUE(pruned.best.eval.valid) << "seed " << seed;
    EXPECT_GT(pruned.model_pruned, 0) << "seed " << seed;
    EXPECT_LT(pruned.evaluated_stage1, full.evaluated_stage1)
        << "seed " << seed;
    EXPECT_EQ(serialize_config(pruned.best.config),
              serialize_config(full.best.config))
        << "seed " << seed;
    EXPECT_EQ(pruned.best.time_s, full.best.time_s) << "seed " << seed;
    ASSERT_EQ(pruned.leaderboard.size(), full.leaderboard.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < full.leaderboard.size(); ++i) {
      EXPECT_EQ(serialize_config(pruned.leaderboard[i].config),
                serialize_config(full.leaderboard[i].config))
          << "seed " << seed << ", slot " << i;
      EXPECT_EQ(pruned.leaderboard[i].time_s, full.leaderboard[i].time_s)
          << "seed " << seed << ", slot " << i;
    }

    const std::string want = snapshot(pruned);
    for (const int jobs : {4, 8}) {
      TuneOptions opts = small_space(jobs);
      opts.model_prune_k = opts.top_k;
      const TuneResult parallel =
          hierarchical_tune(factory, seed_cfg, dev_, params_, opts);
      EXPECT_EQ(snapshot(parallel), want)
          << "seed " << seed << ", jobs=" << jobs;
    }
  }
}

// ---- journal byte-identity -----------------------------------------------

class ParallelJournalTest : public ParallelTuningTest {
 protected:
  void SetUp() override {
    ParallelTuningTest::SetUp();
    path_ = str_cat("/tmp/artemis_parallel_tuning_",
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name(),
                    ".wal");
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    ParallelTuningTest::TearDown();
  }

  std::string read_file() const {
    std::ifstream in(path_);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::string path_;
};

TEST_F(ParallelJournalTest, JournalBytesIdenticalAcrossJobs) {
  // The journal is committed by the ordered reduction only, so even its
  // byte layout must not depend on jobs — with faults armed, too.
  robust::FaultSpec spec;
  spec.crash_p = 0.25;
  spec.seed = 7;
  spec.site = "tuner.eval";

  const ir::Program prog = random_stencil(3);
  const auto factory = factory_for(prog);
  const KernelConfig seed_cfg;

  std::string serial_bytes;
  for (const int jobs : {1, 8}) {
    std::remove(path_.c_str());
    robust::install_fault_plan(spec);
    robust::TuningJournal journal;
    ASSERT_EQ(journal.open(path_, "jobs-eq", /*resume=*/false).status,
              robust::JournalLoadResult::Status::Fresh);
    TuneOptions opts = small_space(jobs);
    opts.journal = &journal;
    const TuneResult r =
        hierarchical_tune(factory, seed_cfg, dev_, params_, opts);
    EXPECT_GT(journal.recorded(), 0u);
    (void)r;
    if (jobs == 1) {
      serial_bytes = read_file();
    } else {
      EXPECT_EQ(read_file(), serial_bytes) << "jobs=" << jobs;
    }
  }
}

TEST_F(ParallelJournalTest, ParallelRunResumesFromJournal) {
  const ir::Program prog = random_stencil(4);
  const auto factory = factory_for(prog);
  const KernelConfig seed_cfg;

  TuneResult first;
  {
    robust::TuningJournal journal;
    journal.open(path_, "resume-par", /*resume=*/false);
    TuneOptions opts = small_space(4);
    opts.journal = &journal;
    first = hierarchical_tune(factory, seed_cfg, dev_, params_, opts);
    EXPECT_GT(journal.recorded(), 0u);
    EXPECT_EQ(first.journal_hits, 0);
  }
  {
    robust::TuningJournal journal;
    const auto load = journal.open(path_, "resume-par", /*resume=*/true);
    ASSERT_EQ(load.status, robust::JournalLoadResult::Status::Replayed);
    EXPECT_GT(load.replayed, 0u);
    TuneOptions opts = small_space(4);
    opts.journal = &journal;
    auto& collector = telemetry::Collector::global();
    collector.clear();
    collector.enable();
    const TuneResult again =
        hierarchical_tune(factory, seed_cfg, dev_, params_, opts);
    const auto counters = collector.counters();
    collector.disable();
    EXPECT_GT(again.journal_hits, 0);
    EXPECT_EQ(serialize_config(again.best.config),
              serialize_config(first.best.config));
    EXPECT_EQ(again.best.time_s, first.best.time_s);

    // Replay accounting: journal hits are counted in their own
    // `tuner.space_replayed` counter, never folded into the sweep's
    // enumeration, so a resumed run's space-coverage fraction stays <= 1
    // instead of double-counting every replayed candidate.
    const auto counter = [&](const char* name) -> std::int64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    EXPECT_EQ(counter("tuner.space_replayed"), again.journal_hits);
    EXPECT_GT(counter("tuner.space_unpruned"), 0);
    EXPECT_LE(counter("tuner.space_enumerated"),
              counter("tuner.space_unpruned"));
    // The enumerated partition holds on the replay path, too.
    EXPECT_EQ(counter("tuner.enumerated"),
              counter("tuner.evaluated") + counter("tuner.infeasible"));
  }
}

// ---- the other searches --------------------------------------------------

TEST_F(ParallelTuningTest, RandomTuneIsJobsInvariant) {
  // The random sweep draws its whole sample serially first (one RNG
  // stream) and may contain duplicate configurations — the duplicate-key
  // deferral path — so it is tuned with a journal to force keys alive.
  const ir::Program prog = random_stencil(6);
  const auto factory = factory_for(prog);
  const KernelConfig seed_cfg;

  robust::TuningJournal unused;  // inactive: keys exist, no file I/O
  TuneOptions serial_opts = small_space(1);
  serial_opts.journal = &unused;
  const TuneResult serial = random_tune(factory, seed_cfg, dev_, params_,
                                        serial_opts, /*budget=*/80, 99);
  for (const int jobs : {2, 8}) {
    TuneOptions opts = small_space(jobs);
    opts.journal = &unused;
    const TuneResult parallel =
        random_tune(factory, seed_cfg, dev_, params_, opts, /*budget=*/80,
                    99);
    EXPECT_EQ(snapshot(parallel), snapshot(serial)) << "jobs=" << jobs;
  }
}

TEST_F(ParallelTuningTest, ExhaustiveTuneIsJobsInvariant) {
  const ir::Program prog = random_stencil(7);
  const auto factory = factory_for(prog);
  const KernelConfig seed_cfg;

  TuneOptions serial_opts = small_space(1);
  serial_opts.register_budgets = {64};
  const TuneResult serial =
      exhaustive_tune(factory, seed_cfg, dev_, params_, serial_opts);
  TuneOptions par_opts = small_space(8);
  par_opts.register_budgets = {64};
  const TuneResult parallel =
      exhaustive_tune(factory, seed_cfg, dev_, params_, par_opts);
  EXPECT_EQ(snapshot(parallel), snapshot(serial));
}

TEST_F(ParallelTuningTest, DeepTuneIsJobsInvariant) {
  // Parallel deep tuning shards the per-x loop; the reduction replays
  // the serial stopping rule, so entries, cusp handling and the tipping
  // point must match exactly.
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);

  DeepTuneOptions serial_opts;
  serial_opts.max_time_tile = 4;
  serial_opts.tune = small_space(1);
  const DeepTuneResult serial =
      deep_tune(prog, prog.steps[0], dev_, params_, serial_opts);

  DeepTuneOptions par_opts = serial_opts;
  par_opts.tune = small_space(4);
  const DeepTuneResult parallel =
      deep_tune(prog, prog.steps[0], dev_, params_, par_opts);

  EXPECT_EQ(parallel.tipping_point, serial.tipping_point);
  ASSERT_EQ(parallel.entries.size(), serial.entries.size());
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    EXPECT_EQ(parallel.entries[i].time_tile, serial.entries[i].time_tile);
    EXPECT_EQ(parallel.entries[i].time_s, serial.entries[i].time_s);
    EXPECT_EQ(serialize_config(parallel.entries[i].tuned.best.config),
              serialize_config(serial.entries[i].tuned.best.config));
  }
}

// ---- jobs resolution policy ----------------------------------------------

TEST_F(ParallelTuningTest, ResolveJobsPolicy) {
  TuneOptions o;
  o.jobs = 1;
  EXPECT_EQ(resolve_tune_jobs(o), 1);
  o.jobs = 5;
  EXPECT_EQ(resolve_tune_jobs(o), 5);
  o.jobs = -3;
  EXPECT_EQ(resolve_tune_jobs(o), 1);
  o.jobs = 0;
  set_default_jobs(6);
  EXPECT_EQ(resolve_tune_jobs(o), 6);
  set_default_jobs(0);
  EXPECT_GE(resolve_tune_jobs(o), 1);  // hardware concurrency

  // Inside a pool worker every nested search drops to serial.
  TaskPool pool(2);
  int inner = -1;
  pool.for_each(2, [&](std::int64_t i) {
    if (i == 0) {
      TuneOptions nested;
      nested.jobs = 8;
      inner = resolve_tune_jobs(nested);
    }
  });
  EXPECT_EQ(inner, 1);
}

}  // namespace
}  // namespace artemis::autotune
