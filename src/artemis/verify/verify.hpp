#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::verify {

/// The five property families the differential harness checks. Every
/// family takes a (usually randomly generated) program plus a data seed
/// and decides semantics-preservation end to end.
enum class Property {
  RoundTrip,             ///< print -> parse -> print is a fixpoint
  TransformEquivalence,  ///< fusion/fission/fold/retime preserve semantics
  EngineEquivalence,     ///< reference vs tree-walk vs bytecode vs native
                         ///< (strict bit-identical, fast-math ULP-bounded),
                         ///< jobs 1/2/4
  TunerDeterminism,      ///< same seed + jobs => byte-identical plan/journal
  VariantEquivalence,    ///< profiler code-differencing variants agree
};

const char* property_name(Property p);
std::optional<Property> property_by_name(const std::string& name);
std::vector<Property> all_properties();

/// Outcome of one property check. `detail` is empty on success and a
/// one-line human-readable mismatch description on failure.
struct CheckResult {
  bool ok = true;
  std::string detail;
};

CheckResult check_roundtrip(const ir::Program& prog);
CheckResult check_transforms(const ir::Program& prog, std::uint64_t seed);
CheckResult check_engines(const ir::Program& prog, std::uint64_t seed);
CheckResult check_tuner_determinism(const ir::Program& prog,
                                    std::uint64_t seed);
CheckResult check_variants(const ir::Program& prog, std::uint64_t seed);

/// Dispatch to the family's checker. Exceptions escaping a checker are
/// caught and reported as failures (a crash is a property violation).
CheckResult check_property(Property p, const ir::Program& prog,
                           std::uint64_t seed);

struct VerifyOptions {
  /// Random programs generated per run; each is checked against every
  /// enabled property family (the expensive families are sampled).
  int seed_count = 50;
  /// Base of the seed block; program i uses base_seed + i.
  std::uint64_t base_seed = 0xA27E3115;
  /// Families to check. Empty = all five.
  std::vector<Property> properties;
  /// Minimize failing programs with the greedy shrinker.
  bool shrink = true;
  /// Property evaluations the shrinker may spend per failure.
  int max_shrink_checks = 400;
  /// When set, each (minimized) failure is written as a reproducer .dsl
  /// into this directory (created if needed).
  std::string corpus_dir;
  /// Stop after this many failures (0 = collect everything).
  int max_failures = 10;
  /// Per-seed progress callback text sink (e.g. for --verify -v);
  /// empty detail means the seed passed.
  bool verbose = false;
};

/// One (minimized) property failure.
struct Failure {
  Property property = Property::RoundTrip;
  std::uint64_t seed = 0;     ///< data/generation seed of the failing trial
  std::string detail;         ///< mismatch description (original failure)
  std::string program_dsl;    ///< minimized program text
  std::string corpus_path;    ///< reproducer path when corpus_dir was set
  int shrink_rounds = 0;      ///< accepted shrink steps
};

struct VerifyReport {
  int programs_checked = 0;
  int checks_run = 0;
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

/// Run the whole harness: a fixed block of named paper kernels plus
/// `seed_count` random programs, each checked against the enabled
/// property families; failures are shrunk and written to the corpus.
VerifyReport run_verify(const VerifyOptions& opts = {});

/// Check every enabled property family against one specific program
/// (the `artemisc --verify prog.dsl` path).
VerifyReport verify_program(const ir::Program& prog,
                            const VerifyOptions& opts = {});

}  // namespace artemis::verify
