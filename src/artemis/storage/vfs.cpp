#include "artemis/storage/vfs.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <functional>

#include "artemis/common/str.hpp"

namespace artemis::storage {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void throw_errno(const char* op, const std::string& path) {
  const int err = errno;
  const VfsError::Code code = err == ENOSPC || err == EDQUOT
                                  ? VfsError::Code::NoSpace
                                  : (err == ENOENT ? VfsError::Code::NotFound
                                                   : VfsError::Code::Io);
  throw VfsError(code, str_cat(op, " '", path, "': ", std::strerror(err)));
}

// --- RealVfs ---------------------------------------------------------------

class RealFile : public VfsFile {
 public:
  RealFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~RealFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void write(const std::string& data) override {
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n =
          ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write", path_);
      }
      done += static_cast<std::size_t>(n);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  }

  void close() override {
    if (fd_ < 0) return;
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) throw_errno("close", path_);
  }

 private:
  int fd_;
  std::string path_;
};

class RealLock : public VfsLock {
 public:
  RealLock(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~RealLock() override {
    // Clean release: empty the file first (the liveness marker — a
    // non-empty lock file means its holder died), then drop the flock.
    if (::ftruncate(fd_, 0) == 0) ::fsync(fd_);
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }

 private:
  int fd_;
  std::string path_;
};

class RealVfs : public Vfs {
 public:
  bool exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  std::optional<std::string> read(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return std::nullopt;
      throw_errno("open", path);
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        errno = err;
        throw_errno("read", path);
      }
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  }

  std::vector<std::string> list(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::unique_ptr<VfsFile> create(const std::string& path,
                                  bool truncate) override {
    const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) throw_errno("create", path);
    return std::make_unique<RealFile>(fd, path);
  }

  void mkdirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      throw VfsError(VfsError::Code::Io,
                     str_cat("mkdirs '", path, "': ", ec.message()));
    }
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename", from);
  }

  bool remove(const std::string& path) override {
    if (::unlink(path.c_str()) == 0) return true;
    if (errno == ENOENT) return false;
    throw_errno("unlink", path);
  }

  void sync_dir(const std::string& path) override {
    // Best-effort by contract: not every filesystem can fsync a
    // directory, and the callers' correctness reduces to "ordered
    // metadata" there, which is what those filesystems provide.
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    ::fsync(fd);
    ::close(fd);
  }

  std::unique_ptr<VfsLock> try_lock(const std::string& path,
                                    bool* stale_reclaimed) override {
    if (stale_reclaimed != nullptr) *stale_reclaimed = false;
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) throw_errno("open lock", path);
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd);
      if (errno == EWOULDBLOCK || errno == EINTR) return nullptr;
      throw_errno("flock", path);
    }
    // flock is released by the kernel when a holder dies, so acquisition
    // succeeding while the file still carries a holder tag proves that
    // holder crashed mid-critical-section.
    char buf[64];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0 && stale_reclaimed != nullptr) *stale_reclaimed = true;
    if (::ftruncate(fd, 0) != 0 || ::lseek(fd, 0, SEEK_SET) < 0) {
      ::close(fd);
      throw_errno("truncate lock", path);
    }
    const std::string tag = process_tag();
    if (::write(fd, tag.data(), tag.size()) < 0 || ::fsync(fd) != 0) {
      ::close(fd);
      throw_errno("write lock", path);
    }
    return std::make_unique<RealLock>(fd, path);
  }

  std::string process_tag() const override {
    return str_cat("pid:", ::getpid());
  }

  bool tag_alive(const std::string& tag) override {
    // Only "pid:<N>" tags can be judged; anything else is conservatively
    // alive. kill(pid, 0) probes existence: ESRCH proves death, EPERM
    // proves life (the process exists, just not ours to signal).
    if (tag.rfind("pid:", 0) != 0) return true;
    pid_t pid = 0;
    try {
      const unsigned long v = std::stoul(tag.substr(4));
      pid = static_cast<pid_t>(v);
      if (pid <= 0 || static_cast<unsigned long>(pid) != v) return true;
    } catch (const std::exception&) {
      return true;
    }
    return ::kill(pid, 0) == 0 || errno != ESRCH;
  }
};

}  // namespace

Vfs& real_vfs() {
  static RealVfs vfs;
  return vfs;
}

std::string dirname(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void atomic_write_file(Vfs& vfs, const std::string& path,
                       const std::string& content) {
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = str_cat(path, ".tmp-", vfs.process_tag(), "-",
                                  seq.fetch_add(1));
  try {
    auto f = vfs.create(tmp, /*truncate=*/true);
    f->write(content);
    f->sync();
    f->close();
    vfs.rename(tmp, path);
    vfs.sync_dir(dirname(path));
  } catch (const VfsError&) {
    try {
      vfs.remove(tmp);
    } catch (const VfsError&) {
      // Recovery sweeps orphan temps; the original error matters more.
    }
    throw;
  }
}

const char* vfs_op_name(VfsOp::Kind k) {
  switch (k) {
    case VfsOp::Kind::Create: return "create";
    case VfsOp::Kind::Write: return "write";
    case VfsOp::Kind::Sync: return "sync";
    case VfsOp::Kind::Rename: return "rename";
    case VfsOp::Kind::Remove: return "remove";
    case VfsOp::Kind::Mkdir: return "mkdir";
    case VfsOp::Kind::SyncDir: return "syncdir";
  }
  return "?";
}

// --- MemVfs ----------------------------------------------------------------

// Must live at namespace scope: MemVfs befriends this exact name.
class MemVfsFile : public VfsFile {
 public:
  MemVfsFile(MemVfs* vfs, std::string path)
      : vfs_(vfs), path_(std::move(path)) {}
  void write(const std::string& data) override;
  void sync() override;
  void close() override {}

 private:
  MemVfs* vfs_;
  std::string path_;
};

namespace {

class MemVfsLock : public VfsLock {
 public:
  explicit MemVfsLock(std::function<void()> release)
      : release_(std::move(release)) {}
  ~MemVfsLock() override { release_(); }

 private:
  std::function<void()> release_;
};

}  // namespace

bool MemVfs::exists(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

std::optional<std::string> MemVfs::read(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.data;
}

std::vector<std::string> MemVfs::list(const std::string& dir) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  const auto member = [&](const std::string& path) {
    if (path == dir) return;
    if (storage::dirname(path) == dir) {
      names.push_back(path.substr(path.rfind('/') + 1));
    }
  };
  for (const auto& [path, f] : files_) member(path);
  for (const auto& d : dirs_) member(d);
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<VfsFile> MemVfs::create(const std::string& path,
                                        bool truncate) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    do_create(path, truncate);
    record({VfsOp::Kind::Create, path, "", "", truncate});
  }
  return std::make_unique<MemVfsFile>(this, path);
}

void MemVfs::mkdirs(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string prefix;
  for (const auto& part : split(path, '/')) {
    prefix += prefix.empty() && path[0] != '/' ? part : "/" + part;
    if (prefix.empty()) prefix = "/";
    dirs_.insert(prefix);
  }
  dirs_.insert(path);
  record({VfsOp::Kind::Mkdir, path, "", "", false});
}

void MemVfs::rename(const std::string& from, const std::string& to) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(from);
  if (it == files_.end()) {
    throw VfsError(VfsError::Code::NotFound,
                   str_cat("rename '", from, "': no such file"));
  }
  if (dirs_.count(storage::dirname(to)) == 0) {
    throw VfsError(VfsError::Code::NotFound,
                   str_cat("rename to '", to, "': no such directory"));
  }
  files_[to] = std::move(it->second);
  files_.erase(from);
  record({VfsOp::Kind::Rename, from, to, "", false});
}

bool MemVfs::remove(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  const bool existed = files_.erase(path) > 0;
  if (existed) record({VfsOp::Kind::Remove, path, "", "", false});
  return existed;
}

void MemVfs::sync_dir(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  record({VfsOp::Kind::SyncDir, path, "", "", false});
}

std::unique_ptr<VfsLock> MemVfs::try_lock(const std::string& path,
                                          bool* stale_reclaimed) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (stale_reclaimed != nullptr) *stale_reclaimed = false;
  if (held_locks_.count(path) > 0) return nullptr;
  const auto it = files_.find(path);
  if (it != files_.end() && !it->second.data.empty() &&
      stale_reclaimed != nullptr) {
    *stale_reclaimed = true;
  }
  // Mirror the real protocol: truncate, write the holder tag, sync. The
  // ops are recorded so a crash replay reproduces the stale lock file.
  do_create(path, /*truncate=*/true);
  record({VfsOp::Kind::Create, path, "", "", true});
  do_write(path, tag_);
  record({VfsOp::Kind::Write, path, "", tag_, false});
  do_sync(path);
  record({VfsOp::Kind::Sync, path, "", "", false});
  held_locks_[path] = tag_;
  const std::string tag = tag_;
  return std::make_unique<MemVfsLock>([this, path, tag] {
    const std::lock_guard<std::mutex> inner(mu_);
    const auto held = held_locks_.find(path);
    if (held == held_locks_.end() || held->second != tag) return;
    held_locks_.erase(held);
    do_create(path, /*truncate=*/true);  // empty = cleanly released
    record({VfsOp::Kind::Create, path, "", "", true});
    do_sync(path);
    record({VfsOp::Kind::Sync, path, "", "", false});
  });
}

void MemVfs::set_process_tag(std::string tag) {
  const std::lock_guard<std::mutex> lock(mu_);
  live_tags_.insert(tag);
  tag_ = std::move(tag);
}

void MemVfs::mark_tag_dead(const std::string& tag) {
  const std::lock_guard<std::mutex> lock(mu_);
  live_tags_.erase(tag);
  // The kernel releases a dead process's flocks; the lock files keep
  // whatever tag the holder wrote (stale-lock evidence).
  for (auto it = held_locks_.begin(); it != held_locks_.end();) {
    it = it->second == tag ? held_locks_.erase(it) : std::next(it);
  }
}

bool MemVfs::tag_alive(const std::string& tag) {
  const std::lock_guard<std::mutex> lock(mu_);
  return tag == tag_ || live_tags_.count(tag) > 0;
}

std::vector<VfsOp> MemVfs::trace() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

void MemVfs::clear_trace() {
  const std::lock_guard<std::mutex> lock(mu_);
  trace_.clear();
}

void MemVfs::apply(const VfsOp& op) {
  const std::lock_guard<std::mutex> lock(mu_);
  switch (op.kind) {
    case VfsOp::Kind::Create:
      do_create(op.path, op.truncate);
      return;
    case VfsOp::Kind::Write:
      do_write(op.path, op.data);
      return;
    case VfsOp::Kind::Sync:
      do_sync(op.path);
      return;
    case VfsOp::Kind::Rename:
      files_[op.path2] = std::move(files_[op.path]);
      files_.erase(op.path);
      return;
    case VfsOp::Kind::Remove:
      files_.erase(op.path);
      return;
    case VfsOp::Kind::Mkdir: {
      std::string prefix;
      for (const auto& part : split(op.path, '/')) {
        prefix += prefix.empty() && op.path[0] != '/' ? part : "/" + part;
        if (prefix.empty()) prefix = "/";
        dirs_.insert(prefix);
      }
      dirs_.insert(op.path);
      return;
    }
    case VfsOp::Kind::SyncDir:
      return;
  }
}

void MemVfs::crash(std::uint64_t variant) {
  const std::lock_guard<std::mutex> lock(mu_);
  robust::FaultSpec torn;
  torn.seed = variant;
  for (auto& [path, f] : files_) {
    const std::size_t tail = f.data.size() - f.synced;
    if (tail == 0) continue;
    std::size_t promote = 0;
    if (variant == 1) {
      promote = tail;  // the page cache flushed everything in time
    } else if (variant >= 2) {
      // A deterministic, per-file "how much did writeback manage" draw.
      promote = static_cast<std::size_t>(
          robust::fault_uniform(torn, "crash.writeback", path, 0, 7) *
          static_cast<double>(tail + 1));
      if (promote > tail) promote = tail;
    }
    f.data.resize(f.synced + promote);
    f.synced = f.data.size();
  }
  held_locks_.clear();  // the kernel releases a dead process's flocks
  // Machine death kills every simulated process. The current tag is
  // immediately live again: crash tests reuse one MemVfs as "the machine
  // after reboot", and the reopened process is the one doing the asking.
  live_tags_.clear();
  live_tags_.insert(tag_);
}

void MemVfs::install_file(const std::string& path,
                          const std::string& content) {
  const std::lock_guard<std::mutex> lock(mu_);
  files_[path] = File{content, content.size()};
  std::string prefix;
  for (const auto& part : split(storage::dirname(path), '/')) {
    prefix += prefix.empty() && path[0] != '/' ? part : "/" + part;
    if (prefix.empty()) prefix = "/";
    dirs_.insert(prefix);
  }
}

void MemVfs::do_create(const std::string& path, bool truncate) {
  if (dirs_.count(storage::dirname(path)) == 0) {
    throw VfsError(VfsError::Code::NotFound,
                   str_cat("create '", path, "': no such directory"));
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    files_[path] = File{};
  } else if (truncate) {
    it->second = File{};
  }
}

void MemVfs::do_write(const std::string& path, const std::string& data) {
  auto it = files_.find(path);
  ARTEMIS_CHECK_MSG(it != files_.end(), "write to uncreated file " << path);
  it->second.data += data;
}

void MemVfs::do_sync(const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) it->second.synced = it->second.data.size();
}

void MemVfs::record(VfsOp op) {
  if (record_) trace_.push_back(std::move(op));
}

MemVfs::File* MemVfs::find(const std::string& path) {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

void MemVfsFile::write(const std::string& data) {
  const std::lock_guard<std::mutex> lock(vfs_->mu_);
  vfs_->do_write(path_, data);
  vfs_->record({VfsOp::Kind::Write, path_, "", data, false});
}

void MemVfsFile::sync() {
  const std::lock_guard<std::mutex> lock(vfs_->mu_);
  vfs_->do_sync(path_);
  vfs_->record({VfsOp::Kind::Sync, path_, "", "", false});
}

std::unique_ptr<MemVfs> replay_prefix(const std::vector<VfsOp>& trace,
                                      std::size_t k, std::uint64_t variant) {
  auto vfs = std::make_unique<MemVfs>();
  for (std::size_t i = 0; i < k && i < trace.size(); ++i) {
    vfs->apply(trace[i]);
  }
  vfs->crash(variant);
  return vfs;
}

// --- FaultVfs --------------------------------------------------------------

// Must live at namespace scope: FaultVfs befriends this exact name.
class FaultVfsFile : public VfsFile {
 public:
  FaultVfsFile(FaultVfs* vfs, std::unique_ptr<VfsFile> base,
               std::string path)
      : vfs_(vfs), base_(std::move(base)), path_(std::move(path)) {}

  void write(const std::string& data) override;
  void sync() override;
  void close() override { base_->close(); }

 private:
  FaultVfs* vfs_;
  std::unique_ptr<VfsFile> base_;
  std::string path_;
};

namespace {

bool fs_site_enabled(const robust::FaultSpec& spec, const char* site) {
  return spec.site.empty() ||
         std::string(site).find(spec.site) != std::string::npos;
}

}  // namespace

void FaultVfs::check_crashed() const {
  if (crashed_.load(std::memory_order_relaxed)) {
    throw FsCrash("filesystem crashed (fs.crash_at reached)");
  }
}

bool FaultVfs::decide(const char* site, const std::string& path,
                      std::uint64_t op, double p,
                      std::uint64_t lane) const {
  if (p <= 0 || !fs_site_enabled(spec_, site)) return false;
  return robust::fault_uniform(spec_, site, path, static_cast<int>(op),
                               lane) < p;
}

std::uint64_t FaultVfs::mutating_op(const char* site,
                                    const std::string& path) {
  check_crashed();
  const std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed);
  if (spec_.fs_crash_at >= 0 &&
      op >= static_cast<std::uint64_t>(spec_.fs_crash_at)) {
    crashed_.store(true, std::memory_order_relaxed);
    counters_.crashed.fetch_add(1, std::memory_order_relaxed);
    throw FsCrash(str_cat("injected crash at fs op ", op, " (", site, " '",
                          path, "')"));
  }
  if (decide(site, path, op, spec_.fs_fail_p, 21)) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    throw VfsError(VfsError::Code::Io,
                   str_cat("injected EIO at ", site, " '", path, "' (op ",
                           op, ")"));
  }
  return op;
}

bool FaultVfs::exists(const std::string& path) {
  check_crashed();
  return base_.exists(path);
}

std::optional<std::string> FaultVfs::read(const std::string& path) {
  check_crashed();
  const std::uint64_t op = read_ops_.fetch_add(1, std::memory_order_relaxed);
  if (decide("fs.read", path, op, spec_.fs_fail_p, 25)) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    throw VfsError(VfsError::Code::Io,
                   str_cat("injected EIO at fs.read '", path, "'"));
  }
  return base_.read(path);
}

std::vector<std::string> FaultVfs::list(const std::string& dir) {
  check_crashed();
  return base_.list(dir);
}

std::unique_ptr<VfsFile> FaultVfs::create(const std::string& path,
                                          bool truncate) {
  mutating_op("fs.create", path);
  return std::make_unique<FaultVfsFile>(this, base_.create(path, truncate),
                                        path);
}

void FaultVfs::mkdirs(const std::string& path) {
  mutating_op("fs.mkdir", path);
  base_.mkdirs(path);
}

void FaultVfs::rename(const std::string& from, const std::string& to) {
  mutating_op("fs.rename", from);
  base_.rename(from, to);
}

bool FaultVfs::remove(const std::string& path) {
  mutating_op("fs.remove", path);
  return base_.remove(path);
}

void FaultVfs::sync_dir(const std::string& path) {
  mutating_op("fs.sync", path);
  base_.sync_dir(path);
}

std::unique_ptr<VfsLock> FaultVfs::try_lock(const std::string& path,
                                            bool* stale_reclaimed) {
  check_crashed();
  return base_.try_lock(path, stale_reclaimed);
}

bool FaultVfs::tag_alive(const std::string& tag) {
  check_crashed();
  return base_.tag_alive(tag);
}

void FaultVfs::reboot() {
  crashed_.store(false, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
}

void FaultVfsFile::write(const std::string& data) {
  const std::uint64_t op = vfs_->mutating_op("fs.write", path_);
  const auto& spec = vfs_->spec_;
  if (data.size() >= 2) {
    if (vfs_->decide("fs.write", path_, op, spec.fs_enospc_p, 22)) {
      // ENOSPC tears: half the buffer reached the disk first.
      base_->write(data.substr(0, data.size() / 2));
      vfs_->counters_.enospc.fetch_add(1, std::memory_order_relaxed);
      throw VfsError(VfsError::Code::NoSpace,
                     str_cat("injected ENOSPC at fs.write '", path_,
                             "' (op ", op, ")"));
    }
    if (vfs_->decide("fs.write", path_, op, spec.fs_short_p, 23)) {
      const double u =
          robust::fault_uniform(spec, "fs.write", path_,
                                static_cast<int>(op), 24);
      const std::size_t cut =
          1 + static_cast<std::size_t>(u * static_cast<double>(
                                               data.size() - 1));
      base_->write(data.substr(0, cut));
      vfs_->counters_.short_writes.fetch_add(1, std::memory_order_relaxed);
      throw VfsError(VfsError::Code::Io,
                     str_cat("injected short write at '", path_, "' (",
                             cut, "/", data.size(), " bytes, op ", op,
                             ")"));
    }
  }
  base_->write(data);
}

void FaultVfsFile::sync() {
  vfs_->mutating_op("fs.sync", path_);
  base_->sync();
}

}  // namespace artemis::storage
