#include "artemis/autotune/tuning_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::autotune {

namespace {

using codegen::KernelConfig;
using codegen::Perspective;
using codegen::TilingScheme;
using codegen::UnrollStrategy;

const char* tiling_key(TilingScheme t) {
  switch (t) {
    case TilingScheme::Spatial3D: return "spatial";
    case TilingScheme::StreamSerial: return "stream";
    case TilingScheme::StreamConcurrent: return "stream-conc";
  }
  return "?";
}

TilingScheme parse_tiling(const std::string& s) {
  if (s == "spatial") return TilingScheme::Spatial3D;
  if (s == "stream") return TilingScheme::StreamSerial;
  if (s == "stream-conc") return TilingScheme::StreamConcurrent;
  throw Error(str_cat("bad tiling '", s, "'"));
}

}  // namespace

std::string serialize_config(const KernelConfig& cfg) {
  std::ostringstream os;
  os << "block=" << cfg.block[0] << "," << cfg.block[1] << "," << cfg.block[2]
     << " unroll=" << cfg.unroll[0] << "," << cfg.unroll[1] << ","
     << cfg.unroll[2] << " tiling=" << tiling_key(cfg.tiling)
     << " axis=" << cfg.stream_axis << " chunk=" << cfg.stream_chunk
     << " persp=" << codegen::perspective_name(cfg.perspective)
     << " dist=" << codegen::unroll_strategy_name(cfg.unroll_strategy)
     << " prefetch=" << (cfg.prefetch ? 1 : 0)
     << " retime=" << (cfg.retime ? 1 : 0) << " fold=" << (cfg.fold ? 1 : 0)
     << " maxreg=" << cfg.max_registers << " timetile=" << cfg.time_tile;
  if (cfg.target_occupancy) os << " occ=" << *cfg.target_occupancy;
  return os.str();
}

KernelConfig parse_config(const std::string& line) {
  KernelConfig cfg;
  for (const auto& tokenized : split(line, ' ')) {
    const std::string token = trim(tokenized);
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) throw Error("bad config token: " + token);
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    auto parse_triple = [&](std::array<int, 3>& out) {
      const auto parts = split(val, ',');
      ARTEMIS_CHECK_MSG(parts.size() == 3, "bad triple '" << val << "'");
      for (int d = 0; d < 3; ++d) {
        out[static_cast<std::size_t>(d)] =
            std::stoi(parts[static_cast<std::size_t>(d)]);
      }
    };
    if (key == "block") {
      parse_triple(cfg.block);
    } else if (key == "unroll") {
      parse_triple(cfg.unroll);
    } else if (key == "tiling") {
      cfg.tiling = parse_tiling(val);
    } else if (key == "axis") {
      cfg.stream_axis = std::stoi(val);
    } else if (key == "chunk") {
      cfg.stream_chunk = std::stoi(val);
    } else if (key == "persp") {
      cfg.perspective = val == "input"
                            ? Perspective::Input
                            : (val == "mixed" ? Perspective::Mixed
                                              : Perspective::Output);
    } else if (key == "dist") {
      cfg.unroll_strategy =
          val == "cyclic" ? UnrollStrategy::Cyclic : UnrollStrategy::Blocked;
    } else if (key == "prefetch") {
      cfg.prefetch = val == "1";
    } else if (key == "retime") {
      cfg.retime = val == "1";
    } else if (key == "fold") {
      cfg.fold = val == "1";
    } else if (key == "maxreg") {
      cfg.max_registers = std::stoi(val);
    } else if (key == "timetile") {
      cfg.time_tile = std::stoi(val);
    } else if (key == "occ") {
      cfg.target_occupancy = std::stod(val);
    } else {
      throw Error(str_cat("unknown config key '", key, "'"));
    }
  }
  return cfg;
}

void TuningCache::put(const std::string& key, const CacheEntry& entry) {
  ARTEMIS_CHECK_MSG(key.find('\t') == std::string::npos &&
                        key.find('\n') == std::string::npos,
                    "cache keys must not contain tabs or newlines");
  const std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = entry;
}

std::optional<CacheEntry> TuningCache::get(const std::string& key) const {
  std::optional<CacheEntry> found;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) found = it->second;
  }
  const bool hit = found.has_value();
  telemetry::counter_add(hit ? "tuning_cache.hits" : "tuning_cache.misses");
  if (telemetry::enabled()) {
    telemetry::instant("tuning_cache.lookup", "cache",
                       {{"key", Json(key)}, {"hit", Json(hit)}});
  }
  return found;
}

bool TuningCache::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) > 0;
}

std::string TuningCache::save_text() const {
  std::ostringstream os;
  os.precision(17);
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : entries_) {
    os << key << '\t' << e.time_s << '\t' << e.tflops << '\t'
       << serialize_config(e.config) << '\n';
  }
  return os.str();
}

namespace {

/// Count a malformed row: keep loading around it, but make the skip
/// visible in counters and (when tracing) the event stream.
void record_parse_error(CacheLoadReport& report, const std::string& line,
                        const char* why) {
  ++report.skipped;
  telemetry::counter_add("tuning_cache.parse_errors");
  if (telemetry::enabled()) {
    telemetry::instant(
        "tuning_cache.parse_error", "cache",
        {{"why", Json(why)},
         {"line", Json(line.substr(0, 120))}});
  }
}

}  // namespace

CacheLoadReport TuningCache::load_text(const std::string& text) {
  CacheLoadReport report;
  for (const auto& line : split(text, '\n')) {
    if (trim(line).empty()) continue;
    const auto cols = split(line, '\t');
    if (cols.size() != 4) {
      record_parse_error(report, line, "column_count");
      continue;
    }
    try {
      CacheEntry e;
      e.time_s = std::stod(cols[1]);
      e.tflops = std::stod(cols[2]);
      e.config = parse_config(cols[3]);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        entries_[cols[0]] = e;
      }
      ++report.loaded;
    } catch (const Error&) {
      // parse_config rejected the row (unknown key, bad tiling, ...).
      record_parse_error(report, line, "bad_config");
    } catch (const std::logic_error&) {
      // std::stod / std::stoi rejected a numeric column. Anything else
      // (bad_alloc, EvalError, ...) is not a parse failure and must
      // propagate.
      record_parse_error(report, line, "bad_number");
    }
  }
  return report;
}

bool TuningCache::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << save_text();
  return static_cast<bool>(out);
}

CacheLoadReport TuningCache::load_file(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    // ifstream on a directory can open and silently read as empty on
    // some platforms; classify it as an I/O error, not an empty cache.
    CacheLoadReport report;
    report.status = CacheLoadReport::Status::IoError;
    return report;
  }
  std::ifstream in(path);
  if (!in) {
    CacheLoadReport report;
    report.status = std::filesystem::exists(path, ec)
                        ? CacheLoadReport::Status::IoError
                        : CacheLoadReport::Status::Missing;
    return report;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    CacheLoadReport report;
    report.status = CacheLoadReport::Status::IoError;
    return report;
  }
  return load_text(buf.str());
}

}  // namespace artemis::autotune
