#include "artemis/sim/native/native.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "artemis/common/check.hpp"

namespace artemis::sim::native {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::Scalar:
      return "scalar";
    case Tier::Avx2:
      return "avx2";
    case Tier::Avx512:
      return "avx512";
  }
  return "scalar";
}

namespace {

Tier detect_hw() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx512f")) return Tier::Avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::Avx2;
  }
#endif
  return Tier::Scalar;
}

Tier narrower(Tier a, Tier b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// The sub-box of `box` whose points' writes through `acc` pass the
/// commit test (the analytic form of exec_point's in_box check: each
/// access dimension constrains the point coordinate driving it).
BcRegion committed_points(const NAccess& acc, const BcRegion& box,
                          const BcRegion& commit) {
  BcRegion r = box;
  for (std::size_t d = 0; d < 3; ++d) {
    const std::int64_t lo = commit.lo[d], hi = commit.hi[d];
    const std::uint8_t s = acc.sel[d];
    if (s == 3) {
      if (acc.off[d] < lo || acc.off[d] >= hi) {
        r.hi = r.lo;
        return r;
      }
      continue;
    }
    r.lo[s] = std::max(r.lo[s], lo - acc.off[d]);
    r.hi[s] = std::min(r.hi[s], hi - acc.off[d]);
  }
  if (r.empty()) r.hi = r.lo;
  return r;
}

/// Bytecode window-checks every committed external write; the native box
/// runner stores blind, so the equivalent check runs once per box: the
/// element box the committed points write must sit inside the storage
/// window. A failure here is the same planner bug the per-point
/// ARTEMIS_CHECK reports.
void check_store_windows(const LinearProgram& lp,
                         const std::vector<ArrayView>& views,
                         const BcRegion& box, const BcRegion& commit,
                         bool drop) {
  for (const NStore& s : lp.stores) {
    if (s.acc.scratch) continue;
    const BcRegion pts =
        drop ? committed_points(s.acc, box, commit) : box;
    if (pts.empty()) continue;
    const ArrayView& v = views[static_cast<std::size_t>(s.acc.view)];
    const std::int64_t wlo[3] = {v.lo_z, v.lo_y, v.lo_x};
    const std::int64_t wext[3] = {v.wz, v.wy, v.wx};
    for (std::size_t d = 0; d < 3; ++d) {
      std::int64_t elo, ehi;  // half-open element range in array dim d
      if (s.acc.sel[d] == 3) {
        elo = s.acc.off[d];
        ehi = elo + 1;
      } else {
        elo = pts.lo[s.acc.sel[d]] + s.acc.off[d];
        ehi = pts.hi[s.acc.sel[d]] + s.acc.off[d];
      }
      ARTEMIS_CHECK_MSG(elo >= wlo[d] && ehi <= wlo[d] + wext[d],
                        "grid store of '" << *v.name
                                          << "' out of bounds (native)");
    }
  }
}

inline std::size_t view_index(const ArrayView& v, std::int64_t z,
                              std::int64_t y, std::int64_t x) {
  return static_cast<std::size_t>(
      ((z - v.lo_z) * v.wy + (y - v.lo_y)) * v.wx + (x - v.lo_x));
}

/// Emit the counting-mode line-stream records one natively-executed
/// interior row would have produced under the bytecode engine: per point
/// (x ascending) every external memory read in code order, then every
/// committed external write in statement order — exec_point's exact
/// record sequence. Records depend only on coordinates, so replay is
/// decoupled from execution.
void replay_row(const LinearProgram& lp, const std::vector<ArrayView>& views,
                StageTrace* trace, std::int64_t z, std::int64_t y,
                std::int64_t x0, std::int64_t x1, const BcRegion& commit,
                bool drop) {
  for (std::int64_t x = x0; x < x1; ++x) {
    const std::int64_t pt[4] = {z, y, x, 0};
    for (const std::int32_t li : lp.replay_reads) {
      const NAccess& a = lp.loads[static_cast<std::size_t>(li)];
      const ArrayView& v = views[static_cast<std::size_t>(a.view)];
      const std::int64_t cz = pt[a.sel[0]] + a.off[0];
      const std::int64_t cy = pt[a.sel[1]] + a.off[1];
      const std::int64_t cx = pt[a.sel[2]] + a.off[2];
      trace->record(
          v.elem_base + view_index(v, cz, cy, cx) * sizeof(double),
          /*is_write=*/false);
    }
    for (const NStore& s : lp.stores) {
      if (s.acc.scratch) continue;
      const std::int64_t cz = pt[s.acc.sel[0]] + s.acc.off[0];
      const std::int64_t cy = pt[s.acc.sel[1]] + s.acc.off[1];
      const std::int64_t cx = pt[s.acc.sel[2]] + s.acc.off[2];
      if (drop && !(cz >= commit.lo[0] && cz < commit.hi[0] &&
                    cy >= commit.lo[1] && cy < commit.hi[1] &&
                    cx >= commit.lo[2] && cx < commit.hi[2])) {
        continue;
      }
      const ArrayView& v = views[static_cast<std::size_t>(s.acc.view)];
      trace->record(
          v.elem_base + view_index(v, cz, cy, cx) * sizeof(double),
          /*is_write=*/true);
    }
  }
}

}  // namespace

Tier active_tier() {
  static const Tier tier = [] {
    const Tier hw = detect_hw();
    if (const char* env = std::getenv("ARTEMIS_NATIVE_TIER")) {
      const std::string s = env;
      Tier want = hw;
      if (s == "scalar") {
        want = Tier::Scalar;
      } else if (s == "avx2") {
        want = Tier::Avx2;
      } else if (s == "avx512") {
        want = Tier::Avx512;
      }
      return narrower(want, hw);
    }
    return hw;
  }();
  return tier;
}

RunBoxFn run_box(Tier tier) {
  switch (tier) {
    case Tier::Avx512:
      return &run_box_avx512;
    case Tier::Avx2:
      return &run_box_avx2;
    case Tier::Scalar:
      break;
  }
  return &run_box_scalar;
}

void add_interior_counters(const LinearProgram& lp, const BcRegion& box,
                           const BcRegion& commit, bool drop_outside_commit,
                           BcCounters& c) {
  const std::int64_t vol = box.volume();
  if (vol == 0) return;
  c.computed += vol;  // interior points never veto
  c.greads += lp.greads_pp * vol;
  c.sreads += lp.sreads_pp * vol;
  c.swrites += lp.swrites_pp * vol;
  for (const NStore& s : lp.stores) {
    if (s.acc.scratch) continue;
    c.gwrites += drop_outside_commit
                     ? committed_points(s.acc, box, commit).volume()
                     : vol;
  }
}

void run_native_region(const LinearProgram& lp, const CompiledStencil& cs,
                       const std::vector<ArrayView>& views,
                       const double* scalars, const BcRegion& region,
                       const BcRegion& commit, bool drop_outside_commit,
                       BcCounters& counters, StageTrace* trace, Tier tier) {
  if (region.empty()) return;
  const BcRegion in =
      interior_region(cs, views, region, drop_outside_commit, commit);
  const RunBoxFn box_fn = run_box(tier);

  if (trace == nullptr) {
    if (in.empty()) {
      run_compiled_region(cs, views, scalars, region, commit,
                          drop_outside_commit, counters);
      return;
    }
    check_store_windows(lp, views, in, commit, drop_outside_commit);
    // Rim: six slabs partitioning region \ interior. Each slab's own
    // interior is empty (it is clipped by the very read constraint that
    // bounded `in`), so these run fully checked; point order across
    // slabs does not matter because lowering refused every
    // order-dependent construct (see lower.cpp).
    const auto rim = [&](std::array<std::int64_t, 3> lo,
                         std::array<std::int64_t, 3> hi) {
      BcRegion r;
      r.lo = lo;
      r.hi = hi;
      if (!r.empty()) {
        run_compiled_region(cs, views, scalars, r, commit,
                            drop_outside_commit, counters);
      }
    };
    const auto& rl = region.lo;
    const auto& rh = region.hi;
    rim({rl[0], rl[1], rl[2]}, {in.lo[0], rh[1], rh[2]});  // z-pre
    rim({in.hi[0], rl[1], rl[2]}, {rh[0], rh[1], rh[2]});  // z-post
    rim({in.lo[0], rl[1], rl[2]}, {in.hi[0], in.lo[1], rh[2]});  // y-pre
    rim({in.lo[0], in.hi[1], rl[2]}, {in.hi[0], rh[1], rh[2]});  // y-post
    rim({in.lo[0], in.lo[1], rl[2]},
        {in.hi[0], in.hi[1], in.lo[2]});  // x-pre
    rim({in.lo[0], in.lo[1], in.hi[2]},
        {in.hi[0], in.hi[1], rh[2]});  // x-post
    box_fn(lp, views.data(), scalars, in, commit, drop_outside_commit);
    add_interior_counters(lp, in, commit, drop_outside_commit, counters);
    return;
  }

  // Counting mode: reproduce run_split_region's row-major interleaving of
  // rim spans and interior rows exactly, so the coalesced line stream is
  // bit-identical to the bytecode engine's. Interior rows execute
  // natively (within-row point order matches: x ascending, commits in
  // statement order) and their records replay analytically.
  trace->flops_per_point = cs.flops_per_point;
  const std::int64_t pts = region.volume();
  trace->lines.reserve(trace->lines.size() + static_cast<std::size_t>(pts) *
                                                 (cs.accesses.size() + 1));
  BcCounters ci, cr;
  RimRunner rim(cs, views, scalars, commit, drop_outside_commit);
  if (!in.empty()) {
    check_store_windows(lp, views, in, commit, drop_outside_commit);
  }
  for (std::int64_t z = region.lo[0]; z < region.hi[0]; ++z) {
    const bool z_in = z >= in.lo[0] && z < in.hi[0];
    for (std::int64_t y = region.lo[1]; y < region.hi[1]; ++y) {
      if (!z_in || y < in.lo[1] || y >= in.hi[1]) {
        rim.run(z, y, region.lo[2], region.hi[2], cr, trace);
        continue;
      }
      rim.run(z, y, region.lo[2], in.lo[2], cr, trace);
      BcRegion row;
      row.lo = {z, y, in.lo[2]};
      row.hi = {z + 1, y + 1, in.hi[2]};
      box_fn(lp, views.data(), scalars, row, commit, drop_outside_commit);
      add_interior_counters(lp, row, commit, drop_outside_commit, ci);
      replay_row(lp, views, trace, z, y, in.lo[2], in.hi[2], commit,
                 drop_outside_commit);
      rim.run(z, y, in.hi[2], region.hi[2], cr, trace);
    }
  }
  trace->interior += ci;
  trace->rim += cr;
  counters += ci;
  counters += cr;
}

}  // namespace artemis::sim::native
