# Empty compiler generated dependencies file for fuzz_roundtrip.
# This may be replaced when dependencies are built.
