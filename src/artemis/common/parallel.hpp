#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace artemis {

/// --- process-wide parallelism default ---------------------------------------
///
/// The tuner's `--jobs` knob. 0 means "resolve to hardware concurrency";
/// callers that want the historical serial path pass 1 explicitly.

void set_default_jobs(int jobs);
/// The resolved default: always >= 1.
int default_jobs();

/// A reusable work-stealing task pool with bounded per-worker queues.
///
/// One pool instance represents one level of parallelism: `parallelism`
/// counts the calling thread, so TaskPool(8) spawns 7 worker threads and
/// for_each() runs with 8 concurrent participants. Workers park on a
/// condition variable between jobs, so a pool can span many for_each()
/// calls (e.g. both stages of one tuning search) without re-spawning
/// threads.
///
/// Scheduling: each participant owns a bounded deque of task indices,
/// refilled in batches from a shared range cursor; a participant whose
/// queue and the shared range are both empty steals from the back of a
/// victim's queue. Task *completion order* is therefore nondeterministic —
/// callers that need deterministic results (the autotuner) must reduce
/// results by task index, not by completion order.
///
/// Nesting: for_each() called from inside a pool worker (any pool) runs
/// the loop inline and serially. One level of parallelism wins; inner
/// code never blocks on an outer pool, so nesting cannot deadlock.
class TaskPool {
 public:
  /// `parallelism` includes the calling thread; values < 2 create a pool
  /// that runs everything inline.
  explicit TaskPool(int parallelism);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total participants (worker threads + the caller of for_each).
  int parallelism() const { return parallelism_; }

  /// Run fn(i) for i in [0, n) across the pool; blocks until every
  /// claimed task finished. The first exception thrown by fn is rethrown
  /// after the join (remaining unclaimed tasks are abandoned).
  void for_each(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// True on a thread currently executing pool tasks (including the
  /// for_each caller while it participates). Used to serialize nested
  /// parallel regions.
  static bool inside_worker();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int parallelism_ = 1;
};

/// Run fn(i) for i in [0, n) across a transient pool sized to the
/// hardware. Used by the functional executor to process independent
/// thread blocks concurrently (blocks write disjoint output tiles, so no
/// synchronization is needed beyond the join). Falls back to serial
/// execution for small n.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

}  // namespace artemis
