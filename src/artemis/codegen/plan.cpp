#include "artemis/codegen/plan.hpp"

#include "artemis/common/str.hpp"

namespace artemis::codegen {

const char* tiling_name(TilingScheme t) {
  switch (t) {
    case TilingScheme::Spatial3D: return "spatial";
    case TilingScheme::StreamSerial: return "stream-serial";
    case TilingScheme::StreamConcurrent: return "stream-concurrent";
  }
  return "?";
}

const char* perspective_name(Perspective p) {
  switch (p) {
    case Perspective::Output: return "output";
    case Perspective::Input: return "input";
    case Perspective::Mixed: return "mixed";
  }
  return "?";
}

const char* unroll_strategy_name(UnrollStrategy u) {
  switch (u) {
    case UnrollStrategy::Cyclic: return "cyclic";
    case UnrollStrategy::Blocked: return "blocked";
  }
  return "?";
}

std::string KernelConfig::to_string() const {
  std::string s = str_cat("block=(", block[0], ",", block[1], ",", block[2],
                          ") unroll=(", unroll[0], ",", unroll[1], ",",
                          unroll[2], ") ", tiling_name(tiling));
  if (tiling != TilingScheme::Spatial3D) {
    s += str_cat(" axis=", stream_axis);
  }
  s += str_cat(" persp=", perspective_name(perspective));
  if (unroll_product() > 1) {
    s += str_cat(" dist=", unroll_strategy_name(unroll_strategy));
  }
  if (prefetch) s += " prefetch";
  if (retime) s += " retime";
  if (fold) s += " fold";
  if (time_tile > 1) s += str_cat(" timetile=", time_tile);
  s += str_cat(" maxreg=", max_registers);
  if (target_occupancy) s += str_cat(" occ=", *target_occupancy);
  return s;
}

std::int64_t KernelPlan::tile_extent(int axis) const {
  return static_cast<std::int64_t>(config.block[static_cast<std::size_t>(
             axis)]) *
         config.unroll[static_cast<std::size_t>(axis)];
}

std::int64_t KernelPlan::num_blocks() const {
  auto ceil_div = [](std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
  };
  std::int64_t blocks = 1;
  for (int axis = 0; axis < dims; ++axis) {
    if ((config.tiling == TilingScheme::StreamSerial) &&
        axis == config.stream_axis) {
      continue;  // the swept axis is not tiled across blocks
    }
    blocks *= ceil_div(domain_extent(axis), tile_extent(axis));
  }
  return blocks;
}

}  // namespace artemis::codegen
