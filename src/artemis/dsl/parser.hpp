#pragma once

#include <string>

#include "artemis/ir/program.hpp"

namespace artemis::dsl {

/// Parse a DSL source string (Listing 1 syntax plus the ARTEMIS extensions:
/// `#pragma stream/block/unroll/occupancy`, `#assign shmem/gmem/reg (...)`,
/// `iterate N { ... }` blocks with `swap(a,b);`) into an ir::Program.
///
/// The returned program has passed ir::validate. Throws ParseError on
/// syntax errors and SemanticError on semantic violations.
ir::Program parse(const std::string& source);

}  // namespace artemis::dsl
