#include "artemis/robust/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "artemis/common/str.hpp"
#include "artemis/robust/errors.hpp"

namespace artemis::robust {

namespace {

std::atomic<bool> g_enabled{false};
FaultCounters g_counters;
/// Owned plan; replaced under no lock. Installation happens at process
/// start or test SetUp, never concurrently with evaluations.
std::unique_ptr<FaultPlan> g_plan;

/// SplitMix64 finalizer: the avalanche step used to decorrelate the
/// (seed, site, key, attempt) coordinates into an independent draw.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_str(const std::string& s, std::uint64_t h) {
  for (const char c : s) {
    h = mix(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

double parse_prob(const std::string& key, const std::string& val) {
  double p = 0;
  try {
    p = std::stod(val);
  } catch (const std::exception&) {
    throw Error(str_cat("fault-spec: bad value for '", key, "': '", val,
                        "'"));
  }
  if (key != "jitter" && key != "stall_ms" && (p < 0 || p > 1)) {
    throw Error(str_cat("fault-spec: '", key, "' must be in [0,1], got ",
                        val));
  }
  return p;
}

}  // namespace

double fault_uniform(const FaultSpec& spec, const char* site,
                     const std::string& key, int attempt,
                     std::uint64_t lane) {
  std::uint64_t h = mix(spec.seed ^ (lane * 0x9e3779b97f4a7c15ull));
  h = hash_str(site, h);
  h = hash_str(key, h);
  h = mix(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  for (const auto& raw : split(text, ',')) {
    const std::string token = trim(raw);
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw Error(str_cat("fault-spec: expected key=value, got '", token,
                          "' (grammar: crash=P,timeout=P,perturb=P,"
                          "jitter=F,stall_ms=MS,seed=N,site=NAME)"));
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    if (key == "crash") {
      spec.crash_p = parse_prob(key, val);
    } else if (key == "timeout") {
      spec.timeout_p = parse_prob(key, val);
    } else if (key == "perturb") {
      spec.perturb_p = parse_prob(key, val);
    } else if (key == "jitter") {
      spec.jitter = parse_prob(key, val);
    } else if (key == "stall_ms") {
      spec.stall_ms = parse_prob(key, val);
    } else if (key == "seed") {
      try {
        spec.seed = std::stoull(val);
      } catch (const std::exception&) {
        throw Error(str_cat("fault-spec: bad seed '", val, "'"));
      }
    } else if (key == "site") {
      spec.site = val;
    } else if (key == "fs.fail") {
      spec.fs_fail_p = parse_prob(key, val);
    } else if (key == "fs.enospc") {
      spec.fs_enospc_p = parse_prob(key, val);
    } else if (key == "fs.short") {
      spec.fs_short_p = parse_prob(key, val);
    } else if (key == "fs.crash_at") {
      try {
        spec.fs_crash_at = std::stoll(val);
      } catch (const std::exception&) {
        spec.fs_crash_at = -2;
      }
      if (spec.fs_crash_at < 0) {
        throw Error(str_cat("fault-spec: 'fs.crash_at' must be an integer "
                            ">= 0, got '", val, "'"));
      }
    } else {
      throw Error(str_cat("fault-spec: unknown key '", key,
                          "' (known: crash, timeout, perturb, jitter, "
                          "stall_ms, seed, site, fs.fail, fs.enospc, "
                          "fs.short, fs.crash_at)"));
    }
  }
  return spec;
}

bool FaultPlan::site_enabled(const char* site) const {
  return spec_.site.empty() ||
         std::string(site).find(spec_.site) != std::string::npos;
}

FaultAction FaultPlan::decide(const char* site, const std::string& key,
                              int attempt) const {
  if (!site_enabled(site)) return FaultAction::None;
  if (spec_.crash_p > 0 &&
      fault_uniform(spec_, site, key, attempt, 1) < spec_.crash_p) {
    return FaultAction::Crash;
  }
  if (spec_.timeout_p > 0 &&
      fault_uniform(spec_, site, key, attempt, 2) < spec_.timeout_p) {
    return FaultAction::Stall;
  }
  return FaultAction::None;
}

double FaultPlan::perturb_time(const char* site, const std::string& key,
                               int attempt, int trial,
                               double time_s) const {
  if (spec_.perturb_p <= 0 || !site_enabled(site)) return time_s;
  const std::uint64_t lane = 3 + 2 * static_cast<std::uint64_t>(trial);
  if (fault_uniform(spec_, site, key, attempt, lane) >= spec_.perturb_p) {
    return time_s;
  }
  const double u = fault_uniform(spec_, site, key, attempt, lane + 1);
  g_counters.perturbs.fetch_add(1, std::memory_order_relaxed);
  return time_s * (1.0 + spec_.jitter * (2.0 * u - 1.0));
}

const FaultCounters& fault_counters() { return g_counters; }

void install_fault_plan(const FaultSpec& spec) {
  g_plan = std::make_unique<FaultPlan>(spec);
  g_counters.crashes.store(0, std::memory_order_relaxed);
  g_counters.stalls.store(0, std::memory_order_relaxed);
  g_counters.perturbs.store(0, std::memory_order_relaxed);
  g_enabled.store(spec.any_faults(), std::memory_order_relaxed);
}

void clear_fault_plan() {
  g_enabled.store(false, std::memory_order_relaxed);
  g_plan.reset();
}

bool fault_injection_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

const FaultPlan* current_fault_plan() { return g_plan.get(); }

bool install_fault_plan_from_env() {
  const char* env = std::getenv("ARTEMIS_FAULT_SPEC");
  if (env == nullptr || *env == '\0') return false;
  install_fault_plan(parse_fault_spec(env));
  return fault_injection_enabled();
}

void fault_point_slow(const char* site, const std::string& key,
                      int attempt) {
  const FaultPlan* plan = current_fault_plan();
  if (plan == nullptr) return;
  switch (plan->decide(site, key, attempt)) {
    case FaultAction::None:
      return;
    case FaultAction::Crash:
      g_counters.crashes.fetch_add(1, std::memory_order_relaxed);
      throw EvalCrash(str_cat("injected crash at ", site, " [", key, "]"));
    case FaultAction::Stall:
      g_counters.stalls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          plan->spec().stall_ms));
      return;
  }
}

namespace {
/// Process-start installation from the environment, so an externally set
/// ARTEMIS_FAULT_SPEC reaches every binary linking the library (ctest
/// under fault injection, the CI resilience job) without per-call cost.
const bool g_env_installed = install_fault_plan_from_env();
}  // namespace

}  // namespace artemis::robust
