# Empty dependencies file for extra_stencils_test.
# This may be replaced when dependencies are built.
