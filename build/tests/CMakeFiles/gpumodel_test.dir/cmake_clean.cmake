file(REMOVE_RECURSE
  "CMakeFiles/gpumodel_test.dir/gpumodel_test.cpp.o"
  "CMakeFiles/gpumodel_test.dir/gpumodel_test.cpp.o.d"
  "gpumodel_test"
  "gpumodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
