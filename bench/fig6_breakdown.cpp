// Reproduces Fig. 6: performance breakdown of ARTEMIS-generated versions.
//
// For every benchmark, two memory versions (global-only and sh+reg) are
// evaluated in four tuning regimes:
//   base   - no optimizations, fixed paper baseline block sizes
//            ((32,16) streaming for iterative stencils, (16,16) streaming
//            for register-constrained spatial stencils, (16,4,4) for the
//            non-streaming global versions);
//   TB     - autotune the thread-block size only;
//   unroll - keep the baseline block, autotune unroll factors only;
//   misc   - all optimizations together (unrolling, block size variation,
//            prefetching, retiming, folding, load/compute adjustment,
//            concurrent streaming).
//
// Expected shape (paper): block-size tuning helps broadly (strongest on
// the shmem versions of high-order stencils); unrolling helps iterative
// stencils but not the register-constrained spatial ones; misc wins
// overall; no single optimization helps uniformly.

#include <cstdio>
#include <optional>

#include "artemis/autotune/search.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

namespace {

struct Setup {
  ir::Program prog;
  ir::StencilCall call;
  bool iterative = false;
};

Setup make_setup(const stencils::BenchmarkSpec& spec) {
  Setup s{stencils::benchmark_program(spec.name), {}, spec.iterative};
  if (spec.iterative) {
    s.call = s.prog.steps[0].body[0].call;  // single sweep of the smoother
  } else {
    s.call = s.prog.steps[0].call;
  }
  return s;
}

/// Baseline configuration per the paper's Fig. 6 setup.
codegen::KernelConfig base_config(bool use_shmem, bool iterative,
                                  bool register_constrained) {
  codegen::KernelConfig cfg;
  if (use_shmem) {
    cfg.tiling = codegen::TilingScheme::StreamSerial;
    cfg.stream_axis = 2;
    cfg.block = iterative || !register_constrained ? std::array<int, 3>{32, 16, 1}
                                                   : std::array<int, 3>{16, 16, 1};
  } else {
    cfg.tiling = codegen::TilingScheme::Spatial3D;
    cfg.block = {16, 4, 4};
  }
  cfg.max_registers = 255;
  return cfg;
}

std::optional<double> eval_tflops(const autotune::PlanFactory& factory,
                                  const codegen::KernelConfig& cfg,
                                  const gpumodel::DeviceSpec& dev,
                                  const gpumodel::ModelParams& params) {
  try {
    const auto ev = gpumodel::evaluate(factory(cfg), dev, params);
    if (!ev.valid) return std::nullopt;
    return ev.tflops();
  } catch (const PlanError&) {
    return std::nullopt;
  }
}

std::string cell(std::optional<double> v) {
  return v ? format_double(*v, 3) : std::string("-");
}

}  // namespace

int main() {
  const auto dev = gpumodel::p100();
  const gpumodel::ModelParams params;

  std::printf("Fig. 6: per-optimization breakdown (useful TFLOPS)\n\n");
  TablePrinter table({"Benchmark", "g.base", "g.TB", "g.unroll", "g.misc",
                      "s.base", "s.TB", "s.unroll", "s.misc"});

  for (const auto& spec : stencils::paper_benchmarks()) {
    const Setup setup = make_setup(spec);
    std::vector<std::string> row = {spec.name};

    for (const bool use_shmem : {false, true}) {
      const codegen::BuildOptions opts{.use_shared_memory = use_shmem,
                                       .fuse_internal = true};
      const autotune::PlanFactory factory =
          [&setup, &dev, opts](const codegen::KernelConfig& cfg) {
            return codegen::build_plan_for_call(setup.prog, setup.call, cfg,
                                                dev, opts);
          };
      // Register-constrained? Probe the baseline's estimate.
      bool reg_constrained = false;
      try {
        const auto est = gpumodel::estimate_registers(
            factory(base_config(use_shmem, setup.iterative, false)));
        reg_constrained = est.total > 128;
      } catch (const PlanError&) {
      }
      const codegen::KernelConfig base =
          base_config(use_shmem, setup.iterative, reg_constrained);

      // base
      row.push_back(cell(eval_tflops(factory, base, dev, params)));

      // TB: block sizes only.
      {
        autotune::TuneOptions t;
        t.disable_unroll = true;
        t.explore_tiling = false;
        t.tune_prefetch = t.tune_perspective = t.tune_concurrent_streaming =
            false;
        try {
          const auto r =
              autotune::hierarchical_tune(factory, base, dev, params, t);
          row.push_back(cell(r.best.eval.tflops()));
        } catch (const PlanError&) {
          row.push_back("-");
        }
      }

      // unroll: baseline block, unroll factors only.
      {
        autotune::TuneOptions t;
        std::optional<double> best;
        for (const auto& u : autotune::candidate_unrolls(3, t)) {
          codegen::KernelConfig cfg = base;
          cfg.unroll = u;
          for (const int budget : t.register_budgets) {
            cfg.max_registers = budget;
            const auto v = eval_tflops(factory, cfg, dev, params);
            if (v && (!best || *v > *best)) best = v;
          }
        }
        row.push_back(cell(best));
      }

      // misc: everything.
      {
        autotune::TuneOptions t;  // defaults: explore all
        codegen::KernelConfig seed = base;
        seed.retime = true;
        seed.fold = true;
        try {
          const auto r =
              autotune::hierarchical_tune(factory, seed, dev, params, t);
          row.push_back(cell(r.best.eval.tflops()));
        } catch (const PlanError&) {
          row.push_back("-");
        }
      }
    }
    table.add_row(row);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "g.* = global-memory version, s.* = shared-memory+register version.\n"
      "Paper shape: TB helps most stencils (strongest for shmem versions\n"
      "of high-order kernels); unrolling helps the iterative stencils but\n"
      "not the register-constrained spatial ones; misc (all optimizations\n"
      "together) is best overall; no single optimization helps uniformly.\n");
  return 0;
}
