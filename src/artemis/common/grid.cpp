#include "artemis/common/grid.hpp"

#include <algorithm>
#include <cmath>

namespace artemis {

double Grid3D::max_abs_diff(const Grid3D& a, const Grid3D& b) {
  ARTEMIS_CHECK_MSG(a.extents() == b.extents(),
                    "max_abs_diff over incongruent grids");
  double worst = 0.0;
  const auto& av = a.raw();
  const auto& bv = b.raw();
  for (std::size_t i = 0; i < av.size(); ++i) {
    worst = std::max(worst, std::abs(av[i] - bv[i]));
  }
  return worst;
}

}  // namespace artemis
