#pragma once

#include <map>
#include <string>
#include <vector>

#include "artemis/driver/driver.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::telemetry {

/// Schema version of the run report. Bump on any breaking change to the
/// JSON layout; trajectory tooling keys on it.
inline constexpr int kReportVersion = 1;

/// Run identification attached to the report header.
struct ReportMeta {
  std::string source;    ///< DSL path (or a symbolic name)
  std::string strategy;  ///< generator strategy name
  std::string device;    ///< device model name
  int jobs = 1;          ///< tuning parallelism the run was driven with
  std::string engine;    ///< sim engine name ("bytecode"/"treewalk"/"native")
};

/// Structured form of one kernel configuration (the autotuner knobs).
Json config_json(const codegen::KernelConfig& cfg);

/// Assemble the versioned, machine-readable end-to-end run report: chosen
/// kernel configs with predicted times, hints fired, fusion schedule, the
/// tuner's per-candidate records and enumerated/pruned/evaluated counters
/// (from telemetry events), and per-kernel profile verdicts. Suitable for
/// BENCH_*.json-style trajectory tracking: stable key order, version
/// field first.
Json build_run_report(const ReportMeta& meta,
                      const driver::ProgramResult& result,
                      const std::vector<Event>& events,
                      const std::map<std::string, std::int64_t>& counters);

}  // namespace artemis::telemetry
