file(REMOVE_RECURSE
  "CMakeFiles/gridset_test.dir/gridset_test.cpp.o"
  "CMakeFiles/gridset_test.dir/gridset_test.cpp.o.d"
  "gridset_test"
  "gridset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
