#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace artemis::ir {

/// Binary arithmetic operators of the restricted C subset the DSL accepts.
enum class BinOp { Add, Sub, Mul, Div };

/// One dimension of an array index: `iterator + offset`, or a plain
/// constant when `iter < 0`. The DSL only admits affine indices of this
/// shape (iterator plus integer literal), which is what makes stencil-order
/// and halo analysis decidable.
struct IndexExpr {
  int iter = -1;            ///< position in Program::iterators, -1 = constant
  std::int64_t offset = 0;  ///< additive constant

  bool is_const() const { return iter < 0; }
  auto operator<=>(const IndexExpr&) const = default;
};

enum class ExprKind {
  Number,     ///< double literal
  ScalarRef,  ///< named scalar (program scalar, formal param, or local temp)
  ArrayRef,   ///< array element access with affine indices
  Unary,      ///< negation
  Binary,     ///< + - * /
  Call,       ///< math intrinsic: sqrt, fabs, exp, min, max, ...
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Nodes are shared freely across statements and
/// transformed programs; all rewrites build new nodes (persistent tree).
struct Expr {
  ExprKind kind = ExprKind::Number;

  double number = 0.0;              ///< Number
  std::string name;                 ///< ScalarRef / ArrayRef array / Call fn
  std::vector<IndexExpr> indices;   ///< ArrayRef, outermost first
  BinOp bop = BinOp::Add;           ///< Binary
  std::vector<ExprPtr> args;        ///< Unary(1) / Binary(2) / Call(n)
};

// --- factory helpers -------------------------------------------------------

ExprPtr number(double v);
ExprPtr scalar_ref(std::string name);
ExprPtr array_ref(std::string array, std::vector<IndexExpr> indices);
ExprPtr unary_neg(ExprPtr a);
ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr call(std::string fn, std::vector<ExprPtr> args);

inline ExprPtr add(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Add, std::move(a), std::move(b));
}
inline ExprPtr sub(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Sub, std::move(a), std::move(b));
}
inline ExprPtr mul(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Mul, std::move(a), std::move(b));
}
inline ExprPtr div(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Div, std::move(a), std::move(b));
}

// --- queries ---------------------------------------------------------------

/// Render as C-like source using the given iterator names (for indices).
std::string to_string(const Expr& e, const std::vector<std::string>& iters);

/// Structural equality (deep).
bool equal(const Expr& a, const Expr& b);

/// Count of floating-point operations in the tree: each binary op, unary
/// negation, and intrinsic call contributes 1 (the convention used to
/// reproduce the paper's Table I FLOP column).
std::int64_t flop_count(const Expr& e);

/// Visit every node in the tree (pre-order).
void visit(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Rewrite the tree bottom-up: `fn` maps each (already-rewritten) node to
/// its replacement; returning nullptr keeps the reconstructed node.
ExprPtr rewrite(const ExprPtr& e,
                const std::function<ExprPtr(const ExprPtr&)>& fn);

const char* bin_op_token(BinOp op);

}  // namespace artemis::ir
