#include "artemis/robust/journal.hpp"

#include <sstream>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::robust {

namespace {

constexpr const char* kHeaderPrefix = "#artemis-tuning-journal v";

std::string header_line(const std::string& run_key) {
  return str_cat(kHeaderPrefix, TuningJournal::kVersion, " key=", run_key);
}

}  // namespace

JournalLoadResult parse_journal_text(
    const std::string& text, const std::string& run_key,
    std::map<std::string, JournalRecord>* out) {
  JournalLoadResult res;
  if (text.empty()) {
    res.status = JournalLoadResult::Status::Missing;
    res.message = "journal is empty";
    return res;
  }

  // A crash can tear the final record mid-write: only lines terminated by
  // a newline are trusted; an unterminated tail is dropped and reported.
  std::string body = text;
  if (body.back() != '\n') {
    const auto last_nl = body.rfind('\n');
    body = last_nl == std::string::npos ? "" : body.substr(0, last_nl + 1);
    res.torn_tail = true;
  }

  const auto lines = split(body, '\n');
  if (lines.empty() || !starts_with(lines[0], kHeaderPrefix)) {
    res.status = JournalLoadResult::Status::VersionMismatch;
    res.message = "missing or unrecognized journal header";
    return res;
  }
  const std::string after = lines[0].substr(std::string(kHeaderPrefix).size());
  const auto key_at = after.find(" key=");
  int version = -1;
  try {
    version = std::stoi(after.substr(0, key_at));
  } catch (const std::exception&) {
  }
  if (version != TuningJournal::kVersion) {
    res.status = JournalLoadResult::Status::VersionMismatch;
    res.message = str_cat("journal version ",
                          key_at == std::string::npos
                              ? after
                              : after.substr(0, key_at),
                          " != supported v", TuningJournal::kVersion);
    return res;
  }
  const std::string file_key =
      key_at == std::string::npos ? "" : after.substr(key_at + 5);
  if (file_key != run_key) {
    res.status = JournalLoadResult::Status::KeyMismatch;
    res.message = str_cat("journal belongs to run '", file_key,
                          "', expected '", run_key, "'");
    return res;
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (trim(lines[i]).empty()) continue;
    const auto cols = split(lines[i], '\t');
    if (cols.size() != 4) {
      ++res.skipped;
      telemetry::counter_add("journal.parse_errors");
      continue;
    }
    try {
      JournalRecord rec;
      rec.status = cols[0];
      rec.time_s = std::stod(cols[1]);
      rec.tflops = std::stod(cols[2]);
      if (out != nullptr) (*out)[cols[3]] = rec;  // duplicates: later wins
      ++res.replayed;
    } catch (const std::exception&) {
      ++res.skipped;
      telemetry::counter_add("journal.parse_errors");
    }
  }
  res.status = JournalLoadResult::Status::Replayed;
  return res;
}

JournalLoadResult TuningJournal::open(const std::string& path,
                                      const std::string& run_key,
                                      bool resume) {
  entries_.clear();
  {
    const std::lock_guard<std::mutex> lock(write_mu_);
    recorded_ = 0;
    out_.reset();
  }

  JournalLoadResult res;
  std::string text;
  try {
    text = vfs().read(path).value_or("");
  } catch (const storage::VfsError& e) {
    res.status = JournalLoadResult::Status::IoError;
    res.message = str_cat("cannot read journal '", path, "': ", e.what());
    return res;
  }

  if (resume) {
    res = parse_journal_text(text, run_key, &entries_);
    if (res.status != JournalLoadResult::Status::Replayed) entries_.clear();
  } else {
    res.status = JournalLoadResult::Status::Fresh;
  }

  try {
    std::unique_ptr<storage::VfsFile> out;
    if (res.status == JournalLoadResult::Status::Replayed) {
      // Heal a torn tail before appending, crash-safely: republish the
      // clean prefix via write-temp + fsync + rename (truncating in
      // place would turn a second crash into total journal loss).
      if (res.torn_tail) {
        const auto last_nl = text.rfind('\n');
        storage::atomic_write_file(vfs(), path,
                                   text.substr(0, last_nl + 1));
      }
      out = vfs().create(path, /*truncate=*/false);
    } else {
      // Fresh start (explicitly requested, missing file, or an
      // incompatible journal being replaced).
      out = vfs().create(path, /*truncate=*/true);
      out->write(header_line(run_key) + "\n");
      out->sync();
    }
    const std::lock_guard<std::mutex> lock(write_mu_);
    out_ = std::move(out);
  } catch (const storage::VfsError& e) {
    res.status = JournalLoadResult::Status::IoError;
    res.message =
        str_cat("cannot open journal '", path, "' for append: ", e.what());
    entries_.clear();
  }
  return res;
}

std::optional<JournalRecord> TuningJournal::lookup(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningJournal::record(const std::string& key, const std::string& status,
                           double time_s, double tflops) {
  ARTEMIS_CHECK_MSG(key.find('\t') == std::string::npos &&
                        key.find('\n') == std::string::npos,
                    "journal keys must not contain tabs or newlines");
  std::ostringstream os;
  os.precision(17);
  os << status << '\t' << time_s << '\t' << tflops << '\t' << key << '\n';
  // Write-ahead: the record is appended AND fsynced before its result is
  // used, so even power loss at any later instant cannot lose this
  // evaluation. The lock keeps concurrent appends whole-line atomic. A
  // failing filesystem deactivates the journal instead of aborting the
  // run; FsCrash (injected whole-machine crash) always propagates.
  bool failed = false;
  {
    const std::lock_guard<std::mutex> lock(write_mu_);
    if (out_ == nullptr) return;
    try {
      out_->write(os.str());
      out_->sync();
      ++recorded_;
    } catch (const storage::VfsError&) {
      out_.reset();
      failed = true;
    }
  }
  if (failed) {
    telemetry::counter_add("journal.write_errors");
    return;
  }
  telemetry::counter_add("journal.records");
}

}  // namespace artemis::robust
