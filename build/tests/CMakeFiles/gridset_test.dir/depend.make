# Empty dependencies file for gridset_test.
# This may be replaced when dependencies are built.
