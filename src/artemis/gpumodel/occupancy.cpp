#include "artemis/gpumodel/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "artemis/common/check.hpp"

namespace artemis::gpumodel {

const char* limiter_name(Occupancy::Limiter l) {
  switch (l) {
    case Occupancy::Limiter::Threads: return "threads";
    case Occupancy::Limiter::Blocks: return "block-slots";
    case Occupancy::Limiter::Registers: return "registers";
    case Occupancy::Limiter::SharedMemory: return "shared-memory";
    case Occupancy::Limiter::Invalid: return "invalid-launch";
  }
  return "?";
}

Occupancy compute_occupancy(const DeviceSpec& dev, const KernelResources& r) {
  Occupancy occ;
  // Reject malformed or over-budget requests up front: negative resource
  // counts, more registers than a thread may address, or a shared-memory
  // request exceeding either the per-block cap or the physical per-SM
  // carve-out (the family's newer parts have per-block caps within 1 KiB
  // of the SM, so both bounds matter). Anything rejected here yields zero
  // occupancy with Limiter::Invalid -- never a division by zero or a
  // negative block count below.
  if (r.threads_per_block < 1 ||
      r.threads_per_block > dev.max_threads_per_block ||
      r.regs_per_thread < 0 || r.regs_per_thread > dev.max_regs_per_thread ||
      r.shmem_per_block < 0 || r.shmem_per_block > dev.shmem_per_block ||
      r.shmem_per_block > dev.shmem_per_sm) {
    return occ;  // zero occupancy, Limiter::Invalid
  }

  const int regs = std::max(
      dev.reg_alloc_granularity,
      (r.regs_per_thread + dev.reg_alloc_granularity - 1) /
          dev.reg_alloc_granularity * dev.reg_alloc_granularity);

  const int by_threads = dev.max_threads_per_sm / r.threads_per_block;
  const int by_slots = dev.max_blocks_per_sm;
  const int by_regs = static_cast<int>(
      dev.regs_per_sm / (static_cast<std::int64_t>(regs) *
                         r.threads_per_block));
  const int by_shmem =
      r.shmem_per_block > 0
          ? static_cast<int>(dev.shmem_per_sm / r.shmem_per_block)
          : std::numeric_limits<int>::max();

  const int blocks = std::min({by_threads, by_slots, by_regs, by_shmem});
  if (blocks < 1) {
    // Not even one block fits on an SM (e.g. 255 regs x 1024 threads
    // exceeds the register file): the launch is rejected, like nvcc would.
    occ.limiter = (by_regs < 1) ? Occupancy::Limiter::Registers
                                : Occupancy::Limiter::SharedMemory;
    return occ;
  }

  occ.active_blocks_per_sm = blocks;
  occ.active_warps_per_sm =
      blocks * ((r.threads_per_block + dev.warp_size - 1) / dev.warp_size);
  occ.fraction = static_cast<double>(blocks) * r.threads_per_block /
                 dev.max_threads_per_sm;

  if (blocks == by_threads) {
    occ.limiter = Occupancy::Limiter::Threads;
  } else if (blocks == by_regs) {
    occ.limiter = Occupancy::Limiter::Registers;
  } else if (blocks == by_shmem) {
    occ.limiter = Occupancy::Limiter::SharedMemory;
  } else {
    occ.limiter = Occupancy::Limiter::Blocks;
  }
  return occ;
}

}  // namespace artemis::gpumodel
