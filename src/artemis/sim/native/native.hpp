#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "artemis/sim/bytecode.hpp"

namespace artemis::sim::native {

/// --- native SIMD interior tier ----------------------------------------------
///
/// The bytecode engine executes every interior point through a switch loop
/// and a software value stack. This tier lowers a CompiledStencil ONCE into
/// a linearized register program — stack traffic replaced by virtual
/// registers, same-point pending-write forwarding resolved statically,
/// repeated loads CSE'd, per-access flat-index strides constant-folded —
/// and executes guard-free interior boxes with runtime-dispatched SIMD
/// over the unit-stride (x) axis: 4-wide AVX2, 8-wide AVX-512F, or a
/// portable scalar loop, selected once by cpuid. Loads whose offsets
/// recur along the streaming (z) axis share a rotating register window
/// (the register-tiling idiom), so each z step issues one new load per
/// chain instead of reloading the whole stencil star.
///
/// The boundary rim, vetoing points, hook traces and anything the lowering
/// refuses stay on the bytecode engine, which remains the semantics
/// oracle. In strict mode (the default) the emitted code preserves the
/// bytecode's operation set and evaluation order exactly — no FMA
/// contraction, lane arithmetic IEEE-identical to the scalar ops — so
/// grids, counters and counting-mode traces are bit-identical to the
/// bytecode engine. The declared fast-math mode additionally fuses
/// mul+add/sub chains into correctly-rounded FMAs; it is deterministic
/// across dispatch tiers (std::fma and vfmadd round identically) but only
/// ULP-bounded against the bytecode oracle.

/// Register-program opcodes. Load pulls through loads[aux]; everything
/// else is regs[dst] = op(regs[a], regs[b], regs[c]).
enum class NOp : std::uint8_t {
  Load,
  Neg,
  Fabs,
  Sqrt,
  Exp,
  Log,
  Add,
  Sub,
  Mul,
  Div,
  Min,
  Max,
  Pow,
  Fmadd,   ///< dst = fma(a, b, c) — fast-math only
  Fmsub,   ///< dst = fma(a, b, -c) — fast-math only
  Fnmadd,  ///< dst = fma(-a, b, c) — fast-math only
};

struct NInstr {
  NOp op = NOp::Add;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::int32_t aux = 0;  ///< loads[] index for NOp::Load
};

/// One lowered access: BcAccess with the scratch flag resolved and (for
/// loads) its streaming-axis chain membership.
struct NAccess {
  std::int32_t view = 0;
  std::array<std::uint8_t, 3> sel = {3, 3, 3};
  std::array<std::int64_t, 3> off = {0, 0, 0};
  bool scratch = false;
  std::int32_t chain = -1;    ///< chains[] index, -1 = unchained
  std::int32_t chain_pos = 0; ///< position in the chain's z-sorted window
};

struct NStore {
  NAccess acc;
  std::uint16_t src = 0;  ///< register holding the stored value
};

/// Loads identical up to consecutive streaming-axis offsets; the executor
/// keeps their values in a rotating register ring across z steps.
struct NChain {
  std::vector<std::int32_t> members;  ///< loads[] indices, z-ascending
};

/// The lowered form of one CompiledStencil. Immutable after lowering;
/// safe to execute from many threads concurrently.
struct LinearProgram {
  int dims = 3;
  int n_regs = 0;

  /// Broadcast once per box: regs[const_reg[i]] = setup_consts[i],
  /// regs[scalar_reg[i]] = scalars[setup_scalars[i]].
  std::vector<double> setup_consts;
  std::vector<std::uint16_t> const_reg;
  std::vector<std::int32_t> setup_scalars;
  std::vector<std::uint16_t> scalar_reg;

  std::vector<NInstr> body;
  std::vector<NAccess> loads;
  std::vector<NStore> stores;
  std::vector<NChain> chains;

  /// Counting-mode replay: loads[] indices of every external memory read
  /// one point performs, in bytecode execution order (CSE'd loads appear
  /// once per original read). External stores replay from stores[] in
  /// statement order, after all reads — exactly the bytecode's commit
  /// loop.
  std::vector<std::int32_t> replay_reads;

  /// Static per-point element counts (interior points never veto and
  /// pending-write forwarding is resolved at lowering time, so these are
  /// exact): counters for a box are these times its volume, plus the
  /// per-store committed volume for gwrites.
  std::int64_t greads_pp = 0;
  std::int64_t sreads_pp = 0;
  std::int64_t swrites_pp = 0;
  std::int64_t flops_per_point = 0;
};

/// Lowering outcome. !ok carries the refusal reason; the caller falls
/// back to the bytecode engine for the whole stage.
struct LowerResult {
  bool ok = false;
  std::string reason;
  LinearProgram prog;
};

/// Lower a compiled stencil. `is_scratch[slot]` marks plan-internal array
/// slots (block-local scratch at execution time). Refuses — never
/// miscompiles — when same-point pending-write aliasing cannot be
/// resolved statically (reads and earlier writes to one array with
/// different coordinate selectors may or may not hit depending on the
/// point). All canonical-index paper kernels lower.
LowerResult lower_stencil(const CompiledStencil& cs,
                          const std::vector<std::uint8_t>& is_scratch,
                          bool fast_math);

/// SIMD dispatch tiers, widest last.
enum class Tier { Scalar, Avx2, Avx512 };

const char* tier_name(Tier tier);

/// The tier this host executes: cpuid-detected once per process, then
/// clamped by the ARTEMIS_NATIVE_TIER environment variable
/// (scalar|avx2|avx512) when set — the override can narrow but never
/// exceed what the hardware supports.
Tier active_tier();

/// Execute the lowered program over every point of `box` (all points must
/// be interior: in-bounds by construction, no veto possible). `views` and
/// `scalars` are the same tables run_compiled_region binds. External
/// stores honor drop-outside-commit semantics; scratch stores always land
/// and set their written flags.
using RunBoxFn = void (*)(const LinearProgram& lp, const ArrayView* views,
                          const double* scalars, const BcRegion& box,
                          const BcRegion& commit, bool drop_outside_commit);

RunBoxFn run_box(Tier tier);

/// Per-tier entry points (one translation unit each, compiled with that
/// tier's instruction-set flags; narrow tiers are plain C++).
void run_box_scalar(const LinearProgram& lp, const ArrayView* views,
                    const double* scalars, const BcRegion& box,
                    const BcRegion& commit, bool drop_outside_commit);
void run_box_avx2(const LinearProgram& lp, const ArrayView* views,
                  const double* scalars, const BcRegion& box,
                  const BcRegion& commit, bool drop_outside_commit);
void run_box_avx512(const LinearProgram& lp, const ArrayView* views,
                    const double* scalars, const BcRegion& box,
                    const BcRegion& commit, bool drop_outside_commit);

/// Counting-mode bookkeeping for a native-executed interior box: the O(1)
/// analytic form of what per-point bytecode counting would accumulate.
void add_interior_counters(const LinearProgram& lp, const BcRegion& box,
                           const BcRegion& commit, bool drop_outside_commit,
                           BcCounters& c);

/// Execute one stage over `region` with run_compiled_region's full
/// contract — identical grids, counters, and (when `trace` is non-null)
/// counting-mode line streams — using the native tier for the guard-free
/// interior and the bytecode engine for the boundary rim. `lowered` must
/// be the successful lowering of `cs`.
void run_native_region(const LinearProgram& lp, const CompiledStencil& cs,
                       const std::vector<ArrayView>& views,
                       const double* scalars, const BcRegion& region,
                       const BcRegion& commit, bool drop_outside_commit,
                       BcCounters& counters, StageTrace* trace, Tier tier);

}  // namespace artemis::sim::native
