#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/occupancy.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/gpumodel/registers.hpp"
#include "test_programs.hpp"

namespace artemis::gpumodel {
namespace {

using codegen::KernelConfig;
using codegen::KernelPlan;
using codegen::TilingScheme;

TEST(Device, P100MachineBalance) {
  const DeviceSpec d = p100();
  // Paper Section VIII-A: alpha/beta ratios 6.42, 2.35, 0.49.
  EXPECT_NEAR(d.balance_dram(), 6.42, 0.01);
  EXPECT_NEAR(d.balance_tex(), 2.35, 0.01);
  EXPECT_NEAR(d.balance_shm(), 0.49, 0.01);
}

TEST(Occupancy, FullAtModestResources) {
  const DeviceSpec d = p100();
  const Occupancy o = compute_occupancy(d, {256, 32, 0});
  EXPECT_EQ(o.active_blocks_per_sm, 8);
  EXPECT_DOUBLE_EQ(o.fraction, 1.0);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Threads);
}

TEST(Occupancy, RegisterLimited) {
  const DeviceSpec d = p100();
  // 128 regs x 256 threads = 32768 regs/block; 65536/32768 = 2 blocks.
  const Occupancy o = compute_occupancy(d, {256, 128, 0});
  EXPECT_EQ(o.active_blocks_per_sm, 2);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
  EXPECT_DOUBLE_EQ(o.fraction, 0.25);
}

TEST(Occupancy, SharedMemoryLimited) {
  const DeviceSpec d = p100();
  // 40KB per block: only one fits in 64KB/SM.
  const Occupancy o = compute_occupancy(d, {128, 32, 40 * 1024});
  EXPECT_EQ(o.active_blocks_per_sm, 1);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::SharedMemory);
}

TEST(Occupancy, InvalidLaunches) {
  const DeviceSpec d = p100();
  EXPECT_DOUBLE_EQ(compute_occupancy(d, {2048, 32, 0}).fraction, 0.0);
  EXPECT_DOUBLE_EQ(compute_occupancy(d, {256, 300, 0}).fraction, 0.0);
  EXPECT_DOUBLE_EQ(compute_occupancy(d, {256, 32, 64 * 1024}).fraction, 0.0);
  // 255 regs x 1024 threads exceeds the register file entirely.
  const Occupancy o = compute_occupancy(d, {1024, 255, 0});
  EXPECT_DOUBLE_EQ(o.fraction, 0.0);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Registers);
}

TEST(Occupancy, MaxBlockSlotsLimited) {
  const DeviceSpec d = p100();
  const Occupancy o = compute_occupancy(d, {32, 16, 0});
  EXPECT_EQ(o.active_blocks_per_sm, 32);  // slot limit
  EXPECT_EQ(o.limiter, Occupancy::Limiter::Blocks);
}

TEST(Device, GenerationsOrdered) {
  const auto k = k40();
  const auto p = p100();
  const auto v = v100();
  EXPECT_LT(k.peak_dp_flops, p.peak_dp_flops);
  EXPECT_LT(p.peak_dp_flops, v.peak_dp_flops);
  // Newer devices are more bandwidth-starved (higher balance).
  EXPECT_LT(k.balance_dram(), p.balance_dram());
  EXPECT_LT(p.balance_dram(), v.balance_dram());
}

class PlanFixture : public ::testing::Test {
 protected:
  KernelPlan make_plan(const char* src, const KernelConfig& cfg,
                       codegen::BuildOptions opts = {}) {
    prog_ = dsl::parse(src);
    return codegen::build_plan_for_call(prog_, prog_.steps.back().call, cfg,
                                        dev_, opts);
  }
  ir::Program prog_;
  DeviceSpec dev_ = p100();
};

TEST_F(PlanFixture, RegistersGrowWithUnroll) {
  KernelConfig cfg;
  const auto base =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  cfg.unroll = {4, 1, 1};
  const auto unrolled =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  EXPECT_GT(unrolled.total, base.total);
}

TEST_F(PlanFixture, CyclicUsesMoreRegistersThanBlocked) {
  KernelConfig cfg;
  cfg.unroll = {4, 1, 1};
  cfg.unroll_strategy = codegen::UnrollStrategy::Blocked;
  const auto blocked =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  cfg.unroll_strategy = codegen::UnrollStrategy::Cyclic;
  const auto cyclic =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, cfg));
  EXPECT_GT(cyclic.total, blocked.total);
}

TEST_F(PlanFixture, StreamingAddsRegisterPlanes) {
  KernelConfig spatial;
  spatial.tiling = TilingScheme::Spatial3D;
  const auto s =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, spatial));
  KernelConfig stream;
  stream.tiling = TilingScheme::StreamSerial;
  stream.stream_axis = 2;
  const auto t =
      estimate_registers(make_plan(artemis::testing::kJacobiDsl, stream));
  EXPECT_GT(t.stream_planes, 0);
  EXPECT_GT(t.total, s.total);
}

TEST_F(PlanFixture, EvaluateProducesFiniteTime) {
  KernelConfig cfg;
  const auto plan = make_plan(artemis::testing::kJacobiDsl, cfg);
  const KernelEval ev = evaluate(plan, dev_);
  ASSERT_TRUE(ev.valid);
  EXPECT_GT(ev.time_s, 0.0);
  EXPECT_GT(ev.counters.flops, 0);
  EXPECT_GT(ev.counters.dram_bytes(), 0);
  EXPECT_GT(ev.tflops(), 0.0);
  EXPECT_LT(ev.tflops(), 4.7);  // cannot beat the device peak
}

TEST_F(PlanFixture, UsefulFlopsMatchAnalysis) {
  KernelConfig cfg;
  const auto plan = make_plan(artemis::testing::kJacobiDsl, cfg);
  const KernelEval ev = evaluate(plan, dev_);
  const std::int64_t points = 16 * 16 * 16;
  EXPECT_EQ(ev.useful_flops, plan.info.flops_per_point * points);
  // With a single stage there is no recomputation.
  EXPECT_EQ(ev.counters.flops >= ev.useful_flops, true);
}

TEST_F(PlanFixture, InvalidLaunchReported) {
  KernelConfig cfg;
  cfg.block = {32, 32, 1};
  cfg.max_registers = 255;
  cfg.unroll = {8, 8, 1};  // blows past the register file
  cfg.unroll_strategy = codegen::UnrollStrategy::Cyclic;
  codegen::BuildOptions opts;
  opts.use_shared_memory = false;  // isolate the register story
  const auto plan = make_plan(artemis::testing::kJacobiDsl, cfg, opts);
  const KernelEval ev = evaluate(plan, dev_);
  // Either invalid or heavily spilled; both are acceptable model outcomes,
  // but time must reflect the penalty.
  if (ev.valid) {
    EXPECT_GT(ev.counters.spill_bytes, 0);
  } else {
    EXPECT_FALSE(ev.invalid_reason.empty());
  }
}

}  // namespace
}  // namespace artemis::gpumodel
