#pragma once

#include <string>
#include <thread>
#include <vector>

#include "artemis/service/service.hpp"

namespace artemis::service {

/// Unix-domain-socket transport for ArtemisService. Owns the listening
/// socket; each accepted connection is served by its own thread running
/// the frame loop (decode frame → ArtemisService::handle → encode
/// response frame). A framing error (oversized length prefix) gets one
/// final bad_frame error response and the connection is closed — the
/// stream cannot be resynced. The accept loop polls so a shutdown
/// request accepted on any connection stops the server promptly.
class SocketServer {
 public:
  /// Binds and listens on `socket_path`, replacing a stale socket file.
  /// Throws artemis::Error when the address is unavailable.
  SocketServer(ArtemisService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Runs the accept loop on the calling thread until a shutdown request
  /// is served (or stop() is called), then drains connection threads.
  void serve();

  /// Asks the accept loop to exit. Safe from any thread / signal context
  /// is NOT supported (uses no async-signal-safe primitives) — call from
  /// a connection or test thread.
  void stop();

  const std::string& socket_path() const { return path_; }

 private:
  void serve_connection(int fd);

  ArtemisService& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> conns_;
};

/// Blocking client for the framed protocol; used by artemis_client and
/// the service stress test. Not thread-safe: one request in flight.
class UnixClient {
 public:
  /// Connects to a listening daemon; throws artemis::Error on failure.
  explicit UnixClient(const std::string& socket_path);
  ~UnixClient();

  UnixClient(const UnixClient&) = delete;
  UnixClient& operator=(const UnixClient&) = delete;

  /// One round trip: frame and send `payload`, block for one response
  /// frame, return its payload. Throws artemis::Error on connection loss
  /// or framing failure.
  std::string round_trip(const std::string& payload);

  /// Structured round trip: dump request, parse response.
  Json call(const Json& request);

  /// Send raw pre-framed (or deliberately malformed) bytes; fuzz helper.
  void send_raw(const std::string& bytes);
  /// Read one response frame after send_raw. Returns false on EOF
  /// (server closed the connection) instead of throwing.
  bool read_response(std::string* payload);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace artemis::service
