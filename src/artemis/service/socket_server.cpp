#include "artemis/service/socket_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "artemis/common/str.hpp"

namespace artemis::service {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error(str_cat("socket path '", path, "' exceeds the ",
                        sizeof(addr.sun_path) - 1, "-character limit"));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// write() the whole buffer, riding out EINTR and partial writes.
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(ArtemisService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {
  const sockaddr_un addr = make_addr(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(str_cat("socket(): ", std::strerror(errno)));
  }
  ::unlink(path_.c_str());  // replace a stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(str_cat("bind('", path_, "'): ", std::strerror(err)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(str_cat("listen('", path_, "'): ", std::strerror(err)));
  }
}

SocketServer::~SocketServer() {
  stop();
  for (auto& t : conns_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::stop() { stop_.store(true, std::memory_order_release); }

void SocketServer::serve() {
  while (!stop_.load(std::memory_order_acquire) &&
         !service_.shutdown_requested()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;  // timeout: re-check the shutdown flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    conns_.emplace_back([this, fd] { serve_connection(fd); });
  }
  for (auto& t : conns_) {
    if (t.joinable()) t.join();
  }
  conns_.clear();
}

void SocketServer::serve_connection(int fd) {
  FrameDecoder decoder;
  char buf[4096];
  for (;;) {
    while (auto payload = decoder.next()) {
      const std::string response = service_.handle(*payload);
      const std::string frame = encode_frame(response);
      if (!write_all(fd, frame.data(), frame.size())) {
        ::close(fd);
        return;
      }
    }
    if (decoder.failed()) {
      // One parting structured error, then hang up: past a bad length
      // prefix there is no frame boundary to recover to.
      const std::string err =
          make_error(Json(), errc::kBadFrame, decoder.error()).dump();
      const std::string frame = encode_frame(err);
      write_all(fd, frame.data(), frame.size());
      ::close(fd);
      return;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

UnixClient::UnixClient(const std::string& socket_path) {
  const sockaddr_un addr = make_addr(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(str_cat("socket(): ", std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error(
        str_cat("connect('", socket_path, "'): ", std::strerror(err)));
  }
}

UnixClient::~UnixClient() {
  if (fd_ >= 0) ::close(fd_);
}

void UnixClient::send_raw(const std::string& bytes) {
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    throw Error(str_cat("send: ", std::strerror(errno)));
  }
}

bool UnixClient::read_response(std::string* payload) {
  char buf[4096];
  for (;;) {
    if (auto p = decoder_.next()) {
      *payload = std::move(*p);
      return true;
    }
    if (decoder_.failed()) {
      throw Error(str_cat("response framing error: ", decoder_.error()));
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::string UnixClient::round_trip(const std::string& payload) {
  send_raw(encode_frame(payload));
  std::string response;
  if (!read_response(&response)) {
    throw Error("server closed the connection before responding");
  }
  return response;
}

Json UnixClient::call(const Json& request) {
  return Json::parse(round_trip(request.dump()));
}

}  // namespace artemis::service
