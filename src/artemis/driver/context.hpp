#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "artemis/autotune/tuning_cache.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/robust/journal.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/storage/plan_store.hpp"
#include "artemis/storage/vfs.hpp"

namespace artemis::driver {

/// Everything one ArtemisContext binds at construction. A context is the
/// reentrant form of the artemisc pipeline: two contexts with different
/// devices, strategies, caches and stores can run tune() concurrently on
/// separate threads and produce exactly the plans sequential runs would.
struct ContextOptions {
  gpumodel::DeviceSpec device = gpumodel::p100();
  gpumodel::ModelParams params;
  Strategy strategy = artemis_strategy();
  /// Tuning parallelism handed to the tuner (TuneOptions.jobs semantics:
  /// 0 = the process default, any value yields byte-identical plans).
  int jobs = 0;
  /// Filesystem every durable artifact (store, cache, journal) writes
  /// through. nullptr = the real filesystem.
  storage::Vfs* vfs = nullptr;
  /// Root of a durable content-addressed plan store; "" = none.
  std::string store_root;
  /// Tuning-cache file loaded at construction and saved after tunes;
  /// "" = none.
  std::string cache_path;
  /// Simulator engine run() executes plans with (artemisc --engine).
  /// Every engine produces bit-identical grids in its default mode.
  sim::SimEngine engine = sim::SimEngine::Bytecode;
};

/// Resolve a device-family name ("k40", "p100", "v100", "a100", "h100")
/// to its spec; throws artemis::Error on an unknown name.
gpumodel::DeviceSpec device_by_name(const std::string& name);

/// Resolve a strategy preset name ("artemis", "ppcg", "stencilgen",
/// "global", "global-stream"); throws artemis::Error on an unknown name.
Strategy strategy_by_name(const std::string& name);

/// A parsed program plus the two keys the pipeline files it under: the
/// content-addressed plan-store key (canonical IR + device + tuner
/// version) and the source-exact run key (cache + journal).
struct CompileInfo {
  ir::Program program;
  std::string plan_key;  ///< storage::plan_store_key(...)
  std::string run_key;   ///< <source hash>/<strategy>/<device>
};

/// Per-tune knobs that vary between requests on one context.
struct TuneRequest {
  /// Crash-safe tuning journal path; "" = no journal.
  std::string journal_path;
  /// Replay a compatible existing journal before tuning.
  bool resume = false;
  /// Serve a plan-store hit directly instead of re-running the tuner
  /// (the daemon's read path). The one-shot CLI keeps this false: it
  /// reports the hit but still re-optimizes, preserving artemisc
  /// behavior.
  bool reuse_stored_plan = false;
  /// Override the strategy's model-guided pruning strength
  /// (TuneOptions::model_prune_k) for this request. < 0 keeps the
  /// context strategy's value; 0 disables the pre-filter; > 0 caps each
  /// sweep at that many simulation evaluations.
  int model_prune_k = -1;
};

/// Everything one tune produced. `record`/`plan_bytes` are the canonical
/// durable form: byte-identical across the CLI and the daemon for the
/// same (program, device, strategy, tuner version).
struct TuneOutcome {
  CompileInfo compile;
  /// Full optimization result. Empty (no kernels) when the plan was
  /// served from the store without running the tuner.
  ProgramResult result;
  storage::PlanRecord record;
  std::string plan_bytes;  ///< storage::encode_plan_record(record)
  bool store_hit = false;          ///< key was published before this tune
  /// The pre-tune store hit, when store_hit (the CLI prints it; the
  /// daemon serves it).
  std::optional<storage::PlanRecord> stored;
  bool served_from_store = false;  ///< tuner skipped, record reused
  /// Tuning-cache hit for the run key (informational; never skips work).
  std::optional<autotune::CacheEntry> cache_hit;
  bool cache_saved = false;
  enum class StorePut { NotAttempted, Ok, Failed };
  StorePut store_put = StorePut::NotAttempted;
  robust::JournalLoadResult journal_load;
  std::size_t journal_recorded = 0;
  std::size_t journal_replayed = 0;
  bool journal_active = false;
};

/// One copyout array checked against the reference interpreter.
struct RunCheck {
  std::string array;
  double checksum = 0;
  double max_abs_diff = 0;  ///< planned execution vs reference
};

struct RunOutcome {
  CompileInfo compile;
  std::vector<RunCheck> checks;
};

/// Context-lifetime counters (monotonic; the daemon's stats endpoint
/// merges them with PlanStoreStats).
struct ContextStats {
  std::uint64_t compiles = 0;
  std::uint64_t tunes = 0;
  std::uint64_t tuner_runs = 0;    ///< tunes that ran the optimizer
  std::uint64_t store_hits = 0;    ///< plan-store hits observed by tune()
  std::uint64_t store_serves = 0;  ///< tunes answered from the store
  std::uint64_t cache_hits = 0;
  std::uint64_t runs = 0;
};

/// The artemisc pipeline as a reentrant library: parse, key, consult the
/// plan store, tune (journaled and resumable), publish. All state is
/// owned by the instance — device spec, model params, strategy, tuning
/// cache, open plan store, Vfs binding — and nothing is written to
/// process globals, so independent contexts are safe to drive from
/// concurrent threads, and one context may serve concurrent tune() calls
/// (its cache, store and counters are internally synchronized).
class ArtemisContext {
 public:
  explicit ArtemisContext(ContextOptions opts);

  ArtemisContext(const ArtemisContext&) = delete;
  ArtemisContext& operator=(const ArtemisContext&) = delete;

  /// Parse and key a program. Throws artemis::Error on a parse failure.
  CompileInfo compile(const std::string& source) const;

  /// The full pipeline for one source. Throws artemis::Error on parse /
  /// infeasibility failures and propagates storage::FsCrash (a simulated
  /// machine death must never be absorbed).
  TuneOutcome tune(const std::string& source, const TuneRequest& req = {});

  /// Functional run: execute every step with plain per-step plans and
  /// confront each copyout array with the reference interpreter.
  RunOutcome run(const std::string& source);

  /// The stored plan for a compiled program, if the store has one.
  /// Counted as a store hit/miss like tune()'s own lookup.
  std::optional<storage::PlanRecord> stored_plan(const std::string& plan_key);

  const ContextOptions& options() const { return opts_; }
  const gpumodel::DeviceSpec& device() const { return opts_.device; }
  const Strategy& strategy() const { return opts_.strategy; }
  /// The tuner parallelism tune() runs at (0 resolved).
  int resolved_jobs() const;
  storage::Vfs& vfs() const { return *vfs_; }
  /// nullptr when the context has no durable store.
  storage::PlanStore* store() { return store_ ? &*store_ : nullptr; }
  autotune::TuningCache& cache() { return cache_; }
  /// How loading cache_path went at construction (Status::Missing for a
  /// cold start; meaningless when cache_path is empty).
  const autotune::CacheLoadReport& cache_load() const { return cache_load_; }
  ContextStats stats() const;

  /// The canonical durable record for a tuning result — the single
  /// encoder used by the CLI and the daemon, so "plan bytes" always
  /// means the same bytes.
  static storage::PlanRecord make_plan_record(const std::string& plan_key,
                                              const ProgramResult& result,
                                              const gpumodel::DeviceSpec& dev,
                                              const Strategy& strategy);

 private:
  ContextOptions opts_;
  storage::Vfs* vfs_;  ///< never null (real_vfs() when unset)
  std::optional<storage::PlanStore> store_;
  autotune::TuningCache cache_;
  autotune::CacheLoadReport cache_load_;
  mutable std::mutex stats_mu_;
  mutable ContextStats stats_;  ///< compile() is logically const
};

}  // namespace artemis::driver
