// Portable scalar tier: the same linearized register program the SIMD
// tiers run, with Vec = double. This is the semantics model the wide
// tiers must match lane-for-lane, and the fallback on hosts (or builds)
// without AVX2.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "artemis/sim/native/native.hpp"

namespace artemis::sim::native {
namespace {

struct Backend {
  static constexpr std::int64_t kWidth = 1;
  using Vec = double;
  static Vec broadcast(double v) { return v; }
  static Vec loadu(const double* p) { return *p; }
  static void storeu(double* p, Vec v) { *p = v; }
  static Vec add(Vec a, Vec b) { return a + b; }
  static Vec sub(Vec a, Vec b) { return a - b; }
  static Vec mul(Vec a, Vec b) { return a * b; }
  static Vec div(Vec a, Vec b) { return a / b; }
  static Vec min_(Vec a, Vec b) { return std::min(a, b); }
  static Vec max_(Vec a, Vec b) { return std::max(a, b); }
  static Vec neg(Vec a) { return -a; }
  static Vec fabs_(Vec a) { return std::fabs(a); }
  static Vec sqrt_(Vec a) { return std::sqrt(a); }
  static Vec exp_(Vec a) { return std::exp(a); }
  static Vec log_(Vec a) { return std::log(a); }
  static Vec pow_(Vec a, Vec b) { return std::pow(a, b); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return std::fma(a, b, c); }
  static Vec fmsub(Vec a, Vec b, Vec c) { return std::fma(a, b, -c); }
  static Vec fnmadd(Vec a, Vec b, Vec c) { return std::fma(-a, b, c); }
};

#include "artemis/sim/native/exec_common.inl"

}  // namespace

void run_box_scalar(const LinearProgram& lp, const ArrayView* views,
                    const double* scalars, const BcRegion& box,
                    const BcRegion& commit, bool drop_outside_commit) {
  run_box_impl<Backend>(lp, views, scalars, box, commit,
                        drop_outside_commit);
}

}  // namespace artemis::sim::native
