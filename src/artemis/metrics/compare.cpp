#include "artemis/metrics/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "artemis/common/str.hpp"

namespace artemis::metrics {

double Delta::rel_error() const {
  const double denom = std::max(std::fabs(predicted), std::fabs(measured));
  if (denom == 0.0) return 0.0;
  return (measured - predicted) / denom;
}

ModelVsMeasured compare_counters(const gpumodel::Counters& predicted,
                                 const PlanMetrics& measured) {
  const StageMetrics& t = measured.totals;
  ModelVsMeasured d;
  const auto set = [](Delta& delta, double pred, double meas) {
    delta.predicted = pred;
    delta.measured = meas;
  };
  set(d.flops, static_cast<double>(predicted.flops),
      static_cast<double>(t.flops));
  set(d.tex_bytes, static_cast<double>(predicted.tex_bytes),
      static_cast<double>(t.tex_bytes));
  set(d.dram_read_bytes, static_cast<double>(predicted.dram_read_bytes),
      static_cast<double>(t.dram_read_bytes));
  set(d.dram_write_bytes, static_cast<double>(predicted.dram_write_bytes),
      static_cast<double>(t.dram_write_bytes));
  set(d.dram_bytes, static_cast<double>(predicted.dram_bytes()),
      static_cast<double>(t.dram_bytes()));
  set(d.shm_bytes, static_cast<double>(predicted.shm_bytes),
      static_cast<double>(t.shm_bytes));
  set(d.oi_dram, predicted.oi_dram(), t.oi_dram());
  set(d.oi_tex, predicted.oi_tex(), t.oi_tex());
  return d;
}

namespace {

/// Average ranks (1-based) with tie averaging.
std::vector<double> ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n, 0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 1.0;
  std::vector<double> ra = ranks({a.begin(), a.begin() + static_cast<std::ptrdiff_t>(n)});
  std::vector<double> rb = ranks({b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n)});
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va == 0 && vb == 0) return 1.0;  // both constant: identical ranking
  if (va == 0 || vb == 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double measured_roofline_s(const PlanMetrics& m,
                           const gpumodel::DeviceSpec& dev) {
  const StageMetrics& t = m.totals;
  double time = 0;
  if (dev.dram_bytes_per_s > 0) {
    time = std::max(time,
                    static_cast<double>(t.dram_bytes()) / dev.dram_bytes_per_s);
  }
  if (dev.tex_bytes_per_s > 0) {
    time = std::max(time,
                    static_cast<double>(t.tex_bytes) / dev.tex_bytes_per_s);
  }
  if (dev.shm_bytes_per_s > 0) {
    time = std::max(time,
                    static_cast<double>(t.shm_bytes) / dev.shm_bytes_per_s);
  }
  if (dev.peak_dp_flops > 0) {
    time = std::max(time, static_cast<double>(t.flops) / dev.peak_dp_flops);
  }
  return time;
}

namespace {

Json delta_json(const Delta& d) {
  Json j = Json::object();
  j.set("predicted", d.predicted);
  j.set("measured", d.measured);
  j.set("rel_error", d.rel_error());
  return j;
}

Json stage_json(const StageMetrics& m) {
  Json j = Json::object();
  j.set("name", m.name);
  j.set("interior_points", m.interior_points);
  j.set("rim_points", m.rim_points);
  j.set("computed_points", m.computed_points());
  j.set("skipped_points", m.skipped_points);
  j.set("flops", m.flops);
  j.set("interior_flops", m.interior_flops);
  j.set("rim_flops", m.rim_flops);
  j.set("global_read_elems", m.global_read_elems);
  j.set("global_write_elems", m.global_write_elems);
  j.set("scratch_read_elems", m.scratch_read_elems);
  j.set("scratch_write_elems", m.scratch_write_elems);
  j.set("read_line_requests", m.read_line_requests);
  j.set("write_line_requests", m.write_line_requests);
  j.set("unique_read_lines", m.unique_read_lines);
  j.set("unique_write_lines", m.unique_write_lines);
  j.set("working_set_bytes", m.working_set_bytes);
  j.set("tex_bytes", m.tex_bytes);
  j.set("dram_read_bytes", m.dram_read_bytes);
  j.set("dram_write_bytes", m.dram_write_bytes);
  j.set("shm_bytes", m.shm_bytes);
  j.set("l2_hit_rate", m.l2_hit_rate);
  j.set("redundant_load_fraction", m.redundant_load_fraction);
  j.set("oi_dram", m.oi_dram());
  j.set("oi_tex", m.oi_tex());
  return j;
}

}  // namespace

Json kernel_metrics_json(const KernelMetricsReport& k) {
  Json j = Json::object();
  j.set("name", k.kernel);
  j.set("invocations", k.invocations);
  j.set("line_bytes", k.measured.line_bytes);
  j.set("l2_capacity_bytes", k.measured.l2_capacity_bytes);

  Json stages = Json::array();
  for (const auto& s : k.measured.stages) stages.push_back(stage_json(s));
  j.set("stages", std::move(stages));
  j.set("totals", stage_json(k.measured.totals));

  Json arrays = Json::array();
  for (const auto& a : k.measured.arrays) {
    Json aj = Json::object();
    aj.set("name", a.name);
    aj.set("working_set_bytes", a.working_set_bytes);
    aj.set("read_line_requests", a.read_line_requests);
    aj.set("write_line_requests", a.write_line_requests);
    arrays.push_back(std::move(aj));
  }
  j.set("arrays", std::move(arrays));

  Json mvm = Json::object();
  mvm.set("flops", delta_json(k.delta.flops));
  mvm.set("tex_bytes", delta_json(k.delta.tex_bytes));
  mvm.set("dram_read_bytes", delta_json(k.delta.dram_read_bytes));
  mvm.set("dram_write_bytes", delta_json(k.delta.dram_write_bytes));
  mvm.set("dram_bytes", delta_json(k.delta.dram_bytes));
  mvm.set("shm_bytes", delta_json(k.delta.shm_bytes));
  mvm.set("oi_dram", delta_json(k.delta.oi_dram));
  mvm.set("oi_tex", delta_json(k.delta.oi_tex));
  j.set("model_vs_measured", std::move(mvm));

  if (k.has_rank_correlation) {
    Json rank = Json::object();
    rank.set("candidates", static_cast<std::int64_t>(k.ranking.size()));
    rank.set("spearman", k.rank_correlation);
    Json entries = Json::array();
    for (const auto& e : k.ranking) {
      Json ej = Json::object();
      ej.set("config", e.config);
      ej.set("model_time_ms", e.model_time_s * 1e3);
      ej.set("measured_roofline_ms", e.measured_time_s * 1e3);
      entries.push_back(std::move(ej));
    }
    rank.set("ranking", std::move(entries));
    j.set("tuning_rank_correlation", std::move(rank));
  }
  return j;
}

Json metrics_json(const std::string& source, const std::string& strategy,
                  const std::string& device,
                  const std::vector<KernelMetricsReport>& kernels) {
  Json j = Json::object();
  j.set("metrics_version", kMetricsVersion);
  j.set("source", source);
  j.set("strategy", strategy);
  j.set("device", device);
  Json arr = Json::array();
  for (const auto& k : kernels) arr.push_back(kernel_metrics_json(k));
  j.set("kernels", std::move(arr));
  return j;
}

std::string comparison_table(const KernelMetricsReport& k) {
  std::string out;
  const auto row = [&out](const char* label, const Delta& d) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-16s %14.4g %14.4g %+9.1f%%\n",
                  label, d.predicted, d.measured, d.rel_error() * 100.0);
    out += buf;
  };
  out += str_cat("[", k.kernel, "] model vs measured (one execution)\n");
  out += "  quantity              predicted       measured  rel.err\n";
  row("flops", k.delta.flops);
  row("tex_bytes", k.delta.tex_bytes);
  row("dram_read_bytes", k.delta.dram_read_bytes);
  row("dram_write_bytes", k.delta.dram_write_bytes);
  row("dram_bytes", k.delta.dram_bytes);
  row("shm_bytes", k.delta.shm_bytes);
  row("oi_dram", k.delta.oi_dram);
  row("oi_tex", k.delta.oi_tex);
  for (const auto& s : k.measured.stages) {
    char buf[220];
    std::snprintf(buf, sizeof(buf),
                  "  stage %-12s %10lld pts (%lld rim)  ws %lld B  "
                  "redundant %.2f  L2 hit %.2f  OI(dram) %.3f\n",
                  s.name.c_str(),
                  static_cast<long long>(s.computed_points()),
                  static_cast<long long>(s.rim_points),
                  static_cast<long long>(s.working_set_bytes),
                  s.redundant_load_fraction, s.l2_hit_rate, s.oi_dram());
    out += buf;
  }
  if (k.has_rank_correlation) {
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "  rank correlation (model vs measured, %zu candidates): "
                  "spearman=%.3f\n",
                  k.ranking.size(), k.rank_correlation);
    out += buf;
  }
  return out;
}

}  // namespace artemis::metrics
