# Empty dependencies file for halide_autoscheduler.
# This may be replaced when dependencies are built.
