file(REMOVE_RECURSE
  "CMakeFiles/model_consistency_test.dir/model_consistency_test.cpp.o"
  "CMakeFiles/model_consistency_test.dir/model_consistency_test.cpp.o.d"
  "model_consistency_test"
  "model_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
