#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace artemis::gpumodel {

/// Static description of a GPU device. Defaults model the NVIDIA Pascal
/// P100 used in the paper's evaluation (Section VIII-A). The per-level
/// bandwidths are derived from the paper's published machine-balance
/// ratios: alpha = 4.7 DP TFLOPS, alpha/beta_dram = 6.42,
/// alpha/beta_tex = 2.35, alpha/beta_shm = 0.49.
struct DeviceSpec {
  std::string name = "P100";

  // Execution resources.
  int num_sms = 56;
  int warp_size = 32;
  int max_threads_per_sm = 2048;
  int max_threads_per_block = 1024;
  int max_blocks_per_sm = 32;
  int regs_per_sm = 65536;
  int max_regs_per_thread = 255;    ///< hard nvcc limit (maxrregcount < 256)
  int reg_alloc_granularity = 2;    ///< registers rounded up to multiples

  // Memory resources.
  std::int64_t shmem_per_sm = 64 * 1024;
  std::int64_t shmem_per_block = 48 * 1024;
  std::int64_t l2_bytes = 4 * 1024 * 1024;
  int sector_bytes = 32;            ///< DRAM/L2 transaction granularity

  // Peak rates.
  double peak_dp_flops = 4.7e12;    ///< alpha
  double dram_bytes_per_s = 732e9;  ///< beta_dram = alpha / 6.42
  double tex_bytes_per_s = 2.0e12;  ///< beta_tex  = alpha / 2.35
  double shm_bytes_per_s = 9.6e12;  ///< beta_shm  = alpha / 0.49

  /// Machine balance alpha/beta for a level, in FLOP per byte.
  double balance_dram() const { return peak_dp_flops / dram_bytes_per_s; }
  double balance_tex() const { return peak_dp_flops / tex_bytes_per_s; }
  double balance_shm() const { return peak_dp_flops / shm_bytes_per_s; }
};

/// The paper's evaluation device.
DeviceSpec p100();

/// A Volta-class device (for portability experiments): more SMs, larger
/// shared memory per SM, higher bandwidth.
DeviceSpec v100();

/// A Kepler-class device (K40): fewer SMs, lower bandwidth, smaller L2,
/// and a much lower DP peak -- the balance point the older frameworks
/// (Overtile, early PPCG) were tuned for.
DeviceSpec k40();

/// An Ampere-class device (A100 SXM 80GB): HBM2e doubles DRAM bandwidth
/// over Volta while the DP vector peak grows more slowly, so the DRAM
/// balance point drops back toward Pascal's.
DeviceSpec a100();

/// A Hopper-class device (H100 SXM): HBM3 plus a large jump in DP vector
/// peak; the most compute-rich balance in the family.
DeviceSpec h100();

/// The whole modeled family, oldest to newest generation
/// (K40, P100, V100, A100, H100). Peaks and per-level bandwidths increase
/// strictly along this order; machine balances do not (they wobble with
/// each memory-technology jump), which is exactly why plans must be
/// re-tuned per device.
std::vector<DeviceSpec> device_family();

}  // namespace artemis::gpumodel
