#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "artemis/driver/context.hpp"
#include "artemis/service/protocol.hpp"

namespace artemis::service {

struct ServiceOptions {
  driver::ContextOptions context;
  /// Directory for per-request tuning journals (one
  /// `<plan_key>.wal` per tuned program, opened with resume so a
  /// restarted daemon picks up where a killed tune left off). "" = no
  /// write-ahead journaling of tunes.
  std::string journal_dir;
};

/// Service-lifetime counters, all monotonic. The dedup invariant tests
/// assert on `tuner_runs` (exactly one per distinct program however many
/// clients raced) and `dedup_coalesced` (how many requests piggybacked on
/// an identical in-flight tune).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;  ///< error responses produced
  std::uint64_t compile_calls = 0;
  std::uint64_t tune_calls = 0;
  std::uint64_t run_calls = 0;
  std::uint64_t stats_calls = 0;
  std::uint64_t shutdown_calls = 0;
  std::uint64_t plan_hits = 0;        ///< served straight from the store
  std::uint64_t tuner_runs = 0;       ///< misses that ran the optimizer
  std::uint64_t dedup_coalesced = 0;  ///< waited on an in-flight tune
};

/// The daemon's request dispatcher, independent of any transport: one
/// JSON request payload in, one JSON response payload out, never throwing
/// for client-caused failures (every rejection is a structured error
/// response). storage::FsCrash is the one exception deliberately let
/// through — a simulated machine death must kill the simulated daemon,
/// exactly like SIGKILL kills the real one.
///
/// Request dedup: tune requests are keyed by the content-addressed plan
/// key (canonical IR hash + device + tuner version). A key already
/// published in the plan store is served from it; a key with a tune in
/// flight makes the request wait for that tune's result instead of
/// starting a second evaluation; only a cold key runs the tuner. All
/// coalesced requests receive byte-identical plan bytes.
class ArtemisService {
 public:
  explicit ArtemisService(ServiceOptions opts);

  /// Dispatch one request payload (JSON text) to a response payload.
  /// Thread-safe: connections call this concurrently.
  std::string handle(const std::string& request_payload);

  /// Structured form of handle() for in-process callers and tests.
  Json handle_json(const Json& request);

  /// True once a shutdown request was accepted; the transport loop exits.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  ServiceStats stats_snapshot() const;
  driver::ArtemisContext& context() { return ctx_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  /// Result of one tune evaluation, shared between the evaluating request
  /// and every coalesced waiter.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    Json result;          ///< valid when ok
    std::string code;     ///< error code when !ok
    std::string message;  ///< error message when !ok
  };

  Json handle_payload(const std::string& request_payload);
  Json dispatch(const Request& req);
  Json do_compile(const Request& req);
  Json do_tune(const Request& req);
  Json do_run(const Request& req);
  Json do_stats(const Request& req);
  Json do_shutdown(const Request& req);

  /// Tune result payload from a durable record (store hit or fresh).
  static Json tune_result(const storage::PlanRecord& rec,
                          const std::string& plan_bytes, bool cached,
                          bool coalesced);

  /// The `source` param, or a bad_request error via exception.
  static std::string require_source(const Request& req);

  ServiceOptions opts_;
  driver::ArtemisContext ctx_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mu_;  ///< guards stats_ and inflight_
  ServiceStats stats_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
};

}  // namespace artemis::service
