#pragma once

#include <string>
#include <vector>

#include "artemis/common/json.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/metrics/metrics.hpp"

namespace artemis::metrics {

/// Schema version of the metrics JSON written by `artemisc --metrics`.
/// Bump on any breaking change to the layout; documented in
/// docs/OBSERVABILITY.md and validated by the CI metrics job.
inline constexpr int kMetricsVersion = 1;

/// One predicted-vs-observed quantity.
struct Delta {
  double predicted = 0;
  double measured = 0;
  /// Signed relative error (measured - predicted) / max(|predicted|,
  /// |measured|): bounded to [-1, 1], 0 when both sides are 0. Positive
  /// means the model under-predicts.
  double rel_error() const;
};

/// The model-vs-measured confrontation for one plan: every traffic level
/// and operational-intensity figure the roofline reasons about.
struct ModelVsMeasured {
  Delta flops;
  Delta tex_bytes;
  Delta dram_read_bytes;
  Delta dram_write_bytes;
  Delta dram_bytes;
  Delta shm_bytes;
  Delta oi_dram;
  Delta oi_tex;
};

/// Confront the analytic counters with the measured plan metrics.
ModelVsMeasured compare_counters(const gpumodel::Counters& predicted,
                                 const PlanMetrics& measured);

/// Spearman rank correlation between two paired samples, with ties
/// assigned average ranks (Pearson correlation on the rank vectors).
/// Returns 1 for n < 2 (a single candidate is trivially rank-consistent)
/// and 0 when either side has zero rank variance but the other does not.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

/// Measured-counters roofline: the time the device's peak rates need to
/// move the measured traffic (max over DRAM / tex / shm bandwidth and
/// compute). No GPU is in the loop, so this is the measured-side ranking
/// signal for rank correlation: it reranks candidates by what they were
/// *observed* to do rather than what the model predicted they would do.
double measured_roofline_s(const PlanMetrics& m,
                           const gpumodel::DeviceSpec& dev);

/// One tuning candidate in the rank-correlation table, best-model-rank
/// first.
struct RankEntry {
  std::string config;        ///< canonical serialization
  double model_time_s = 0;   ///< the tuner's ranking signal
  double measured_time_s = 0;  ///< measured_roofline_s on the rebuilt plan
};

/// Everything --metrics reports for one kernel of the chosen schedule.
struct KernelMetricsReport {
  std::string kernel;
  int invocations = 1;
  PlanMetrics measured;
  gpumodel::Counters predicted;
  ModelVsMeasured delta;
  /// Leaderboard candidates reranked by measured roofline time; empty
  /// when the kernel was not tuned (or the leaderboard had one entry).
  std::vector<RankEntry> ranking;
  double rank_correlation = 0;
  bool has_rank_correlation = false;
};

/// Schema-versioned metrics document (docs/OBSERVABILITY.md).
Json metrics_json(const std::string& source, const std::string& strategy,
                  const std::string& device,
                  const std::vector<KernelMetricsReport>& kernels);

/// The JSON object for one kernel (also embedded in the run report's
/// "metrics" section).
Json kernel_metrics_json(const KernelMetricsReport& k);

/// Human-readable model-vs-measured table for one kernel (what --metrics
/// prints).
std::string comparison_table(const KernelMetricsReport& k);

}  // namespace artemis::metrics
