#pragma once

#include "artemis/codegen/plan.hpp"
#include "artemis/sim/bytecode.hpp"
#include "artemis/sim/gridset.hpp"

namespace artemis::sim {

/// Element-level counts gathered while executing a plan; used by tests to
/// cross-check the analytic performance model's traffic formulas.
struct ExecCounters {
  std::int64_t computed_points = 0;   ///< stencil applications incl. recompute
  std::int64_t skipped_points = 0;    ///< vetoed by the boundary guard
  std::int64_t global_read_elems = 0; ///< element reads from global arrays
  std::int64_t global_write_elems = 0;
  std::int64_t scratch_read_elems = 0;  ///< reads from fused internal buffers
  std::int64_t scratch_write_elems = 0;
  std::int64_t blocks = 0;
};

/// Which interpreter executes the plan's statement lists. Both produce
/// bit-identical grids, counters and hook traces; the tree walk survives
/// as the differential-testing oracle.
enum class SimEngine {
  Bytecode,  ///< compiled slot-resolved bytecode (default, fast)
  TreeWalk,  ///< per-point recursive evaluation via apply_stmts_at_point
};

/// Execution options. The global-access hook exists for trace-driven
/// cache validation (bench/cache_validation): it receives every
/// global-space element access (reads and committed writes) in a
/// deterministic single-threaded block order.
struct ExecOptions {
  /// Force single-threaded, block-id-ordered execution (implied by hook).
  bool serial = false;
  /// Worker count for the block sweep; 0 resolves to default_jobs().
  int jobs = 0;
  SimEngine engine = SimEngine::Bytecode;
  /// (array, z, y, x, is_write) for each global access.
  GlobalAccessHook global_hook;
};

/// Execute a kernel plan over real grids, faithfully reproducing the
/// generated code's block decomposition:
///
///  - the output domain is tiled exactly as the plan tiles it (spatial
///    tiles, serial streaming columns, or concurrent streaming chunks);
///  - fused stages compute over tiles expanded by their overlapped-tiling
///    expansion (plan.stage_expand), with internal arrays living in
///    zero-initialized block-local scratch (the shared-memory stand-in);
///  - external outputs commit only within the block's owned tile;
///  - a point is skipped when any read falls outside the domain (the CUDA
///    boundary guard), and arrays read-and-written with neighbor offsets
///    are snapshotted so all blocks observe pre-kernel values (see
///    needs_snapshot for the exact rule).
///
/// Each stage's statement list is compiled once into slot-resolved
/// bytecode (see bytecode.hpp) and blocks are swept in parallel over the
/// work-stealing TaskPool, with per-block counters reduced in block order
/// so the returned totals are deterministic at any job count.
///
/// Numerical results match run_stencil_reference exactly for identical
/// statement lists; geometry bugs (wrong halo, missing expansion) surface
/// as mismatches. Throws if an internal-array read escapes its scratch
/// region (a planner bug by construction).
ExecCounters execute_plan(const codegen::KernelPlan& plan, GridSet& gs,
                          const ExecOptions& opts = {});

}  // namespace artemis::sim
