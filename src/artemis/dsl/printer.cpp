#include "artemis/dsl/printer.hpp"

#include <map>

#include "artemis/common/str.hpp"

namespace artemis::dsl {

namespace {

std::string print_index(const ir::IndexExpr& ix,
                        const std::vector<std::string>& iters) {
  if (ix.is_const()) return std::to_string(ix.offset);
  std::string s = iters[static_cast<std::size_t>(ix.iter)];
  if (ix.offset > 0) s += "+" + std::to_string(ix.offset);
  if (ix.offset < 0) s += std::to_string(ix.offset);
  return s;
}

std::string print_pragma(const ir::PragmaInfo& p) {
  std::string out = "#pragma";
  bool any = false;
  if (p.stream_iter) {
    out += " stream " + *p.stream_iter;
    any = true;
  }
  if (!p.block.empty()) {
    std::vector<std::string> dims;
    for (auto b : p.block) dims.push_back(std::to_string(b));
    out += " block (" + join(dims, ",") + ")";
    any = true;
  }
  if (!p.unroll.empty()) {
    out += " unroll ";
    std::vector<std::string> items;
    for (const auto& [iter, f] : p.unroll) {
      items.push_back(iter + "=" + std::to_string(f));
    }
    out += join(items, ", ");
    any = true;
  }
  if (p.occupancy) {
    out += " occupancy " + format_double(*p.occupancy, 4);
    any = true;
  }
  return any ? out : std::string();
}

std::string print_resources(const ir::ResourceAssignments& r) {
  if (r.empty()) return {};
  std::map<ir::MemSpace, std::vector<std::string>> by_space;
  for (const auto& [name, space] : r.spaces) by_space[space].push_back(name);
  std::vector<std::string> clauses;
  for (const auto& [space, names] : by_space) {
    clauses.push_back(str_cat(ir::mem_space_name(space), " (",
                              join(names, ","), ")"));
  }
  return "  #assign " + join(clauses, ", ") + "\n";
}

void print_steps(const ir::Program& prog, const std::vector<ir::Step>& steps,
                 int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (const auto& step : steps) {
    switch (step.kind) {
      case ir::Step::Kind::Call:
        out += pad + step.call.callee + " (" + join(step.call.args, ", ") +
               ");\n";
        break;
      case ir::Step::Kind::Swap:
        out += pad + "swap (" + step.swap.a + ", " + step.swap.b + ");\n";
        break;
      case ir::Step::Kind::Iterate:
        out += pad + "iterate " + std::to_string(step.iterations) + " {\n";
        print_steps(prog, step.body, depth + 1, out);
        out += pad + "}\n";
        break;
    }
  }
}

}  // namespace

std::string print_stmt(const ir::Stmt& stmt,
                       const std::vector<std::string>& iterators) {
  std::string out;
  if (stmt.declares_local) {
    out = "double " + stmt.lhs_name + " = ";
  } else {
    out = stmt.lhs_name;
    for (const auto& ix : stmt.lhs_indices) {
      out += "[" + print_index(ix, iterators) + "]";
    }
    out += stmt.accumulate ? " += " : " = ";
  }
  out += ir::to_string(*stmt.rhs, iterators) + ";";
  return out;
}

std::string print_program(const ir::Program& prog) {
  std::string out;

  if (!prog.params.empty()) {
    std::vector<std::string> parts;
    for (const auto& p : prog.params) {
      parts.push_back(p.name + "=" + std::to_string(p.value));
    }
    out += "parameter " + join(parts, ", ") + ";\n";
  }
  if (!prog.iterators.empty()) {
    out += "iterator " + join(prog.iterators, ", ") + ";\n";
  }
  {
    std::vector<std::string> parts;
    for (const auto& a : prog.arrays) {
      parts.push_back(a.name + "[" + join(a.dims, ",") + "]");
    }
    for (const auto& s : prog.scalars) parts.push_back(s.name);
    if (!parts.empty()) out += "double " + join(parts, ", ") + ";\n";
  }
  if (!prog.copyin.empty()) {
    out += "copyin " + join(prog.copyin, ", ") + ";\n";
  }

  for (const auto& def : prog.stencils) {
    const std::string pragma = print_pragma(def.pragma);
    if (!pragma.empty()) out += pragma + "\n";
    out += "stencil " + def.name + " (" + join(def.params, ", ") + ") {\n";
    out += print_resources(def.resources);
    for (const auto& st : def.stmts) {
      out += "  " + print_stmt(st, prog.iterators) + "\n";
    }
    out += "}\n";
  }

  print_steps(prog, prog.steps, 0, out);

  if (!prog.copyout.empty()) {
    out += "copyout " + join(prog.copyout, ", ") + ";\n";
  }
  return out;
}

}  // namespace artemis::dsl
