// Simulator throughput: tree-walk vs compiled bytecode vs native SIMD.
//
// Measures stencil applications per second (points/sec) of the functional
// executor on paper kernels under four configurations:
//
//   treewalk   -- the per-point recursive interpreter (SimEngine::TreeWalk),
//                 one worker;
//   bytecode   -- the slot-resolved compiled engine (SimEngine::Bytecode),
//                 one worker;
//   native     -- the register-allocated SIMD interior engine
//                 (SimEngine::Native, strict mode), one worker;
//   parallel   -- the native engine with the work-stealing block sweep.
//
// All four produce bit-identical grids (cross-checked here); the
// differential test suite (bytecode_sim_test, native_engine_test) proves
// the stronger per-counter/per-trace equivalences. Results are written to
// a machine-readable JSON report (--out, default BENCH_sim.json) consumed
// by the CI smoke check, which asserts compiled >= tree-walk and native >=
// bytecode on every kernel.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/common/json.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/common/str.hpp"
#include "artemis/common/table.hpp"
#include "artemis/gpumodel/device.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/native/native.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

namespace {

struct RunOutcome {
  sim::GridSet gs;
  std::int64_t points = 0;  ///< computed stencil applications
  double seconds = 0;
};

/// Execute every plan of the program once with the given engine options.
RunOutcome run_once(const ir::Program& prog,
                    const std::vector<codegen::KernelPlan>& plans,
                    std::uint64_t seed, const sim::ExecOptions& opts) {
  RunOutcome r{sim::GridSet::from_program(prog, seed), 0, 0};
  std::size_t next_plan = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& step : ir::flatten_steps(prog)) {
    if (step.kind == ir::ExecStep::Kind::Swap) {
      r.gs.swap(step.swap.a, step.swap.b);
      continue;
    }
    const auto c = sim::execute_plan(plans.at(next_plan++), r.gs, opts);
    r.points += c.computed_points;
  }
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return r;
}

bool outputs_identical(const ir::Program& prog, const sim::GridSet& a,
                       const sim::GridSet& b) {
  for (const auto& out : prog.copyout) {
    const Grid3D& ga = a.grid(out);
    const Grid3D& gb = b.grid(out);
    if (std::memcmp(ga.raw().data(), gb.raw().data(),
                    ga.raw().size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

std::int64_t flag_int(int argc, char** argv, const char* name,
                      std::int64_t dflt) {
  const std::string prefix = str_cat("--", name, "=");
  for (int i = 1; i < argc; ++i) {
    if (starts_with(argv[i], prefix)) {
      return std::stoll(std::string(argv[i]).substr(prefix.size()));
    }
  }
  return dflt;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& dflt) {
  const std::string prefix = str_cat("--", name, "=");
  for (int i = 1; i < argc; ++i) {
    if (starts_with(argv[i], prefix)) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t extent = flag_int(argc, argv, "extent", 64);
  const int reps = static_cast<int>(flag_int(argc, argv, "reps", 3));
  const int jobs = static_cast<int>(flag_int(argc, argv, "jobs", 0));
  const std::string out_path = flag_str(argc, argv, "out", "BENCH_sim.json");
  const std::string kernels =
      flag_str(argc, argv, "kernels", "7pt-smoother,helmholtz,hypterm");

  const auto dev = gpumodel::p100();
  const int par_jobs = jobs > 0 ? jobs : default_jobs();

  TablePrinter table({"kernel", "points", "treewalk pts/s", "bytecode pts/s",
                      "native pts/s", "parallel pts/s", "compiled x",
                      "native x", "parallel x", "identical"});
  Json report = Json::object();
  report.set("extent", Json(extent));
  report.set("reps", Json(reps));
  report.set("parallel_jobs", Json(par_jobs));
  report.set("native_tier",
             Json(sim::native::tier_name(sim::native::active_tier())));
  Json rows = Json::array();
  bool all_identical = true;

  for (const auto& name : split(kernels, ',')) {
    // One time step keeps iterative kernels comparable to spatial ones.
    const ir::Program prog = stencils::benchmark_program(name, extent, 1);
    // Pin arrays to global memory: the wide SW4/CNS kernels exceed the
    // device's shared-memory budget under the default config, and the
    // functional engines are what this harness measures anyway.
    codegen::BuildOptions gopts;
    gopts.use_shared_memory = false;
    std::vector<codegen::KernelPlan> plans;
    for (const auto& step : ir::flatten_steps(prog)) {
      if (step.kind != ir::ExecStep::Kind::Stencil) continue;
      std::vector<std::string> args;
      for (const auto& p : step.stencil.def->params) {
        args.push_back(step.stencil.binding.at(p));
      }
      plans.push_back(codegen::build_plan_for_call(
          prog, ir::StencilCall{step.stencil.name, std::move(args)},
          codegen::KernelConfig{}, dev, gopts));
    }

    sim::ExecOptions treewalk;
    treewalk.engine = sim::SimEngine::TreeWalk;
    treewalk.jobs = 1;
    sim::ExecOptions bytecode;
    bytecode.engine = sim::SimEngine::Bytecode;
    bytecode.jobs = 1;
    sim::ExecOptions native = bytecode;
    native.engine = sim::SimEngine::Native;
    sim::ExecOptions parallel = native;
    parallel.jobs = par_jobs;

    const auto best = [&](const sim::ExecOptions& opts) {
      RunOutcome first = run_once(prog, plans, 42, opts);
      double best_pps = first.points / first.seconds;
      for (int r = 1; r < reps; ++r) {
        const RunOutcome o = run_once(prog, plans, 42, opts);
        best_pps = std::max(best_pps, o.points / o.seconds);
      }
      first.seconds = first.points / best_pps;
      return first;
    };

    const RunOutcome tw = best(treewalk);
    const RunOutcome bc = best(bytecode);
    const RunOutcome nat = best(native);
    const RunOutcome par = best(parallel);
    const double tw_pps = tw.points / tw.seconds;
    const double bc_pps = bc.points / bc.seconds;
    const double nat_pps = nat.points / nat.seconds;
    const double par_pps = par.points / par.seconds;
    const bool identical = outputs_identical(prog, tw.gs, bc.gs) &&
                           outputs_identical(prog, tw.gs, nat.gs) &&
                           outputs_identical(prog, tw.gs, par.gs);
    all_identical = all_identical && identical;

    table.add_row({name, std::to_string(tw.points),
                   format_double(tw_pps, 4), format_double(bc_pps, 4),
                   format_double(nat_pps, 4), format_double(par_pps, 4),
                   format_double(bc_pps / tw_pps, 3),
                   format_double(nat_pps / bc_pps, 3),
                   format_double(par_pps / tw_pps, 3),
                   identical ? "yes" : "NO"});

    Json row = Json::object();
    row.set("kernel", Json(name));
    row.set("points", Json(tw.points));
    row.set("engine", Json("native"));
    row.set("treewalk_pps", Json(tw_pps));
    row.set("bytecode_pps", Json(bc_pps));
    row.set("native_pps", Json(nat_pps));
    row.set("parallel_pps", Json(par_pps));
    row.set("speedup_compiled", Json(bc_pps / tw_pps));
    row.set("speedup_native", Json(nat_pps / bc_pps));
    row.set("speedup_parallel", Json(par_pps / tw_pps));
    row.set("outputs_identical", Json(identical));
    rows.push_back(std::move(row));
  }
  report.set("kernels", std::move(rows));

  std::ofstream(out_path) << report.dump(2) << "\n";
  std::printf("Simulator throughput (extent %lld^3, best of %d, %d jobs)\n\n%s\n",
              static_cast<long long>(extent), reps, par_jobs,
              table.to_string().c_str());
  std::printf("Report written to %s\n", out_path.c_str());
  if (!all_identical) {
    std::printf("ERROR: engines disagree on some kernel outputs\n");
    return 1;
  }
  return 0;
}
