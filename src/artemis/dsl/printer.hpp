#pragma once

#include <string>

#include "artemis/ir/program.hpp"

namespace artemis::dsl {

/// Re-emit an ir::Program as DSL source text. Used to materialize the
/// fission candidates that ARTEMIS "writes out as DSL specification files"
/// (Section VI-B) and for round-trip testing. The output re-parses to an
/// equivalent program.
std::string print_program(const ir::Program& prog);

/// Render a single statement as DSL text (no trailing newline).
std::string print_stmt(const ir::Stmt& stmt,
                       const std::vector<std::string>& iterators);

}  // namespace artemis::dsl
