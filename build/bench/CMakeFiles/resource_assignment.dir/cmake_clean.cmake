file(REMOVE_RECURSE
  "CMakeFiles/resource_assignment.dir/resource_assignment.cpp.o"
  "CMakeFiles/resource_assignment.dir/resource_assignment.cpp.o.d"
  "resource_assignment"
  "resource_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
