// Frontend robustness: the lexer/parser must reject arbitrary garbage and
// mutated programs with typed errors -- never crash, hang, or accept
// invalid input silently.

#include <gtest/gtest.h>

#include "artemis/common/check.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/stencils/random_stencil.hpp"

namespace artemis::dsl {
namespace {

TEST(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(0xFEED);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 \n\t(){}[];,=+-*/#._\"";
  for (int trial = 0; trial < 400; ++trial) {
    std::string input;
    const auto len = rng.uniform_int(0, 200);
    for (std::int64_t i = 0; i < len; ++i) {
      input.push_back(alphabet[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
    }
    try {
      parse(input);
      // Accepting is fine only if the input happened to be valid; re-print
      // to prove a Program actually materialized.
    } catch (const ParseError& e) {
      // Every syntactic rejection must carry a usable source position.
      EXPECT_GE(e.line(), 1) << input;
      EXPECT_GE(e.col(), 1) << input;
    } catch (const Error&) {
      // SemanticError (validation) is also an expected outcome.
    }
  }
}

TEST(ParserFuzz, MutatedValidProgramsNeverCrash) {
  Rng rng(0xBEEF);
  const std::string base = stencils::benchmark("7pt-smoother").dsl(32);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, "+*;[]()xq0"[rng.uniform_int(0, 9)]);
          break;
        default:
          mutated[pos] = "+*;[]()xq0"[rng.uniform_int(0, 9)];
          break;
      }
    }
    try {
      const ir::Program p = parse(mutated);
      // If the mutation survived parsing, the result must still be a
      // valid, printable program.
      const std::string printed = print_program(p);
      EXPECT_FALSE(printed.empty());
    } catch (const ParseError& e) {
      EXPECT_GE(e.line(), 1) << mutated;
      EXPECT_GE(e.col(), 1) << mutated;
    } catch (const Error&) {
    }
  }
}

TEST(ParserFuzz, MalformedDirectivesCarryAccuratePositions) {
  // Each case: (source, expected line, expected col of the diagnostic).
  struct Case {
    const char* src;
    int line;
    int col;
  };
  const Case cases[] = {
      // Dangling #pragma at end of input: points at the '#'.
      {"parameter N=8;\niterator i;\ndouble a[N];\n#pragma block (32)\n",
       4, 1},
      // #pragma followed by a non-stencil declaration: points at it.
      {"parameter N=8;\niterator i;\ndouble a[N];\n#pragma block (8)\n"
       "copyin a;\n",
       5, 1},
      // Misspelled clause is the offending non-stencil token.
      {"parameter N=8;\niterator i;\ndouble a[N];\n#pragma bloc (8)\n"
       "stencil s (B, A) { B[i] = A[i]; }\n",
       4, 9},
      // Top-level #assign: points at the '#'.
      {"parameter N=8;\niterator i;\ndouble a[N];\n#assign shmem (a)\n",
       4, 1},
      // Unknown directive: points at the '#'.
      {"parameter N=8;\n#foo bar\n", 2, 1},
      // Bad #assign space inside a stencil body: points at the name.
      {"parameter N=8;\niterator i;\ndouble a[N], b[N];\n"
       "stencil s (B, A) {\n  #assign texmem (A)\n  B[i] = A[i];\n}\n"
       "s (b, a);\n",
       5, 11},
      // occupancy with a non-numeric value: points at the value.
      {"parameter N=8;\niterator i;\ndouble a[N];\n#pragma occupancy high\n"
       "stencil s (B, A) { B[i] = A[i]; }\n",
       4, 19},
  };
  for (const auto& c : cases) {
    try {
      parse(c.src);
      FAIL() << "expected throw for:\n" << c.src;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), c.line) << c.src << "\ngot: " << e.what();
      EXPECT_EQ(e.col(), c.col) << c.src << "\ngot: " << e.what();
    }
  }
}

TEST(ParserFuzz, RandomProgramsAlwaysRoundTrip) {
  Rng rng(0x1234);
  for (int trial = 0; trial < 60; ++trial) {
    stencils::RandomStencilOptions opts;
    opts.dims = static_cast<int>(rng.uniform_int(1, 3));
    opts.max_order = static_cast<int>(rng.uniform_int(1, 4));
    opts.max_stages = static_cast<int>(rng.uniform_int(1, 3));
    opts.allow_calls = true;
    const ir::Program p = stencils::random_program(rng, opts);
    const std::string printed = print_program(p);
    const ir::Program reparsed = parse(printed);
    EXPECT_EQ(print_program(reparsed), printed) << printed;
  }
}

TEST(ParserFuzz, DeeplyNestedExpressionsParse) {
  // 200 nested parens: no recursion blowup at reasonable depths.
  std::string expr = "A[i]";
  for (int d = 0; d < 200; ++d) expr = "(" + expr + " + 1.0)";
  const std::string src =
      "parameter N=8;\niterator i;\ndouble a[N], b[N];\n"
      "stencil s (B, A) { B[i] = " +
      expr + "; }\ns (b, a);\n";
  EXPECT_NO_THROW(parse(src));
}

TEST(ParserFuzz, HugeProgramParses) {
  // Many stencils and calls: linear scaling, no quadratic blowups biting
  // at this size.
  std::string src = "parameter N=64;\niterator i;\ndouble a[N]";
  for (int s = 0; s < 120; ++s) src += ", v" + std::to_string(s) + "[N]";
  src += ";\ncopyin a;\n";
  for (int s = 0; s < 120; ++s) {
    src += "stencil f" + std::to_string(s) +
           " (O, A) { O[i] = A[i-1] + A[i+1]; }\n";
  }
  std::string prev = "a";
  for (int s = 0; s < 120; ++s) {
    const std::string out = "v" + std::to_string(s);
    src += "f" + std::to_string(s) + " (" + out + ", " + prev + ");\n";
    prev = out;
  }
  src += "copyout " + prev + ";\n";
  const ir::Program p = parse(src);
  EXPECT_EQ(p.stencils.size(), 120u);
  EXPECT_EQ(p.steps.size(), 120u);
}

}  // namespace
}  // namespace artemis::dsl
