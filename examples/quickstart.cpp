// Quickstart: the 60-second tour of ARTEMIS.
//
// 1. Write a stencil in the DSL (Listing 1 of the paper).
// 2. Parse it, build a kernel plan, and look at the generated CUDA.
// 3. Evaluate the plan on the modelled P100 (occupancy, counters, time).
// 4. Execute it functionally over real grids and check the result against
//    the reference interpreter.
// 5. Let the autotuner find a better configuration.

#include <cstdio>

#include "artemis/autotune/search.hpp"
#include "artemis/codegen/cuda_emitter.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/sim/reference.hpp"

using namespace artemis;

static const char* kSource = R"(
parameter L=64, M=64, N=64;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
)";

int main() {
  // 1-2: parse and plan with the pragma-derived configuration.
  const ir::Program prog = dsl::parse(kSource);
  const auto dev = gpumodel::p100();
  const codegen::KernelConfig cfg =
      codegen::config_from_pragma(prog, prog.stencils[0].pragma, 3);
  const codegen::KernelPlan plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev);

  std::printf("=== generated CUDA ===\n%s\n",
              codegen::emit_cuda(prog, plan).full().c_str());

  // 3: analytic evaluation (the nvprof + wall-clock stand-in).
  const auto ev = gpumodel::evaluate(plan, dev);
  std::printf("=== modelled execution ===\n");
  std::printf("config:        %s\n", cfg.to_string().c_str());
  std::printf("registers:     %d/thread (est)\n", ev.regs.total);
  std::printf("occupancy:     %.0f%% (%s-limited)\n",
              ev.occupancy.fraction * 100,
              gpumodel::limiter_name(ev.occupancy.limiter));
  std::printf("OI dram/tex/shm: %.2f / %.2f / %.2f\n",
              ev.counters.oi_dram(), ev.counters.oi_tex(),
              ev.counters.oi_shm());
  std::printf("time:          %.3f ms  (%.3f TFLOPS), bound: %s\n",
              ev.time_s * 1e3, ev.tflops(), gpumodel::bound_name(ev.bound));

  // 4: functional execution vs the reference interpreter.
  sim::GridSet ref = sim::GridSet::from_program(prog, /*seed=*/42);
  sim::GridSet tiled = ref.clone();
  sim::run_program_reference(prog, ref);
  const auto counters = sim::execute_plan(plan, tiled);
  const double diff =
      Grid3D::max_abs_diff(ref.grid("out"), tiled.grid("out"));
  std::printf("\n=== functional check ===\n");
  std::printf("computed %lld points across %lld blocks, max |diff| vs "
              "reference = %g\n",
              static_cast<long long>(counters.computed_points),
              static_cast<long long>(counters.blocks), diff);

  // 5: autotune.
  const autotune::PlanFactory factory =
      [&prog, &dev](const codegen::KernelConfig& c) {
        return codegen::build_plan_for_call(prog, prog.steps[0].call, c,
                                            dev);
      };
  const auto tuned = autotune::hierarchical_tune(factory, cfg, dev);
  std::printf("\n=== autotuned ===\n");
  std::printf("explored %d configs (%d spilling budgets skipped)\n",
              tuned.total_evaluated(), tuned.skipped_spilling);
  std::printf("best: %s\n  -> %.3f TFLOPS (%.2fx over the pragma "
              "baseline)\n",
              tuned.best.config.to_string().c_str(),
              tuned.best.eval.tflops(),
              ev.time_s / tuned.best.eval.time_s);
  return diff == 0.0 ? 0 : 1;
}
