#pragma once

#include <map>
#include <string>
#include <vector>

#include "artemis/telemetry/telemetry.hpp"

namespace artemis::telemetry {

/// Render events as a Chrome trace-event JSON array (the format consumed
/// by chrome://tracing and Perfetto): spans become "X" complete events,
/// instants become "i", and every counter is appended as one "C" sample.
/// Timestamps are microseconds (Chrome's unit); attrs become "args".
Json chrome_trace(const std::vector<Event>& events,
                  const std::map<std::string, std::int64_t>& counters);

/// The human-readable sink: an indented span tree per thread with
/// durations and a counter table, for terminal inspection without a trace
/// viewer.
std::string summary_text(const std::vector<Event>& events,
                         const std::map<std::string, std::int64_t>& counters);

/// Write `content` to `path`; returns false (without throwing) when the
/// file cannot be opened.
bool write_file(const std::string& path, const std::string& content);

}  // namespace artemis::telemetry
