file(REMOVE_RECURSE
  "CMakeFiles/tuning_cost.dir/tuning_cost.cpp.o"
  "CMakeFiles/tuning_cost.dir/tuning_cost.cpp.o.d"
  "tuning_cost"
  "tuning_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
