// The verification harness must itself be trustworthy: properties pass
// on the known-good paper kernels, the shrinker actually minimizes, the
// corpus round-trips through disk, and the differential oracle detects
// corruption rather than vacuously agreeing.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "artemis/common/rng.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/dsl/printer.hpp"
#include "artemis/verify/corpus.hpp"
#include "artemis/verify/oracle.hpp"
#include "artemis/verify/shrink.hpp"
#include "artemis/verify/verify.hpp"
#include "test_programs.hpp"

namespace artemis::verify {
namespace {

using testing::kDagDsl;
using testing::kJacobiDsl;
using testing::kJacobiIterativeDsl;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("artemis-verify-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(VerifyProperties, NamedProgramsPassEveryFamily) {
  const char* sources[] = {kJacobiDsl, kJacobiIterativeDsl, kDagDsl};
  for (const char* src : sources) {
    const ir::Program prog = dsl::parse(src);
    for (Property p : all_properties()) {
      const CheckResult r = check_property(p, prog, 7);
      EXPECT_TRUE(r.ok) << property_name(p) << ": " << r.detail;
    }
  }
}

TEST(VerifyProperties, NamesRoundTrip) {
  for (Property p : all_properties()) {
    const auto back = property_by_name(property_name(p));
    ASSERT_TRUE(back.has_value()) << property_name(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(property_by_name("no-such-family").has_value());
}

TEST(VerifyShrink, MinimizesToTheFailureKernel) {
  // Synthetic failure: "some statement reads at offset -3". The shrinker
  // should strip the program down to (nearly) just that access.
  const ir::Program big = dsl::parse(R"(
    parameter L=16, M=16, N=16;
    iterator k, j, i;
    double a[L,M,N], t[L,M,N], o[L,M,N], w[N], s;
    copyin a, w, s;
    #pragma block (16,8) unroll j=2
    stencil f (T, A, W, s) {
      #assign shmem (A)
      double c = s * 2.0;
      T[k][j][i] = c * (A[k][j][i-3] + A[k][j][i+1] + W[i]);
      T[k][j][i] += A[k][j-1][i];
    }
    stencil g (O, T) {
      O[k][j][i] = T[k][j][i] + T[k-1][j][i] + T[k+1][j][i];
    }
    f (t, a, w, s);
    g (o, t);
    copyout o;
  )");
  const auto has_minus3 = [](const ir::Program& p) {
    for (const auto& def : p.stencils) {
      for (const auto& stmt : def.stmts) {
        bool found = false;
        ir::visit(*stmt.rhs, [&](const ir::Expr& e) {
          if (e.kind != ir::ExprKind::ArrayRef) return;
          for (const auto& idx : e.indices) {
            if (idx.offset == -3) found = true;
          }
        });
        if (found) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(has_minus3(big));
  ShrinkStats stats;
  const ir::Program small = shrink_program(big, has_minus3, {}, &stats);
  EXPECT_TRUE(has_minus3(small));
  EXPECT_GT(stats.rounds, 0);
  // The unrelated second stage must be gone and the failing stencil
  // reduced to a single statement.
  EXPECT_EQ(small.stencils.size(), 1u);
  ASSERT_EQ(small.stencils[0].stmts.size(), 1u);
  // Extents shrink below the original 16.
  for (const auto& param : small.params) EXPECT_LE(param.value, 8);
  // The minimized program is still a valid, printable program.
  EXPECT_NO_THROW(dsl::parse(dsl::print_program(small)));
}

TEST(VerifyCorpus, WriteLoadReplayRoundTrip) {
  TempDir dir;
  const ir::Program prog = dsl::parse(kDagDsl);
  const std::string path =
      write_reproducer(dir.str(), Property::EngineEquivalence, 99,
                       "detail line\nwith a newline", prog);
  EXPECT_NE(path.find("engine-equivalence-99.dsl"), std::string::npos);

  const auto entries = load_corpus(dir.str());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].property, Property::EngineEquivalence);
  EXPECT_EQ(entries[0].seed, 99u);
  // The detail was sanitized to one line.
  EXPECT_EQ(entries[0].detail.find('\n'), std::string::npos);

  const CheckResult r = replay_entry(entries[0]);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(VerifyCorpus, MalformedHeaderFailsLoudly) {
  TempDir dir;
  {
    std::ofstream out(dir.str() + "/broken.dsl");
    out << "// not a reproducer header\nparameter N=8;\n";
  }
  const auto entries = load_corpus(dir.str());
  ASSERT_EQ(entries.size(), 1u);
  const CheckResult r = replay_entry(entries[0]);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("broken.dsl"), std::string::npos);
}

TEST(VerifyOracle, GridsDiffDetectsCorruption) {
  const ir::Program prog = dsl::parse(kDagDsl);
  Rng rng(5);
  const auto cfg = random_config(rng, 3);
  RunResult a = run_program_plans(prog, cfg, /*fuse=*/false, 11,
                                  sim::SimEngine::TreeWalk, 1, false);
  RunResult b = run_program_plans(prog, cfg, /*fuse=*/false, 11,
                                  sim::SimEngine::Bytecode, 1, false);
  EXPECT_EQ(grids_diff(a.gs, b.gs), "");
  b.gs.grid("out").at(5, 5, 5) += 1e-13;
  const std::string diff = grids_diff(a.gs, b.gs);
  EXPECT_NE(diff.find("out"), std::string::npos) << diff;
}

TEST(VerifyOracle, GridsDiffIsBitwise) {
  const ir::Program prog = dsl::parse(kDagDsl);
  sim::GridSet a = sim::GridSet::from_program(prog, 3);
  sim::GridSet b = a.clone();
  EXPECT_EQ(grids_diff(a, b), "");
  // -0.0 == 0.0 numerically, but the oracle must tell them apart.
  a.grid("out").at(0, 0, 0) = 0.0;
  b.grid("out").at(0, 0, 0) = -0.0;
  EXPECT_NE(grids_diff(a, b), "");
}

TEST(VerifyRun, SmallSweepIsClean) {
  TempDir dir;
  VerifyOptions opts;
  opts.seed_count = 4;
  opts.corpus_dir = dir.str();
  const VerifyReport rep = run_verify(opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  // 3 named kernels + 4 random programs.
  EXPECT_EQ(rep.programs_checked, 7);
  EXPECT_GT(rep.checks_run, 7);
  // A clean run writes nothing into the corpus.
  EXPECT_TRUE(load_corpus(dir.str()).empty());
}

TEST(VerifyRun, SingleProgramPath) {
  VerifyOptions opts;
  opts.properties = {Property::RoundTrip, Property::EngineEquivalence};
  const VerifyReport rep = verify_program(dsl::parse(kJacobiDsl), opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.programs_checked, 1);
  EXPECT_EQ(rep.checks_run, 2);
}

}  // namespace
}  // namespace artemis::verify
