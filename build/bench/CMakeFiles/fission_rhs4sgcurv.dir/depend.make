# Empty dependencies file for fission_rhs4sgcurv.
# This may be replaced when dependencies are built.
