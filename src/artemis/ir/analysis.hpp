#pragma once

#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::ir {

/// A stencil call with formals substituted by actual array/scalar names.
/// This is the unit the code generator, profiler and executor operate on.
struct BoundStencil {
  std::string name;                 ///< callee stencil name
  const StencilDef* def = nullptr;  ///< original definition (not owned)
  std::map<std::string, std::string> binding;  ///< formal -> actual
  std::vector<Stmt> stmts;          ///< statements with actual names
  ResourceAssignments resources;    ///< keyed by actual names
  PragmaInfo pragma;
};

/// Substitute actual argument names into the callee's statements. Local
/// temporaries are prefixed with `prefix` (when non-empty) so that multiple
/// bound stencils can be fused into one statement list without collisions.
BoundStencil bind_call(const Program& prog, const StencilCall& call,
                       const std::string& prefix = "");

/// One execution step after fully expanding iterate blocks.
struct ExecStep {
  enum class Kind { Stencil, Swap } kind = Kind::Stencil;
  BoundStencil stencil;  ///< Kind::Stencil
  SwapStmt swap;         ///< Kind::Swap
};

/// Expand Program::steps into a flat execution trace (iterate blocks are
/// unrolled `iterations` times). Used by the reference interpreter.
std::vector<ExecStep> flatten_steps(const Program& prog);

/// Distinct accesses to one array within a stencil.
struct ArrayAccessInfo {
  std::string array;
  int dims = 0;  ///< declared dimensionality (1..3)
  bool read = false;
  bool written = false;
  /// Distinct read index vectors (one entry per syntactically distinct
  /// access, e.g. A[k][j][i+1] and A[k][j][i-1] are two entries).
  std::vector<std::vector<IndexExpr>> read_offsets;
  /// Distinct write (LHS) index vectors. Together with read_offsets this
  /// decides whether kernel-style execution must snapshot a read-written
  /// array (see sim::needs_snapshot).
  std::vector<std::vector<IndexExpr>> write_offsets;
  /// Per-program-iterator read radius: max |offset| over read accesses
  /// whose index uses that iterator. Indexed by iterator position.
  std::array<int, 3> radius = {0, 0, 0};
};

/// Summary of one bound stencil used throughout planning and profiling.
struct StencilInfo {
  std::map<std::string, ArrayAccessInfo> arrays;
  std::vector<std::string> inputs;   ///< read-only or read-write arrays
  std::vector<std::string> outputs;  ///< written arrays
  std::set<std::string> scalars_read;
  std::int64_t flops_per_point = 0;  ///< total FLOPs per output point
  int order = 0;                     ///< max radius over all dims/arrays
  std::array<int, 3> radius = {0, 0, 0};  ///< per-iterator halo radius
  int num_io_arrays = 0;             ///< distinct arrays touched
  std::int64_t num_statements = 0;
};

/// Analyze a bound stencil against its program (for array dimensionality).
StencilInfo analyze(const Program& prog, const BoundStencil& bound);

/// Statement-level dependence graph within one stencil (used by
/// decomposition, retiming and fission). edges[i] lists statements that
/// depend on statement i (RAW through local temps or arrays).
struct StmtGraph {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;

  int num_stmts() const { return static_cast<int>(succs.size()); }
  /// Topological order; statements are already in program order, which is
  /// a valid topological order for a legal stencil body.
  std::vector<int> topo_order() const;
};

StmtGraph build_stmt_graph(const std::vector<Stmt>& stmts);

/// Call-level producer/consumer DAG over a sequence of bound stencils:
/// edge a->b when b reads an array a writes. Used by fusion.
struct CallGraph {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
};

CallGraph build_call_graph(const std::vector<BoundStencil>& calls);

}  // namespace artemis::ir
