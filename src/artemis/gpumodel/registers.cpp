#include "artemis/gpumodel/registers.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "artemis/common/check.hpp"

namespace artemis::gpumodel {

namespace {

/// Shared per-point terms: locals + operand + scheduling pressure.
void per_point_terms(const std::vector<const std::vector<ir::Stmt>*>& lists,
                     RegisterEstimate& est) {
  std::set<std::string> locals;
  std::int64_t widest_stmt_reads = 0;
  std::int64_t flops = 0;
  for (const auto* stmts : lists) {
    for (const auto& st : *stmts) {
      if (st.declares_local) locals.insert(st.lhs_name);
      std::int64_t reads = 0;
      ir::visit(*st.rhs, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::ArrayRef) ++reads;
      });
      widest_stmt_reads = std::max(widest_stmt_reads, reads);
      flops += ir::flop_count(*st.rhs);
    }
  }
  est.locals = static_cast<int>(std::min<std::size_t>(locals.size(), 96));
  est.operands = static_cast<int>(
      std::min<std::int64_t>((widest_stmt_reads + 1) / 2, 48));
  est.scheduling =
      static_cast<int>(std::min<std::int64_t>(flops / 8, 320));
}

}  // namespace

int estimate_registers_for_stmts(const std::vector<ir::Stmt>& stmts) {
  RegisterEstimate est;
  est.base = 20;
  per_point_terms({&stmts}, est);
  return est.base + est.locals + est.operands + est.scheduling;
}

RegisterEstimate estimate_registers(const codegen::KernelPlan& plan) {
  using codegen::TilingScheme;
  using codegen::UnrollStrategy;

  RegisterEstimate est;
  est.base = 20;

  // Live scalar temporaries: all locals may be live simultaneously in the
  // worst case (SW4-style kernels compute dozens of mu/la combinations
  // before the accumulation statements consume them).
  std::vector<const std::vector<ir::Stmt>*> lists;
  for (const auto& stage : plan.stages) lists.push_back(&stage.stmts);
  per_point_terms(lists, est);

  const bool streaming = plan.config.tiling != TilingScheme::Spatial3D;
  const std::int64_t uprod = plan.config.unroll_product();
  const std::int64_t u_xy =
      static_cast<std::int64_t>(plan.config.unroll[0]) *
      plan.config.unroll[1];

  if (streaming && plan.dims == 3) {
    if (plan.retimed) {
      // Retiming replaces input register planes with per-output
      // accumulators spanning the stream window (Section III-B2).
      const int rz = plan.radius[2];
      est.accumulators = static_cast<int>(
          static_cast<std::int64_t>(plan.info.outputs.size()) *
          (2 * rz + 1) * u_xy);
    } else {
      // One register per +/- stream plane per streamed shared array
      // (Listing 2's in_reg_m1 / in_reg_p1), per unrolled output column.
      std::set<int> counted_groups;
      for (const auto& [name, pl] : plan.placement) {
        if (pl.space != ir::MemSpace::Shared && pl.space != ir::MemSpace::Reg) continue;
        if (pl.fold_group >= 0) {
          if (counted_groups.count(pl.fold_group)) continue;
          counted_groups.insert(pl.fold_group);
        }
        // Streaming pipelines fused stages, so each array needs register
        // planes only for its own sweep radius.
        const auto it = plan.info.arrays.find(name);
        const int rz =
            it != plan.info.arrays.end() ? it->second.radius[0] : 0;
        est.stream_planes += static_cast<int>(2 * rz * u_xy);
      }
    }
    if (plan.config.prefetch) {
      int shared_arrays = 0;
      for (const auto& [name, pl] : plan.placement) {
        if (pl.space == ir::MemSpace::Shared) ++shared_arrays;
      }
      est.prefetch = static_cast<int>(shared_arrays * u_xy);
    }
  }

  // Folding removes one live operand per folded-away buffer.
  for (const auto& group : plan.fold_groups) {
    est.fold_savings += static_cast<int>(group.size()) - 1;
  }

  // Unrolling multiplies the per-point working set. Blocked distribution
  // shares overlapping neighbor loads between adjacent outputs; cyclic
  // keeps fully disjoint working sets.
  est.unroll_scale =
      plan.config.unroll_strategy == UnrollStrategy::Blocked
          ? 1.0 + 0.55 * static_cast<double>(uprod - 1)
          : static_cast<double>(uprod);

  const double per_point =
      static_cast<double>(est.locals + est.operands + est.scheduling -
                          est.fold_savings);
  double total = est.base + per_point * est.unroll_scale +
                 est.stream_planes + est.accumulators + est.prefetch;
  total = std::clamp(total, 16.0, 1024.0);
  est.total = static_cast<int>(std::lround(total));
  return est;
}

}  // namespace artemis::gpumodel
