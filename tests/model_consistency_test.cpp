// Cross-checks between the analytic performance model and the functional
// executor: the two consume the same KernelPlan, so their element-level
// accounting must agree where they measure the same thing.

#include <gtest/gtest.h>

#include "artemis/codegen/plan_builder.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/sim/executor.hpp"
#include "artemis/stencils/benchmarks.hpp"
#include "artemis/stencils/random_stencil.hpp"
#include "test_programs.hpp"

namespace artemis {
namespace {

using codegen::BuildOptions;
using codegen::KernelConfig;
using codegen::TilingScheme;

class ConsistencyTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
};

TEST_F(ConsistencyTest, BlockCountsAgree) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  for (const auto& block : {std::array<int, 3>{4, 4, 4},
                            std::array<int, 3>{8, 4, 2},
                            std::array<int, 3>{16, 16, 1}}) {
    KernelConfig cfg;
    cfg.block = block;
    const auto plan =
        codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
    sim::GridSet gs = sim::GridSet::from_program(prog, 3);
    const auto exec = sim::execute_plan(plan, gs);
    const auto ev = gpumodel::evaluate(plan, dev_);
    EXPECT_EQ(exec.blocks, ev.counters.num_blocks)
        << cfg.to_string();
  }
}

TEST_F(ConsistencyTest, StreamingBlockCountsAgree) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  cfg.tiling = TilingScheme::StreamSerial;
  cfg.stream_axis = 2;
  cfg.block = {8, 4, 1};
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  sim::GridSet gs = sim::GridSet::from_program(prog, 3);
  const auto exec = sim::execute_plan(plan, gs);
  const auto ev = gpumodel::evaluate(plan, dev_);
  EXPECT_EQ(exec.blocks, ev.counters.num_blocks);
  EXPECT_EQ(exec.blocks, 2 * 4);  // 16/8 x 16/4, z streamed
}

TEST_F(ConsistencyTest, RecomputePointsMatchModelFlops) {
  // Fused two-stage DAG: the executor's computed_points (incl. halo
  // recompute) must equal the model's flops / flops-per-point accounting
  // to within the boundary-guard difference.
  const auto prog = dsl::parse(artemis::testing::kDagDsl);
  std::vector<ir::BoundStencil> stages;
  stages.push_back(ir::bind_call(prog, prog.steps[0].call, "a_"));
  stages.push_back(ir::bind_call(prog, prog.steps[1].call, "b_"));
  KernelConfig cfg;
  cfg.block = {4, 4, 2};
  const auto plan = codegen::build_plan(prog, stages, cfg, dev_);
  sim::GridSet gs = sim::GridSet::from_program(prog, 3);
  const auto exec = sim::execute_plan(plan, gs);
  const auto ev = gpumodel::evaluate(plan, dev_);

  // Model: region volumes per stage x blocks (no boundary clamping).
  std::int64_t model_points = 0;
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    std::int64_t region = 1;
    for (int a = 0; a < plan.dims; ++a) {
      region *= plan.tile_extent(a) +
                2 * plan.stage_expand[s][static_cast<std::size_t>(a)];
    }
    model_points += region;
  }
  model_points *= plan.num_blocks();
  const auto exec_points = exec.computed_points + exec.skipped_points;
  // The model slightly overcounts at domain boundaries (clamped regions).
  EXPECT_GE(model_points, exec_points);
  EXPECT_LT(static_cast<double>(model_points - exec_points) / model_points,
            0.35);
  EXPECT_GT(ev.counters.flops, ev.useful_flops);  // halo recompute exists
}

TEST_F(ConsistencyTest, GlobalWriteElementsMatchOutputVolume) {
  Rng rng(0xAB);
  for (int trial = 0; trial < 5; ++trial) {
    stencils::RandomStencilOptions opts;
    opts.dims = 3;
    opts.max_order = 2;
    const auto prog = stencils::random_program(rng, opts);
    KernelConfig cfg;
    cfg.block = {4, 4, 4};
    const auto plan =
        codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
    sim::GridSet gs = sim::GridSet::from_program(prog, 9);
    const auto exec = sim::execute_plan(plan, gs);
    // Each computed point commits its writes exactly once.
    EXPECT_GT(exec.global_write_elems, 0);
    EXPECT_EQ(exec.global_write_elems % exec.computed_points, 0u);
  }
}

TEST_F(ConsistencyTest, DeterministicEvaluation) {
  const auto prog = dsl::parse(artemis::testing::kJacobiDsl);
  KernelConfig cfg;
  const auto plan =
      codegen::build_plan_for_call(prog, prog.steps[0].call, cfg, dev_);
  const auto a = gpumodel::evaluate(plan, dev_);
  const auto b = gpumodel::evaluate(plan, dev_);
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.counters.dram_bytes(), b.counters.dram_bytes());
  EXPECT_EQ(a.counters.tex_bytes, b.counters.tex_bytes);
}

TEST_F(ConsistencyTest, V100FasterThanP100) {
  // Large enough domain that the 80-SM V100 is not tail-limited.
  const auto prog = stencils::benchmark_program("7pt-smoother", 256);
  (void)artemis::testing::kJacobiDsl;
  KernelConfig cfg;
  cfg.block = {32, 8, 4};
  const auto p = gpumodel::p100();
  const auto v = gpumodel::v100();
  const auto& call = prog.steps[0].body[0].call;
  const auto plan_p = codegen::build_plan_for_call(prog, call, cfg, p);
  const auto plan_v = codegen::build_plan_for_call(prog, call, cfg, v);
  EXPECT_LT(gpumodel::evaluate(plan_v, v).time_s,
            gpumodel::evaluate(plan_p, p).time_s);
}

}  // namespace
}  // namespace artemis
