#include "artemis/ir/program.hpp"

#include <algorithm>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::ir {

const char* mem_space_name(MemSpace m) {
  switch (m) {
    case MemSpace::Auto: return "auto";
    case MemSpace::Global: return "gmem";
    case MemSpace::Shared: return "shmem";
    case MemSpace::Reg: return "reg";
  }
  return "?";
}

std::int64_t Program::param_value(const std::string& name) const {
  for (const auto& p : params) {
    if (p.name == name) return p.value;
  }
  throw SemanticError(str_cat("unknown parameter '", name, "'"));
}

const ArrayDecl* Program::find_array(const std::string& name) const {
  for (const auto& a : arrays) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const ScalarDecl* Program::find_scalar(const std::string& name) const {
  for (const auto& s : scalars) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const StencilDef* Program::find_stencil(const std::string& name) const {
  for (const auto& s : stencils) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int Program::iterator_index(const std::string& name) const {
  for (std::size_t i = 0; i < iterators.size(); ++i) {
    if (iterators[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

void validate_expr(const Program& prog, const StencilDef& def,
                   const std::set<std::string>& locals, const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
      break;
    case ExprKind::ScalarRef: {
      const bool is_formal =
          std::find(def.params.begin(), def.params.end(), e.name) !=
          def.params.end();
      if (!is_formal && !locals.count(e.name) && !prog.find_scalar(e.name)) {
        throw SemanticError(str_cat("stencil '", def.name,
                                    "': undeclared scalar '", e.name, "'"));
      }
      break;
    }
    case ExprKind::ArrayRef: {
      const bool is_formal =
          std::find(def.params.begin(), def.params.end(), e.name) !=
          def.params.end();
      if (!is_formal && !prog.find_array(e.name)) {
        throw SemanticError(str_cat("stencil '", def.name,
                                    "': undeclared array '", e.name, "'"));
      }
      for (const auto& ix : e.indices) {
        if (!ix.is_const() &&
            ix.iter >= static_cast<int>(prog.iterators.size())) {
          throw SemanticError(str_cat("stencil '", def.name,
                                      "': index uses unknown iterator"));
        }
      }
      break;
    }
    case ExprKind::Unary:
    case ExprKind::Binary:
    case ExprKind::Call:
      for (const auto& a : e.args) validate_expr(prog, def, locals, *a);
      break;
  }
}

void validate_def(const Program& prog, const StencilDef& def) {
  std::set<std::string> formals(def.params.begin(), def.params.end());
  if (formals.size() != def.params.size()) {
    throw SemanticError(
        str_cat("stencil '", def.name, "': duplicate formal parameter"));
  }
  std::set<std::string> locals;
  bool wrote_array = false;
  for (const auto& st : def.stmts) {
    ARTEMIS_CHECK(st.rhs != nullptr);
    validate_expr(prog, def, locals, *st.rhs);
    if (st.declares_local) {
      if (!st.lhs_indices.empty()) {
        throw SemanticError(str_cat("stencil '", def.name,
                                    "': local temp with array indices"));
      }
      if (!locals.insert(st.lhs_name).second) {
        throw SemanticError(str_cat("stencil '", def.name,
                                    "': duplicate local temp '", st.lhs_name,
                                    "'"));
      }
    } else {
      if (st.lhs_indices.empty()) {
        throw SemanticError(str_cat("stencil '", def.name,
                                    "': assignment to scalar '", st.lhs_name,
                                    "' (use a local declaration)"));
      }
      if (!formals.count(st.lhs_name) && !prog.find_array(st.lhs_name)) {
        throw SemanticError(str_cat("stencil '", def.name,
                                    "': writes undeclared array '",
                                    st.lhs_name, "'"));
      }
      for (const auto& ix : st.lhs_indices) {
        if (ix.is_const() || ix.offset != 0) {
          throw SemanticError(
              str_cat("stencil '", def.name,
                      "': output must be written at the center point"));
        }
      }
      wrote_array = true;
    }
  }
  if (!wrote_array) {
    throw SemanticError(
        str_cat("stencil '", def.name, "': writes no output array"));
  }
  for (const auto& [name, space] : def.resources.spaces) {
    (void)space;
    if (!formals.count(name)) {
      throw SemanticError(str_cat("stencil '", def.name, "': #assign names '",
                                  name, "' which is not a formal parameter"));
    }
  }
}

void validate_steps(const Program& prog, const std::vector<Step>& steps,
                    bool inside_iterate) {
  for (const auto& step : steps) {
    switch (step.kind) {
      case Step::Kind::Call: {
        const StencilDef* def = prog.find_stencil(step.call.callee);
        if (!def) {
          throw SemanticError(
              str_cat("call to undefined stencil '", step.call.callee, "'"));
        }
        if (def->params.size() != step.call.args.size()) {
          throw SemanticError(str_cat(
              "call to '", step.call.callee, "' passes ",
              step.call.args.size(), " arguments, expected ",
              def->params.size()));
        }
        for (const auto& arg : step.call.args) {
          if (!prog.find_array(arg) && !prog.find_scalar(arg)) {
            throw SemanticError(str_cat("call to '", step.call.callee,
                                        "': undeclared argument '", arg, "'"));
          }
        }
        break;
      }
      case Step::Kind::Swap: {
        if (!inside_iterate) {
          throw SemanticError("swap(...) only allowed inside iterate blocks");
        }
        const ArrayDecl* a = prog.find_array(step.swap.a);
        const ArrayDecl* b = prog.find_array(step.swap.b);
        if (!a || !b) throw SemanticError("swap of undeclared array");
        if (a->dims != b->dims) {
          throw SemanticError(
              str_cat("swap(", step.swap.a, ", ", step.swap.b,
                      "): arrays have different shapes"));
        }
        break;
      }
      case Step::Kind::Iterate: {
        if (step.iterations < 1) {
          throw SemanticError("iterate count must be >= 1");
        }
        if (inside_iterate) {
          throw SemanticError("nested iterate blocks are not supported");
        }
        validate_steps(prog, step.body, /*inside_iterate=*/true);
        break;
      }
    }
  }
}

}  // namespace

void validate(const Program& prog) {
  std::set<std::string> names;
  for (const auto& p : prog.params) {
    if (p.value < 1) {
      throw SemanticError(str_cat("parameter '", p.name, "' must be >= 1"));
    }
    if (!names.insert(p.name).second) {
      throw SemanticError(str_cat("duplicate declaration '", p.name, "'"));
    }
  }
  for (const auto& it : prog.iterators) {
    if (!names.insert(it).second) {
      throw SemanticError(str_cat("duplicate declaration '", it, "'"));
    }
  }
  if (prog.iterators.empty() || prog.iterators.size() > 3) {
    throw SemanticError("programs must declare 1 to 3 iterators");
  }
  for (const auto& a : prog.arrays) {
    if (!names.insert(a.name).second) {
      throw SemanticError(str_cat("duplicate declaration '", a.name, "'"));
    }
    if (a.dims.empty() || a.dims.size() > prog.iterators.size()) {
      throw SemanticError(
          str_cat("array '", a.name, "' has unsupported dimensionality"));
    }
    for (const auto& d : a.dims) prog.param_value(d);  // throws if unknown
  }
  for (const auto& s : prog.scalars) {
    if (!names.insert(s.name).second) {
      throw SemanticError(str_cat("duplicate declaration '", s.name, "'"));
    }
  }
  for (const auto& io : prog.copyin) {
    if (!prog.find_array(io) && !prog.find_scalar(io)) {
      throw SemanticError(str_cat("copyin of undeclared '", io, "'"));
    }
  }
  for (const auto& io : prog.copyout) {
    if (!prog.find_array(io)) {
      throw SemanticError(str_cat("copyout of undeclared array '", io, "'"));
    }
  }
  std::set<std::string> stencil_names;
  for (const auto& def : prog.stencils) {
    if (!stencil_names.insert(def.name).second) {
      throw SemanticError(str_cat("duplicate stencil '", def.name, "'"));
    }
    validate_def(prog, def);
  }
  validate_steps(prog, prog.steps, /*inside_iterate=*/false);
}

}  // namespace artemis::ir
