#include <gtest/gtest.h>

#include "artemis/dsl/parser.hpp"
#include "artemis/sim/gridset.hpp"

namespace artemis::sim {
namespace {

const char* kProg = R"(
  parameter L=4, M=6, N=8;
  iterator k, j, i;
  double a[L,M,N], b[L,M,N], w[N], line[M], c, d;
  copyin a, w, c;
  stencil s (B, A, c) { B[k][j][i] = c * A[k][j][i]; }
  s (b, a, c);
  copyout b;
)";

TEST(GridSet, ExtentsOfMapsTrailingAxes) {
  const auto prog = dsl::parse(kProg);
  EXPECT_EQ(extents_of(prog, *prog.find_array("a")), (Extents{4, 6, 8}));
  EXPECT_EQ(extents_of(prog, *prog.find_array("w")), (Extents{1, 1, 8}));
  EXPECT_EQ(extents_of(prog, *prog.find_array("line")), (Extents{1, 1, 6}));
}

TEST(GridSet, CopyinArraysGetRandomContents) {
  const auto prog = dsl::parse(kProg);
  const GridSet gs = GridSet::from_program(prog, 11);
  double sum_a = 0;
  for (const double v : gs.grid("a").raw()) sum_a += std::abs(v);
  EXPECT_GT(sum_a, 0.0);
  // Non-copyin arrays are zero.
  for (const double v : gs.grid("b").raw()) EXPECT_EQ(v, 0.0);
  // Copyin scalars in [0.5, 1.5]; others zero.
  EXPECT_GE(gs.scalar("c"), 0.5);
  EXPECT_LE(gs.scalar("c"), 1.5);
  EXPECT_EQ(gs.scalar("d"), 0.0);
}

TEST(GridSet, SeedDeterminism) {
  const auto prog = dsl::parse(kProg);
  const GridSet g1 = GridSet::from_program(prog, 42);
  const GridSet g2 = GridSet::from_program(prog, 42);
  const GridSet g3 = GridSet::from_program(prog, 43);
  EXPECT_EQ(Grid3D::max_abs_diff(g1.grid("a"), g2.grid("a")), 0.0);
  EXPECT_GT(Grid3D::max_abs_diff(g1.grid("a"), g3.grid("a")), 0.0);
}

TEST(GridSet, SwapExchangesBindings) {
  const auto prog = dsl::parse(kProg);
  GridSet gs = GridSet::from_program(prog, 1);
  gs.grid("a").at(0, 0, 0) = 7.0;
  gs.grid("b").at(0, 0, 0) = 9.0;
  gs.swap("a", "b");
  EXPECT_DOUBLE_EQ(gs.grid("a").at(0, 0, 0), 9.0);
  EXPECT_DOUBLE_EQ(gs.grid("b").at(0, 0, 0), 7.0);
  EXPECT_THROW(gs.swap("a", "nope"), Error);
}

TEST(GridSet, CloneIsDeep) {
  const auto prog = dsl::parse(kProg);
  GridSet gs = GridSet::from_program(prog, 1);
  GridSet copy = gs.clone();
  gs.grid("a").at(1, 1, 1) = 123.0;
  EXPECT_NE(copy.grid("a").at(1, 1, 1), 123.0);
}

TEST(GridSet, AddGridRejectsDuplicates) {
  const auto prog = dsl::parse(kProg);
  GridSet gs = GridSet::from_program(prog, 1);
  gs.add_grid("extra", {2, 2, 2}, 1.0);
  EXPECT_DOUBLE_EQ(gs.grid("extra").at(0, 0, 0), 1.0);
  EXPECT_THROW(gs.add_grid("extra", {2, 2, 2}), Error);
  EXPECT_THROW(gs.grid("missing"), Error);
  EXPECT_THROW(gs.scalar("missing"), Error);
}

TEST(GridSet, ZeroBoundaryShellsOnly) {
  Grid3D g({4, 4, 4}, 1.0);
  zero_boundary(g, 1);
  for (std::int64_t z = 0; z < 4; ++z) {
    for (std::int64_t y = 0; y < 4; ++y) {
      for (std::int64_t x = 0; x < 4; ++x) {
        const bool interior =
            z >= 1 && z < 3 && y >= 1 && y < 3 && x >= 1 && x < 3;
        EXPECT_DOUBLE_EQ(g.at(z, y, x), interior ? 1.0 : 0.0);
      }
    }
  }
}

TEST(GridSet, ZeroBoundarySkipsThinAxes) {
  // A 1x1xN grid must not be wiped entirely.
  Grid3D g({1, 1, 8}, 2.0);
  zero_boundary(g, 1);
  EXPECT_DOUBLE_EQ(g.at(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0, 4), 2.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0, 7), 0.0);
}

}  // namespace
}  // namespace artemis::sim
