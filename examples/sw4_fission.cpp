// Kernel fission for a register-bound SW4 kernel (Sections VI-B, VIII-D).
//
// rhs4sgcurv is a monolithic curvilinear elastic-wave kernel: ~1700 FLOPs
// per point over 13 arrays. Even at the 255-register ceiling the compiler
// must spill. ARTEMIS detects the pressure, writes fission candidates out
// as DSL (like Fig. 3c), optimizes them, and adopts the fastest schedule.

#include <cstdio>

#include "artemis/common/str.hpp"
#include "artemis/driver/driver.hpp"
#include "artemis/gpumodel/registers.hpp"
#include "artemis/stencils/benchmarks.hpp"

using namespace artemis;

int main() {
  const auto dev = gpumodel::p100();
  const auto prog = stencils::benchmark_program("rhs4sgcurv");

  // Examine the monolithic kernel first.
  {
    codegen::KernelConfig cfg;
    cfg.block = {16, 16, 1};
    codegen::BuildOptions opts;
    opts.use_shared_memory = false;
    const auto plan = codegen::build_plan_for_call(prog, prog.steps[0].call,
                                                   cfg, dev, opts);
    const auto est = gpumodel::estimate_registers(plan);
    std::printf("monolithic rhs4sgcurv:\n");
    std::printf("  %lld FLOPs/point over %d arrays, %lld statements\n",
                static_cast<long long>(plan.info.flops_per_point),
                plan.info.num_io_arrays,
                static_cast<long long>(plan.info.num_statements));
    std::printf("  register estimate: %d/thread "
                "(base %d + locals %d + operands %d + scheduling %d)\n",
                est.total, est.base, est.locals, est.operands,
                est.scheduling);
    std::printf("  => spills %d registers even at maxrregcount=255\n\n",
                est.spilled(255));
  }

  // Run the full pipeline: profiling flags the pressure, fission
  // candidates are generated, evaluated, and the winner adopted.
  const auto r = driver::optimize_program(prog, dev);

  std::printf("ARTEMIS pipeline hints:\n");
  for (const auto& h : r.hints) std::printf("  - %s\n", h.c_str());

  std::printf("\nchosen schedule: %zu kernel(s), %.3f TFLOPS total\n",
              r.kernels.size(), r.tflops);
  for (const auto& k : r.kernels) {
    std::printf("  %-16s %8.3f ms  %3d regs  %s\n", k.name.c_str(),
                k.eval.time_s * 1e3,
                std::min(k.eval.regs.total, k.config.max_registers),
                k.config.to_string().c_str());
  }

  if (!r.candidate_dsl.empty()) {
    std::printf("\nfirst generated fission candidate (DSL, Fig. 3c "
                "analogue):\n");
    // Print the stencil headers only; the full text is long.
    for (const auto& line : split(r.candidate_dsl[0], '\n')) {
      if (starts_with(trim(line), "stencil") ||
          starts_with(trim(line), "rhs4sgcurv_")) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }
  return 0;
}
