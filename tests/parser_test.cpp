#include <gtest/gtest.h>

#include "artemis/common/check.hpp"
#include "artemis/dsl/parser.hpp"
#include "test_programs.hpp"

namespace artemis::dsl {
namespace {

using testing::kDagDsl;
using testing::kJacobiDsl;
using testing::kJacobiIterativeDsl;

TEST(Parser, JacobiDeclarations) {
  const ir::Program p = parse(kJacobiDsl);
  ASSERT_EQ(p.params.size(), 3u);
  EXPECT_EQ(p.params[0].name, "L");
  EXPECT_EQ(p.params[0].value, 16);
  EXPECT_EQ(p.iterators, (std::vector<std::string>{"k", "j", "i"}));
  ASSERT_EQ(p.arrays.size(), 2u);
  EXPECT_EQ(p.arrays[0].name, "in");
  EXPECT_EQ(p.arrays[0].dims, (std::vector<std::string>{"L", "M", "N"}));
  ASSERT_EQ(p.scalars.size(), 3u);
  EXPECT_EQ(p.copyin.size(), 5u);
  EXPECT_EQ(p.copyout, (std::vector<std::string>{"out"}));
}

TEST(Parser, JacobiPragma) {
  const ir::Program p = parse(kJacobiDsl);
  ASSERT_EQ(p.stencils.size(), 1u);
  const auto& prag = p.stencils[0].pragma;
  ASSERT_TRUE(prag.stream_iter.has_value());
  EXPECT_EQ(*prag.stream_iter, "k");
  EXPECT_EQ(prag.block, (std::vector<std::int64_t>{32, 16}));
  ASSERT_EQ(prag.unroll.size(), 1u);
  EXPECT_EQ(prag.unroll.at("j"), 2);
  EXPECT_FALSE(prag.occupancy.has_value());
}

TEST(Parser, JacobiBody) {
  const ir::Program p = parse(kJacobiDsl);
  const auto& def = p.stencils[0];
  EXPECT_EQ(def.params,
            (std::vector<std::string>{"B", "A", "h2inv", "a", "b"}));
  ASSERT_EQ(def.stmts.size(), 2u);
  EXPECT_TRUE(def.stmts[0].declares_local);
  EXPECT_EQ(def.stmts[0].lhs_name, "c");
  EXPECT_FALSE(def.stmts[1].declares_local);
  EXPECT_EQ(def.stmts[1].lhs_name, "B");
  ASSERT_EQ(def.stmts[1].lhs_indices.size(), 3u);
  EXPECT_EQ(def.stmts[1].lhs_indices[0].iter, 0);
  EXPECT_EQ(def.stmts[1].lhs_indices[0].offset, 0);
}

TEST(Parser, CallStep) {
  const ir::Program p = parse(kJacobiDsl);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, ir::Step::Kind::Call);
  EXPECT_EQ(p.steps[0].call.callee, "jacobi");
  EXPECT_EQ(p.steps[0].call.args,
            (std::vector<std::string>{"out", "in", "h2inv", "a", "b"}));
}

TEST(Parser, IterateBlock) {
  const ir::Program p = parse(kJacobiIterativeDsl);
  ASSERT_EQ(p.steps.size(), 1u);
  const auto& it = p.steps[0];
  EXPECT_EQ(it.kind, ir::Step::Kind::Iterate);
  EXPECT_EQ(it.iterations, 4);
  ASSERT_EQ(it.body.size(), 2u);
  EXPECT_EQ(it.body[0].kind, ir::Step::Kind::Call);
  EXPECT_EQ(it.body[1].kind, ir::Step::Kind::Swap);
  EXPECT_EQ(it.body[1].swap.a, "out");
  EXPECT_EQ(it.body[1].swap.b, "in");
}

TEST(Parser, AssignDirective) {
  const ir::Program p = parse(kDagDsl);
  const ir::StencilDef* blurx = p.find_stencil("blurx");
  ASSERT_NE(blurx, nullptr);
  EXPECT_EQ(blurx->resources.lookup("U"), ir::MemSpace::Shared);
  EXPECT_EQ(blurx->resources.lookup("W"), ir::MemSpace::Global);
  EXPECT_EQ(blurx->resources.lookup("T"), ir::MemSpace::Auto);
}

TEST(Parser, MixedDimensionalityArrays) {
  const ir::Program p = parse(kDagDsl);
  const ir::ArrayDecl* w = p.find_array("w");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->dims, (std::vector<std::string>{"N"}));
}

TEST(Parser, NegativeAndConstantIndices) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i-2] + A[0] + A[i+1]; }
    s (b, a);
  )");
  const auto& rhs = *p.stencils[0].stmts[0].rhs;
  ASSERT_EQ(rhs.kind, ir::ExprKind::Binary);
}

TEST(Parser, IntrinsicCalls) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = sqrt(fabs(A[i])) + min(A[i], 2.0); }
    s (b, a);
  )");
  EXPECT_EQ(p.stencils.size(), 1u);
}

TEST(Parser, UnknownFunctionThrows) {
  EXPECT_THROW(parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = foo(A[i]); }
    s (b, a);
  )"),
               ParseError);
}

TEST(Parser, UndeclaredIteratorInIndexThrows) {
  EXPECT_THROW(parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[q]; }
    s (b, a);
  )"),
               ParseError);
}

TEST(Parser, DanglingPragmaThrowsWithPosition) {
  try {
    parse(R"(
    parameter N=8;
    iterator i;
    double a[N];
    #pragma block (32)
  )");
    FAIL() << "expected throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 5);  // points at the dangling #pragma itself
    EXPECT_NE(std::string(e.what()).find("stencil definition"),
              std::string::npos);
  }
}

TEST(Parser, PragmaBeforeNonStencilThrowsAtOffendingToken) {
  try {
    parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    #pragma block (32)
    copyin a;
    stencil s (B, A) { B[i] = A[i]; }
    s (b, a);
  )");
    FAIL() << "expected throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 6);  // points at 'copyin', not end of input
    EXPECT_NE(std::string(e.what()).find("copyin"), std::string::npos);
  }
}

TEST(Parser, TopLevelAssignThrowsWithPosition) {
  try {
    parse(R"(
    parameter N=8;
    iterator i;
    double a[N];
    #assign shmem (a)
  )");
    FAIL() << "expected throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("inside a stencil body"),
              std::string::npos);
  }
}

TEST(Parser, ArityMismatchThrows) {
  EXPECT_THROW(parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i]; }
    s (b);
  )"),
               SemanticError);
}

TEST(Parser, UndeclaredArgumentThrows) {
  EXPECT_THROW(parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i]; }
    s (b, zz);
  )"),
               SemanticError);
}

TEST(Parser, SwapOutsideIterateThrows) {
  EXPECT_THROW(parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i]; }
    swap (a, b);
  )"),
               SemanticError);
}

TEST(Parser, WritesOffCenterThrows) {
  EXPECT_THROW(parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i+1] = A[i]; }
    s (b, a);
  )"),
               SemanticError);
}

TEST(Parser, OccupancyClause) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    #pragma block (64) occupancy 0.5
    stencil s (B, A) { B[i] = A[i]; }
    s (b, a);
  )");
  ASSERT_TRUE(p.stencils[0].pragma.occupancy.has_value());
  EXPECT_DOUBLE_EQ(*p.stencils[0].pragma.occupancy, 0.5);
}

TEST(Parser, MultiIteratorUnroll) {
  const ir::Program p = parse(R"(
    parameter L=8, M=8, N=8;
    iterator k, j, i;
    double a[L,M,N], b[L,M,N];
    #pragma unroll j=2, i=4 block (32,4)
    stencil s (B, A) { B[k][j][i] = A[k][j][i]; }
    s (b, a);
  )");
  EXPECT_EQ(p.stencils[0].pragma.unroll.at("j"), 2);
  EXPECT_EQ(p.stencils[0].pragma.unroll.at("i"), 4);
  EXPECT_EQ(p.stencils[0].pragma.block, (std::vector<std::int64_t>{32, 4}));
}

TEST(Parser, AccumulateStatement) {
  const ir::Program p = parse(R"(
    parameter N=8;
    iterator i;
    double a[N], b[N];
    stencil s (B, A) { B[i] = A[i]; B[i] += A[i-1]; }
    s (b, a);
  )");
  EXPECT_TRUE(p.stencils[0].stmts[1].accumulate);
}

}  // namespace
}  // namespace artemis::dsl
