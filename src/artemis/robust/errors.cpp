#include "artemis/robust/errors.hpp"

namespace artemis::robust {

const char* error_class(const std::exception& e) {
  if (dynamic_cast<const EvalTimeout*>(&e) != nullptr) return "eval_timeout";
  if (dynamic_cast<const EvalCrash*>(&e) != nullptr) return "eval_crash";
  if (dynamic_cast<const MeasurementUnstable*>(&e) != nullptr) {
    return "measurement_unstable";
  }
  if (dynamic_cast<const PlanError*>(&e) != nullptr) return "plan_error";
  if (dynamic_cast<const Error*>(&e) != nullptr) return "error";
  return "exception";
}

}  // namespace artemis::robust
