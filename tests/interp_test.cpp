#include <gtest/gtest.h>

#include <cmath>

#include "artemis/dsl/parser.hpp"
#include "artemis/sim/gridset.hpp"
#include "artemis/sim/interp.hpp"
#include "artemis/sim/reference.hpp"

namespace artemis::sim {
namespace {

/// A reader over one named flat vector treated as a 1D grid of length n.
ArrayReader vector_reader(const std::string& name,
                          const std::vector<double>& data) {
  return [name, &data](const std::string& arr, std::int64_t z,
                       std::int64_t y,
                       std::int64_t x) -> std::optional<double> {
    if (arr != name || z != 0 || y != 0) return std::nullopt;
    if (x < 0 || x >= static_cast<std::int64_t>(data.size())) {
      return std::nullopt;
    }
    return data[static_cast<std::size_t>(x)];
  };
}

TEST(AccessCoords, MapsTrailingAxes) {
  // 3D access.
  EXPECT_EQ(access_coords({{0, 1}, {1, -2}, {2, 0}}, {10, 20, 30}),
            (std::array<std::int64_t, 3>{11, 18, 30}));
  // 1D access binds to x.
  EXPECT_EQ(access_coords({{2, 3}}, {10, 20, 30}),
            (std::array<std::int64_t, 3>{0, 0, 33}));
  // Constant index.
  EXPECT_EQ(access_coords({{-1, 7}}, {1}),
            (std::array<std::int64_t, 3>{0, 0, 7}));
}

TEST(EvalExpr, Arithmetic) {
  const std::map<std::string, double> scalars = {{"a", 3.0}, {"b", 2.0}};
  const std::map<std::string, double> locals;
  const std::vector<std::int64_t> itv = {0};
  const ArrayReader no_arrays = [](const std::string&, std::int64_t,
                                   std::int64_t,
                                   std::int64_t) -> std::optional<double> {
    return std::nullopt;
  };
  auto ev = [&](const char* src) {
    // Parse a one-statement program to get the expression.
    const auto prog = dsl::parse(
        std::string("parameter N=4;\niterator i;\ndouble o[N], a, b;\n"
                    "stencil s (O, a, b) { O[i] = ") +
        src + "; }\ns (o, a, b);\n");
    return eval_expr(*prog.stencils[0].stmts[0].rhs, scalars, locals, itv,
                     no_arrays);
  };
  EXPECT_DOUBLE_EQ(*ev("a + b"), 5.0);
  EXPECT_DOUBLE_EQ(*ev("a - b"), 1.0);
  EXPECT_DOUBLE_EQ(*ev("a * b"), 6.0);
  EXPECT_DOUBLE_EQ(*ev("a / b"), 1.5);
  EXPECT_DOUBLE_EQ(*ev("-a"), -3.0);
  EXPECT_DOUBLE_EQ(*ev("sqrt(a + 1.0)"), 2.0);
  EXPECT_DOUBLE_EQ(*ev("fabs(b - a)"), 1.0);
  EXPECT_DOUBLE_EQ(*ev("min(a, b)"), 2.0);
  EXPECT_DOUBLE_EQ(*ev("max(a, b)"), 3.0);
  EXPECT_DOUBLE_EQ(*ev("pow(b, a)"), 8.0);
  EXPECT_DOUBLE_EQ(*ev("exp(0.0)"), 1.0);
  EXPECT_DOUBLE_EQ(*ev("log(1.0)"), 0.0);
}

TEST(ApplyStmts, OutOfBoundsVetoesWholePoint) {
  const auto prog = dsl::parse(R"(
    parameter N=4;
    iterator i;
    double o[N], a[N];
    stencil s (O, A) {
      O[i] = A[i];
      O[i] += A[i+1];
    }
    s (o, a);
  )");
  const std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> o(4, -1.0);
  const std::map<std::string, double> scalars;

  const ArrayReader reader = [&](const std::string& arr, std::int64_t,
                                 std::int64_t,
                                 std::int64_t x) -> std::optional<double> {
    const auto& v = arr == "a" ? a : o;
    if (x < 0 || x >= 4) return std::nullopt;
    return v[static_cast<std::size_t>(x)];
  };
  const ArrayWriter writer = [&](const std::string&, std::int64_t,
                                 std::int64_t, std::int64_t x, double val) {
    o[static_cast<std::size_t>(x)] = val;
  };
  const auto& stmts = ir::bind_call(prog, prog.steps[0].call).stmts;
  EXPECT_TRUE(apply_stmts_at_point(stmts, scalars, {1}, reader, writer));
  EXPECT_DOUBLE_EQ(o[1], 2.0 + 3.0);
  // i = 3 reads A[4]: the whole point is skipped, and crucially the
  // first statement's write must NOT have been committed.
  EXPECT_FALSE(apply_stmts_at_point(stmts, scalars, {3}, reader, writer));
  EXPECT_DOUBLE_EQ(o[3], -1.0);
}

TEST(ApplyStmts, PendingWritesVisibleAtSamePoint) {
  // O[i] = 1; O[i] += O[i];  -> 2 (the += reads the pending value).
  const auto prog = dsl::parse(R"(
    parameter N=2;
    iterator i;
    double o[N];
    stencil s (O) {
      O[i] = 1.0;
      O[i] += O[i];
    }
    s (o);
  )");
  std::vector<double> o = {5.0, 5.0};
  const ArrayReader reader = vector_reader("o", o);
  const ArrayWriter writer = [&](const std::string&, std::int64_t,
                                 std::int64_t, std::int64_t x, double val) {
    o[static_cast<std::size_t>(x)] = val;
  };
  const auto& stmts = ir::bind_call(prog, prog.steps[0].call).stmts;
  ASSERT_TRUE(apply_stmts_at_point(stmts, {}, {0}, reader, writer));
  EXPECT_DOUBLE_EQ(o[0], 2.0);
}

TEST(ApplyStmts, LocalsShadowScalars) {
  const auto prog = dsl::parse(R"(
    parameter N=2;
    iterator i;
    double o[N], c;
    stencil s (O, c) {
      double t = c * 2.0;
      O[i] = t + c;
    }
    s (o, c);
  )");
  std::vector<double> o = {0, 0};
  const std::map<std::string, double> scalars = {{"c", 3.0}};
  const ArrayWriter writer = [&](const std::string&, std::int64_t,
                                 std::int64_t, std::int64_t x, double val) {
    o[static_cast<std::size_t>(x)] = val;
  };
  const auto& stmts = ir::bind_call(prog, prog.steps[0].call).stmts;
  ASSERT_TRUE(apply_stmts_at_point(stmts, scalars, {0},
                                   vector_reader("o", o), writer));
  EXPECT_DOUBLE_EQ(o[0], 9.0);
}

TEST(Reference, InPlaceNeighborReadsSnapshot) {
  // u[i] = u[i-1] + u[i+1]: GPU semantics read pre-kernel values
  // everywhere, so a sequential in-place sweep must snapshot.
  const auto prog = dsl::parse(R"(
    parameter N=5;
    iterator i;
    double u[N];
    copyin u;
    stencil s (U) { U[i] = U[i-1] + U[i+1]; }
    s (u);
    copyout u;
  )");
  GridSet gs = GridSet::from_program(prog, 0);
  auto& u = gs.grid("u");
  for (std::int64_t x = 0; x < 5; ++x) u.at(0, 0, x) = double(x + 1);
  run_program_reference(prog, gs);
  // With snapshotting: u = [1, 1+3, 2+4, 3+5, 5].
  EXPECT_DOUBLE_EQ(u.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(u.at(0, 0, 1), 4.0);
  EXPECT_DOUBLE_EQ(u.at(0, 0, 2), 6.0);
  EXPECT_DOUBLE_EQ(u.at(0, 0, 3), 8.0);
  EXPECT_DOUBLE_EQ(u.at(0, 0, 4), 5.0);
}

TEST(Reference, CenterOnlyReadWriteNeedsNoSnapshot) {
  const auto prog = dsl::parse(R"(
    parameter N=4;
    iterator i;
    double u[N], a[N];
    copyin u, a;
    stencil s (U, A) { U[i] += A[i]; }
    s (u, a);
    copyout u;
  )");
  GridSet gs = GridSet::from_program(prog, 0);
  auto& u = gs.grid("u");
  auto& a = gs.grid("a");
  for (std::int64_t x = 0; x < 4; ++x) {
    u.at(0, 0, x) = 1.0;
    a.at(0, 0, x) = double(x);
  }
  run_program_reference(prog, gs);
  for (std::int64_t x = 0; x < 4; ++x) {
    EXPECT_DOUBLE_EQ(u.at(0, 0, x), 1.0 + double(x));
  }
}

}  // namespace
}  // namespace artemis::sim
