#pragma once

#include <optional>
#include <string>
#include <vector>

#include "artemis/autotune/deep_tuning.hpp"
#include "artemis/autotune/search.hpp"
#include "artemis/codegen/plan_builder.hpp"
#include "artemis/gpumodel/perf_model.hpp"
#include "artemis/ir/program.hpp"
#include "artemis/profile/profiler.hpp"

namespace artemis::driver {

/// How a code generator attacks a program. ARTEMIS' own strategy enables
/// everything and lets profiling steer; the baseline presets encode the
/// documented restrictions of PPCG and STENCILGEN (Section VIII-F).
struct Strategy {
  std::string name = "artemis";

  bool use_shared_memory = true;
  bool allow_streaming = true;           ///< serial streaming available
  bool allow_time_fusion = true;         ///< deep tuning for iterate blocks
  bool allow_dag_fusion = true;          ///< fuse spatial producer chains
  /// Search over contiguous fusion partitions of the call chain with a
  /// dynamic program (the near-optimal "fusion forest" of Section VI-B)
  /// instead of always fusing maximally. STENCILGEN keeps maxfuse-only.
  bool partition_dag = true;
  bool allow_fission = true;             ///< fission candidates (VI-B)
  bool allow_retime = true;
  bool allow_fold = true;
  bool profile_guided = true;            ///< Section IV-A guidelines
  bool reject_mixed_dims = false;        ///< STENCILGEN limitation
  int max_time_tile = 6;

  autotune::TuneOptions tune;

  /// Multiplier on modelled kernel time, modelling code-quality overheads
  /// outside the plan space (e.g. PPCG's complex conditionals).
  double time_multiplier = 1.0;
};

Strategy artemis_strategy();
Strategy ppcg_strategy();
Strategy stencilgen_strategy();
/// The Halide GPU autoscheduler stand-in (Section I: "leading to a 2x
/// slowdown in performance for complex stencils"): heuristic tiling and
/// greedy maximal fusion, no streaming, no register-budget tuning, no
/// profiling feedback.
Strategy halide_auto_strategy();
/// The paper's ablation versions: tuned global-memory-only code, either
/// 3D-tiled ("global") or streaming ("global-stream").
Strategy global_strategy(bool streaming);

/// One kernel in the final schedule.
struct KernelChoice {
  std::string name;
  codegen::KernelConfig config;
  gpumodel::KernelEval eval;
  int invocations = 1;
  /// Final tuning leaderboard (best first) for the search that produced
  /// `config`, when the kernel was tuned. Observability only: --metrics
  /// reranks these candidates by measured traffic to compute the
  /// model-vs-measured rank correlation.
  std::vector<autotune::Candidate> leaderboard;
  double time_s() const { return eval.time_s * invocations; }
};

/// Result of optimizing a whole program under a strategy.
struct ProgramResult {
  std::string strategy;
  std::vector<KernelChoice> kernels;
  double time_s = 0;              ///< total, incl. launch overhead
  std::int64_t useful_flops = 0;  ///< per full program execution
  double tflops = 0;
  int kernel_launches = 0;

  std::vector<std::string> hints;          ///< profiling guidance (IV-A)
  std::vector<std::string> candidate_dsl;  ///< emitted fission candidates
  std::optional<autotune::DeepTuneResult> deep_tuning;  ///< iterative only
  std::vector<int> fusion_schedule;        ///< chosen tiles for T
};

/// Optimize a program end-to-end (Section VII): derive a baseline from
/// the DSL pragmas, autotune, profile the winner, follow the Section IV-A
/// guidelines (switch memory versions, explore fusion degree via deep
/// tuning, emit and evaluate fission candidates under register pressure),
/// and return the best multi-kernel schedule with its modelled time.
/// Throws artemis::Error when the strategy cannot handle the program
/// (e.g. STENCILGEN with mixed-dimensionality arrays).
ProgramResult optimize_program(const ir::Program& prog,
                               const gpumodel::DeviceSpec& dev,
                               const gpumodel::ModelParams& params = {},
                               const Strategy& strategy = artemis_strategy());

}  // namespace artemis::driver
