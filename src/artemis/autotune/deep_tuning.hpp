#pragma once

#include "artemis/autotune/search.hpp"
#include "artemis/transform/fusion.hpp"

namespace artemis::autotune {

/// One tuned time-tiled version (x x 1) of an iterative stencil.
struct DeepTuneEntry {
  int time_tile = 1;                 ///< x
  TuneResult tuned;                  ///< tuned launch parameters
  profile::ProfileReport report;     ///< profiling of the best version
  double time_s = 0;                 ///< best modelled time per invocation
  double tflops = 0;                 ///< useful TFLOPS of the version
};

/// Result of deep tuning (Section VI-A): versions (1x1) .. (kx1), tuned
/// and profiled in order; exploration stops at the first version that is
/// no longer bandwidth-bound at DRAM, texture or shared memory (fusing
/// further cannot help) or that stops improving.
struct DeepTuneResult {
  std::vector<DeepTuneEntry> entries;
  /// The time tile size after which fusion stops paying off (the "cusp"
  /// circled in Fig. 4): index of the fastest per-step version.
  int tipping_point = 1;
};

struct DeepTuneOptions {
  int max_time_tile = 8;
  TuneOptions tune;
  /// Keep exploring one step past the profiler's stop signal to expose
  /// the cusp in the deep-tuning plot.
  bool explore_past_cusp = true;
};

/// Deep-tune an iterate block: for x = 1, 2, ... build the (x x 1) fused
/// kernel via transform::time_tile_iterate, autotune it, profile the
/// winner, and continue while the profiler still reports bandwidth
/// boundedness at some memory level. Per-step time is time_s / x.
DeepTuneResult deep_tune(const ir::Program& prog,
                         const ir::Step& iterate_step,
                         const gpumodel::DeviceSpec& dev,
                         const gpumodel::ModelParams& params = {},
                         const DeepTuneOptions& opts = {});

/// Optimal fusion schedule for T time iterations given the deep-tuned
/// versions: the dynamic program opt(T) = min_x f(x) + opt(T - x) over
/// recorded per-invocation times f(x). Returns the tile sizes whose sum
/// is T (e.g. {4,4,4,1} for T=13).
std::vector<int> fusion_schedule(const DeepTuneResult& result, int T);

/// Modelled execution time of a schedule (sum of f(x) over tiles).
double schedule_time(const DeepTuneResult& result,
                     const std::vector<int>& schedule);

}  // namespace artemis::autotune
