#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "artemis/ir/program.hpp"
#include "artemis/verify/verify.hpp"

namespace artemis::verify {

/// One checked-in reproducer: a minimized failing program plus the
/// property family and seed that exposed it. The on-disk format is a
/// plain .dsl file with a structured comment header, so every reproducer
/// parses directly with dsl::parse:
///
///   // artemis-verify reproducer
///   // property: engine-equivalence
///   // seed: 1234
///   // detail: tree-walk vs bytecode jobs=2: grid 'v0' differs ...
///   parameter N=8;
///   ...
struct CorpusEntry {
  std::string path;
  Property property = Property::RoundTrip;
  std::uint64_t seed = 0;
  std::string detail;
  std::string dsl_text;  ///< full file contents (header included)
};

/// Write a reproducer into `dir` (created if needed). The filename is
/// <property>-<seed>.dsl; an existing file is overwritten. Returns the
/// path written.
std::string write_reproducer(const std::string& dir, Property property,
                             std::uint64_t seed, const std::string& detail,
                             const ir::Program& prog);

/// Load every *.dsl reproducer under `dir` (sorted by filename). Files
/// without a valid header are reported as a CorpusEntry whose detail
/// explains the problem and whose dsl_text is empty — replay_entry then
/// fails loudly instead of silently skipping them.
std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// Re-run the recorded property family against the reproducer. ok means
/// the historical bug stays fixed.
CheckResult replay_entry(const CorpusEntry& entry);

}  // namespace artemis::verify
