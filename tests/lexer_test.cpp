#include <gtest/gtest.h>

#include "artemis/common/check.hpp"
#include "artemis/dsl/lexer.hpp"

namespace artemis::dsl {
namespace {

std::vector<TokKind> kinds(const std::string& src) {
  std::vector<TokKind> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, Identifiers) {
  const auto toks = lex("abc _x x1_y");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "abc");
  EXPECT_EQ(toks[1].text, "_x");
  EXPECT_EQ(toks[2].text, "x1_y");
}

TEST(Lexer, IntegerAndFloatLiterals) {
  const auto toks = lex("42 3.5 1e3 2.5e-2 .5");
  EXPECT_EQ(toks[0].kind, TokKind::Integer);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokKind::Float);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokKind::Float);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].float_value, 0.5);
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kinds("()[]{},;=+-*/#"),
            (std::vector<TokKind>{
                TokKind::LParen, TokKind::RParen, TokKind::LBracket,
                TokKind::RBracket, TokKind::LBrace, TokKind::RBrace,
                TokKind::Comma, TokKind::Semicolon, TokKind::Assign,
                TokKind::Plus, TokKind::Minus, TokKind::Star, TokKind::Slash,
                TokKind::Hash, TokKind::End}));
}

TEST(Lexer, PlusAssign) {
  const auto toks = lex("a += b");
  EXPECT_EQ(toks[1].kind, TokKind::PlusAssign);
}

TEST(Lexer, LineComments) {
  const auto toks = lex("a // comment = ;\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, BlockComments) {
  const auto toks = lex("a /* multi\nline */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("a /* nope"), ParseError);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  bb\n    c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 5);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(lex("a @ b"), ParseError);
  try {
    lex("\n  @");
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.col(), 3);
  }
}

TEST(Lexer, MalformedFloatThrows) {
  EXPECT_THROW(lex("1e999999"), ParseError);
}

}  // namespace
}  // namespace artemis::dsl
