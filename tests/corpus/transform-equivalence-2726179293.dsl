// artemis-verify reproducer
// property: transform-equivalence
// seed: 2726179293
// detail: maxfuse: grid 'v1' interior max|diff| = 1.3829139205120675 (margin 6)
// fixed: the verifier compared fused output on a rim the fusion veto is
// allowed to change — on this extent-4 grid a scalar margin of 6 has no
// interior and the old helper fell back to comparing the full grid.
// Margins are now per-axis radii with a vacuous pass when the halo
// covers an axis.
parameter L=4, M=4, N=4;
iterator k, j, i;
double a0[L,M,N], v0[L,M,N], v1[L,M,N], c0, c1;
copyin a0, c0, c1;
stencil stage0 (OUT, IN, c0, c1) {
  OUT[k][j][i] = IN[k][j-3][i];
}
stencil stage1 (OUT, IN, c0, c1, IN0) {
  OUT[k][j][i] = IN0[k][j][i];
}
stage0 (v0, a0, c0, c1);
stage1 (v1, v0, c0, c1, a0);
copyout v1;
