file(REMOVE_RECURSE
  "CMakeFiles/fuzz_roundtrip.dir/fuzz_roundtrip.cpp.o"
  "CMakeFiles/fuzz_roundtrip.dir/fuzz_roundtrip.cpp.o.d"
  "fuzz_roundtrip"
  "fuzz_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
