#include "artemis/service/protocol.hpp"

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"

namespace artemis::service {

std::string encode_frame(const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw Error(str_cat("frame payload of ", payload.size(),
                        " bytes exceeds the ", kMaxFrameBytes,
                        "-byte limit"));
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_) return;
  buf_.append(data, n);
}

std::optional<std::string> FrameDecoder::next() {
  if (failed_ || buf_.size() < 4) return std::nullopt;
  const auto b = [this](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i]));
  };
  const std::uint32_t len = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (len > kMaxFrameBytes) {
    failed_ = true;
    error_ = str_cat("length prefix ", len, " exceeds the ", kMaxFrameBytes,
                     "-byte frame limit");
    buf_.clear();
    return std::nullopt;
  }
  if (buf_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::string payload = buf_.substr(4, len);
  buf_.erase(0, 4 + static_cast<std::size_t>(len));
  return payload;
}

std::optional<Request> parse_request(const std::string& payload,
                                     std::string* code, std::string* message,
                                     Json* id) {
  *code = "";
  *message = "";
  *id = Json();
  Json doc;
  try {
    doc = Json::parse(payload);
  } catch (const Error& e) {
    *code = errc::kBadJson;
    *message = e.what();
    return std::nullopt;
  }
  if (!doc.is_object()) {
    *code = errc::kBadRequest;
    *message = "request must be a JSON object";
    return std::nullopt;
  }
  if (doc.contains("id")) *id = doc["id"];
  if (!doc.contains("method") || !doc["method"].is_string()) {
    *code = errc::kBadRequest;
    *message = "request requires a string 'method'";
    return std::nullopt;
  }
  if (doc.contains("params") && !doc["params"].is_object()) {
    *code = errc::kBadRequest;
    *message = "'params' must be an object when present";
    return std::nullopt;
  }
  Request req;
  req.id = *id;
  req.method = doc["method"].as_string();
  if (doc.contains("params")) req.params = doc["params"];
  return req;
}

Json make_response(const Json& id, Json result) {
  Json out = Json::object();
  out.set("id", id);
  out.set("ok", Json(true));
  out.set("result", std::move(result));
  return out;
}

Json make_error(const Json& id, const std::string& code,
                const std::string& message) {
  Json err = Json::object();
  err.set("code", Json(code));
  err.set("message", Json(message));
  Json out = Json::object();
  out.set("id", id);
  out.set("ok", Json(false));
  out.set("error", std::move(err));
  return out;
}

}  // namespace artemis::service
