#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "artemis/ir/expr.hpp"

namespace artemis::ir {

/// GPU memory space an array can be assigned to by the resource mapper or
/// by the user through `#assign` (Section II-B1 of the paper).
enum class MemSpace {
  Auto,    ///< let the code generator decide
  Global,  ///< read straight from global memory (cached in L2/tex)
  Shared,  ///< staged in a shared-memory tile
  Reg,     ///< held in per-thread register planes (streaming only)
};

const char* mem_space_name(MemSpace m);

/// A single stencil statement. Either a local scalar temporary definition
/// (`double c = b * h2inv;`) or an array assignment
/// (`B[k][j][i] = ...;` / `B[k][j][i] += ...;`).
struct Stmt {
  bool declares_local = false;        ///< `double <lhs_name> = rhs;`
  bool accumulate = false;            ///< `lhs += rhs` (from decomposition)
  std::string lhs_name;               ///< array name or local temp name
  std::vector<IndexExpr> lhs_indices; ///< empty for scalar temps
  ExprPtr rhs;
};

/// User resource directives attached to a stencil definition via
/// `#assign shmem (a,b), gmem (c)`.
struct ResourceAssignments {
  std::map<std::string, MemSpace> spaces;  ///< by formal parameter name

  MemSpace lookup(const std::string& name) const {
    auto it = spaces.find(name);
    return it == spaces.end() ? MemSpace::Auto : it->second;
  }
  bool empty() const { return spaces.empty(); }
};

/// Auxiliary code-generation guidance from `#pragma` (Section II-A and
/// the occupancy extension of Section II-B2).
struct PragmaInfo {
  std::optional<std::string> stream_iter;  ///< streaming dimension name
  std::vector<std::int64_t> block;         ///< block size, outermost first
  std::map<std::string, std::int64_t> unroll;  ///< per-iterator unroll factor
  std::optional<double> occupancy;         ///< target occupancy in (0, 1]
};

/// A named stencil function: formal parameters plus a statement list.
struct StencilDef {
  std::string name;
  std::vector<std::string> params;  ///< formal names, bound at call sites
  std::vector<Stmt> stmts;
  ResourceAssignments resources;
  PragmaInfo pragma;  ///< pragma immediately preceding the definition
};

/// One invocation of a stencil function with actual array/scalar arguments.
struct StencilCall {
  std::string callee;
  std::vector<std::string> args;
};

/// `swap(a, b);` inside an iterate block: exchanges the storage bound to
/// two array names between time iterations (ping-pong buffering).
struct SwapStmt {
  std::string a;
  std::string b;
};

/// Top-level program step: either a call, a swap, or an iterate block.
struct Step {
  enum class Kind { Call, Swap, Iterate } kind = Kind::Call;
  StencilCall call;                 ///< Kind::Call
  SwapStmt swap;                    ///< Kind::Swap
  std::int64_t iterations = 0;      ///< Kind::Iterate
  std::vector<Step> body;           ///< Kind::Iterate
};

struct ParamDecl {
  std::string name;
  std::int64_t value = 0;
};

struct ArrayDecl {
  std::string name;
  std::vector<std::string> dims;  ///< parameter names, outermost first
};

struct ScalarDecl {
  std::string name;
};

/// A whole DSL program (Listing 1 plus ARTEMIS extensions).
struct Program {
  std::vector<ParamDecl> params;
  std::vector<std::string> iterators;  ///< outermost to innermost
  std::vector<ArrayDecl> arrays;
  std::vector<ScalarDecl> scalars;
  std::vector<std::string> copyin;
  std::vector<std::string> copyout;
  std::vector<StencilDef> stencils;
  std::vector<Step> steps;

  std::int64_t param_value(const std::string& name) const;
  const ArrayDecl* find_array(const std::string& name) const;
  const ScalarDecl* find_scalar(const std::string& name) const;
  const StencilDef* find_stencil(const std::string& name) const;
  int iterator_index(const std::string& name) const;  ///< -1 if absent
};

/// Semantic validation: declarations resolve, call arities match, indices
/// use declared iterators, array dimensionalities agree with declarations.
/// Throws SemanticError on violation.
void validate(const Program& prog);

}  // namespace artemis::ir
