file(REMOVE_RECURSE
  "CMakeFiles/expert_guidance.dir/expert_guidance.cpp.o"
  "CMakeFiles/expert_guidance.dir/expert_guidance.cpp.o.d"
  "expert_guidance"
  "expert_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
