# Empty dependencies file for table3_spatial_oi.
# This may be replaced when dependencies are built.
