#include "artemis/dsl/parser.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/str.hpp"
#include "artemis/dsl/lexer.hpp"

namespace artemis::dsl {

namespace {

using ir::Expr;
using ir::ExprPtr;
using ir::IndexExpr;

const std::set<std::string> kIntrinsics = {"sqrt", "fabs", "exp", "log",
                                           "min",  "max",  "pow"};

class Parser {
 public:
  explicit Parser(const std::string& source) : toks_(lex(source)) {}

  ir::Program run() {
    while (!at(TokKind::End)) {
      parse_top_decl();
    }
    ir::validate(prog_);
    return std::move(prog_);
  }

 private:
  // --- token plumbing -------------------------------------------------------

  const Token& peek(int ahead = 0) const {
    const std::size_t idx =
        std::min(pos_ + static_cast<std::size_t>(ahead), toks_.size() - 1);
    return toks_[idx];
  }

  bool at(TokKind k) const { return peek().kind == k; }

  bool at_ident(const std::string& word) const {
    return at(TokKind::Ident) && peek().text == word;
  }

  Token eat() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  Token expect(TokKind k) {
    if (!at(k)) {
      throw ParseError(
          str_cat("expected ", tok_kind_name(k), ", found ",
                  tok_kind_name(peek().kind),
                  peek().text.empty() ? "" : str_cat(" '", peek().text, "'")),
          peek().line, peek().col);
    }
    return eat();
  }

  std::string expect_ident() { return expect(TokKind::Ident).text; }

  std::string expect_keyword(const std::string& word) {
    const Token t = expect(TokKind::Ident);
    if (t.text != word) {
      throw ParseError(str_cat("expected '", word, "', found '", t.text, "'"),
                       t.line, t.col);
    }
    return t.text;
  }

  std::int64_t expect_int() { return expect(TokKind::Integer).int_value; }

  bool accept(TokKind k) {
    if (at(k)) {
      eat();
      return true;
    }
    return false;
  }

  // --- top-level ------------------------------------------------------------

  void parse_top_decl() {
    if (at(TokKind::Hash)) {
      parse_hash_directive();
      return;
    }
    const Token& t = peek();
    if (t.kind != TokKind::Ident) {
      throw ParseError(str_cat("expected declaration, found ",
                               tok_kind_name(t.kind)),
                       t.line, t.col);
    }
    if (t.text == "parameter") {
      parse_parameters();
    } else if (t.text == "iterator") {
      parse_iterators();
    } else if (t.text == "double") {
      parse_var_decls();
    } else if (t.text == "copyin" || t.text == "copyout") {
      parse_copy_list();
    } else if (t.text == "stencil") {
      parse_stencil_def();
    } else if (t.text == "iterate") {
      prog_.steps.push_back(parse_iterate());
    } else {
      prog_.steps.push_back(parse_call_step());
    }
  }

  void parse_parameters() {
    expect_keyword("parameter");
    do {
      ir::ParamDecl p;
      p.name = expect_ident();
      expect(TokKind::Assign);
      p.value = expect_int();
      prog_.params.push_back(std::move(p));
    } while (accept(TokKind::Comma));
    expect(TokKind::Semicolon);
  }

  void parse_iterators() {
    expect_keyword("iterator");
    do {
      prog_.iterators.push_back(expect_ident());
    } while (accept(TokKind::Comma));
    expect(TokKind::Semicolon);
  }

  void parse_var_decls() {
    expect_keyword("double");
    do {
      const std::string name = expect_ident();
      if (accept(TokKind::LBracket)) {
        ir::ArrayDecl a;
        a.name = name;
        do {
          a.dims.push_back(expect_ident());
        } while (accept(TokKind::Comma));
        expect(TokKind::RBracket);
        prog_.arrays.push_back(std::move(a));
      } else {
        prog_.scalars.push_back({name});
      }
    } while (accept(TokKind::Comma));
    expect(TokKind::Semicolon);
  }

  void parse_copy_list() {
    const std::string kw = expect_ident();  // copyin / copyout
    auto& dst = (kw == "copyin") ? prog_.copyin : prog_.copyout;
    do {
      dst.push_back(expect_ident());
    } while (accept(TokKind::Comma));
    expect(TokKind::Semicolon);
  }

  // --- #pragma / #assign ----------------------------------------------------

  void parse_hash_directive() {
    const Token hash = expect(TokKind::Hash);
    const std::string kind = expect_ident();
    if (kind == "assign") {
      throw ParseError(
          "#assign is only valid inside a stencil body", hash.line, hash.col);
    }
    if (kind != "pragma") {
      throw ParseError(str_cat("unknown directive '#", kind, "'"), hash.line,
                       hash.col);
    }
    pending_pragma_ = parse_pragma_clauses();
    // A pragma decorates exactly the next declaration, which must be a
    // stencil definition: erroring here (instead of at end of input)
    // pins the diagnostic to the token that broke the rule.
    if (at(TokKind::End)) {
      throw ParseError("#pragma not followed by a stencil definition",
                       hash.line, hash.col);
    }
    if (!at_ident("stencil")) {
      const Token& t = peek();
      throw ParseError(
          str_cat("#pragma must be followed by a stencil definition, found ",
                  tok_kind_name(t.kind),
                  t.text.empty() ? "" : str_cat(" '", t.text, "'")),
          t.line, t.col);
    }
  }

  ir::PragmaInfo parse_pragma_clauses() {
    ir::PragmaInfo info;
    while (at(TokKind::Ident)) {
      const std::string clause = peek().text;
      if (clause == "stream") {
        eat();
        info.stream_iter = expect_ident();
      } else if (clause == "block") {
        eat();
        expect(TokKind::LParen);
        do {
          info.block.push_back(expect_int());
        } while (accept(TokKind::Comma));
        expect(TokKind::RParen);
      } else if (clause == "unroll") {
        eat();
        do {
          const std::string iter = expect_ident();
          expect(TokKind::Assign);
          info.unroll[iter] = expect_int();
        } while (at(TokKind::Comma) && peek(1).kind == TokKind::Ident &&
                 peek(2).kind == TokKind::Assign && accept(TokKind::Comma));
      } else if (clause == "occupancy") {
        eat();
        const Token t = eat();
        if (t.kind != TokKind::Float && t.kind != TokKind::Integer) {
          throw ParseError("occupancy expects a numeric value", t.line, t.col);
        }
        info.occupancy = t.float_value;
      } else {
        break;  // next token starts the stencil definition or another decl
      }
    }
    return info;
  }

  void parse_assign_directive(ir::StencilDef& def) {
    expect(TokKind::Hash);
    expect_keyword("assign");
    do {
      const Token t = expect(TokKind::Ident);
      ir::MemSpace space;
      if (t.text == "shmem") {
        space = ir::MemSpace::Shared;
      } else if (t.text == "gmem") {
        space = ir::MemSpace::Global;
      } else if (t.text == "reg") {
        space = ir::MemSpace::Reg;
      } else {
        throw ParseError(str_cat("unknown #assign space '", t.text, "'"),
                         t.line, t.col);
      }
      expect(TokKind::LParen);
      do {
        def.resources.spaces[expect_ident()] = space;
      } while (accept(TokKind::Comma));
      expect(TokKind::RParen);
    } while (accept(TokKind::Comma));
    accept(TokKind::Semicolon);  // optional terminator
  }

  // --- stencil definitions ---------------------------------------------------

  void parse_stencil_def() {
    expect_keyword("stencil");
    ir::StencilDef def;
    def.name = expect_ident();
    if (pending_pragma_) {
      def.pragma = *pending_pragma_;
      pending_pragma_.reset();
    }
    expect(TokKind::LParen);
    do {
      def.params.push_back(expect_ident());
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen);
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::Hash)) {
        parse_assign_directive(def);
      } else {
        def.stmts.push_back(parse_stmt());
      }
    }
    expect(TokKind::RBrace);
    prog_.stencils.push_back(std::move(def));
  }

  ir::Stmt parse_stmt() {
    ir::Stmt st;
    if (at_ident("double")) {
      eat();
      st.declares_local = true;
      st.lhs_name = expect_ident();
      expect(TokKind::Assign);
    } else {
      st.lhs_name = expect_ident();
      while (at(TokKind::LBracket)) {
        eat();
        st.lhs_indices.push_back(parse_index());
        expect(TokKind::RBracket);
      }
      if (accept(TokKind::PlusAssign)) {
        st.accumulate = true;
      } else {
        expect(TokKind::Assign);
      }
    }
    st.rhs = parse_expr();
    expect(TokKind::Semicolon);
    return st;
  }

  // --- expressions -----------------------------------------------------------

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      const bool is_add = eat().kind == TokKind::Plus;
      ExprPtr rhs = parse_term();
      lhs = ir::binary(is_add ? ir::BinOp::Add : ir::BinOp::Sub,
                       std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    while (at(TokKind::Star) || at(TokKind::Slash)) {
      const bool is_mul = eat().kind == TokKind::Star;
      ExprPtr rhs = parse_factor();
      lhs = ir::binary(is_mul ? ir::BinOp::Mul : ir::BinOp::Div,
                       std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    if (accept(TokKind::Minus)) return ir::unary_neg(parse_factor());
    if (accept(TokKind::Plus)) return parse_factor();
    if (at(TokKind::Integer) || at(TokKind::Float)) {
      return ir::number(eat().float_value);
    }
    if (accept(TokKind::LParen)) {
      ExprPtr e = parse_expr();
      expect(TokKind::RParen);
      return e;
    }
    const Token name = expect(TokKind::Ident);
    if (at(TokKind::LParen)) {
      if (!kIntrinsics.count(name.text)) {
        throw ParseError(str_cat("unknown function '", name.text, "'"),
                         name.line, name.col);
      }
      eat();
      std::vector<ExprPtr> args;
      if (!at(TokKind::RParen)) {
        do {
          args.push_back(parse_expr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen);
      return ir::call(name.text, std::move(args));
    }
    if (at(TokKind::LBracket)) {
      std::vector<IndexExpr> indices;
      while (accept(TokKind::LBracket)) {
        indices.push_back(parse_index());
        expect(TokKind::RBracket);
      }
      return ir::array_ref(name.text, std::move(indices));
    }
    return ir::scalar_ref(name.text);
  }

  IndexExpr parse_index() {
    IndexExpr ix;
    if (at(TokKind::Ident)) {
      const Token it = eat();
      ix.iter = prog_.iterator_index(it.text);
      if (ix.iter < 0) {
        throw ParseError(str_cat("index uses undeclared iterator '", it.text,
                                 "'"),
                         it.line, it.col);
      }
      if (accept(TokKind::Plus)) {
        ix.offset = expect_int();
      } else if (accept(TokKind::Minus)) {
        ix.offset = -expect_int();
      }
      return ix;
    }
    // Constant index, possibly negative.
    bool neg = false;
    while (accept(TokKind::Minus)) neg = !neg;
    ix.offset = expect_int();
    if (neg) ix.offset = -ix.offset;
    return ix;
  }

  // --- steps ------------------------------------------------------------------

  ir::Step parse_iterate() {
    expect_keyword("iterate");
    ir::Step step;
    step.kind = ir::Step::Kind::Iterate;
    step.iterations = expect_int();
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace)) {
      step.body.push_back(parse_call_step());
    }
    expect(TokKind::RBrace);
    return step;
  }

  ir::Step parse_call_step() {
    ir::Step step;
    const Token name = expect(TokKind::Ident);
    if (name.text == "swap") {
      step.kind = ir::Step::Kind::Swap;
      expect(TokKind::LParen);
      step.swap.a = expect_ident();
      expect(TokKind::Comma);
      step.swap.b = expect_ident();
      expect(TokKind::RParen);
      expect(TokKind::Semicolon);
      return step;
    }
    step.kind = ir::Step::Kind::Call;
    step.call.callee = name.text;
    expect(TokKind::LParen);
    do {
      step.call.args.push_back(expect_ident());
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen);
    expect(TokKind::Semicolon);
    return step;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  ir::Program prog_;
  std::optional<ir::PragmaInfo> pending_pragma_;
};

}  // namespace

ir::Program parse(const std::string& source) { return Parser(source).run(); }

}  // namespace artemis::dsl
