#pragma once

#include <cstdint>
#include <functional>

namespace artemis {

/// Run fn(i) for i in [0, n) across a small thread pool. Used by the
/// functional executor to process independent thread blocks concurrently
/// (blocks write disjoint output tiles, so no synchronization is needed
/// beyond the join). Falls back to serial execution for small n.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

}  // namespace artemis
