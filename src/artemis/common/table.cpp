#include "artemis/common/table.hpp"

#include <algorithm>

#include "artemis/common/check.hpp"

namespace artemis {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ARTEMIS_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  ARTEMIS_CHECK_MSG(cells.size() == headers_.size(),
                    "row arity " << cells.size() << " != header arity "
                                 << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace artemis
