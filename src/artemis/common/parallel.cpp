#include "artemis/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "artemis/telemetry/telemetry.hpp"

namespace artemis {

namespace {

/// Capacity bound of one participant's local queue. Refills never exceed
/// it, so the memory held in queues is O(parallelism * kQueueCapacity)
/// regardless of job size.
constexpr std::int64_t kQueueCapacity = 64;

std::atomic<int> g_default_jobs{0};

/// Set while a thread executes tasks for any pool (including the
/// for_each caller); nested parallel regions check it and run inline.
thread_local bool t_inside_worker = false;

int hardware_jobs() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs < 0 ? 0 : jobs, std::memory_order_relaxed);
}

int default_jobs() {
  const int jobs = g_default_jobs.load(std::memory_order_relaxed);
  return jobs > 0 ? jobs : hardware_jobs();
}

bool TaskPool::inside_worker() { return t_inside_worker; }

/// One in-flight for_each: the shared range cursor, per-participant
/// bounded queues, and completion accounting.
struct Job {
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::int64_t grain = 1;

  std::atomic<std::int64_t> cursor{0};     ///< next unclaimed range start
  std::atomic<std::int64_t> completed{0};  ///< tasks fully executed
  std::atomic<std::int64_t> steals{0};
  std::atomic<bool> failed{false};
  std::atomic<int> joined{1};  ///< queue slots handed out (0 = caller)

  struct Queue {
    std::mutex mu;
    std::deque<std::int64_t> items;
  };
  std::vector<Queue> queues;

  std::mutex error_mu;
  std::exception_ptr error;

  explicit Job(std::int64_t total, int participants,
               const std::function<void(std::int64_t)>& f)
      : n(total), fn(&f), queues(static_cast<std::size_t>(participants)) {
    grain = std::max<std::int64_t>(
        1, std::min(kQueueCapacity, total / (participants * 4)));
  }

  /// Refill `mine` with one batch from the shared cursor; returns the
  /// first index of the batch, or -1 when the range is exhausted.
  std::int64_t refill(Queue& mine) {
    const std::int64_t start = cursor.fetch_add(grain);
    if (start >= n) return -1;
    const std::int64_t end = std::min(start + grain, n);
    if (end - start > 1) {
      const std::lock_guard<std::mutex> lock(mine.mu);
      for (std::int64_t i = start + 1; i < end; ++i) mine.items.push_back(i);
    }
    return start;
  }

  std::int64_t pop_own(Queue& mine) {
    const std::lock_guard<std::mutex> lock(mine.mu);
    if (mine.items.empty()) return -1;
    const std::int64_t i = mine.items.front();
    mine.items.pop_front();
    return i;
  }

  /// Steal one task from the back of another participant's queue.
  std::int64_t steal(std::size_t self) {
    for (std::size_t off = 1; off < queues.size(); ++off) {
      Queue& victim = queues[(self + off) % queues.size()];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.items.empty()) continue;
      const std::int64_t i = victim.items.back();
      victim.items.pop_back();
      steals.fetch_add(1, std::memory_order_relaxed);
      return i;
    }
    return -1;
  }

  void fail(std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::move(e);
    }
    failed.store(true, std::memory_order_relaxed);
  }

  /// Claim and execute tasks until neither the cursor, the own queue, nor
  /// any victim has work (or the job failed).
  void work(std::size_t slot) {
    Queue& mine = queues[slot];
    t_inside_worker = true;
    while (!failed.load(std::memory_order_relaxed)) {
      std::int64_t i = pop_own(mine);
      if (i < 0) i = refill(mine);
      if (i < 0) i = steal(slot);
      if (i < 0) break;
      try {
        (*fn)(i);
      } catch (...) {
        fail(std::current_exception());
      }
      completed.fetch_add(1, std::memory_order_release);
    }
    t_inside_worker = false;
  }

  bool done() const {
    return completed.load(std::memory_order_acquire) >= n ||
           failed.load(std::memory_order_relaxed);
  }
};

struct TaskPool::Impl {
  std::mutex mu;
  std::condition_variable wake;      ///< workers park here between jobs
  std::condition_variable finished;  ///< for_each caller waits here
  Job* job = nullptr;                ///< published job, or nullptr
  std::uint64_t job_seq = 0;
  int active = 0;  ///< workers currently inside job->work()
  bool stop = false;
  std::vector<std::thread> threads;

  void worker_loop() {
    std::uint64_t seen_seq = 0;
    for (;;) {
      Job* j = nullptr;
      std::size_t slot = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        wake.wait(lock, [&] {
          return stop || (job != nullptr && job_seq != seen_seq);
        });
        if (stop) return;
        seen_seq = job_seq;
        const int idx = job->joined.fetch_add(1);
        if (idx >= static_cast<int>(job->queues.size())) continue;
        slot = static_cast<std::size_t>(idx);
        j = job;
        ++active;
      }
      j->work(slot);
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (--active == 0) finished.notify_all();
      }
    }
  }
};

TaskPool::TaskPool(int parallelism)
    : parallelism_(std::max(1, parallelism)) {
  if (parallelism_ < 2) return;
  impl_ = std::make_unique<Impl>();
  impl_->threads.reserve(static_cast<std::size_t>(parallelism_ - 1));
  for (int w = 1; w < parallelism_; ++w) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
  telemetry::counter_add("parallel.pools");
}

TaskPool::~TaskPool() {
  if (!impl_) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& t : impl_->threads) t.join();
}

void TaskPool::for_each(std::int64_t n,
                        const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (!impl_ || n == 1 || t_inside_worker) {
    // Serial fallback: tiny jobs, a degenerate pool, or a nested region
    // (one level of parallelism wins; see the class comment).
    const bool was_inside = t_inside_worker;
    t_inside_worker = true;
    struct Restore {
      bool prev;
      ~Restore() { t_inside_worker = prev; }
    } restore{was_inside};
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job(n, parallelism_, fn);
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = &job;
    ++impl_->job_seq;
  }
  impl_->wake.notify_all();

  // The caller is participant 0.
  job.work(0);

  // Unpublish so no late-waking worker joins, then wait for the workers
  // that did join to drain the tasks they already claimed.
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->job = nullptr;
    impl_->finished.wait(lock, [&] { return impl_->active == 0; });
  }

  telemetry::counter_add("parallel.tasks", n);
  const std::int64_t steals = job.steals.load(std::memory_order_relaxed);
  if (steals > 0) telemetry::counter_add("parallel.steals", steals);

  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  const int workers = hardware_jobs();
  if (n < 4 || workers < 2 || TaskPool::inside_worker()) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskPool pool(workers);
  pool.for_each(n, fn);
}

}  // namespace artemis
