#include "artemis/common/str.hpp"

#include <cctype>
#include <iomanip>

namespace artemis {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string indent(const std::string& block, int n) {
  const std::string pad(static_cast<std::size_t>(n), ' ');
  std::string out;
  bool at_line_start = true;
  for (char c : block) {
    if (at_line_start && c != '\n') {
      out += pad;
      at_line_start = false;
    }
    out.push_back(c);
    if (c == '\n') at_line_start = true;
  }
  return out;
}

std::string format_double(double v, int prec) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace artemis
