#include "artemis/telemetry/run_sinks.hpp"

#include <cstdio>
#include <exception>

#include "artemis/telemetry/trace_sink.hpp"

namespace artemis::telemetry {

RunSinks::RunSinks(RunSinksOptions opts) : opts_(std::move(opts)) {
  active_ = !opts_.trace_path.empty() || !opts_.report_path.empty() ||
            !opts_.metrics_path.empty() || opts_.summary;
  // Telemetry stays fully disabled (zero-overhead) unless a sink asked
  // for it.
  if (active_) Collector::global().enable();
}

RunSinks::~RunSinks() {
  if (finalized_ || !active_) return;
  try {
    flush(/*completed=*/false);
  } catch (const std::exception& e) {
    // Unwinding: nothing more we can do than having tried.
    std::fprintf(stderr, "artemisc: telemetry flush failed: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "artemisc: telemetry flush failed\n");
  }
}

bool RunSinks::finalize() {
  finalized_ = true;
  if (!active_) return true;
  return flush(/*completed=*/true);
}

bool RunSinks::flush(bool completed) {
  auto& collector = Collector::global();
  const auto events = collector.snapshot();
  const auto counters = collector.counters();
  bool ok = true;

  if (!opts_.trace_path.empty()) {
    // The trace is a bare record array (Chrome trace-event format), so
    // the completion marker rides along as one final instant record.
    Json trace = chrome_trace(events, counters);
    Json done = Json::object();
    done.set("name", Json("run.completed"));
    done.set("cat", Json("run"));
    done.set("ph", Json("i"));
    done.set("ts", Json(static_cast<std::int64_t>(0)));
    done.set("pid", Json(static_cast<std::int64_t>(1)));
    done.set("tid", Json(static_cast<std::int64_t>(0)));
    done.set("s", Json("g"));
    Json args = Json::object();
    args.set("completed", Json(completed));
    done.set("args", std::move(args));
    trace.push_back(std::move(done));
    if (write_file(opts_.trace_path, trace.dump(1) + "\n")) {
      std::printf("trace written: %s (%zu events)\n",
                  opts_.trace_path.c_str(), events.size());
    } else {
      std::fprintf(stderr, "artemisc: cannot write trace '%s'\n",
                   opts_.trace_path.c_str());
      ok = false;
    }
  }

  if (!opts_.report_path.empty()) {
    const driver::ProgramResult empty;
    Json report =
        build_run_report(meta_, result_ ? *result_ : empty, events, counters);
    report.set("completed", completed);
    if (metrics_) report.set("metrics", *metrics_);
    if (write_file(opts_.report_path, report.dump(2) + "\n")) {
      std::printf("report written: %s\n", opts_.report_path.c_str());
    } else {
      std::fprintf(stderr, "artemisc: cannot write report '%s'\n",
                   opts_.report_path.c_str());
      ok = false;
    }
  }

  if (!opts_.metrics_path.empty()) {
    // An aborted run that never measured still leaves a parseable
    // document, marked incomplete.
    Json doc = metrics_ ? *metrics_ : Json::object();
    doc.set("completed", completed);
    if (write_file(opts_.metrics_path, doc.dump(2) + "\n")) {
      std::printf("metrics written: %s\n", opts_.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "artemisc: cannot write metrics '%s'\n",
                   opts_.metrics_path.c_str());
      ok = false;
    }
  }

  if (opts_.summary) {
    std::printf("\n%s", summary_text(events, counters).c_str());
  }
  return ok;
}

}  // namespace artemis::telemetry
