#include "artemis/storage/plan_store.hpp"

#include <algorithm>
#include <sstream>

#include "artemis/common/hash.hpp"
#include "artemis/common/str.hpp"
#include "artemis/ir/content_hash.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::storage {

namespace {

constexpr const char* kMagic = "#artemis-plan";

bool is_hex_key(const std::string& key) {
  if (key.size() != 32) return false;
  return std::all_of(key.begin(), key.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Owner tag of an in-flight temp, from its name
/// `<key>.<tag>.<seq>.tmp` (keys are hex, tags are dot-free, so the
/// first and the second-to-last dots delimit the tag). nullopt for names
/// that never came from put() — those are junk, not in-flight writes.
std::optional<std::string> tmp_owner_tag(const std::string& name) {
  if (name.size() < 5 || name.compare(name.size() - 4, 4, ".tmp") != 0) {
    return std::nullopt;
  }
  const std::string stem = name.substr(0, name.size() - 4);
  const auto first = stem.find('.');
  const auto last = stem.rfind('.');
  if (first == std::string::npos || last <= first + 1) return std::nullopt;
  return stem.substr(first + 1, last - first - 1);
}

}  // namespace

std::string encode_plan_record(const PlanRecord& rec) {
  std::ostringstream payload;
  payload << "key=" << rec.key << "\n";
  payload << "config=" << rec.config << "\n";
  payload << "time_s=" << fmt_double(rec.time_s) << "\n";
  payload << "tflops=" << fmt_double(rec.tflops) << "\n";
  for (const auto& [k, v] : rec.meta) {  // map order => canonical bytes
    payload << "meta." << k << "=" << v << "\n";
  }
  const std::string body = payload.str();
  return str_cat(kMagic, " v", kPlanRecordVersion, " len=", body.size(),
                 " crc=", crc32_hex(crc32(body)), "\n", body);
}

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::Torn: return "torn";
    case DecodeStatus::CrcMismatch: return "crc_mismatch";
    case DecodeStatus::VersionSkew: return "version_skew";
    case DecodeStatus::Malformed: return "malformed";
  }
  return "?";
}

DecodeStatus decode_plan_record(const std::string& bytes, PlanRecord* out) {
  if (bytes.empty()) return DecodeStatus::Torn;
  const auto nl = bytes.find('\n');
  if (nl == std::string::npos) {
    // No complete header line. If what is there is a prefix of a valid
    // header, the write was torn; otherwise it was never a plan record.
    const std::string magic(kMagic);
    return bytes.compare(0, std::min(bytes.size(), magic.size()), magic, 0,
                         std::min(bytes.size(), magic.size())) == 0
               ? DecodeStatus::Torn
               : DecodeStatus::Malformed;
  }
  const std::string header = bytes.substr(0, nl);
  std::istringstream hs(header);
  std::string magic, version, len_field, crc_field;
  hs >> magic >> version >> len_field >> crc_field;
  if (magic != kMagic) return DecodeStatus::Malformed;
  if (version != str_cat("v", kPlanRecordVersion)) {
    return version.size() > 1 && version[0] == 'v'
               ? DecodeStatus::VersionSkew
               : DecodeStatus::Malformed;
  }
  if (len_field.rfind("len=", 0) != 0 || crc_field.rfind("crc=", 0) != 0) {
    return DecodeStatus::Malformed;
  }
  std::size_t len = 0;
  try {
    len = std::stoull(len_field.substr(4));
  } catch (const std::exception&) {
    return DecodeStatus::Malformed;
  }
  std::uint32_t want_crc = 0;
  if (!parse_crc32_hex(crc_field.substr(4), &want_crc)) {
    return DecodeStatus::Malformed;
  }
  const std::string body = bytes.substr(nl + 1);
  if (body.size() < len) return DecodeStatus::Torn;
  if (body.size() > len) return DecodeStatus::Malformed;
  if (crc32(body) != want_crc) return DecodeStatus::CrcMismatch;

  PlanRecord rec;
  bool have_key = false, have_config = false;
  for (const auto& line : split(body, '\n')) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return DecodeStatus::Malformed;
    const std::string k = line.substr(0, eq);
    const std::string v = line.substr(eq + 1);
    if (k == "key") {
      rec.key = v;
      have_key = true;
    } else if (k == "config") {
      rec.config = v;
      have_config = true;
    } else if (k == "time_s") {
      try { rec.time_s = std::stod(v); } catch (const std::exception&) {
        return DecodeStatus::Malformed;
      }
    } else if (k == "tflops") {
      try { rec.tflops = std::stod(v); } catch (const std::exception&) {
        return DecodeStatus::Malformed;
      }
    } else if (k.rfind("meta.", 0) == 0) {
      rec.meta[k.substr(5)] = v;
    }
    // Unknown same-version fields are ignored: minor additions stay
    // readable by older binaries.
  }
  if (!have_key || !have_config) return DecodeStatus::Malformed;
  if (out != nullptr) *out = std::move(rec);
  return DecodeStatus::Ok;
}

std::string plan_store_key(const ir::Program& prog,
                           const std::string& device,
                           int tuner_version) {
  ContentHasher h;
  ir::hash_program(prog, h);
  h.update(str_cat("|device:", device.size(), "=", device, ";tuner=",
                   tuner_version, ";"));
  return h.hex_digest();
}

// --- PlanStore -------------------------------------------------------------

std::string PlanStore::shard_of(const std::string& key) {
  return key.size() >= 2 ? key.substr(0, 2) : std::string("00");
}

std::string PlanStore::object_path(const std::string& key) const {
  return str_cat(root_, "/objects/", shard_of(key), "/", key, ".plan");
}

PlanStore::PlanStore(Vfs& vfs, std::string root)
    : vfs_(vfs), root_(std::move(root)) {
  try {
    vfs_.mkdirs(str_cat(root_, "/objects"));
    vfs_.mkdirs(str_cat(root_, "/tmp"));
    vfs_.mkdirs(str_cat(root_, "/quarantine"));
  } catch (const VfsError&) {
    // A disk that cannot even hold the skeleton degrades the store to a
    // pass-through: every put fails (counted), every get misses.
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.io_errors;
    telemetry::counter_add("plan_store.io_errors");
    return;
  }
  // Crash recovery: a temp in tmp/ whose owner is dead (or is this very
  // process, reopening after a failed run) is an in-flight write that
  // lost its writer before the rename — never visible, safe to delete.
  // A temp owned by a *live* other process is a concurrent put() racing
  // this open; deleting it would make that writer's commit rename fail,
  // so it is left strictly alone (the two-process startup race).
  const int recovered = sweep_tmp();
  if (recovered > 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.recovered_tmp += static_cast<std::uint64_t>(recovered);
    telemetry::counter_add("plan_store.recovered_tmp", recovered);
  }
}

int PlanStore::sweep_tmp() {
  const std::string dir = str_cat(root_, "/tmp");
  const std::string own = vfs_.process_tag();
  int removed = 0;
  for (const auto& name : vfs_.list(dir)) {
    const auto owner = tmp_owner_tag(name);
    if (owner.has_value() && *owner != own && vfs_.tag_alive(*owner)) {
      continue;  // a live writer's in-flight put
    }
    try {
      if (vfs_.remove(str_cat(dir, "/", name))) ++removed;
    } catch (const VfsError&) {
      // Leave it for the next open or compact().
    }
  }
  return removed;
}

bool PlanStore::put(const PlanRecord& rec) {
  ARTEMIS_CHECK_MSG(is_hex_key(rec.key),
                    "plan key must be 32 hex digits, got '" << rec.key
                                                            << "'");
  std::uint64_t seq = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    seq = tmp_seq_++;
  }
  const std::string tmp = str_cat(root_, "/tmp/", rec.key, ".",
                                  vfs_.process_tag(), ".", seq, ".tmp");
  const std::string shard_dir = str_cat(root_, "/objects/",
                                        shard_of(rec.key));
  try {
    auto f = vfs_.create(tmp, /*truncate=*/true);
    f->write(encode_plan_record(rec));
    f->sync();
    f->close();
    vfs_.mkdirs(shard_dir);
    vfs_.rename(tmp, object_path(rec.key));
    vfs_.sync_dir(shard_dir);
  } catch (const VfsError&) {
    try {
      vfs_.remove(tmp);
    } catch (const VfsError&) {
      // open()/compact() sweeps it later.
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.put_failures;
    telemetry::counter_add("plan_store.put_failures");
    return false;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  telemetry::counter_add("plan_store.puts");
  return true;
}

void PlanStore::count_drop(DecodeStatus why) {
  // Callers hold mu_.
  switch (why) {
    case DecodeStatus::Ok:
      return;
    case DecodeStatus::Torn:
      ++stats_.drop_torn;
      telemetry::counter_add("plan_store.drop.torn");
      return;
    case DecodeStatus::CrcMismatch:
      ++stats_.drop_crc_mismatch;
      telemetry::counter_add("plan_store.drop.crc_mismatch");
      return;
    case DecodeStatus::VersionSkew:
      ++stats_.drop_version_skew;
      telemetry::counter_add("plan_store.drop.version_skew");
      return;
    case DecodeStatus::Malformed:
      ++stats_.drop_malformed;
      telemetry::counter_add("plan_store.drop.malformed");
      return;
  }
}

void PlanStore::quarantine_object(const std::string& key, DecodeStatus why) {
  const std::string dst = str_cat(root_, "/quarantine/", key, ".",
                                  decode_status_name(why), ".plan");
  try {
    vfs_.rename(object_path(key), dst);
    vfs_.sync_dir(str_cat(root_, "/quarantine"));
  } catch (const VfsError&) {
    // Best effort: the object stays where it is and will be re-classified
    // (and re-counted) next time it is read. compact() retries the move.
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.quarantined;
  telemetry::counter_add("plan_store.quarantined");
}

std::optional<PlanRecord> PlanStore::get(const std::string& key) {
  std::optional<std::string> bytes;
  try {
    bytes = vfs_.read(object_path(key));
  } catch (const VfsError&) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.io_errors;
    ++stats_.misses;
    telemetry::counter_add("plan_store.io_errors");
    telemetry::counter_add("plan_store.misses");
    return std::nullopt;
  }
  if (!bytes.has_value()) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    telemetry::counter_add("plan_store.misses");
    return std::nullopt;
  }
  PlanRecord rec;
  DecodeStatus status = decode_plan_record(*bytes, &rec);
  if (status == DecodeStatus::Ok && rec.key != key) {
    status = DecodeStatus::Malformed;  // record filed under the wrong name
  }
  if (status != DecodeStatus::Ok) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      count_drop(status);
      ++stats_.misses;
      telemetry::counter_add("plan_store.misses");
    }
    quarantine_object(key, status);
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  telemetry::counter_add("plan_store.hits");
  return rec;
}

std::vector<std::string> PlanStore::keys() {
  std::vector<std::string> out;
  const std::string objects = str_cat(root_, "/objects");
  for (const auto& shard : vfs_.list(objects)) {
    for (const auto& name : vfs_.list(str_cat(objects, "/", shard))) {
      if (name.size() > 5 && name.substr(name.size() - 5) == ".plan") {
        out.push_back(name.substr(0, name.size() - 5));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

PlanStore::CompactionReport PlanStore::compact() {
  CompactionReport report;
  bool stale = false;
  auto lock = vfs_.try_lock(str_cat(root_, "/store.lock"), &stale);
  if (lock == nullptr) return report;  // a live process is compacting
  report.ran = true;
  report.stale_lock_reclaimed = stale;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    ++stats_.compactions;
    telemetry::counter_add("plan_store.compactions");
    if (stale) {
      ++stats_.stale_locks_reclaimed;
      telemetry::counter_add("plan_store.stale_locks_reclaimed");
    }
  }
  // tmp/ honors writer liveness (a live process may be mid-put right
  // now, maintenance lock or not — put() is deliberately lockless);
  // quarantine/ holds only already-condemned records and sweeps whole.
  report.removed_tmp = sweep_tmp();
  for (const auto& name : vfs_.list(str_cat(root_, "/quarantine"))) {
    try {
      if (vfs_.remove(str_cat(root_, "/quarantine/", name))) {
        ++report.removed_quarantine;
      }
    } catch (const VfsError&) {
      // Leave it; compaction is advisory.
    }
  }
  for (const auto& key : keys()) {
    ++report.scanned;
    std::optional<std::string> bytes;
    try {
      bytes = vfs_.read(object_path(key));
    } catch (const VfsError&) {
      continue;
    }
    if (!bytes.has_value()) continue;  // raced with a concurrent writer
    PlanRecord rec;
    DecodeStatus status = decode_plan_record(*bytes, &rec);
    if (status == DecodeStatus::Ok && rec.key != key) {
      status = DecodeStatus::Malformed;
    }
    if (status != DecodeStatus::Ok) {
      {
        const std::lock_guard<std::mutex> guard(mu_);
        count_drop(status);
      }
      quarantine_object(key, status);
      ++report.quarantined;
    }
  }
  return report;
}

PlanStoreStats PlanStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace artemis::storage
