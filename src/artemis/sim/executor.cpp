#include "artemis/sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <set>

#include "artemis/common/check.hpp"
#include "artemis/common/parallel.hpp"
#include "artemis/ir/analysis.hpp"
#include "artemis/robust/fault_injection.hpp"
#include "artemis/sim/interp.hpp"
#include "artemis/telemetry/telemetry.hpp"

namespace artemis::sim {

namespace {

using codegen::KernelPlan;
using codegen::TilingScheme;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// A block-local scratch buffer standing in for the shared-memory (or
/// register-plane) storage of a fused internal array. Covers the block's
/// tile expanded by the plan's total halo; zero-initialized, like the
/// intermediate global arrays of the unfused reference schedule.
struct Scratch {
  std::array<std::int64_t, 3> lo = {0, 0, 0};  ///< global coords (z,y,x)
  Extents ext;
  std::vector<double> data;
  std::vector<std::uint8_t> written;  ///< guard-passed points only

  bool contains(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return z >= lo[0] && z < lo[0] + ext.z && y >= lo[1] &&
           y < lo[1] + ext.y && x >= lo[2] && x < lo[2] + ext.x;
  }
  std::size_t index(std::int64_t z, std::int64_t y, std::int64_t x) const {
    return static_cast<std::size_t>(
        ((z - lo[0]) * ext.y + (y - lo[1])) * ext.x + (x - lo[2]));
  }
  double& at(std::int64_t z, std::int64_t y, std::int64_t x) {
    return data[index(z, y, x)];
  }
};

}  // namespace

ExecCounters execute_plan(const KernelPlan& plan, GridSet& gs,
                          const ExecOptions& opts) {
  telemetry::Span span("sim.execute_plan", "sim");
  span.arg("kernel", Json(plan.name));
  robust::fault_point("sim.execute", plan.name);
  const bool serial = opts.serial || static_cast<bool>(opts.global_hook);
  ExecCounters totals;
  const int dims = plan.dims;

  // --- geometry: block grid over tiled axes --------------------------------
  std::array<std::int64_t, 3> tile = {1, 1, 1};   // x, y, z
  std::array<std::int64_t, 3> domain = {plan.domain.x, plan.domain.y,
                                        plan.domain.z};
  for (int a = 0; a < dims; ++a) {
    tile[static_cast<std::size_t>(a)] =
        std::min(plan.tile_extent(a), domain[static_cast<std::size_t>(a)]);
  }
  const int sweep_axis = dims - 1;
  if (plan.config.tiling == TilingScheme::StreamSerial) {
    tile[static_cast<std::size_t>(sweep_axis)] =
        domain[static_cast<std::size_t>(sweep_axis)];
  } else if (plan.config.tiling == TilingScheme::StreamConcurrent) {
    tile[static_cast<std::size_t>(sweep_axis)] =
        std::min<std::int64_t>(plan.config.stream_chunk,
                               domain[static_cast<std::size_t>(sweep_axis)]);
  }
  std::array<std::int64_t, 3> nblocks = {1, 1, 1};
  for (int a = 0; a < dims; ++a) {
    nblocks[static_cast<std::size_t>(a)] =
        ceil_div(domain[static_cast<std::size_t>(a)],
                 tile[static_cast<std::size_t>(a)]);
  }
  const std::int64_t total_blocks = nblocks[0] * nblocks[1] * nblocks[2];
  totals.blocks = total_blocks;

  // --- arrays read-and-written with neighbor offsets: snapshot -------------
  const std::set<std::string> internals(plan.internal_arrays.begin(),
                                        plan.internal_arrays.end());
  std::map<std::string, Grid3D> snapshots;
  for (const auto& [name, ai] : plan.info.arrays) {
    if (!ai.read || !ai.written || internals.count(name)) continue;
    bool non_center = false;
    for (const auto& off : ai.read_offsets) {
      for (const auto& ix : off) {
        if (ix.is_const() || ix.offset != 0) non_center = true;
      }
    }
    if (non_center) snapshots.emplace(name, gs.grid(name));
  }

  // Scalar environment shared by all stages.
  std::map<std::string, double> env;
  for (const auto& name : plan.info.scalars_read) {
    env[name] = gs.scalar(name);
  }

  // The streamed axis of serial streaming carries no recompute expansion
  // (Fig. 1c); spatial tiling expands every axis.
  auto expansion = [&](std::size_t stage, int axis) -> std::int64_t {
    if (plan.config.tiling == TilingScheme::StreamSerial &&
        axis == sweep_axis) {
      return 0;
    }
    return plan.stage_expand[stage][static_cast<std::size_t>(axis)];
  };

  std::atomic<std::int64_t> computed{0}, skipped{0}, greads{0}, gwrites{0},
      sreads{0}, swrites{0};

  const auto run_block = [&](std::int64_t block_id) {
    // Decode block coordinates (x fastest).
    std::array<std::int64_t, 3> bc;
    bc[0] = block_id % nblocks[0];
    bc[1] = (block_id / nblocks[0]) % nblocks[1];
    bc[2] = block_id / (nblocks[0] * nblocks[1]);

    std::array<std::int64_t, 3> own_lo = {0, 0, 0};
    std::array<std::int64_t, 3> own_hi = {1, 1, 1};  // exclusive
    for (int a = 0; a < dims; ++a) {
      const auto idx = static_cast<std::size_t>(a);
      own_lo[idx] = bc[idx] * tile[idx];
      own_hi[idx] = std::min(own_lo[idx] + tile[idx], domain[idx]);
    }

    // Scratch for internal arrays: tile expanded by the total plan halo
    // (a superset of any stage's requirement).
    std::map<std::string, Scratch> scratch;
    for (const auto& name : plan.internal_arrays) {
      Scratch s;
      std::array<std::int64_t, 3> ext = {1, 1, 1};
      for (int a = 0; a < dims; ++a) {
        const auto idx = static_cast<std::size_t>(a);
        const std::int64_t h =
            (plan.config.tiling == TilingScheme::StreamSerial &&
             a == sweep_axis)
                ? 0
                : plan.radius[idx];
        s.lo[2 - a] = own_lo[idx] - h;  // Scratch::lo is (z,y,x)
        ext[idx] = (own_hi[idx] - own_lo[idx]) + 2 * h;
      }
      s.ext = {ext[2], ext[1], ext[0]};
      s.data.assign(static_cast<std::size_t>(s.ext.volume()), 0.0);
      s.written.assign(static_cast<std::size_t>(s.ext.volume()), 0);
      scratch.emplace(name, std::move(s));
    }

    const ArrayReader reader = [&](const std::string& name, std::int64_t z,
                                   std::int64_t y,
                                   std::int64_t x) -> std::optional<double> {
      if (const auto it = scratch.find(name); it != scratch.end()) {
        // Reads outside the domain veto the point, mirroring the unfused
        // schedule where the intermediate array has no such element.
        const Grid3D& shape = gs.grid(name);
        if (!shape.in_bounds(z, y, x)) return std::nullopt;
        ARTEMIS_CHECK_MSG(it->second.contains(z, y, x),
                          "internal read of '"
                              << name << "' at (" << z << "," << y << "," << x
                              << ") escapes its scratch region: plan halo "
                                 "geometry is wrong");
        sreads.fetch_add(1, std::memory_order_relaxed);
        return it->second.at(z, y, x);
      }
      const auto snap = snapshots.find(name);
      const Grid3D& g =
          snap != snapshots.end() ? snap->second : gs.grid(name);
      if (!g.in_bounds(z, y, x)) return std::nullopt;
      greads.fetch_add(1, std::memory_order_relaxed);
      if (opts.global_hook) opts.global_hook(name, z, y, x, false);
      return g.at(z, y, x);
    };

    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const bool final_stage = (s + 1 == plan.stages.size());
      // Region this stage computes: owned tile expanded by stage_expand.
      std::array<std::int64_t, 3> lo = own_lo, hi = own_hi;
      for (int a = 0; a < dims; ++a) {
        const auto idx = static_cast<std::size_t>(a);
        const std::int64_t e = expansion(s, a);
        lo[idx] = std::max<std::int64_t>(lo[idx] - e, 0);
        hi[idx] = std::min(hi[idx] + e, domain[idx]);
      }

      const ArrayWriter writer = [&](const std::string& name, std::int64_t z,
                                     std::int64_t y, std::int64_t x,
                                     double v) {
        if (const auto it = scratch.find(name); it != scratch.end()) {
          ARTEMIS_CHECK_MSG(it->second.contains(z, y, x),
                            "internal write of '" << name
                                                  << "' escapes scratch");
          it->second.at(z, y, x) = v;
          it->second.written[it->second.index(z, y, x)] = 1;
          swrites.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // External arrays commit only inside the owned tile to avoid
        // double-writes from overlapping expanded regions.
        const bool owned = z >= (dims >= 3 ? own_lo[2] : 0) &&
                           z < (dims >= 3 ? own_hi[2] : 1) &&
                           y >= (dims >= 2 ? own_lo[1] : 0) &&
                           y < (dims >= 2 ? own_hi[1] : 1) &&
                           x >= own_lo[0] && x < own_hi[0];
        if (!owned) return;
        gs.grid(name).at(z, y, x) = v;
        gwrites.fetch_add(1, std::memory_order_relaxed);
        if (opts.global_hook) opts.global_hook(name, z, y, x, true);
      };

      (void)final_stage;
      std::vector<std::int64_t> itv(static_cast<std::size_t>(dims), 0);
      const std::int64_t z_lo = dims >= 3 ? lo[2] : 0;
      const std::int64_t z_hi = dims >= 3 ? hi[2] : 1;
      const std::int64_t y_lo = dims >= 2 ? lo[1] : 0;
      const std::int64_t y_hi = dims >= 2 ? hi[1] : 1;
      for (std::int64_t z = z_lo; z < z_hi; ++z) {
        for (std::int64_t y = y_lo; y < y_hi; ++y) {
          for (std::int64_t x = lo[0]; x < hi[0]; ++x) {
            if (dims == 3) {
              itv = {z, y, x};
            } else if (dims == 2) {
              itv = {y, x};
            } else {
              itv = {x};
            }
            if (apply_stmts_at_point(plan.stages[s].stmts, env, itv, reader,
                                     writer)) {
              computed.fetch_add(1, std::memory_order_relaxed);
            } else {
              skipped.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    }

    // Materialize internal arrays that are also program outputs: commit
    // the owned-tile region of their scratch to global memory.
    for (const auto& name : plan.materialized_internals) {
      auto& s = scratch.at(name);
      Grid3D& g = gs.grid(name);
      const std::int64_t z_lo = dims >= 3 ? own_lo[2] : 0;
      const std::int64_t z_hi = dims >= 3 ? own_hi[2] : 1;
      const std::int64_t y_lo = dims >= 2 ? own_lo[1] : 0;
      const std::int64_t y_hi = dims >= 2 ? own_hi[1] : 1;
      for (std::int64_t z = z_lo; z < z_hi; ++z) {
        for (std::int64_t y = y_lo; y < y_hi; ++y) {
          for (std::int64_t x = own_lo[0]; x < own_hi[0]; ++x) {
            if (!g.in_bounds(z, y, x)) continue;
            if (!s.written[s.index(z, y, x)]) continue;
            g.at(z, y, x) = s.at(z, y, x);
            gwrites.fetch_add(1, std::memory_order_relaxed);
            if (opts.global_hook) opts.global_hook(name, z, y, x, true);
          }
        }
      }
    }
  };
  if (serial) {
    for (std::int64_t b = 0; b < total_blocks; ++b) run_block(b);
  } else {
    parallel_for(total_blocks, run_block);
  }

  totals.computed_points = computed.load();
  totals.skipped_points = skipped.load();
  totals.global_read_elems = greads.load();
  totals.global_write_elems = gwrites.load();
  totals.scratch_read_elems = sreads.load();
  totals.scratch_write_elems = swrites.load();
  return totals;
}

}  // namespace artemis::sim
