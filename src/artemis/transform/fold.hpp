#pragma once

#include <string>
#include <vector>

#include "artemis/ir/program.hpp"

namespace artemis::transform {

/// Storage and computation folding (Section III-B4).
///
/// Detects groups of arrays {A0..An} whose every read appears as a
/// point-wise product A0[idx] * A1[idx] * ... with identical index vectors.
/// Instead of buffering each array separately in shared memory or
/// registers, the code generator can buffer the single folded value
/// prod_r Ar[idx], cutting the buffer count from n+1 to 1 and removing the
/// repeated multiplies at every reading offset.
///
/// Returns the folded groups (each with >= 2 members). Detection is
/// conservative: an array joins a group only if *all* of its reads across
/// all statements occur inside such products with the same partners.
std::vector<std::vector<std::string>> find_fold_groups(
    const std::vector<ir::Stmt>& stmts);

/// FLOPs per output point saved by folding: for each group of size n read
/// at m distinct offsets, (n-1) multiplies are saved at (m-1) offsets.
std::int64_t folding_flop_savings(
    const std::vector<ir::Stmt>& stmts,
    const std::vector<std::vector<std::string>>& groups);

}  // namespace artemis::transform
