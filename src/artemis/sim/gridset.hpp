#pragma once

#include <map>
#include <memory>
#include <string>

#include "artemis/common/grid.hpp"
#include "artemis/common/rng.hpp"
#include "artemis/ir/program.hpp"

namespace artemis::sim {

/// The "device memory" of a simulated run: named grids plus scalar values.
/// Grids are held through shared_ptr so that `swap(a, b)` steps exchange
/// bindings in O(1) exactly like exchanging device pointers.
class GridSet {
 public:
  GridSet() = default;

  /// Allocate storage for every array of the program. Arrays and scalars
  /// listed in `copyin` receive pseudo-random contents from `seed`
  /// (uniform in [-1, 1] for arrays, [0.5, 1.5] for scalars); everything
  /// else is zero-initialized, matching a fresh cudaMalloc + explicit
  /// host-to-device copies of the inputs.
  static GridSet from_program(const ir::Program& prog, std::uint64_t seed);

  Grid3D& grid(const std::string& name);
  const Grid3D& grid(const std::string& name) const;
  bool has_grid(const std::string& name) const { return grids_.count(name); }

  double scalar(const std::string& name) const;
  void set_scalar(const std::string& name, double v) { scalars_[name] = v; }

  /// Add a grid (used for synthesized intermediate arrays).
  void add_grid(const std::string& name, Extents extents, double fill = 0.0);

  void swap(const std::string& a, const std::string& b);

  /// Deep copy (for running two schedules on identical inputs).
  GridSet clone() const;

  const std::map<std::string, std::shared_ptr<Grid3D>>& grids() const {
    return grids_;
  }

 private:
  std::map<std::string, std::shared_ptr<Grid3D>> grids_;
  std::map<std::string, double> scalars_;
};

/// Zero the outermost `margin` shells of a grid on every real axis
/// (extent-1 axes are degenerate and skipped). Iterative stencils with
/// homogeneous Dirichlet boundaries keep these shells constant; overlapped
/// time tiling (whose fused intermediates are zero-initialized) is exactly
/// equivalent to the ping-pong reference under this condition. When the
/// margin covers a whole axis the grid zeroes entirely — that is the
/// correct Dirichlet limit, not a case to skip.
void zero_boundary(Grid3D& g, std::int64_t margin);

/// Extents of a declared array under the program's parameter bindings
/// (lower-dimensional arrays map to trailing axes: a 1D array of length N
/// becomes {1, 1, N}).
Extents extents_of(const ir::Program& prog, const ir::ArrayDecl& decl);

}  // namespace artemis::sim
