# Empty dependencies file for artemisc.
# This may be replaced when dependencies are built.
