#include <gtest/gtest.h>

#include "artemis/driver/driver.hpp"
#include "artemis/dsl/parser.hpp"
#include "artemis/stencils/benchmarks.hpp"

namespace artemis::driver {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  gpumodel::DeviceSpec dev_ = gpumodel::p100();
  gpumodel::ModelParams params_;
};

TEST_F(DriverTest, IterativeScheduleCoversAllSteps) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 256);
  const auto r = optimize_program(prog, dev_, params_);
  int total = 0;
  for (const int x : r.fusion_schedule) total += x;
  EXPECT_EQ(total, 12);  // T = 12
  ASSERT_TRUE(r.deep_tuning.has_value());
  EXPECT_GE(r.deep_tuning->entries.size(), 2u);
  EXPECT_GT(r.tflops, 0.0);
  int invocations = 0;
  for (const auto& k : r.kernels) invocations += k.invocations;
  EXPECT_EQ(invocations, static_cast<int>(r.fusion_schedule.size()));
}

TEST_F(DriverTest, ArtemisBeatsUnfusedGlobalOnIterative) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto artemis = optimize_program(prog, dev_, params_);
  const auto global = optimize_program(prog, dev_, params_,
                                       global_strategy(false));
  const auto stream = optimize_program(prog, dev_, params_,
                                       global_strategy(true));
  EXPECT_GT(artemis.tflops, global.tflops);
  // Section VIII-F: streaming without shared memory has worse locality
  // than plain 3D tiling.
  EXPECT_GT(global.tflops, stream.tflops);
}

TEST_F(DriverTest, OrderingMatchesFigure5) {
  // PPCG < STENCILGEN < ARTEMIS on iterative stencils.
  const auto prog = stencils::benchmark_program("27pt-smoother", 512);
  const auto artemis = optimize_program(prog, dev_, params_);
  const auto sg = optimize_program(prog, dev_, params_,
                                   stencilgen_strategy());
  const auto ppcg = optimize_program(prog, dev_, params_, ppcg_strategy());
  EXPECT_GT(artemis.tflops, sg.tflops);
  EXPECT_GT(sg.tflops, ppcg.tflops);
}

TEST_F(DriverTest, StencilgenRejectsMixedDims) {
  const auto prog = stencils::benchmark_program("addsgd4", 128);
  EXPECT_THROW(
      optimize_program(prog, dev_, params_, stencilgen_strategy()), Error);
}

TEST_F(DriverTest, FissionTriggersForRegisterBoundKernel) {
  const auto prog = stencils::benchmark_program("rhs4sgcurv", 320);
  const auto r = optimize_program(prog, dev_, params_);
  // The monolithic kernel spills at 255 registers; ARTEMIS must emit
  // fission candidates and adopt a multi-kernel schedule.
  EXPECT_FALSE(r.candidate_dsl.empty());
  EXPECT_GT(r.kernels.size(), 1u);
  // Fissioned sub-kernels are spill-free.
  for (const auto& k : r.kernels) {
    EXPECT_EQ(k.eval.regs.spilled(k.config.max_registers), 0) << k.name;
  }
}

TEST_F(DriverTest, FissionCandidateDslReparses) {
  const auto prog = stencils::benchmark_program("rhs4sgcurv", 128);
  const auto r = optimize_program(prog, dev_, params_);
  ASSERT_FALSE(r.candidate_dsl.empty());
  for (const auto& text : r.candidate_dsl) {
    EXPECT_NO_THROW(dsl::parse(text));
  }
}

TEST_F(DriverTest, ExpertAssignBeatsNaiveDefault) {
  // Section VIII-E: addsgd4 with #assign outperforms the naive default
  // that stages every array (including the 1D coefficients, in tile-shaped
  // buffers) in shared memory. The comparison isolates resource
  // assignment, so the profiling-driven fallback to the global version is
  // disabled like the paper's experiment.
  Strategy s = artemis_strategy();
  s.profile_guided = false;
  const auto with = dsl::parse(stencils::addsgd_dsl(320, 2, true));
  const auto without = dsl::parse(stencils::addsgd_dsl(320, 2, false));
  const auto r_with = optimize_program(with, dev_, params_, s);
  const auto r_without = optimize_program(without, dev_, params_, s);
  EXPECT_GT(r_with.tflops, r_without.tflops * 1.1);
}

TEST_F(DriverTest, HyptermSharedMatchesGlobal) {
  // Section VIII-F: hypterm stays DRAM-bound with shared memory; ARTEMIS
  // must fall back to (or match) the tuned global version.
  const auto prog = stencils::benchmark_program("hypterm", 320);
  const auto artemis = optimize_program(prog, dev_, params_);
  const auto global = optimize_program(prog, dev_, params_,
                                       global_strategy(false));
  EXPECT_GE(artemis.tflops, global.tflops * 0.95);
}

TEST_F(DriverTest, HintsSurface) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 512);
  const auto r = optimize_program(prog, dev_, params_);
  // The bandwidth-bound baseline must produce at least one guideline.
  EXPECT_FALSE(r.hints.empty());
}

TEST_F(DriverTest, LaunchOverheadCounted) {
  const auto prog = stencils::benchmark_program("7pt-smoother", 128);
  gpumodel::ModelParams heavy = params_;
  heavy.launch_overhead_s = 1.0;  // absurd: launches dominate
  const auto r = optimize_program(prog, dev_, heavy);
  EXPECT_GT(r.time_s, static_cast<double>(r.kernel_launches) * 0.99);
}

TEST_F(DriverTest, HalideAutoschedulerGapGrowsWithComplexity) {
  // Section I: the autoscheduler stays close on simple stencils but loses
  // ~2x+ on complex register-bound kernels.
  const auto simple = stencils::benchmark_program("27pt-smoother", 256);
  const auto complex_prog = stencils::benchmark_program("rhs4sgcurv", 320);
  const auto ha = halide_auto_strategy();
  const double gap_simple =
      optimize_program(simple, dev_, params_).tflops /
      optimize_program(simple, dev_, params_, ha).tflops;
  const double gap_complex =
      optimize_program(complex_prog, dev_, params_).tflops /
      optimize_program(complex_prog, dev_, params_, ha).tflops;
  EXPECT_LT(gap_simple, 1.6);
  EXPECT_GT(gap_complex, 2.0);
}

TEST_F(DriverTest, AllBenchmarksRunUnderAllStrategies) {
  for (const auto& spec : stencils::paper_benchmarks()) {
    const auto prog = stencils::benchmark_program(spec.name, 96, 4);
    for (const auto& strat :
         {artemis_strategy(), ppcg_strategy(), stencilgen_strategy(),
          global_strategy(false), global_strategy(true)}) {
      try {
        const auto r = optimize_program(prog, dev_, params_, strat);
        EXPECT_GT(r.tflops, 0.0) << spec.name << "/" << strat.name;
        EXPECT_GT(r.time_s, 0.0) << spec.name << "/" << strat.name;
      } catch (const Error&) {
        // Only STENCILGEN may reject (mixed dims).
        EXPECT_EQ(strat.name, "stencilgen") << spec.name;
      }
    }
  }
}

}  // namespace
}  // namespace artemis::driver
